#!/usr/bin/env bash
# CI driver: builds and tests the Release tree, the ASan/UBSan variant, and
# a TSan variant running the threaded suites (the serving engine plus the
# thread-pool-backed training paths). The Release leg also runs
# bench_train_parallel and fails if its BENCH_train.json is missing or
# malformed, so the perf trajectory stays machine-readable across PRs.
#
#   ./ci.sh            # all three variants
#
# Build trees live under build-ci-* so they never collide with a developer's
# ./build. Any failure aborts the script (set -e) and leaves the offending
# tree around for inspection.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

run_variant() {
  local name="$1" sanitize="$2" ctest_args="${3:-}"
  local dir="build-ci-${name}"
  echo "=== ${name}: configure ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release \
        -DPHISHINGHOOK_SANITIZE="${sanitize}" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  # shellcheck disable=SC2086
  (cd "${dir}" && ctest --output-on-failure --no-tests=error -j "${JOBS}" ${ctest_args})
}

check_bench_json() {
  local json="$1"
  echo "=== bench_train_parallel: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
rows = doc["results"]
assert rows, "empty results"
for row in rows:
    for key in ("model", "threads", "ms", "speedup"):
        assert key in row, f"missing {key}"
print(f"BENCH_train.json ok: {len(rows)} rows")
PY
  else
    # No python3: cheap structural check on the required keys.
    grep -q '"results"' "${json}" && grep -q '"model"' "${json}" &&
      grep -q '"threads"' "${json}" && grep -q '"speedup"' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

run_variant release ""
(cd build-ci-release && ./bench/bench_train_parallel)
check_bench_json build-ci-release/BENCH_train.json

run_variant asan address

# TSan cannot be combined with ASan, and slows everything ~10x, so it runs
# only the suites with actual cross-thread state: the serving engine, the
# thread-pool unit tests, and the pool-backed training determinism suite.
run_variant tsan thread "-R test_serve|test_thread_pool|test_parallel_determinism"

echo "=== ci.sh: all variants green ==="
