#!/usr/bin/env bash
# CI driver: builds and tests the Release tree plus the ASan/UBSan variant.
#
#   ./ci.sh            # Release + address-sanitized builds, ctest on both
#   ./ci.sh tsan       # additionally a TSan build running the threaded
#                      #   serving suite (slow; racy code shows up here)
#
# Build trees live under build-ci-* so they never collide with a developer's
# ./build. Any failure aborts the script (set -e) and leaves the offending
# tree around for inspection.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

run_variant() {
  local name="$1" sanitize="$2" ctest_args="${3:-}"
  local dir="build-ci-${name}"
  echo "=== ${name}: configure ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release \
        -DPHISHINGHOOK_SANITIZE="${sanitize}" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  # shellcheck disable=SC2086
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" ${ctest_args})
}

run_variant release ""
run_variant asan address

if [[ "${1:-}" == "tsan" ]]; then
  # TSan cannot be combined with ASan, and slows everything ~10x, so it
  # only runs the serving suite — the code with actual cross-thread state.
  run_variant tsan thread "-R test_serve"
fi

echo "=== ci.sh: all variants green ==="
