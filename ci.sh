#!/usr/bin/env bash
# CI driver: builds and tests the Release tree, the ASan/UBSan variant, a
# TSan variant running the threaded suites (the serving engine plus the
# thread-pool-backed training paths and the telemetry layer), and a no-SIMD
# variant proving the scalar fallbacks bit-identical. The Release
# leg also runs bench_train_parallel (validating BENCH_train.json),
# bench_extract + bench_infer in --smoke mode (validating
# BENCH_extract.json / BENCH_infer.json, the >= 8x single-thread
# LUT-extraction speedup floor, and the >= 1x flat-vs-nodewalk floor on
# every tree model), bench_serve_throughput (validating its
# Prometheus exposition), and contract_scanner under PHISHINGHOOK_TRACE
# (validating the span trace), a chaos smoke (contract_scanner against
# a 10% fault-injecting explorer, checking that every request resolves to a
# definite status), and bench_stream in --smoke mode (validating
# BENCH_stream.json: both arrival scenarios present, finite rows/s and
# shed/error rates, accounting identity intact), so the perf trajectory,
# the telemetry surface, and the fault-isolation contract all stay
# machine-checked across PRs. The ASan leg runs the full suite, including
# the fast-vs-legacy equivalence tests (test_features_fast). The TSan leg
# adds test_stream, racing the four streaming pipeline threads against the
# engine workers.
#
#   ./ci.sh            # all three variants
#
# Build trees live under build-ci-* so they never collide with a developer's
# ./build. Any failure aborts the script (set -e) and leaves the offending
# tree around for inspection.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

run_variant() {
  local name="$1" sanitize="$2" ctest_args="${3:-}"
  local dir="build-ci-${name}"
  echo "=== ${name}: configure ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release \
        -DPHISHINGHOOK_SANITIZE="${sanitize}" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  # shellcheck disable=SC2086
  (cd "${dir}" && ctest --output-on-failure --no-tests=error -j "${JOBS}" ${ctest_args})
}

check_bench_json() {
  local json="$1"
  echo "=== bench_train_parallel: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
rows = doc["results"]
assert rows, "empty results"
for row in rows:
    for key in ("model", "threads", "ms", "speedup"):
        assert key in row, f"missing {key}"
print(f"BENCH_train.json ok: {len(rows)} rows")
PY
  else
    # No python3: cheap structural check on the required keys.
    grep -q '"results"' "${json}" && grep -q '"model"' "${json}" &&
      grep -q '"threads"' "${json}" && grep -q '"speedup"' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

check_extract_json() {
  local json="$1"
  echo "=== bench_extract: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
rows = doc["results"]
assert rows, "empty results"
by_path = {}
for row in rows:
    for key in ("path", "threads", "ms", "mb_per_s", "speedup_vs_legacy"):
        assert key in row, f"missing {key}"
    assert row["mb_per_s"] > 0, f"zero throughput for {row['path']}"
    by_path[row["path"]] = row
for required in ("legacy", "fast"):
    assert required in by_path, f"missing path {required}"
fast = by_path["fast"]
assert fast["threads"] == 1, "fast row must be single-thread"
# Floor raised 5x -> 8x with the banked-histogram accumulator (the CI box
# measures ~35x; 8x leaves headroom for noisy hosts without letting the
# fast path quietly decay to the old scalar scan).
assert fast["speedup_vs_legacy"] >= 8.0, (
    f"LUT extraction speedup {fast['speedup_vs_legacy']:.2f}x "
    "below the 8x floor")
print(f"BENCH_extract.json ok: {len(rows)} rows, "
      f"fast path {fast['speedup_vs_legacy']:.1f}x legacy "
      f"at {fast['mb_per_s']:.0f} MB/s")
PY
  else
    grep -q '"results"' "${json}" && grep -q '"path": "fast"' "${json}" &&
      grep -q '"mb_per_s"' "${json}" &&
      grep -q '"speedup_vs_legacy"' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

check_infer_json() {
  local json="$1"
  echo "=== bench_infer: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
rows = doc["results"]
assert rows, "empty results"
seen = set()
for row in rows:
    for key in ("model", "path", "traversal", "row_block", "threads", "ms",
                "rows_per_s", "speedup_vs_nodewalk"):
        assert key in row, f"missing {key}"
    assert row["rows_per_s"] > 0, (
        f"zero throughput for {row['model']}/{row['path']}")
    seen.add((row["model"], row["path"]))
for model in ("random_forest", "xgboost", "lightgbm", "catboost"):
    for path in ("nodewalk", "flat"):
        assert (model, path) in seen, f"missing row {model}/{path}"
# Enforced floor: the compiled flat traversal must beat the per-row
# nodewalk on EVERY model at one thread (DESIGN.md §10). The floors are
# "never slower" (1.0), not the measured speedups (~3.3x RF, ~1.9x XGB,
# ~1.8x LGBM, ~1.25x CatBoost on the CI box) — pinning the measured
# numbers would flake on host noise, while 1.0 catches any regression to
# the pre-rewrite state, where xgboost/lightgbm sat at ~0.7-0.8x.
min_speedup = {"random_forest": 1.0, "xgboost": 1.0,
               "lightgbm": 1.0, "catboost": 1.0}
checked = set()
for row in rows:
    if row["path"] != "flat" or row.get("threads") != 1:
        continue
    floor = min_speedup.get(row["model"])
    if floor is None:
        continue
    assert row["speedup_vs_nodewalk"] >= floor, (
        f"flat inference for {row['model']} at "
        f"{row['speedup_vs_nodewalk']:.2f}x nodewalk "
        f"({row['traversal']}, block {row['row_block']}), below the "
        f"{floor:.1f}x floor")
    checked.add(row["model"])
assert checked == set(min_speedup), (
    f"missing single-thread flat rows for {set(min_speedup) - checked}")
print(f"BENCH_infer.json ok: {len(rows)} rows over "
      f"{len({m for m, _ in seen})} models, flat >= nodewalk on all of "
      + ", ".join(sorted(checked)))
PY
  else
    grep -q '"results"' "${json}" && grep -q '"rows_per_s"' "${json}" &&
      grep -q '"path": "flat"' "${json}" &&
      grep -q '"speedup_vs_nodewalk"' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

check_stream_json() {
  local json="$1"
  echo "=== bench_stream: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, math, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
rows = doc["results"]
assert rows, "empty results"
scenarios = set()
for row in rows:
    for key in ("scenario", "sustained_rows_per_s", "shed_rate",
                "error_rate", "ingest_lag_blocks", "max_ingest_lag_blocks",
                "submitted", "completed", "failed", "shed",
                "accounting_ok"):
        assert key in row, f"missing {key}"
    for key in ("sustained_rows_per_s", "shed_rate", "error_rate"):
        assert math.isfinite(row[key]), f"non-finite {key}"
    assert row["accounting_ok"] is True, (
        f"accounting broken for {row['scenario']}")
    assert row["submitted"] == row["completed"] + row["failed"] + row["shed"], (
        f"submitted != completed+failed+shed for {row['scenario']}")
    assert row["sustained_rows_per_s"] > 0, (
        f"zero throughput for {row['scenario']}")
    scenarios.add(row["scenario"])
for required in ("steady", "mempool_burst"):
    assert required in scenarios, f"missing scenario {required}"
print(f"BENCH_stream.json ok: {len(rows)} scenarios, "
      + ", ".join(f"{r['scenario']}={r['sustained_rows_per_s']:.0f} rows/s"
                  for r in rows))
PY
  else
    grep -q '"scenario": "steady"' "${json}" &&
      grep -q '"scenario": "mempool_burst"' "${json}" &&
      grep -q '"sustained_rows_per_s"' "${json}" &&
      grep -q '"ingest_lag_blocks"' "${json}" &&
      grep -q '"accounting_ok": true' "${json}" &&
      ! grep -q '"accounting_ok": false' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

check_prometheus() {
  local prom="$1"
  echo "=== bench_serve_throughput: ${prom} ==="
  if [[ ! -f "${prom}" ]]; then
    echo "ci.sh: ${prom} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${prom}" <<'PY'
import re, sys
line_re = re.compile(
    r'^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|nan|inf)$')
lines = [l.rstrip() for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty exposition"
samples = 0
for line in lines:
    if line.startswith("# TYPE "):
        continue
    assert line_re.match(line), f"malformed exposition line: {line!r}"
    samples += 1
names = " ".join(lines)
for required in ("serve_requests_completed", "serve_cache_hit_rate",
                 "serve_request_latency_us", "threadpool_tasks_total"):
    assert required in names, f"missing metric {required}"
print(f"{sys.argv[1]} ok: {samples} samples")
PY
  else
    grep -q '^serve_requests_completed' "${prom}" &&
      grep -q 'serve_request_latency_us' "${prom}" ||
      { echo "ci.sh: ${prom} malformed" >&2; exit 1; }
  fi
}

check_trace() {
  local trace="$1"
  echo "=== contract_scanner: ${trace} ==="
  if [[ ! -f "${trace}" ]]; then
    echo "ci.sh: ${trace} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${trace}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty trace"
for event in events:
    for key in ("name", "ph", "pid", "tid", "ts", "dur"):
        assert key in event, f"missing {key}"
    assert event["ph"] == "X", "expected complete events"
names = {event["name"].split(":")[0] for event in events}
for required in ("serve.batch", "features.transform_all", "model.predict"):
    assert required in names, f"missing span {required} (have {sorted(names)})"
print(f"{sys.argv[1]} ok: {len(events)} events, "
      f"{len(names)} distinct spans")
PY
  else
    grep -q '"traceEvents"' "${trace}" && grep -q 'serve.batch' "${trace}" ||
      { echo "ci.sh: ${trace} malformed" >&2; exit 1; }
  fi
}

check_chaos_smoke() {
  local out="$1"
  echo "=== contract_scanner: chaos smoke (10% faults) ==="
  if ! grep -q '^status counts: ok=' "${out}"; then
    echo "ci.sh: chaos smoke missing per-status counts" >&2
    exit 1
  fi
  if ! grep -q '^chaos accounting: .* OK$' "${out}"; then
    echo "ci.sh: chaos accounting violated (completed+failed+shed != submitted)" >&2
    grep '^chaos accounting:' "${out}" >&2 || true
    exit 1
  fi
  grep '^status counts:' "${out}"
  grep '^chaos accounting:' "${out}"
}

run_variant release ""
(cd build-ci-release && ./bench/bench_train_parallel)
check_bench_json build-ci-release/BENCH_train.json
(cd build-ci-release && ./bench/bench_extract --smoke)
check_extract_json build-ci-release/BENCH_extract.json
(cd build-ci-release && ./bench/bench_infer --smoke)
check_infer_json build-ci-release/BENCH_infer.json
# Stream smoke: the whole miner -> follower -> load generator -> engine
# pipeline under both arrival scenarios, with the accounting identity and
# the BENCH_stream.json schema machine-checked.
(cd build-ci-release && ./bench/bench_stream --smoke)
check_stream_json build-ci-release/BENCH_stream.json
(cd build-ci-release && ./bench/bench_serve_throughput 1)
check_prometheus build-ci-release/BENCH_serve_metrics.prom
(cd build-ci-release &&
  PHISHINGHOOK_TRACE=scanner_trace.json ./examples/contract_scanner)
check_trace build-ci-release/scanner_trace.json
# Chaos smoke: the scanner against a 10% fault-injecting explorer must exit
# 0 (no aborted workers, no lost futures) and report per-status counts that
# account for every submission.
(cd build-ci-release && ./examples/contract_scanner --chaos 0.10 \
  | tee chaos_smoke.out >/dev/null)
check_chaos_smoke build-ci-release/chaos_smoke.out

run_variant asan address

# TSan cannot be combined with ASan, and slows everything ~10x, so it runs
# only the suites with actual cross-thread state: the serving engine, its
# chaos/fault-injection suite, the thread-pool unit tests, the pool-backed
# training determinism suite, and the telemetry layer itself.
run_variant tsan thread "-R test_serve|test_serve_faults|test_thread_pool|test_parallel_determinism|test_obs|test_stream"

# No-SIMD leg: build with PHISHINGHOOK_SIMD compiled out (and gcc's
# autovectorizers off) and run the fast-vs-legacy equivalence suite. The
# scalar fallbacks must be bit-identical to the vectorized build — this is
# the proof that the SIMD pragmas are an optimization, never a semantic.
echo "=== nosimd: configure ==="
cmake -B build-ci-nosimd -S . -DCMAKE_BUILD_TYPE=Release \
      -DPHISHINGHOOK_NO_SIMD=ON >/dev/null
echo "=== nosimd: build ==="
cmake --build build-ci-nosimd -j "${JOBS}" --target test_features_fast
echo "=== nosimd: test_features_fast ==="
(cd build-ci-nosimd && ./tests/test_features_fast)

echo "=== ci.sh: all variants green ==="
