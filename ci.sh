#!/usr/bin/env bash
# CI driver: builds and tests the Release tree, the ASan/UBSan variant, a
# TSan variant running the threaded suites (the serving engine plus the
# thread-pool-backed training paths and the telemetry layer), and a no-SIMD
# variant proving the scalar fallbacks bit-identical. The Release
# leg also runs bench_train_parallel (validating BENCH_train.json),
# bench_extract + bench_infer in --smoke mode (validating
# BENCH_extract.json / BENCH_infer.json, the >= 8x single-thread
# LUT-extraction speedup floor, and the >= 1x flat-vs-nodewalk floor on
# every tree model), bench_serve_throughput (validating its
# Prometheus exposition, including HELP/TYPE pairing), and contract_scanner
# under PHISHINGHOOK_TRACE (validating the span trace, now including the
# async request lanes and flow arrows — at least one trace id must connect
# the request umbrella to its queue/extract stage slices), a chaos smoke
# (contract_scanner against a 10% fault-injecting explorer, checking that
# every request resolves to a definite status), bench_stream in --smoke
# mode (validating BENCH_stream.json: both arrival scenarios present,
# finite rows/s and shed/error rates, accounting identity intact, windowed
# SLO sample and per-stage queue-wait/service-time attribution rows, plus
# the network row the socket-path scenario emits), a scrape smoke
# (stream_follower serving /metrics,/vars,/healthz on loopback mid-run,
# exposition linted, health JSON schema-checked), and a JSON-RPC smoke
# (score_server on ephemeral ports, a single phook_score plus a mixed batch
# over real sockets, response shape and net_* metrics asserted), so the perf
# trajectory, the telemetry surface, and the fault-isolation contract all
# stay machine-checked across PRs. The ASan leg runs the full suite, including
# the fast-vs-legacy equivalence tests (test_features_fast). The TSan leg
# adds test_stream, racing the four streaming pipeline threads against the
# engine workers, and test_net, hammering the event loop + dispatcher pool
# with concurrent clients.
#
#   ./ci.sh            # all three variants
#
# Build trees live under build-ci-* so they never collide with a developer's
# ./build. Any failure aborts the script (set -e) and leaves the offending
# tree around for inspection.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

run_variant() {
  local name="$1" sanitize="$2" ctest_args="${3:-}"
  local dir="build-ci-${name}"
  echo "=== ${name}: configure ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release \
        -DPHISHINGHOOK_SANITIZE="${sanitize}" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  # shellcheck disable=SC2086
  (cd "${dir}" && ctest --output-on-failure --no-tests=error -j "${JOBS}" ${ctest_args})
}

check_bench_json() {
  local json="$1"
  echo "=== bench_train_parallel: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
rows = doc["results"]
assert rows, "empty results"
for row in rows:
    for key in ("model", "threads", "ms", "speedup"):
        assert key in row, f"missing {key}"
print(f"BENCH_train.json ok: {len(rows)} rows")
PY
  else
    # No python3: cheap structural check on the required keys.
    grep -q '"results"' "${json}" && grep -q '"model"' "${json}" &&
      grep -q '"threads"' "${json}" && grep -q '"speedup"' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

check_extract_json() {
  local json="$1"
  echo "=== bench_extract: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
rows = doc["results"]
assert rows, "empty results"
by_path = {}
for row in rows:
    for key in ("path", "threads", "ms", "mb_per_s", "speedup_vs_legacy"):
        assert key in row, f"missing {key}"
    assert row["mb_per_s"] > 0, f"zero throughput for {row['path']}"
    by_path[row["path"]] = row
for required in ("legacy", "fast"):
    assert required in by_path, f"missing path {required}"
fast = by_path["fast"]
assert fast["threads"] == 1, "fast row must be single-thread"
# Floor raised 5x -> 8x with the banked-histogram accumulator (the CI box
# measures ~35x; 8x leaves headroom for noisy hosts without letting the
# fast path quietly decay to the old scalar scan).
assert fast["speedup_vs_legacy"] >= 8.0, (
    f"LUT extraction speedup {fast['speedup_vs_legacy']:.2f}x "
    "below the 8x floor")
print(f"BENCH_extract.json ok: {len(rows)} rows, "
      f"fast path {fast['speedup_vs_legacy']:.1f}x legacy "
      f"at {fast['mb_per_s']:.0f} MB/s")
PY
  else
    grep -q '"results"' "${json}" && grep -q '"path": "fast"' "${json}" &&
      grep -q '"mb_per_s"' "${json}" &&
      grep -q '"speedup_vs_legacy"' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

check_infer_json() {
  local json="$1"
  echo "=== bench_infer: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
rows = doc["results"]
assert rows, "empty results"
seen = set()
for row in rows:
    for key in ("model", "path", "traversal", "row_block", "threads", "ms",
                "rows_per_s", "speedup_vs_nodewalk"):
        assert key in row, f"missing {key}"
    assert row["rows_per_s"] > 0, (
        f"zero throughput for {row['model']}/{row['path']}")
    seen.add((row["model"], row["path"]))
for model in ("random_forest", "xgboost", "lightgbm", "catboost"):
    for path in ("nodewalk", "flat"):
        assert (model, path) in seen, f"missing row {model}/{path}"
# Enforced floor: the compiled flat traversal must beat the per-row
# nodewalk on EVERY model at one thread (DESIGN.md §10). The floors are
# "never slower" (1.0), not the measured speedups (~3.3x RF, ~1.9x XGB,
# ~1.8x LGBM, ~1.25x CatBoost on the CI box) — pinning the measured
# numbers would flake on host noise, while 1.0 catches any regression to
# the pre-rewrite state, where xgboost/lightgbm sat at ~0.7-0.8x.
min_speedup = {"random_forest": 1.0, "xgboost": 1.0,
               "lightgbm": 1.0, "catboost": 1.0}
checked = set()
for row in rows:
    if row["path"] != "flat" or row.get("threads") != 1:
        continue
    floor = min_speedup.get(row["model"])
    if floor is None:
        continue
    assert row["speedup_vs_nodewalk"] >= floor, (
        f"flat inference for {row['model']} at "
        f"{row['speedup_vs_nodewalk']:.2f}x nodewalk "
        f"({row['traversal']}, block {row['row_block']}), below the "
        f"{floor:.1f}x floor")
    checked.add(row["model"])
assert checked == set(min_speedup), (
    f"missing single-thread flat rows for {set(min_speedup) - checked}")
print(f"BENCH_infer.json ok: {len(rows)} rows over "
      f"{len({m for m, _ in seen})} models, flat >= nodewalk on all of "
      + ", ".join(sorted(checked)))
PY
  else
    grep -q '"results"' "${json}" && grep -q '"rows_per_s"' "${json}" &&
      grep -q '"path": "flat"' "${json}" &&
      grep -q '"speedup_vs_nodewalk"' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

check_stream_json() {
  local json="$1"
  echo "=== bench_stream: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, math, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
rows = doc["results"]
assert rows, "empty results"
scenarios = set()
for row in rows:
    for key in ("scenario", "sustained_rows_per_s", "shed_rate",
                "error_rate", "ingest_lag_blocks", "max_ingest_lag_blocks",
                "submitted", "completed", "failed", "shed",
                "accounting_ok"):
        assert key in row, f"missing {key}"
    for key in ("sustained_rows_per_s", "shed_rate", "error_rate",
                "window_rate_per_sec", "window_p99_us",
                "window_error_burn_rate", "shed_pressure"):
        assert key in row, f"missing {key}"
        assert math.isfinite(row[key]), f"non-finite {key}"
    assert row["accounting_ok"] is True, (
        f"accounting broken for {row['scenario']}")
    assert row["submitted"] == row["completed"] + row["failed"] + row["shed"], (
        f"submitted != completed+failed+shed for {row['scenario']}")
    assert row["sustained_rows_per_s"] > 0, (
        f"zero throughput for {row['scenario']}")
    assert 0.0 <= row["shed_pressure"] <= 1.0, "shed_pressure out of [0,1]"
    # Per-stage latency attribution: every scenario reports where time went
    # (queue-wait vs service-time) for the four instrumented stages.
    stages = {s["stage"]: s for s in row["stages"]}
    for stage, kind in (("addr_queue", "wait"), ("queue", "wait"),
                        ("extract", "service"), ("predict", "service")):
        assert stage in stages, f"missing stage row {stage}"
        s = stages[stage]
        assert s["kind"] == kind, f"stage {stage} kind {s['kind']} != {kind}"
        for key in ("count", "mean_us", "p50_us", "p95_us", "p99_us",
                    "max_us"):
            assert key in s, f"stage {stage} missing {key}"
            assert math.isfinite(s[key]), f"stage {stage} non-finite {key}"
    # Real traffic flowed through the engine stages in every scenario.
    assert stages["queue"]["count"] > 0, "no queue-wait samples"
    assert stages["extract"]["count"] > 0, "no extract samples"
    scenarios.add(row["scenario"])
for required in ("steady", "mempool_burst"):
    assert required in scenarios, f"missing scenario {required}"
# Network path: LoadGenerator-driven traffic over real loopback sockets
# through the JSON-RPC front door, with latency attributed across the
# client (connect/rtt), the net layer (parse/dispatch/handle) and the
# engine (queue/extract/predict).
net = doc["network"]
for key in ("scenario", "requests", "ok", "shed", "transport_errors",
            "rps", "shed_rate"):
    assert key in net, f"network row missing {key}"
assert net["requests"] > 0, "no socket-path requests"
assert net["ok"] > 0, "no socket-path scored responses"
assert net["transport_errors"] == 0, (
    f"{net['transport_errors']} transport errors on loopback")
assert math.isfinite(net["rps"]) and net["rps"] > 0, "bad network rps"
net_stages = {s["stage"]: s for s in net["stages"]}
for stage, kind in (("connect", "service"), ("rtt", "service"),
                    ("parse", "service"), ("dispatch", "wait"),
                    ("handle", "service"), ("queue", "wait"),
                    ("extract", "service"), ("predict", "service")):
    assert stage in net_stages, f"missing network stage row {stage}"
    s = net_stages[stage]
    assert s["kind"] == kind, f"network stage {stage} kind {s['kind']}"
    for key in ("count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"):
        assert math.isfinite(s[key]), f"network stage {stage} bad {key}"
assert net_stages["parse"]["count"] > 0, "no frames parsed on the socket path"
assert net_stages["queue"]["count"] > 0, "socket traffic never hit the engine"
print(f"BENCH_stream.json ok: {len(rows)} scenarios, "
      + ", ".join(f"{r['scenario']}={r['sustained_rows_per_s']:.0f} rows/s"
                  for r in rows)
      + f"; network {net['rps']:.0f} req/s over {net['requests']} requests")
PY
  else
    grep -q '"scenario": "steady"' "${json}" &&
      grep -q '"scenario": "mempool_burst"' "${json}" &&
      grep -q '"sustained_rows_per_s"' "${json}" &&
      grep -q '"ingest_lag_blocks"' "${json}" &&
      grep -q '"accounting_ok": true' "${json}" &&
      ! grep -q '"accounting_ok": false' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

check_cascade_json() {
  local json="$1"
  echo "=== bench_cascade: ${json} ==="
  if [[ ! -f "${json}" ]]; then
    echo "ci.sh: ${json} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'PY'
import json, math, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
for key in ("test_rows", "models", "stage0_rows_per_s", "heavy_rows_per_s",
            "stage0_accuracy", "heavy_accuracy", "best_single_model",
            "best_single_accuracy", "results"):
    assert key in doc, f"missing {key}"
assert doc["test_rows"] > 0, "empty held-out set"
assert doc["models"]["stage0"] and doc["models"]["heavy"], "missing model names"
rows = doc["results"]
assert rows, "empty results"
for row in rows:
    for key in ("band_lo", "band_hi", "enabled", "rows_per_s",
                "escalation_rate", "degraded_rows", "stage_rows",
                "accuracy", "accuracy_delta_pp", "speedup_vs_heavy"):
        assert key in row, f"missing {key}"
    for key in ("band_lo", "band_hi", "rows_per_s", "escalation_rate",
                "accuracy", "accuracy_delta_pp", "speedup_vs_heavy"):
        assert math.isfinite(row[key]), f"non-finite {key}"
    assert row["rows_per_s"] > 0, "zero throughput"
    assert 0.0 <= row["escalation_rate"] <= 1.0, "escalation_rate out of [0,1]"
    assert row["degraded_rows"] == 0, "faults in a fault-free bench"
    assert sum(row["stage_rows"]) >= doc["test_rows"], "rows went missing"
# The disabled band never escalates; the full [0,1] band escalates every
# row — together they prove the band logic actually gates the heavy stage.
disabled = [r for r in rows if not r["enabled"]]
assert disabled, "no disabled-band control point"
assert all(r["escalation_rate"] == 0.0 for r in disabled), (
    "disabled band escalated rows")
full = [r for r in rows if r["band_lo"] == 0.0 and r["band_hi"] == 1.0]
assert full, "no full-band control point"
assert all(r["escalation_rate"] == 1.0 for r in full), (
    "full [0,1] band failed to escalate every row")
# The optimization gate: some enabled band must beat the heavy model by
# >= 2x while giving up <= 0.5 pp of accuracy vs the best single model.
winners = [r for r in rows
           if r["enabled"] and r["speedup_vs_heavy"] >= 2.0
           and r["accuracy_delta_pp"] >= -0.5]
assert winners, ("no band met the gate: >= 2x over the heavy model at "
                 "<= 0.5 pp accuracy loss")
best = max(winners, key=lambda r: r["speedup_vs_heavy"])
print(f"BENCH_cascade.json ok: {len(rows)} bands, best gate-passing band "
      f"[{best['band_lo']:.2f}, {best['band_hi']:.2f}] at "
      f"{best['speedup_vs_heavy']:.1f}x vs heavy, "
      f"{best['accuracy_delta_pp']:+.2f} pp accuracy")
PY
  else
    grep -q '"bench": "cascade"' "${json}" &&
      grep -q '"escalation_rate"' "${json}" &&
      grep -q '"speedup_vs_heavy"' "${json}" &&
      grep -q '"enabled": true' "${json}" &&
      grep -q '"enabled": false' "${json}" ||
      { echo "ci.sh: ${json} malformed" >&2; exit 1; }
  fi
}

check_prometheus() {
  local prom="$1"
  echo "=== bench_serve_throughput: ${prom} ==="
  if [[ ! -f "${prom}" ]]; then
    echo "ci.sh: ${prom} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${prom}" <<'PY'
import re, sys
line_re = re.compile(
    r'^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|nan|inf)$')
lines = [l.rstrip() for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty exposition"
samples = 0
helped = set()
for line in lines:
    if line.startswith("# HELP "):
        helped.add(line.split()[2])
        continue
    if line.startswith("# TYPE "):
        # Exposition-format conformance: HELP precedes TYPE per name.
        name = line.split()[2]
        assert name in helped, f"# TYPE {name} without a preceding # HELP"
        continue
    assert line_re.match(line), f"malformed exposition line: {line!r}"
    samples += 1
names = " ".join(lines)
for required in ("serve_requests_completed", "serve_cache_hit_rate",
                 "serve_request_latency_us", "threadpool_tasks_total"):
    assert required in names, f"missing metric {required}"
print(f"{sys.argv[1]} ok: {samples} samples")
PY
  else
    grep -q '^serve_requests_completed' "${prom}" &&
      grep -q 'serve_request_latency_us' "${prom}" ||
      { echo "ci.sh: ${prom} malformed" >&2; exit 1; }
  fi
}

check_trace() {
  local trace="$1"
  echo "=== contract_scanner: ${trace} ==="
  if [[ ! -f "${trace}" ]]; then
    echo "ci.sh: ${trace} missing" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${trace}" <<'PY'
import json, sys
from collections import defaultdict
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty trace"
lanes = defaultdict(set)  # async trace id -> stage names on that lane
for event in events:
    ph = event["ph"]
    for key in ("name", "ph", "pid", "tid", "ts"):
        assert key in event, f"missing {key}"
    if ph == "X":
        assert "dur" in event, "complete event without dur"
    elif ph in ("b", "e"):
        assert event.get("cat") == "phook.req", f"async event cat {event}"
        assert event["id"].startswith("0x"), "async event without hex id"
        lanes[event["id"]].add(event["name"])
    elif ph in ("s", "t", "f"):
        assert event.get("cat") == "phook.flow", f"flow event cat {event}"
        assert event["id"].startswith("0x"), "flow event without hex id"
        if ph == "f":
            assert event.get("bp") == "e", "flow finish must bind enclosing"
    else:
        raise AssertionError(f"unexpected phase {ph!r}")
names = {e["name"].split(":")[0] for e in events if e["ph"] == "X"}
for required in ("serve.batch", "features.transform_all", "model.predict"):
    assert required in names, f"missing span {required} (have {sorted(names)})"
# Causal lanes: at least one request's trace id must connect the umbrella
# slice with the per-stage slices (queue wait + extract at minimum).
connected = [i for i, stages in lanes.items()
             if {"request", "req.queue", "req.extract"} <= stages]
assert connected, f"no connected request lane (lanes: {len(lanes)})"
print(f"{sys.argv[1]} ok: {len(events)} events, {len(names)} distinct spans, "
      f"{len(lanes)} request lanes ({len(connected)} fully connected)")
PY
  else
    grep -q '"traceEvents"' "${trace}" && grep -q 'serve.batch' "${trace}" ||
      { echo "ci.sh: ${trace} malformed" >&2; exit 1; }
  fi
}

check_chaos_smoke() {
  local out="$1"
  echo "=== contract_scanner: chaos smoke (10% faults) ==="
  if ! grep -q '^status counts: ok=' "${out}"; then
    echo "ci.sh: chaos smoke missing per-status counts" >&2
    exit 1
  fi
  if ! grep -q '^chaos accounting: .* OK$' "${out}"; then
    echo "ci.sh: chaos accounting violated (completed+failed+shed != submitted)" >&2
    grep '^chaos accounting:' "${out}" >&2 || true
    exit 1
  fi
  grep '^status counts:' "${out}"
  grep '^chaos accounting:' "${out}"
}

fetch_url() {
  local url="$1" out="$2"
  if command -v curl >/dev/null 2>&1; then
    curl -sf --max-time 5 "${url}" -o "${out}"
  else
    python3 - "${url}" "${out}" <<'PY'
import sys, urllib.request
body = urllib.request.urlopen(sys.argv[1], timeout=5).read()
open(sys.argv[2], "wb").write(body)
PY
  fi
}

post_url() {
  local url="$1" body="$2" out="$3"
  if command -v curl >/dev/null 2>&1; then
    curl -sf --max-time 5 -X POST -H 'Content-Type: application/json' \
      -d "${body}" "${url}" -o "${out}"
  else
    python3 - "${url}" "${out}" "${body}" <<'PY'
import sys, urllib.request
req = urllib.request.Request(sys.argv[1], data=sys.argv[3].encode(),
                             headers={"Content-Type": "application/json"})
open(sys.argv[2], "wb").write(urllib.request.urlopen(req, timeout=5).read())
PY
  fi
}

# Scrape smoke: stream_follower serving /metrics, /vars and /healthz on an
# ephemeral loopback port while the pipeline runs. Pulls all three paths
# mid-run, lints the /metrics exposition (grammar + HELP/TYPE pairing +
# the windowed SLO series the pre-scrape hooks refresh), and checks the
# health JSON and the follower's own exit status.
run_scrape_smoke() {
  local dir="$1"
  echo "=== stream_follower: scrape smoke ==="
  rm -f "${dir}/scrape_smoke.out"
  (cd "${dir}" && ./examples/stream_follower --seconds 6 --rate 200 \
    --metrics-port 0 > scrape_smoke.out 2>&1) &
  local follower_pid=$!

  # The follower prints the bound port before the pipeline starts.
  local url="" tries=0
  while [[ -z "${url}" && ${tries} -lt 100 ]]; do
    url="$(grep -o 'http://127\.0\.0\.1:[0-9]*' "${dir}/scrape_smoke.out" \
           2>/dev/null | head -n1 || true)"
    [[ -z "${url}" ]] && sleep 0.1 && tries=$((tries + 1))
  done
  if [[ -z "${url}" ]]; then
    echo "ci.sh: scrape smoke never printed its metrics URL" >&2
    cat "${dir}/scrape_smoke.out" >&2 || true
    kill "${follower_pid}" 2>/dev/null || true
    exit 1
  fi
  local base="${url%/metrics}"

  local path
  for path in metrics vars healthz; do
    if ! fetch_url "${base}/${path}" "${dir}/scrape_${path}.out.tmp"; then
      echo "ci.sh: scrape smoke could not fetch ${base}/${path}" >&2
      cat "${dir}/scrape_smoke.out" >&2 || true
      kill "${follower_pid}" 2>/dev/null || true
      exit 1
    fi
  done
  mv "${dir}/scrape_metrics.out.tmp" "${dir}/scrape_metrics.prom"
  mv "${dir}/scrape_vars.out.tmp" "${dir}/scrape_vars.json"
  mv "${dir}/scrape_healthz.out.tmp" "${dir}/scrape_healthz.json"
  if ! wait "${follower_pid}"; then
    echo "ci.sh: stream_follower exited nonzero under the scrape smoke" >&2
    cat "${dir}/scrape_smoke.out" >&2 || true
    exit 1
  fi

  if command -v python3 >/dev/null 2>&1; then
    python3 - "${dir}/scrape_metrics.prom" "${dir}/scrape_vars.json" \
      "${dir}/scrape_healthz.json" <<'PY'
import json, re, sys
line_re = re.compile(
    r'^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|nan|inf)$')
lines = [l.rstrip() for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty /metrics body"
helped = set()
samples = 0
for line in lines:
    if line.startswith("# HELP "):
        helped.add(line.split()[2])
        continue
    if line.startswith("# TYPE "):
        name = line.split()[2]
        assert name in helped, f"# TYPE {name} without a preceding # HELP"
        continue
    assert line_re.match(line), f"malformed exposition line: {line!r}"
    samples += 1
text = "\n".join(lines)
for required in ("stream_requests_submitted", "stream_window_rate_per_sec",
                 "stream_window_p99_us", "stream_error_burn_rate",
                 "stream_shed_pressure", "stream_stage_wait_us",
                 "trace_events_buffered", "serve_requests_completed"):
    assert required in text, f"missing metric {required} in /metrics"

doc = json.load(open(sys.argv[2]))
assert isinstance(doc.get("registries"), list) and doc["registries"], \
    "/vars missing registries array"

health = json.load(open(sys.argv[3]))
assert health.get("status") in ("running", "draining", "drained"), \
    f"unexpected health status {health.get('status')!r}"
for key in ("submitted", "completed", "failed", "shed", "queues"):
    assert key in health, f"/healthz missing {key}"
for queue in ("addresses", "futures"):
    for key in ("size", "capacity", "closed"):
        assert key in health["queues"][queue], \
            f"/healthz queue {queue} missing {key}"
print(f"scrape smoke ok: {samples} exposition samples, "
      f"health status {health['status']!r}")
PY
  else
    grep -q 'stream_window_rate_per_sec' "${dir}/scrape_metrics.prom" &&
      grep -q '"registries"' "${dir}/scrape_vars.json" &&
      grep -q '"status"' "${dir}/scrape_healthz.json" ||
      { echo "ci.sh: scrape smoke responses malformed" >&2; exit 1; }
  fi
}

# JSON-RPC smoke: score_server on ephemeral ports, score a freshly mined
# address over the socket (single call + mixed batch), and assert both the
# JSON-RPC 2.0 response shape and the presence of the net_* series in the
# scraped /metrics exposition.
run_rpc_smoke() {
  local dir="$1"
  echo "=== score_server: json-rpc smoke ==="
  rm -f "${dir}/rpc_smoke.out"
  (cd "${dir}" && ./examples/score_server --seconds 8 \
    --metrics-port 0 > rpc_smoke.out 2>&1) &
  local server_pid=$!

  # The server prints its RPC URL, metrics URL and a scoreable address
  # once the chain is pre-mined and both listeners are bound.
  local addr="" tries=0
  while [[ -z "${addr}" && ${tries} -lt 150 ]]; do
    addr="$(grep -o '== sample_address: 0x[0-9a-fA-F]*' \
            "${dir}/rpc_smoke.out" 2>/dev/null | awk '{print $3}' || true)"
    [[ -z "${addr}" ]] && sleep 0.1 && tries=$((tries + 1))
  done
  local rpc_url metrics_url
  rpc_url="$(grep -o '== rpc: http://127\.0\.0\.1:[0-9]*/' \
             "${dir}/rpc_smoke.out" 2>/dev/null | awk '{print $3}' || true)"
  metrics_url="$(grep -o '== metrics: http://127\.0\.0\.1:[0-9]*/metrics' \
                 "${dir}/rpc_smoke.out" 2>/dev/null | awk '{print $3}' || true)"
  if [[ -z "${addr}" || -z "${rpc_url}" || -z "${metrics_url}" ]]; then
    echo "ci.sh: rpc smoke never printed its endpoints" >&2
    cat "${dir}/rpc_smoke.out" >&2 || true
    kill "${server_pid}" 2>/dev/null || true
    exit 1
  fi

  local single_body batch_body
  single_body='{"jsonrpc":"2.0","id":1,"method":"phook_score","params":["'"${addr}"'"]}'
  batch_body='[{"jsonrpc":"2.0","id":"s","method":"phook_score","params":["'"${addr}"'"]},'
  batch_body+='{"jsonrpc":"2.0","id":"h","method":"phook_health"}]'
  if ! post_url "${rpc_url}" "${single_body}" "${dir}/rpc_single.json" ||
     ! post_url "${rpc_url}" "${batch_body}" "${dir}/rpc_batch.json" ||
     ! fetch_url "${metrics_url}" "${dir}/rpc_metrics.prom"; then
    echo "ci.sh: rpc smoke request failed against ${rpc_url}" >&2
    cat "${dir}/rpc_smoke.out" >&2 || true
    kill "${server_pid}" 2>/dev/null || true
    exit 1
  fi
  if ! wait "${server_pid}"; then
    echo "ci.sh: score_server exited nonzero under the rpc smoke" >&2
    cat "${dir}/rpc_smoke.out" >&2 || true
    exit 1
  fi

  if command -v python3 >/dev/null 2>&1; then
    python3 - "${dir}/rpc_single.json" "${dir}/rpc_batch.json" \
      "${dir}/rpc_metrics.prom" "${addr}" <<'PY'
import json, sys
addr = sys.argv[4]

def check_score(resp, want_id):
    assert resp.get("jsonrpc") == "2.0", f"bad jsonrpc field: {resp!r}"
    assert resp.get("id") == want_id, f"id mismatch: {resp!r}"
    assert "error" not in resp, f"rpc error: {resp!r}"
    res = resp["result"]
    assert res["address"].lower() == addr.lower(), f"wrong address: {res!r}"
    assert res["status"] == "ok", f"score status {res['status']!r}"
    assert 0.0 <= res["probability"] <= 1.0, f"bad probability: {res!r}"
    for key in ("flagged", "cache_hit", "latency_us", "trace_id",
                "stage", "model"):
        assert key in res, f"result missing {key}: {res!r}"
    assert res["stage"] in (0, 1), f"bad cascade stage: {res!r}"

single = json.load(open(sys.argv[1]))
check_score(single, 1)

batch = json.load(open(sys.argv[2]))
assert isinstance(batch, list) and len(batch) == 2, f"bad batch: {batch!r}"
by_id = {r.get("id"): r for r in batch}
check_score(by_id["s"], "s")
health = by_id["h"]["result"]
assert health["status"] == "ok", f"health status {health!r}"
assert health["engine"]["requests_completed"] >= 1, f"no completions: {health!r}"
assert "requests_degraded" in health["engine"], f"no degraded counter: {health!r}"
# score_server serves a two-stage cascade; health must attribute it.
cascade = health["cascade"]
assert cascade["enabled"] is True, f"cascade disabled: {cascade!r}"
assert len(cascade["stages"]) == 2, f"wrong stage count: {cascade!r}"
for stage in cascade["stages"]:
    for key in ("stage", "model", "rows", "escalations", "faults"):
        assert key in stage, f"cascade stage missing {key}: {stage!r}"
assert cascade["stages"][0]["rows"] >= 1, f"stage 0 never scored: {cascade!r}"

text = open(sys.argv[3]).read()
for required in ("net_requests_total", "net_responses_total",
                 "net_connections_active", "net_batch_calls_total",
                 "net_stage_service_us", "net_stage_wait_us",
                 "net_request_total_us"):
    assert required in text, f"missing net metric {required} in /metrics"
print(f"rpc smoke ok: scored {addr} "
      f"(p={single['result']['probability']:.3f}, "
      f"trace {single['result']['trace_id']})")
PY
  else
    grep -q '"result"' "${dir}/rpc_single.json" &&
      grep -q '"result"' "${dir}/rpc_batch.json" &&
      grep -q 'net_requests_total' "${dir}/rpc_metrics.prom" ||
      { echo "ci.sh: rpc smoke responses malformed" >&2; exit 1; }
  fi
}

run_variant release ""
(cd build-ci-release && ./bench/bench_train_parallel)
check_bench_json build-ci-release/BENCH_train.json
(cd build-ci-release && ./bench/bench_extract --smoke)
check_extract_json build-ci-release/BENCH_extract.json
(cd build-ci-release && ./bench/bench_infer --smoke)
check_infer_json build-ci-release/BENCH_infer.json
# Stream smoke: the whole miner -> follower -> load generator -> engine
# pipeline under both arrival scenarios, with the accounting identity and
# the BENCH_stream.json schema machine-checked.
(cd build-ci-release && ./bench/bench_stream --smoke)
check_stream_json build-ci-release/BENCH_stream.json
# Cascade smoke: band sweep over the two-stage scorer; the gate demands a
# band that keeps >= 2x of the heavy model's throughput headroom at
# <= 0.5 pp accuracy loss, plus the disabled / full-band control points.
(cd build-ci-release && ./bench/bench_cascade --smoke)
check_cascade_json build-ci-release/BENCH_cascade.json
(cd build-ci-release && ./bench/bench_serve_throughput 1)
check_prometheus build-ci-release/BENCH_serve_metrics.prom
(cd build-ci-release &&
  PHISHINGHOOK_TRACE=scanner_trace.json ./examples/contract_scanner)
check_trace build-ci-release/scanner_trace.json
# Chaos smoke: the scanner against a 10% fault-injecting explorer must exit
# 0 (no aborted workers, no lost futures) and report per-status counts that
# account for every submission.
(cd build-ci-release && ./examples/contract_scanner --chaos 0.10 \
  | tee chaos_smoke.out >/dev/null)
check_chaos_smoke build-ci-release/chaos_smoke.out
run_scrape_smoke build-ci-release
run_rpc_smoke build-ci-release

run_variant asan address

# TSan cannot be combined with ASan, and slows everything ~10x, so it runs
# only the suites with actual cross-thread state: the serving engine, its
# chaos/fault-injection suite, the cascade suite (worker-count determinism
# and degraded-path accounting), the thread-pool unit tests, the pool-backed
# training determinism suite, the telemetry layer, and the socket/JSON-RPC
# front end (event loop + dispatcher pool under concurrent clients).
run_variant tsan thread "-R test_serve|test_serve_faults|test_cascade|test_thread_pool|test_parallel_determinism|test_obs|test_stream|test_net"

# No-SIMD leg: build with PHISHINGHOOK_SIMD compiled out (and gcc's
# autovectorizers off) and run the fast-vs-legacy equivalence suite. The
# scalar fallbacks must be bit-identical to the vectorized build — this is
# the proof that the SIMD pragmas are an optimization, never a semantic.
echo "=== nosimd: configure ==="
cmake -B build-ci-nosimd -S . -DCMAKE_BUILD_TYPE=Release \
      -DPHISHINGHOOK_NO_SIMD=ON >/dev/null
echo "=== nosimd: build ==="
cmake --build build-ci-nosimd -j "${JOBS}" --target test_features_fast
echo "=== nosimd: test_features_fast ==="
(cd build-ci-nosimd && ./tests/test_features_fast)

echo "=== ci.sh: all variants green ==="
