# Empty compiler generated dependencies file for test_gbdt_binner.
# This may be replaced when dependencies are built.
