file(REMOVE_RECURSE
  "CMakeFiles/test_gbdt_binner.dir/test_gbdt_binner.cpp.o"
  "CMakeFiles/test_gbdt_binner.dir/test_gbdt_binner.cpp.o.d"
  "test_gbdt_binner"
  "test_gbdt_binner.pdb"
  "test_gbdt_binner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gbdt_binner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
