file(REMOVE_RECURSE
  "CMakeFiles/test_env_logging.dir/test_env_logging.cpp.o"
  "CMakeFiles/test_env_logging.dir/test_env_logging.cpp.o.d"
  "test_env_logging"
  "test_env_logging.pdb"
  "test_env_logging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
