file(REMOVE_RECURSE
  "CMakeFiles/test_neural_models.dir/test_neural_models.cpp.o"
  "CMakeFiles/test_neural_models.dir/test_neural_models.cpp.o.d"
  "test_neural_models"
  "test_neural_models.pdb"
  "test_neural_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neural_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
