# Empty compiler generated dependencies file for test_neural_models.
# This may be replaced when dependencies are built.
