# Empty compiler generated dependencies file for test_shap.
# This may be replaced when dependencies are built.
