file(REMOVE_RECURSE
  "CMakeFiles/test_shap.dir/test_shap.cpp.o"
  "CMakeFiles/test_shap.dir/test_shap.cpp.o.d"
  "test_shap"
  "test_shap.pdb"
  "test_shap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
