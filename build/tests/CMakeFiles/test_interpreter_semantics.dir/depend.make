# Empty dependencies file for test_interpreter_semantics.
# This may be replaced when dependencies are built.
