file(REMOVE_RECURSE
  "CMakeFiles/test_interpreter_semantics.dir/test_interpreter_semantics.cpp.o"
  "CMakeFiles/test_interpreter_semantics.dir/test_interpreter_semantics.cpp.o.d"
  "test_interpreter_semantics"
  "test_interpreter_semantics.pdb"
  "test_interpreter_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpreter_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
