# Empty compiler generated dependencies file for test_uint256.
# This may be replaced when dependencies are built.
