# Empty dependencies file for test_keccak_address.
# This may be replaced when dependencies are built.
