file(REMOVE_RECURSE
  "CMakeFiles/test_keccak_address.dir/test_keccak_address.cpp.o"
  "CMakeFiles/test_keccak_address.dir/test_keccak_address.cpp.o.d"
  "test_keccak_address"
  "test_keccak_address.pdb"
  "test_keccak_address[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keccak_address.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
