file(REMOVE_RECURSE
  "CMakeFiles/test_hyper_search.dir/test_hyper_search.cpp.o"
  "CMakeFiles/test_hyper_search.dir/test_hyper_search.cpp.o.d"
  "test_hyper_search"
  "test_hyper_search.pdb"
  "test_hyper_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyper_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
