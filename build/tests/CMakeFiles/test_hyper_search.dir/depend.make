# Empty dependencies file for test_hyper_search.
# This may be replaced when dependencies are built.
