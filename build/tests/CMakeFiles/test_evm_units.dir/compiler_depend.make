# Empty compiler generated dependencies file for test_evm_units.
# This may be replaced when dependencies are built.
