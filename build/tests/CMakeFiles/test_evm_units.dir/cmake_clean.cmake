file(REMOVE_RECURSE
  "CMakeFiles/test_evm_units.dir/test_evm_units.cpp.o"
  "CMakeFiles/test_evm_units.dir/test_evm_units.cpp.o.d"
  "test_evm_units"
  "test_evm_units.pdb"
  "test_evm_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evm_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
