# Empty compiler generated dependencies file for test_classical_models.
# This may be replaced when dependencies are built.
