file(REMOVE_RECURSE
  "CMakeFiles/test_classical_models.dir/test_classical_models.cpp.o"
  "CMakeFiles/test_classical_models.dir/test_classical_models.cpp.o.d"
  "test_classical_models"
  "test_classical_models.pdb"
  "test_classical_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classical_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
