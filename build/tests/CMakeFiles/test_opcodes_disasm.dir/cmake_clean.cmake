file(REMOVE_RECURSE
  "CMakeFiles/test_opcodes_disasm.dir/test_opcodes_disasm.cpp.o"
  "CMakeFiles/test_opcodes_disasm.dir/test_opcodes_disasm.cpp.o.d"
  "test_opcodes_disasm"
  "test_opcodes_disasm.pdb"
  "test_opcodes_disasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opcodes_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
