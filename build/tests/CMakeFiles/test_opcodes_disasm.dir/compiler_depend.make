# Empty compiler generated dependencies file for test_opcodes_disasm.
# This may be replaced when dependencies are built.
