# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_uint256[1]_include.cmake")
include("/root/repo/build/tests/test_keccak_address[1]_include.cmake")
include("/root/repo/build/tests/test_opcodes_disasm[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter[1]_include.cmake")
include("/root/repo/build/tests/test_chain[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_ml_core[1]_include.cmake")
include("/root/repo/build/tests/test_classical_models[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_shap[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_neural_models[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_hyper_search[1]_include.cmake")
include("/root/repo/build/tests/test_evm_units[1]_include.cmake")
include("/root/repo/build/tests/test_env_logging[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_gbdt_binner[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
