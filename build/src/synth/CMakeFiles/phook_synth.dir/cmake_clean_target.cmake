file(REMOVE_RECURSE
  "libphook_synth.a"
)
