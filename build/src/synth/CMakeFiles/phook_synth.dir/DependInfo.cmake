
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/assembler.cpp" "src/synth/CMakeFiles/phook_synth.dir/assembler.cpp.o" "gcc" "src/synth/CMakeFiles/phook_synth.dir/assembler.cpp.o.d"
  "/root/repo/src/synth/contract_synthesizer.cpp" "src/synth/CMakeFiles/phook_synth.dir/contract_synthesizer.cpp.o" "gcc" "src/synth/CMakeFiles/phook_synth.dir/contract_synthesizer.cpp.o.d"
  "/root/repo/src/synth/dataset_builder.cpp" "src/synth/CMakeFiles/phook_synth.dir/dataset_builder.cpp.o" "gcc" "src/synth/CMakeFiles/phook_synth.dir/dataset_builder.cpp.o.d"
  "/root/repo/src/synth/patterns.cpp" "src/synth/CMakeFiles/phook_synth.dir/patterns.cpp.o" "gcc" "src/synth/CMakeFiles/phook_synth.dir/patterns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/phook_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/phook_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/phook_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
