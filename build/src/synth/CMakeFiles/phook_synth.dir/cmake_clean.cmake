file(REMOVE_RECURSE
  "CMakeFiles/phook_synth.dir/assembler.cpp.o"
  "CMakeFiles/phook_synth.dir/assembler.cpp.o.d"
  "CMakeFiles/phook_synth.dir/contract_synthesizer.cpp.o"
  "CMakeFiles/phook_synth.dir/contract_synthesizer.cpp.o.d"
  "CMakeFiles/phook_synth.dir/dataset_builder.cpp.o"
  "CMakeFiles/phook_synth.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/phook_synth.dir/patterns.cpp.o"
  "CMakeFiles/phook_synth.dir/patterns.cpp.o.d"
  "libphook_synth.a"
  "libphook_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phook_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
