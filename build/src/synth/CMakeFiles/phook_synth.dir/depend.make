# Empty dependencies file for phook_synth.
# This may be replaced when dependencies are built.
