file(REMOVE_RECURSE
  "libphook_chain.a"
)
