file(REMOVE_RECURSE
  "CMakeFiles/phook_chain.dir/chain_store.cpp.o"
  "CMakeFiles/phook_chain.dir/chain_store.cpp.o.d"
  "CMakeFiles/phook_chain.dir/explorer.cpp.o"
  "CMakeFiles/phook_chain.dir/explorer.cpp.o.d"
  "CMakeFiles/phook_chain.dir/state.cpp.o"
  "CMakeFiles/phook_chain.dir/state.cpp.o.d"
  "libphook_chain.a"
  "libphook_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phook_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
