# Empty compiler generated dependencies file for phook_chain.
# This may be replaced when dependencies are built.
