
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/chain_store.cpp" "src/chain/CMakeFiles/phook_chain.dir/chain_store.cpp.o" "gcc" "src/chain/CMakeFiles/phook_chain.dir/chain_store.cpp.o.d"
  "/root/repo/src/chain/explorer.cpp" "src/chain/CMakeFiles/phook_chain.dir/explorer.cpp.o" "gcc" "src/chain/CMakeFiles/phook_chain.dir/explorer.cpp.o.d"
  "/root/repo/src/chain/state.cpp" "src/chain/CMakeFiles/phook_chain.dir/state.cpp.o" "gcc" "src/chain/CMakeFiles/phook_chain.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evm/CMakeFiles/phook_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/phook_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
