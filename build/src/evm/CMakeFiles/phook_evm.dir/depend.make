# Empty dependencies file for phook_evm.
# This may be replaced when dependencies are built.
