
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evm/address.cpp" "src/evm/CMakeFiles/phook_evm.dir/address.cpp.o" "gcc" "src/evm/CMakeFiles/phook_evm.dir/address.cpp.o.d"
  "/root/repo/src/evm/bytecode.cpp" "src/evm/CMakeFiles/phook_evm.dir/bytecode.cpp.o" "gcc" "src/evm/CMakeFiles/phook_evm.dir/bytecode.cpp.o.d"
  "/root/repo/src/evm/disassembler.cpp" "src/evm/CMakeFiles/phook_evm.dir/disassembler.cpp.o" "gcc" "src/evm/CMakeFiles/phook_evm.dir/disassembler.cpp.o.d"
  "/root/repo/src/evm/interpreter.cpp" "src/evm/CMakeFiles/phook_evm.dir/interpreter.cpp.o" "gcc" "src/evm/CMakeFiles/phook_evm.dir/interpreter.cpp.o.d"
  "/root/repo/src/evm/keccak.cpp" "src/evm/CMakeFiles/phook_evm.dir/keccak.cpp.o" "gcc" "src/evm/CMakeFiles/phook_evm.dir/keccak.cpp.o.d"
  "/root/repo/src/evm/memory.cpp" "src/evm/CMakeFiles/phook_evm.dir/memory.cpp.o" "gcc" "src/evm/CMakeFiles/phook_evm.dir/memory.cpp.o.d"
  "/root/repo/src/evm/opcodes.cpp" "src/evm/CMakeFiles/phook_evm.dir/opcodes.cpp.o" "gcc" "src/evm/CMakeFiles/phook_evm.dir/opcodes.cpp.o.d"
  "/root/repo/src/evm/trace.cpp" "src/evm/CMakeFiles/phook_evm.dir/trace.cpp.o" "gcc" "src/evm/CMakeFiles/phook_evm.dir/trace.cpp.o.d"
  "/root/repo/src/evm/uint256.cpp" "src/evm/CMakeFiles/phook_evm.dir/uint256.cpp.o" "gcc" "src/evm/CMakeFiles/phook_evm.dir/uint256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/phook_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
