file(REMOVE_RECURSE
  "CMakeFiles/phook_evm.dir/address.cpp.o"
  "CMakeFiles/phook_evm.dir/address.cpp.o.d"
  "CMakeFiles/phook_evm.dir/bytecode.cpp.o"
  "CMakeFiles/phook_evm.dir/bytecode.cpp.o.d"
  "CMakeFiles/phook_evm.dir/disassembler.cpp.o"
  "CMakeFiles/phook_evm.dir/disassembler.cpp.o.d"
  "CMakeFiles/phook_evm.dir/interpreter.cpp.o"
  "CMakeFiles/phook_evm.dir/interpreter.cpp.o.d"
  "CMakeFiles/phook_evm.dir/keccak.cpp.o"
  "CMakeFiles/phook_evm.dir/keccak.cpp.o.d"
  "CMakeFiles/phook_evm.dir/memory.cpp.o"
  "CMakeFiles/phook_evm.dir/memory.cpp.o.d"
  "CMakeFiles/phook_evm.dir/opcodes.cpp.o"
  "CMakeFiles/phook_evm.dir/opcodes.cpp.o.d"
  "CMakeFiles/phook_evm.dir/trace.cpp.o"
  "CMakeFiles/phook_evm.dir/trace.cpp.o.d"
  "CMakeFiles/phook_evm.dir/uint256.cpp.o"
  "CMakeFiles/phook_evm.dir/uint256.cpp.o.d"
  "libphook_evm.a"
  "libphook_evm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phook_evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
