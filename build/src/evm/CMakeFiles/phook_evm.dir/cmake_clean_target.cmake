file(REMOVE_RECURSE
  "libphook_evm.a"
)
