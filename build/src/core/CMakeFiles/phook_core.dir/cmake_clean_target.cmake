file(REMOVE_RECURSE
  "libphook_core.a"
)
