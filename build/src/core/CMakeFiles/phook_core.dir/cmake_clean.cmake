file(REMOVE_RECURSE
  "CMakeFiles/phook_core.dir/bdm.cpp.o"
  "CMakeFiles/phook_core.dir/bdm.cpp.o.d"
  "CMakeFiles/phook_core.dir/bem.cpp.o"
  "CMakeFiles/phook_core.dir/bem.cpp.o.d"
  "CMakeFiles/phook_core.dir/experiment.cpp.o"
  "CMakeFiles/phook_core.dir/experiment.cpp.o.d"
  "CMakeFiles/phook_core.dir/features.cpp.o"
  "CMakeFiles/phook_core.dir/features.cpp.o.d"
  "CMakeFiles/phook_core.dir/model_registry.cpp.o"
  "CMakeFiles/phook_core.dir/model_registry.cpp.o.d"
  "CMakeFiles/phook_core.dir/pam.cpp.o"
  "CMakeFiles/phook_core.dir/pam.cpp.o.d"
  "CMakeFiles/phook_core.dir/report.cpp.o"
  "CMakeFiles/phook_core.dir/report.cpp.o.d"
  "libphook_core.a"
  "libphook_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phook_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
