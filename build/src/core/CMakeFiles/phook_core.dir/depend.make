# Empty dependencies file for phook_core.
# This may be replaced when dependencies are built.
