# Empty compiler generated dependencies file for phook_ml.
# This may be replaced when dependencies are built.
