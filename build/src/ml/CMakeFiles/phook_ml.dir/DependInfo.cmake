
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/catboost.cpp" "src/ml/CMakeFiles/phook_ml.dir/catboost.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/catboost.cpp.o.d"
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/phook_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/phook_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gbdt_common.cpp" "src/ml/CMakeFiles/phook_ml.dir/gbdt_common.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/gbdt_common.cpp.o.d"
  "/root/repo/src/ml/gradient_boosting.cpp" "src/ml/CMakeFiles/phook_ml.dir/gradient_boosting.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/gradient_boosting.cpp.o.d"
  "/root/repo/src/ml/hyper_search.cpp" "src/ml/CMakeFiles/phook_ml.dir/hyper_search.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/hyper_search.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/phook_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/lightgbm.cpp" "src/ml/CMakeFiles/phook_ml.dir/lightgbm.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/lightgbm.cpp.o.d"
  "/root/repo/src/ml/logistic_regression.cpp" "src/ml/CMakeFiles/phook_ml.dir/logistic_regression.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/logistic_regression.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/phook_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/phook_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/models/eca_efficientnet.cpp" "src/ml/CMakeFiles/phook_ml.dir/models/eca_efficientnet.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/models/eca_efficientnet.cpp.o.d"
  "/root/repo/src/ml/models/escort.cpp" "src/ml/CMakeFiles/phook_ml.dir/models/escort.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/models/escort.cpp.o.d"
  "/root/repo/src/ml/models/scsguard.cpp" "src/ml/CMakeFiles/phook_ml.dir/models/scsguard.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/models/scsguard.cpp.o.d"
  "/root/repo/src/ml/models/sequence_model.cpp" "src/ml/CMakeFiles/phook_ml.dir/models/sequence_model.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/models/sequence_model.cpp.o.d"
  "/root/repo/src/ml/models/transformer_classifier.cpp" "src/ml/CMakeFiles/phook_ml.dir/models/transformer_classifier.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/models/transformer_classifier.cpp.o.d"
  "/root/repo/src/ml/models/vit.cpp" "src/ml/CMakeFiles/phook_ml.dir/models/vit.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/models/vit.cpp.o.d"
  "/root/repo/src/ml/nn/activations.cpp" "src/ml/CMakeFiles/phook_ml.dir/nn/activations.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/nn/activations.cpp.o.d"
  "/root/repo/src/ml/nn/attention.cpp" "src/ml/CMakeFiles/phook_ml.dir/nn/attention.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/nn/attention.cpp.o.d"
  "/root/repo/src/ml/nn/conv.cpp" "src/ml/CMakeFiles/phook_ml.dir/nn/conv.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/nn/conv.cpp.o.d"
  "/root/repo/src/ml/nn/gru.cpp" "src/ml/CMakeFiles/phook_ml.dir/nn/gru.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/nn/gru.cpp.o.d"
  "/root/repo/src/ml/nn/linear.cpp" "src/ml/CMakeFiles/phook_ml.dir/nn/linear.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/nn/linear.cpp.o.d"
  "/root/repo/src/ml/nn/loss.cpp" "src/ml/CMakeFiles/phook_ml.dir/nn/loss.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/nn/loss.cpp.o.d"
  "/root/repo/src/ml/nn/tensor.cpp" "src/ml/CMakeFiles/phook_ml.dir/nn/tensor.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/nn/tensor.cpp.o.d"
  "/root/repo/src/ml/nn/transformer.cpp" "src/ml/CMakeFiles/phook_ml.dir/nn/transformer.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/nn/transformer.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/phook_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/shap.cpp" "src/ml/CMakeFiles/phook_ml.dir/shap.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/shap.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/phook_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/phook_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/phook_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
