file(REMOVE_RECURSE
  "libphook_ml.a"
)
