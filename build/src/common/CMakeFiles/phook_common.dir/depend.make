# Empty dependencies file for phook_common.
# This may be replaced when dependencies are built.
