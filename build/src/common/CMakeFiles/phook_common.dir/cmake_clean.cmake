file(REMOVE_RECURSE
  "CMakeFiles/phook_common.dir/csv.cpp.o"
  "CMakeFiles/phook_common.dir/csv.cpp.o.d"
  "CMakeFiles/phook_common.dir/env.cpp.o"
  "CMakeFiles/phook_common.dir/env.cpp.o.d"
  "CMakeFiles/phook_common.dir/hex.cpp.o"
  "CMakeFiles/phook_common.dir/hex.cpp.o.d"
  "CMakeFiles/phook_common.dir/logging.cpp.o"
  "CMakeFiles/phook_common.dir/logging.cpp.o.d"
  "CMakeFiles/phook_common.dir/rng.cpp.o"
  "CMakeFiles/phook_common.dir/rng.cpp.o.d"
  "CMakeFiles/phook_common.dir/strings.cpp.o"
  "CMakeFiles/phook_common.dir/strings.cpp.o.d"
  "libphook_common.a"
  "libphook_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phook_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
