file(REMOVE_RECURSE
  "libphook_common.a"
)
