file(REMOVE_RECURSE
  "CMakeFiles/phook_stats.dir/cliffs_delta.cpp.o"
  "CMakeFiles/phook_stats.dir/cliffs_delta.cpp.o.d"
  "CMakeFiles/phook_stats.dir/distributions.cpp.o"
  "CMakeFiles/phook_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/phook_stats.dir/dunn.cpp.o"
  "CMakeFiles/phook_stats.dir/dunn.cpp.o.d"
  "CMakeFiles/phook_stats.dir/friedman.cpp.o"
  "CMakeFiles/phook_stats.dir/friedman.cpp.o.d"
  "CMakeFiles/phook_stats.dir/holm.cpp.o"
  "CMakeFiles/phook_stats.dir/holm.cpp.o.d"
  "CMakeFiles/phook_stats.dir/kruskal_wallis.cpp.o"
  "CMakeFiles/phook_stats.dir/kruskal_wallis.cpp.o.d"
  "CMakeFiles/phook_stats.dir/ranks.cpp.o"
  "CMakeFiles/phook_stats.dir/ranks.cpp.o.d"
  "CMakeFiles/phook_stats.dir/shapiro_wilk.cpp.o"
  "CMakeFiles/phook_stats.dir/shapiro_wilk.cpp.o.d"
  "CMakeFiles/phook_stats.dir/wilcoxon.cpp.o"
  "CMakeFiles/phook_stats.dir/wilcoxon.cpp.o.d"
  "libphook_stats.a"
  "libphook_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phook_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
