
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cliffs_delta.cpp" "src/stats/CMakeFiles/phook_stats.dir/cliffs_delta.cpp.o" "gcc" "src/stats/CMakeFiles/phook_stats.dir/cliffs_delta.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/phook_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/phook_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/dunn.cpp" "src/stats/CMakeFiles/phook_stats.dir/dunn.cpp.o" "gcc" "src/stats/CMakeFiles/phook_stats.dir/dunn.cpp.o.d"
  "/root/repo/src/stats/friedman.cpp" "src/stats/CMakeFiles/phook_stats.dir/friedman.cpp.o" "gcc" "src/stats/CMakeFiles/phook_stats.dir/friedman.cpp.o.d"
  "/root/repo/src/stats/holm.cpp" "src/stats/CMakeFiles/phook_stats.dir/holm.cpp.o" "gcc" "src/stats/CMakeFiles/phook_stats.dir/holm.cpp.o.d"
  "/root/repo/src/stats/kruskal_wallis.cpp" "src/stats/CMakeFiles/phook_stats.dir/kruskal_wallis.cpp.o" "gcc" "src/stats/CMakeFiles/phook_stats.dir/kruskal_wallis.cpp.o.d"
  "/root/repo/src/stats/ranks.cpp" "src/stats/CMakeFiles/phook_stats.dir/ranks.cpp.o" "gcc" "src/stats/CMakeFiles/phook_stats.dir/ranks.cpp.o.d"
  "/root/repo/src/stats/shapiro_wilk.cpp" "src/stats/CMakeFiles/phook_stats.dir/shapiro_wilk.cpp.o" "gcc" "src/stats/CMakeFiles/phook_stats.dir/shapiro_wilk.cpp.o.d"
  "/root/repo/src/stats/wilcoxon.cpp" "src/stats/CMakeFiles/phook_stats.dir/wilcoxon.cpp.o" "gcc" "src/stats/CMakeFiles/phook_stats.dir/wilcoxon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/phook_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
