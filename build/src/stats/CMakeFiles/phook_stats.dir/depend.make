# Empty dependencies file for phook_stats.
# This may be replaced when dependencies are built.
