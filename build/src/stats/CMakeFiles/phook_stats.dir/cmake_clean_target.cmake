file(REMOVE_RECURSE
  "libphook_stats.a"
)
