# Empty dependencies file for dataset_builder_tool.
# This may be replaced when dependencies are built.
