file(REMOVE_RECURSE
  "CMakeFiles/dataset_builder_tool.dir/dataset_builder_tool.cpp.o"
  "CMakeFiles/dataset_builder_tool.dir/dataset_builder_tool.cpp.o.d"
  "dataset_builder_tool"
  "dataset_builder_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_builder_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
