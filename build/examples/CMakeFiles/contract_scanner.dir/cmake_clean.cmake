file(REMOVE_RECURSE
  "CMakeFiles/contract_scanner.dir/contract_scanner.cpp.o"
  "CMakeFiles/contract_scanner.dir/contract_scanner.cpp.o.d"
  "contract_scanner"
  "contract_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
