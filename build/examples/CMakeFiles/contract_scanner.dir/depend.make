# Empty dependencies file for contract_scanner.
# This may be replaced when dependencies are built.
