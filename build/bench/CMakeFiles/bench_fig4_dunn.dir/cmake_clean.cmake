file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_dunn.dir/bench_fig4_dunn.cpp.o"
  "CMakeFiles/bench_fig4_dunn.dir/bench_fig4_dunn.cpp.o.d"
  "bench_fig4_dunn"
  "bench_fig4_dunn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_dunn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
