file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_kruskal.dir/bench_table3_kruskal.cpp.o"
  "CMakeFiles/bench_table3_kruskal.dir/bench_table3_kruskal.cpp.o.d"
  "bench_table3_kruskal"
  "bench_table3_kruskal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_kruskal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
