# Empty dependencies file for bench_table3_kruskal.
# This may be replaced when dependencies are built.
