file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_time_resistance.dir/bench_fig8_time_resistance.cpp.o"
  "CMakeFiles/bench_fig8_time_resistance.dir/bench_fig8_time_resistance.cpp.o.d"
  "bench_fig8_time_resistance"
  "bench_fig8_time_resistance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_time_resistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
