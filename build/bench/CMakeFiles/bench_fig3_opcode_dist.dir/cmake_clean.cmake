file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_opcode_dist.dir/bench_fig3_opcode_dist.cpp.o"
  "CMakeFiles/bench_fig3_opcode_dist.dir/bench_fig3_opcode_dist.cpp.o.d"
  "bench_fig3_opcode_dist"
  "bench_fig3_opcode_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_opcode_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
