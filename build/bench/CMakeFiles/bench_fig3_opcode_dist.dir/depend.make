# Empty dependencies file for bench_fig3_opcode_dist.
# This may be replaced when dependencies are built.
