file(REMOVE_RECURSE
  "CMakeFiles/phook_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/phook_bench_common.dir/bench_common.cpp.o.d"
  "libphook_bench_common.a"
  "libphook_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phook_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
