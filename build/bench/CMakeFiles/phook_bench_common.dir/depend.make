# Empty dependencies file for phook_bench_common.
# This may be replaced when dependencies are built.
