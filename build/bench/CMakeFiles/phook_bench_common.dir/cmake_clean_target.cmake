file(REMOVE_RECURSE
  "libphook_bench_common.a"
)
