file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_shap.dir/bench_fig9_shap.cpp.o"
  "CMakeFiles/bench_fig9_shap.dir/bench_fig9_shap.cpp.o.d"
  "bench_fig9_shap"
  "bench_fig9_shap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
