file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cdd.dir/bench_fig6_cdd.cpp.o"
  "CMakeFiles/bench_fig6_cdd.dir/bench_fig6_cdd.cpp.o.d"
  "bench_fig6_cdd"
  "bench_fig6_cdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
