# Empty dependencies file for bench_table1_opcodes.
# This may be replaced when dependencies are built.
