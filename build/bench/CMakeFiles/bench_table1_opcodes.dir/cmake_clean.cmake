file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_opcodes.dir/bench_table1_opcodes.cpp.o"
  "CMakeFiles/bench_table1_opcodes.dir/bench_table1_opcodes.cpp.o.d"
  "bench_table1_opcodes"
  "bench_table1_opcodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_opcodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
