# Empty dependencies file for bench_fig2_dataset.
# This may be replaced when dependencies are built.
