// Neural models (Vision / Language / VDM): each must learn an easy
// synthetic task at tiny scale, and honor its structural contract
// (windowing variants, ESCORT's frozen-transfer behaviour).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/models/eca_efficientnet.hpp"
#include "ml/models/escort.hpp"
#include "ml/models/scsguard.hpp"
#include "ml/models/transformer_classifier.hpp"
#include "ml/models/vit.hpp"

namespace phishinghook::ml::models {
namespace {

using common::Rng;

/// Token-sequence task: class 1 sequences contain token 7 often, class 0
/// never. Trivially learnable by any sequence model.
struct SequenceTask {
  std::vector<TokenSequence> train, test;
  std::vector<int> train_y, test_y;
};

SequenceTask make_sequence_task(std::size_t n, std::size_t len,
                                std::uint64_t seed, std::size_t vocab = 32) {
  Rng rng(seed);
  SequenceTask task;
  auto gen = [&](int label) {
    TokenSequence seq(len);
    for (auto& token : seq) {
      token = 1 + rng.next_below(vocab - 2);
      if (token == 7) token = 8;
    }
    if (label == 1) {
      for (std::size_t i = 0; i < len; i += 3) seq[i] = 7;
    }
    return seq;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    task.train.push_back(gen(label));
    task.train_y.push_back(label);
  }
  for (std::size_t i = 0; i < n / 2; ++i) {
    const int label = static_cast<int>(i % 2);
    task.test.push_back(gen(label));
    task.test_y.push_back(label);
  }
  return task;
}

double sequence_accuracy(SequenceClassifierModel& model, SequenceTask& task) {
  model.fit(task.train, task.train_y);
  const auto probs = model.predict_proba(task.test);
  return compute_metrics(task.test_y, threshold_predictions(probs)).accuracy;
}

SequenceModelConfig tiny_config(std::uint64_t seed) {
  SequenceModelConfig config;
  config.vocab = 32;
  config.dim = 16;
  config.heads = 2;
  config.layers = 1;
  config.max_len = 24;
  config.epochs = 6;
  config.seed = seed;
  config.learning_rate = 5e-3F;
  return config;
}

TEST(ScsGuard, LearnsTokenMarkerTask) {
  auto task = make_sequence_task(60, 24, 1);
  ScsGuardModel model(tiny_config(11));
  EXPECT_GE(sequence_accuracy(model, task), 0.85);
}

TEST(Gpt2, AlphaLearnsTokenMarkerTask) {
  auto task = make_sequence_task(60, 24, 2);
  auto config = gpt2_config(tiny_config(12), /*beta=*/false);
  config.pretext_epochs = 1;
  TransformerClassifier model(config, "GPT-2 test");
  EXPECT_GE(sequence_accuracy(model, task), 0.85);
}

TEST(T5, AlphaLearnsTokenMarkerTask) {
  auto task = make_sequence_task(60, 24, 3);
  auto config = t5_config(tiny_config(13), /*beta=*/false);
  config.pretext_epochs = 1;
  TransformerClassifier model(config, "T5 test");
  EXPECT_GE(sequence_accuracy(model, task), 0.85);
}

TEST(Gpt2, BetaSeesBeyondTheFirstWindow) {
  // The marker only appears *after* position max_len: alpha (truncating)
  // cannot see it; beta (sliding windows) can.
  Rng rng(4);
  const std::size_t len = 64;
  auto make = [&](int label) {
    TokenSequence seq(len);
    for (auto& t : seq) {
      t = 1 + rng.next_below(30);
      if (t == 7) t = 8;
    }
    if (label == 1) {
      for (std::size_t i = 40; i < len; i += 2) seq[i] = 7;
    }
    return seq;
  };
  std::vector<TokenSequence> train, test;
  std::vector<int> train_y, test_y;
  for (int i = 0; i < 80; ++i) {
    train.push_back(make(i % 2));
    train_y.push_back(i % 2);
  }
  for (int i = 0; i < 40; ++i) {
    test.push_back(make(i % 2));
    test_y.push_back(i % 2);
  }

  SequenceModelConfig base = tiny_config(14);
  base.max_len = 24;
  base.epochs = 8;

  auto alpha_config = gpt2_config(base, false);
  alpha_config.pretext_epochs = 0;
  TransformerClassifier alpha(alpha_config, "alpha");
  alpha.fit(train, train_y);
  const double alpha_acc =
      compute_metrics(test_y, threshold_predictions(alpha.predict_proba(test)))
          .accuracy;

  auto beta_config = gpt2_config(base, true);
  beta_config.pretext_epochs = 0;
  TransformerClassifier beta(beta_config, "beta");
  beta.fit(train, train_y);
  const double beta_acc =
      compute_metrics(test_y, threshold_predictions(beta.predict_proba(test)))
          .accuracy;

  EXPECT_LE(alpha_acc, 0.65);  // marker invisible after truncation
  EXPECT_GE(beta_acc, 0.8);
}

TEST(MakeWindows, AlphaTruncatesBetaCovers) {
  TokenSequence tokens(100);
  for (std::size_t i = 0; i < tokens.size(); ++i) tokens[i] = i;
  const auto alpha = make_windows(tokens, 32, false);
  ASSERT_EQ(alpha.size(), 1u);
  EXPECT_EQ(alpha[0].size(), 32u);

  const auto beta = make_windows(tokens, 32, true);
  EXPECT_GT(beta.size(), 1u);
  EXPECT_EQ(beta.back().back(), 99u);  // the tail is covered
  // Windows never exceed max_len.
  for (const auto& window : beta) EXPECT_LE(window.size(), 32u);

  // Empty input yields one pad window.
  const auto empty = make_windows({}, 32, true);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].size(), 1u);
}

/// Image task: class 1 has a bright square in the top-left corner.
struct ImageTask {
  std::vector<nn::Tensor> train, test;
  std::vector<int> train_y, test_y;
};

ImageTask make_image_task(std::size_t n, std::size_t side, std::uint64_t seed) {
  Rng rng(seed);
  ImageTask task;
  auto gen = [&](int label) {
    nn::Tensor image({3, side, side});
    for (std::size_t i = 0; i < image.size(); ++i) {
      image[i] = static_cast<float>(rng.next_double()) * 0.3F;
    }
    if (label == 1) {
      for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t h = 0; h < side / 2; ++h) {
          for (std::size_t w = 0; w < side / 2; ++w) {
            image.at3(c, h, w) = 0.9F;
          }
        }
      }
    }
    return image;
  };
  for (std::size_t i = 0; i < n; ++i) {
    task.train.push_back(gen(static_cast<int>(i % 2)));
    task.train_y.push_back(static_cast<int>(i % 2));
  }
  for (std::size_t i = 0; i < n / 2; ++i) {
    task.test.push_back(gen(static_cast<int>(i % 2)));
    task.test_y.push_back(static_cast<int>(i % 2));
  }
  return task;
}

TEST(Vit, LearnsBrightCornerTask) {
  auto task = make_image_task(60, 8, 5);
  VitConfig config;
  config.base.image_side = 8;
  config.base.epochs = 20;
  config.base.learning_rate = 5e-3F;
  config.patch = 4;
  config.dim = 16;
  config.heads = 2;
  config.layers = 1;
  VitModel model(config);
  model.fit(task.train, task.train_y);
  const auto probs = model.predict_proba(task.test);
  EXPECT_GE(
      compute_metrics(task.test_y, threshold_predictions(probs)).accuracy,
      0.9);
}

TEST(Vit, RejectsIndivisiblePatch) {
  VitConfig config;
  config.base.image_side = 10;
  config.patch = 4;
  EXPECT_THROW(VitModel{config}, InvalidArgument);
}

TEST(EcaEfficientNet, LearnsBrightCornerTask) {
  auto task = make_image_task(60, 8, 6);
  EcaEfficientNetConfig config;
  config.base.image_side = 8;
  config.base.epochs = 8;
  EcaEfficientNetModel model(config);
  model.fit(task.train, task.train_y);
  const auto probs = model.predict_proba(task.test);
  EXPECT_GE(
      compute_metrics(task.test_y, threshold_predictions(probs)).accuracy,
      0.9);
}

TEST(Escort, VulnerabilityClassesFromBytecodeStructure) {
  EXPECT_EQ(EscortModel::vulnerability_class({0xF4, 0x01}), 0);  // delegatecall
  EXPECT_EQ(EscortModel::vulnerability_class({0xFF, 0x60}), 2);  // selfdestruct
  TokenSequence arithmetic_heavy(100, 0x01);
  EXPECT_EQ(EscortModel::vulnerability_class(arithmetic_heavy), 1);
  EXPECT_EQ(EscortModel::vulnerability_class({0x60, 0x60, 0x60}), 3);
}

TEST(Escort, TransferModeTrainsOnlyTheBranch) {
  // After the two fit phases the model must produce valid probabilities and
  // *some* decision function; its accuracy on a phishing-orthogonal task is
  // expected to be weak (the paper's negative result) — asserted loosely
  // here, precisely in the Table II bench.
  auto task = make_sequence_task(40, 24, 7, /*vocab=*/250);
  EscortConfig config;
  config.max_len = 24;
  config.pretrain_epochs = 2;
  config.transfer_epochs = 2;
  EscortModel model(config);
  model.fit(task.train, task.train_y);
  const auto probs = model.predict_proba(task.test);
  ASSERT_EQ(probs.size(), task.test.size());
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace phishinghook::ml::models
