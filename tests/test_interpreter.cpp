// Interpreter semantics: hand-assembled programs executed against the
// chain's world state (which implements the Host interface).
#include <gtest/gtest.h>

#include <functional>

#include "chain/state.hpp"
#include "evm/interpreter.hpp"
#include "synth/assembler.hpp"

namespace phishinghook::evm {
namespace {

using chain::State;
using synth::Assembler;

class InterpreterTest : public ::testing::Test {
 protected:
  ExecutionResult run(const Bytecode& code, std::vector<std::uint8_t> data = {},
                      std::uint64_t gas = 1'000'000) {
    Message msg;
    msg.caller = caller_;
    msg.code_address = contract_;
    msg.storage_address = contract_;
    msg.origin = caller_;
    msg.data = std::move(data);
    msg.gas = gas;
    state_.set_code(contract_, code);
    const Interpreter interpreter(block_);
    return interpreter.execute(msg, code, state_, 0);
  }

  /// Runs a program expected to RETURN one 32-byte word.
  U256 run_for_word(const Bytecode& code) {
    const ExecutionResult result = run(code);
    EXPECT_EQ(result.status, Status::kSuccess) << status_name(result.status);
    EXPECT_EQ(result.output.size(), 32u);
    return U256::from_bytes_be(result.output);
  }

  /// Assembles "<compute leaving 1 word> then return it".
  static Bytecode returning(const std::function<void(Assembler&)>& body) {
    Assembler a;
    body(a);
    a.push(0x00).op(Op::kMstore);           // store result at 0
    a.push(0x20).push(0x00).op(Op::kReturn);
    return a.build();
  }

  BlockContext block_{.number = 18'500'000,
                      .timestamp = 1700000000,
                      .chain_id = 1};
  State state_;
  Address caller_ = Address::from_hex("0x00000000000000000000000000000000000000aa");
  Address contract_ = Address::from_hex("0x00000000000000000000000000000000000000cc");
};

TEST_F(InterpreterTest, EmptyCodeIsStop) {
  const ExecutionResult result = run(Bytecode());
  EXPECT_EQ(result.status, Status::kSuccess);
  EXPECT_TRUE(result.output.empty());
}

TEST_F(InterpreterTest, Arithmetic) {
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(20).push(22).op(Op::kAdd);
            })),
            U256(42));
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(6).push(7).op(Op::kMul);
            })),
            U256(42));
  // SUB is top - second: push 8 then 50 -> 50 - 8.
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(8).push(50).op(Op::kSub);
            })),
            U256(42));
  // DIV: top / second.
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(2).push(84).op(Op::kDiv);
            })),
            U256(42));
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(0).push(84).op(Op::kDiv);  // div by zero -> 0
            })),
            U256(0));
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(10).push(2).op(Op::kExp);  // EXP: base=top
            })),
            U256(1024));
}

TEST_F(InterpreterTest, ComparisonAndBitwise) {
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(5).push(3).op(Op::kLt);  // 3 < 5
            })),
            U256(1));
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(0xF0).push(0x0F).op(Op::kOr);
            })),
            U256(0xFF));
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(0).op(Op::kIszero);
            })),
            U256(1));
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(1).push(4).op(Op::kShl);  // 1 << 4
            })),
            U256(16));
}

TEST_F(InterpreterTest, Sha3MatchesKeccak) {
  // keccak of 32 zero bytes of fresh memory.
  const U256 expected = U256::from_bytes_be(
      keccak256(std::vector<std::uint8_t>(32, 0)));
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(0x20).push(0x40).op(Op::kSha3);  // len=0x20, off=0x40
            })),
            expected);
}

TEST_F(InterpreterTest, MemoryOps) {
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(0x1234).push(0x80).op(Op::kMstore);
              a.push(0x80).op(Op::kMload);
            })),
            U256(0x1234));
  // MSTORE8 writes one byte; MLOAD of that offset has it at the MSB.
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(0xAB).push(0x80).op(Op::kMstore8);
              a.push(0x80).op(Op::kMload);
            })),
            U256(0xAB) << 248);
  EXPECT_EQ(run_for_word(returning([](Assembler& a) {
              a.push(0xAB).push(0x80).op(Op::kMstore);
              a.op(Op::kMsize);
            })),
            U256(0xA0));
}

TEST_F(InterpreterTest, StorageRoundTrip) {
  Assembler a;
  a.push(42).push(7).op(Op::kSstore);  // storage[7] = 42
  a.push(7).op(Op::kSload);
  a.push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  EXPECT_EQ(run_for_word(a.build()), U256(42));
  // And it persisted in the world state.
  EXPECT_EQ(state_.sload(contract_, U256(7)), U256(42));
}

TEST_F(InterpreterTest, JumpAndJumpi) {
  // if (1) return 42 else return 7
  Assembler a;
  const auto then_label = a.make_label();
  a.push(1);
  a.jump_if(then_label);
  a.push(7).push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  a.bind(then_label);
  a.push(42).push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  EXPECT_EQ(run_for_word(a.build()), U256(42));
}

TEST_F(InterpreterTest, InvalidJumpHalts) {
  Assembler a;
  a.push(2).op(Op::kJump);  // offset 2 is not a JUMPDEST
  a.op(Op::kStop);
  EXPECT_EQ(run(a.build()).status, Status::kInvalidJump);
}

TEST_F(InterpreterTest, JumpIntoPushImmediateIsInvalid) {
  // PUSH1 0x03 JUMP JUMPDEST STOP — a valid jump to a real JUMPDEST.
  EXPECT_EQ(run(Bytecode::from_hex("0x6003565b00")).status, Status::kSuccess);
  // PUSH1 0x05 JUMP JUMPDEST PUSH2 0x5b5b STOP — pc 5 is a 0x5B byte, but
  // it is PUSH2 immediate data, so jumping there must fail.
  EXPECT_EQ(run(Bytecode::from_hex("0x6005565b615b5b00")).status,
            Status::kInvalidJump);
}

TEST_F(InterpreterTest, StackUnderflowAndOverflow) {
  EXPECT_EQ(run(Bytecode::from_hex("0x01")).status, Status::kStackUnderflow);
  // 1025 pushes overflow the stack.
  Assembler a;
  const auto loop = a.make_label();
  // Simply unroll: PUSH0 x1025.
  for (int i = 0; i < 1025; ++i) a.op(Op::kPush0);
  (void)loop;
  EXPECT_EQ(run(a.build()).status, Status::kStackOverflow);
}

TEST_F(InterpreterTest, OutOfGas) {
  Assembler a;
  for (int i = 0; i < 100; ++i) a.push(1).push(1).op(Op::kExp).op(Op::kPop);
  const ExecutionResult result = run(a.build(), {}, 50);
  EXPECT_EQ(result.status, Status::kOutOfGas);
  EXPECT_EQ(result.gas_used, 50u);  // everything consumed
}

TEST_F(InterpreterTest, GasAccountingForSimpleProgram) {
  // PUSH1 PUSH1 MSTORE = 3 + 3 + 3 + memory expansion to one word (3).
  const ExecutionResult result = run(Bytecode::from_hex("0x6001600052"));
  EXPECT_EQ(result.status, Status::kSuccess);
  EXPECT_EQ(result.gas_used, 12u);
}

TEST_F(InterpreterTest, RevertReturnsPayloadAndRollsBack) {
  Assembler a;
  a.push(99).push(3).op(Op::kSstore);
  a.push(0xEE).push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kRevert);
  Message msg;
  msg.caller = caller_;
  msg.code_address = contract_;
  msg.storage_address = contract_;
  msg.origin = caller_;
  state_.set_code(contract_, a.build());
  const ExecutionResult result =
      state_.call(msg, CallKind::kCall, /*depth=*/0);
  EXPECT_EQ(result.status, Status::kRevert);
  ASSERT_EQ(result.output.size(), 32u);
  EXPECT_EQ(U256::from_bytes_be(result.output), U256(0xEE));
  // The SSTORE before the revert must have been rolled back.
  EXPECT_EQ(state_.sload(contract_, U256(3)), U256());
}

TEST_F(InterpreterTest, InvalidOpcodeHalts) {
  EXPECT_EQ(run(Bytecode::from_hex("0xfe")).status, Status::kInvalidOpcode);
  EXPECT_EQ(run(Bytecode::from_hex("0x0c")).status, Status::kInvalidOpcode);
}

TEST_F(InterpreterTest, CalldataAccess) {
  // Return the first calldata word.
  Assembler a;
  a.op(Op::kPush0).op(Op::kCalldataload);
  a.push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  std::vector<std::uint8_t> data(32, 0);
  data[31] = 0x2A;
  const ExecutionResult result = run(a.build(), data);
  EXPECT_EQ(U256::from_bytes_be(result.output), U256(42));
}

TEST_F(InterpreterTest, CalldataloadPastEndReadsZero) {
  Assembler a;
  a.push(1000).op(Op::kCalldataload);
  a.push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  EXPECT_EQ(run_for_word(a.build()), U256());
}

TEST_F(InterpreterTest, EnvironmentOpcodes) {
  EXPECT_EQ(run_for_word(returning([](Assembler& a) { a.op(Op::kCaller); })),
            caller_.to_word());
  EXPECT_EQ(run_for_word(returning([](Assembler& a) { a.op(Op::kAddress); })),
            contract_.to_word());
  EXPECT_EQ(run_for_word(returning([](Assembler& a) { a.op(Op::kTimestamp); })),
            U256(1700000000));
  EXPECT_EQ(run_for_word(returning([](Assembler& a) { a.op(Op::kChainid); })),
            U256(1));
  EXPECT_EQ(run_for_word(returning([](Assembler& a) { a.op(Op::kCallvalue); })),
            U256(0));
}

TEST_F(InterpreterTest, SelfBalance) {
  state_.set_balance(contract_, U256(12345));
  EXPECT_EQ(
      run_for_word(returning([](Assembler& a) { a.op(Op::kSelfbalance); })),
      U256(12345));
}

TEST_F(InterpreterTest, LogsReachHost) {
  Assembler a;
  a.push(0x42);                     // topic
  a.op(Op::kPush0).op(Op::kPush0);  // len, off
  a.op(Op::kLog1);
  a.op(Op::kStop);
  EXPECT_EQ(run(a.build()).status, Status::kSuccess);
  ASSERT_EQ(state_.logs().size(), 1u);
  EXPECT_EQ(state_.logs()[0].topics.at(0), U256(0x42));
  EXPECT_EQ(state_.logs()[0].address, contract_);
}

TEST_F(InterpreterTest, StaticCallBlocksWrites) {
  // Callee stores; caller STATICCALLs it -> callee fails, flag 0.
  Assembler callee;
  callee.push(1).push(0).op(Op::kSstore);
  callee.op(Op::kStop);
  const Address callee_addr =
      Address::from_hex("0x00000000000000000000000000000000000000dd");
  state_.set_code(callee_addr, callee.build());

  Assembler caller_code;
  caller_code.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);
  caller_code.push_bytes(callee_addr.bytes());
  caller_code.push(100000);
  caller_code.op(Op::kStaticcall);
  caller_code.push(0x00).op(Op::kMstore);
  caller_code.push(0x20).push(0x00).op(Op::kReturn);
  EXPECT_EQ(run_for_word(caller_code.build()), U256(0));
  EXPECT_EQ(state_.sload(callee_addr, U256(0)), U256());
}

TEST_F(InterpreterTest, NestedCallTransfersValueAndReturnsData) {
  // Callee returns 0x2A; caller CALLs with value 5 and forwards the output.
  Assembler callee;
  callee.push(0x2A).push(0x00).op(Op::kMstore);
  callee.push(0x20).push(0x00).op(Op::kReturn);
  const Address callee_addr =
      Address::from_hex("0x00000000000000000000000000000000000000dd");
  state_.set_code(callee_addr, callee.build());
  state_.set_balance(contract_, U256(100));

  Assembler caller_code;
  caller_code.push(0x20).push(0x40);  // out len/off
  caller_code.op(Op::kPush0).op(Op::kPush0);  // in len/off
  caller_code.push(5);                        // value
  caller_code.push_bytes(callee_addr.bytes());
  caller_code.push(100000);
  caller_code.op(Op::kCall);
  caller_code.op(Op::kPop);
  caller_code.push(0x40).op(Op::kMload);
  caller_code.push(0x00).op(Op::kMstore);
  caller_code.push(0x20).push(0x00).op(Op::kReturn);
  EXPECT_EQ(run_for_word(caller_code.build()), U256(0x2A));
  EXPECT_EQ(state_.get_balance(callee_addr), U256(5));
  EXPECT_EQ(state_.get_balance(contract_), U256(95));
}

TEST_F(InterpreterTest, DelegatecallRunsInCallerContext) {
  // Library stores CALLER at slot 0 of *the proxy's* storage.
  Assembler library_code;
  library_code.op(Op::kCaller).push(0).op(Op::kSstore);
  library_code.op(Op::kStop);
  const Address library =
      Address::from_hex("0x00000000000000000000000000000000000000dd");
  state_.set_code(library, library_code.build());

  Assembler proxy;
  proxy.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);
  proxy.push_bytes(library.bytes());
  proxy.push(100000);
  proxy.op(Op::kDelegatecall);
  proxy.op(Op::kPop);
  proxy.op(Op::kStop);
  EXPECT_EQ(run(proxy.build()).status, Status::kSuccess);
  // Storage written in the proxy's context; caller seen by the library is
  // the proxy's caller.
  EXPECT_EQ(state_.sload(contract_, U256(0)), caller_.to_word());
  EXPECT_EQ(state_.sload(library, U256(0)), U256());
}

TEST_F(InterpreterTest, FailedNestedCallRollsBackCalleeOnly) {
  // Callee stores then reverts; caller stores before and after.
  Assembler callee;
  callee.push(1).push(0).op(Op::kSstore);
  callee.op(Op::kPush0).op(Op::kPush0).op(Op::kRevert);
  const Address callee_addr =
      Address::from_hex("0x00000000000000000000000000000000000000dd");
  state_.set_code(callee_addr, callee.build());

  Assembler caller_code;
  caller_code.push(7).push(1).op(Op::kSstore);
  caller_code.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);
  caller_code.op(Op::kPush0);
  caller_code.push_bytes(callee_addr.bytes());
  caller_code.push(100000);
  caller_code.op(Op::kCall);
  caller_code.op(Op::kPop);
  caller_code.push(9).push(2).op(Op::kSstore);
  caller_code.op(Op::kStop);
  EXPECT_EQ(run(caller_code.build()).status, Status::kSuccess);
  EXPECT_EQ(state_.sload(contract_, U256(1)), U256(7));
  EXPECT_EQ(state_.sload(contract_, U256(2)), U256(9));
  EXPECT_EQ(state_.sload(callee_addr, U256(0)), U256());  // rolled back
}

TEST_F(InterpreterTest, SelfdestructSendsBalance) {
  state_.set_balance(contract_, U256(77));
  Assembler a;
  a.push_bytes(caller_.bytes());
  a.op(Op::kSelfdestruct);
  EXPECT_EQ(run(a.build()).status, Status::kSuccess);
  EXPECT_EQ(state_.get_balance(caller_), U256(77));
  EXPECT_EQ(state_.get_balance(contract_), U256());
  EXPECT_TRUE(state_.get_code(contract_).empty());
}

TEST_F(InterpreterTest, CreateDeploysRuntimeCode) {
  // init code returning a 1-byte runtime (0x00 = STOP):
  // PUSH1 0x00 PUSH1 0x00 MSTORE8? Simpler: store STOP byte then RETURN(0,1)
  // Runtime "00": MSTORE8(0, 0x00); RETURN(0, 1).
  Assembler init;
  init.push(0x00).push(0).op(Op::kMstore8);
  init.push(1).push(0).op(Op::kReturn);
  const Bytecode init_code = init.build();

  // Deployer: CODECOPY its own tail? Use memory: write init code bytes via
  // helper deploy() on state instead.
  const Address created = state_.deploy(caller_, init_code.bytes());
  EXPECT_FALSE(created.is_zero());
  EXPECT_EQ(state_.get_code(created).size(), 1u);
  EXPECT_EQ(state_.get_code(created).bytes()[0], 0x00);
}

TEST_F(InterpreterTest, GasOpcodeReportsRemaining) {
  const U256 gas_left =
      run_for_word(returning([](Assembler& a) { a.op(Op::kGas); }));
  EXPECT_GT(gas_left, U256(990000));
  EXPECT_LT(gas_left, U256(1'000'000));
}

}  // namespace
}  // namespace phishinghook::evm
