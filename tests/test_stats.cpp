// Statistics library: distributions and the PAM's hypothesis tests,
// validated against published worked examples and known reference values.
#include <gtest/gtest.h>

#include <cmath>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "stats/cliffs_delta.hpp"
#include "stats/distributions.hpp"
#include "stats/dunn.hpp"
#include "stats/friedman.hpp"
#include "stats/holm.hpp"
#include "stats/kruskal_wallis.hpp"
#include "stats/ranks.hpp"
#include "stats/shapiro_wilk.hpp"
#include "stats/wilcoxon.hpp"

namespace phishinghook::stats {
namespace {

TEST(Distributions, NormalCdfReferenceValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.96), 0.0249979, 1e-6);
  EXPECT_NEAR(normal_sf(1.6448536), 0.05, 1e-6);
}

TEST(Distributions, QuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << p;
  }
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_THROW(normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), InvalidArgument);
}

TEST(Distributions, ChiSquareSurvival) {
  // Known values: P(X > 3.841) = 0.05 for df=1; P(X > 5.991) = 0.05 df=2.
  EXPECT_NEAR(chi_square_sf(3.841459, 1), 0.05, 1e-5);
  EXPECT_NEAR(chi_square_sf(5.991465, 2), 0.05, 1e-5);
  EXPECT_NEAR(chi_square_sf(21.02607, 12), 0.05, 1e-5);
  EXPECT_EQ(chi_square_sf(0.0, 3), 1.0);
  EXPECT_NEAR(gamma_p(2.0, 100.0), 1.0, 1e-9);
}

TEST(Ranks, MidRanksWithTies) {
  const std::vector<double> values = {3.0, 1.0, 3.0, 2.0};
  const std::vector<double> ranks = ranks_with_ties(values);
  EXPECT_EQ(ranks[1], 1.0);
  EXPECT_EQ(ranks[3], 2.0);
  EXPECT_EQ(ranks[0], 3.5);  // tie at ranks 3 and 4
  EXPECT_EQ(ranks[2], 3.5);
  EXPECT_EQ(tie_correction_term(values), 6.0);  // t=2: 8-2=6
}

TEST(Ranks, Descriptives) {
  EXPECT_NEAR(mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
  EXPECT_NEAR(sample_variance({1.0, 2.0, 3.0}), 1.0, 1e-12);
  EXPECT_NEAR(median({5.0, 1.0, 3.0}), 3.0, 1e-12);
  EXPECT_NEAR(median({4.0, 1.0, 3.0, 2.0}), 2.5, 1e-12);
}

TEST(ShapiroWilk, NormalSampleAccepted) {
  common::Rng rng(3);
  std::vector<double> sample;
  for (int i = 0; i < 50; ++i) sample.push_back(rng.normal());
  const auto result = shapiro_wilk(sample);
  EXPECT_GT(result.w, 0.95);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(ShapiroWilk, SkewedSampleRejected) {
  common::Rng rng(4);
  std::vector<double> sample;
  for (int i = 0; i < 50; ++i) {
    const double z = rng.normal();
    sample.push_back(std::exp(z));  // lognormal: heavily skewed
  }
  const auto result = shapiro_wilk(sample);
  EXPECT_LT(result.p_value, 0.01);
}

TEST(ShapiroWilk, KnownSmallSample) {
  // Royston's reference data appear in many textbooks; this sample (weights
  // from the original 1965 paper examples style) should be comfortably
  // normal-looking with W above 0.9.
  const std::vector<double> sample = {148, 154, 158, 160, 161, 162,
                                      166, 170, 182, 195, 236};
  const auto result = shapiro_wilk(sample);
  EXPECT_GT(result.w, 0.7);
  EXPECT_LT(result.w, 1.0);
  // The 236 outlier makes it non-normal at 5%.
  EXPECT_LT(result.p_value, 0.05);
}

TEST(ShapiroWilk, InputValidation) {
  EXPECT_THROW(shapiro_wilk({1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(shapiro_wilk({1.0, 1.0, 1.0, 1.0}), InvalidArgument);
}

TEST(KruskalWallis, WorkedExample) {
  // Classic three-group example (Conover-style): clearly separated groups.
  const std::vector<std::vector<double>> groups = {
      {27, 2, 4, 18, 7, 9},
      {20, 8, 14, 36, 21, 22},
      {34, 31, 3, 23, 30, 6},
  };
  const auto result = kruskal_wallis(groups);
  EXPECT_EQ(result.df, 2.0);
  // Hand computation (18 untied observations; rank sums 39, 65, 67):
  // H = 12/(18*19) * (39^2 + 65^2 + 67^2)/6 - 3*19 = 2.8538...,
  // p = exp(-H/2) for df=2 = 0.24005...
  EXPECT_NEAR(result.h, 2.8538, 0.001);
  EXPECT_NEAR(result.p_value, 0.24005, 0.001);
}

TEST(KruskalWallis, SeparatedGroupsRejected) {
  std::vector<std::vector<double>> groups(3);
  common::Rng rng(6);
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 20; ++i) {
      groups[static_cast<std::size_t>(g)].push_back(10.0 * g + rng.normal());
    }
  }
  const auto result = kruskal_wallis(groups);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KruskalWallis, Validation) {
  EXPECT_THROW(kruskal_wallis({{1.0}}), InvalidArgument);
  EXPECT_THROW(kruskal_wallis({{1.0}, {}}), InvalidArgument);
}

TEST(Holm, StepDownAdjustment) {
  // Worked example: p = {0.01, 0.04, 0.03} (m=3).
  // Sorted: 0.01*3=0.03, 0.03*2=0.06, 0.04*1=0.04 -> monotone: 0.03,0.06,0.06
  const auto adjusted = holm_bonferroni({0.01, 0.04, 0.03});
  EXPECT_NEAR(adjusted[0], 0.03, 1e-12);
  EXPECT_NEAR(adjusted[2], 0.06, 1e-12);
  EXPECT_NEAR(adjusted[1], 0.06, 1e-12);  // monotonicity enforced
}

TEST(Holm, ClipsAtOne) {
  const auto adjusted = holm_bonferroni({0.9, 0.8});
  EXPECT_EQ(adjusted[0], 1.0);
  EXPECT_EQ(adjusted[1], 1.0);
}

TEST(Dunn, SeparatedGroupsAllSignificant) {
  std::vector<std::vector<double>> groups(3);
  common::Rng rng(7);
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 25; ++i) {
      groups[static_cast<std::size_t>(g)].push_back(20.0 * g + rng.normal());
    }
  }
  const auto result = dunn_test(groups);
  ASSERT_EQ(result.pairs.size(), 3u);
  EXPECT_EQ(result.significant_fraction(), 1.0);
  // Z sign: group 0 has the smallest mean rank -> negative difference.
  EXPECT_LT(result.pairs[0].z, 0.0);
}

TEST(Dunn, IdenticalGroupsNotSignificant) {
  common::Rng rng(8);
  std::vector<std::vector<double>> groups(4);
  for (auto& group : groups) {
    for (int i = 0; i < 25; ++i) group.push_back(rng.normal());
  }
  const auto result = dunn_test(groups);
  EXPECT_EQ(result.pairs.size(), 6u);
  EXPECT_LT(result.significant_fraction(), 0.5);
}

TEST(Friedman, WorkedExample) {
  // Demsar-style block design: treatment 2 always best, 0 always worst.
  const std::vector<std::vector<double>> data = {
      {1.0, 2.0, 3.0}, {1.1, 2.2, 3.3}, {0.9, 2.1, 3.4},
      {1.3, 2.4, 3.1}, {1.2, 2.0, 3.3}, {0.8, 1.9, 3.0},
  };
  const auto result = friedman_test(data);
  EXPECT_EQ(result.df, 2.0);
  EXPECT_NEAR(result.mean_ranks[0], 1.0, 1e-12);
  EXPECT_NEAR(result.mean_ranks[2], 3.0, 1e-12);
  // Perfect ordering: chi2 = 12*6/(3*4) * ((1-2)^2+(2-2)^2+(3-2)^2) = 12.
  EXPECT_NEAR(result.chi_square, 12.0, 1e-9);
  EXPECT_LT(result.p_value, 0.01);
}

TEST(Friedman, Validation) {
  EXPECT_THROW(friedman_test({{1.0, 2.0}}), InvalidArgument);
  EXPECT_THROW(friedman_test({{1.0, 2.0}, {1.0}}), InvalidArgument);
}

TEST(Wilcoxon, ExactSmallSample) {
  // Paired data with a consistent positive shift.
  const std::vector<double> a = {125, 115, 130, 140, 140, 115, 140, 125};
  const std::vector<double> b = {110, 122, 125, 120, 140, 124, 123, 137};
  const auto result = wilcoxon_signed_rank(a, b);
  EXPECT_EQ(result.effective_n, 7u);  // one zero difference dropped
  // R's wilcox.test(a, b, paired=TRUE) gives V=18, p ~ 0.578 (with ties the
  // exact enumeration lands close).
  EXPECT_GT(result.p_value, 0.3);
  EXPECT_LT(result.p_value, 0.9);
}

TEST(Wilcoxon, IdenticalSamplesP1) {
  const std::vector<double> a = {1, 2, 3};
  const auto result = wilcoxon_signed_rank(a, a);
  EXPECT_EQ(result.effective_n, 0u);
  EXPECT_EQ(result.p_value, 1.0);
}

TEST(Wilcoxon, StrongShiftDetectedLargeN) {
  common::Rng rng(9);
  std::vector<double> a, b;
  for (int i = 0; i < 40; ++i) {
    const double base = rng.normal();
    a.push_back(base + 1.5);
    b.push_back(base + 0.1 * rng.normal());
  }
  const auto result = wilcoxon_signed_rank(a, b);
  EXPECT_LT(result.p_value, 1e-4);
  EXPECT_THROW(wilcoxon_signed_rank({1.0}, {1.0, 2.0}), InvalidArgument);
}

TEST(CliffsDelta, ReferenceBehaviour) {
  EXPECT_NEAR(cliffs_delta({3, 4, 5}, {1, 2}), 1.0, 1e-12);   // full dominance
  EXPECT_NEAR(cliffs_delta({1, 2}, {3, 4, 5}), -1.0, 1e-12);
  EXPECT_NEAR(cliffs_delta({1, 2, 3}, {1, 2, 3}), 0.0, 1e-12);
  EXPECT_EQ(cliffs_delta_magnitude(0.05), "negligible");
  EXPECT_EQ(cliffs_delta_magnitude(-0.2), "small");
  EXPECT_EQ(cliffs_delta_magnitude(0.4), "medium");
  EXPECT_EQ(cliffs_delta_magnitude(-0.778), "large");
  EXPECT_THROW(cliffs_delta({}, {1.0}), InvalidArgument);
}

}  // namespace
}  // namespace phishinghook::stats
