// Serving subsystem: artifact round-trips, the sharded LRU score cache,
// service metrics, and the batching scoring engine (including the
// multi-producer consistency check the TSan build exercises).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>

#include "common/binary_io.hpp"
#include "common/timer.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/random_forest.hpp"
#include "serve/artifact.hpp"
#include "serve/metrics.hpp"
#include "serve/score_cache.hpp"
#include "serve/scoring_engine.hpp"
#include "synth/dataset_builder.hpp"

namespace phishinghook {
namespace {

// One small dataset shared by the whole suite (building it is the slow
// part; the serving tests only need codes + labels + the chain).
const synth::BuiltDataset& dataset() {
  static const synth::BuiltDataset built = [] {
    synth::DatasetConfig config;
    config.target_size = 160;
    config.seed = 97;
    return synth::DatasetBuilder(config).build();
  }();
  return built;
}

std::vector<const evm::Bytecode*> dataset_codes() {
  std::vector<const evm::Bytecode*> codes;
  for (const synth::LabeledContract& sample : dataset().samples) {
    codes.push_back(&sample.code);
  }
  return codes;
}

std::vector<int> dataset_labels() {
  std::vector<int> labels;
  for (const synth::LabeledContract& sample : dataset().samples) {
    labels.push_back(sample.phishing ? 1 : 0);
  }
  return labels;
}

core::HistogramAdapter fitted_adapter(
    std::unique_ptr<ml::TabularClassifier> model) {
  core::HistogramAdapter adapter(std::move(model), "test-detector");
  adapter.fit(dataset_codes(), dataset_labels());
  return adapter;
}

evm::Hash256 hash_of_byte(std::uint8_t b) {
  evm::Hash256 h{};
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = static_cast<std::uint8_t>(b + i);
  return h;
}

// --- artifact round-trips ----------------------------------------------------

TEST(Artifact, RandomForestRoundTripIsBitIdentical) {
  ml::RandomForestConfig config;
  config.n_trees = 12;
  config.max_depth = 8;
  core::HistogramAdapter adapter =
      fitted_adapter(std::make_unique<ml::RandomForestClassifier>(config));

  std::stringstream buffer;
  serve::save_artifact(buffer, adapter);
  const std::unique_ptr<core::HistogramAdapter> loaded =
      serve::load_artifact(buffer);

  EXPECT_EQ(loaded->name(), adapter.name());
  EXPECT_EQ(loaded->vocabulary().mnemonics(), adapter.vocabulary().mnemonics());

  // 100+ codes, exact equality — doubles travel as raw bits.
  std::vector<const evm::Bytecode*> codes = dataset_codes();
  ASSERT_GE(codes.size(), 100u);
  const std::vector<double> expected = adapter.predict_proba(codes);
  const std::vector<double> actual = loaded->predict_proba(codes);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "row " << i;
  }
}

TEST(Artifact, LogisticRegressionRoundTripIsBitIdentical) {
  ml::LogisticRegressionConfig config;
  config.epochs = 60;
  core::HistogramAdapter adapter = fitted_adapter(
      std::make_unique<ml::LogisticRegressionClassifier>(config));

  std::stringstream buffer;
  serve::save_artifact(buffer, adapter);
  const std::unique_ptr<core::HistogramAdapter> loaded =
      serve::load_artifact(buffer);

  std::vector<const evm::Bytecode*> codes = dataset_codes();
  const std::vector<double> expected = adapter.predict_proba(codes);
  const std::vector<double> actual = loaded->predict_proba(codes);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "row " << i;
  }
}

TEST(Artifact, FileRoundTrip) {
  core::HistogramAdapter adapter = fitted_adapter(
      std::make_unique<ml::LogisticRegressionClassifier>());
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "phook_test_artifact.phookmdl";
  serve::save_artifact_file(path, adapter);
  const auto loaded = serve::load_artifact_file(path);
  EXPECT_EQ(loaded->name(), adapter.name());
  std::filesystem::remove(path);
}

TEST(Artifact, RejectsBadMagicAndVersionAndTruncation) {
  core::HistogramAdapter adapter = fitted_adapter(
      std::make_unique<ml::LogisticRegressionClassifier>());
  std::stringstream good;
  serve::save_artifact(good, adapter);
  const std::string bytes = good.str();

  {
    std::stringstream bad("XXXXXXXX" + bytes.substr(8));
    EXPECT_THROW(serve::load_artifact(bad), ParseError);
  }
  {
    std::string versioned = bytes;
    versioned[8] = 99;  // version field follows the 8-byte magic
    std::stringstream bad(versioned);
    EXPECT_THROW(serve::load_artifact(bad), ParseError);
  }
  {
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(serve::load_artifact(truncated), ParseError);
  }
}

TEST(Artifact, SaveBeforeFitThrows) {
  ml::RandomForestClassifier unfitted;
  std::stringstream buffer;
  EXPECT_THROW(unfitted.save(buffer), StateError);
}

TEST(Artifact, ClassifierFactoryRejectsUnknownTag) {
  std::stringstream buffer;
  common::write_string(buffer, "phook.mystery.v1");
  EXPECT_THROW(ml::TabularClassifier::load(buffer), ParseError);
}

// --- sharded score cache -----------------------------------------------------

TEST(ScoreCache, EvictsLeastRecentlyUsedInOrder) {
  serve::ShardedScoreCache cache(/*capacity=*/3, /*shards=*/1);
  const auto a = hash_of_byte(1), b = hash_of_byte(2), c = hash_of_byte(3),
             d = hash_of_byte(4);
  cache.put(a, 0.1);
  cache.put(b, 0.2);
  cache.put(c, 0.3);
  ASSERT_TRUE(cache.get(a).has_value());  // refresh a: LRU order is b, c, a
  cache.put(d, 0.4);                      // evicts b
  EXPECT_FALSE(cache.get(b).has_value());
  EXPECT_EQ(cache.get(a), (serve::CachedScore{0.1, 0}));
  EXPECT_EQ(cache.get(c), (serve::CachedScore{0.3, 0}));
  EXPECT_EQ(cache.get(d), (serve::CachedScore{0.4, 0}));

  const serve::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(ScoreCache, PutRefreshesExistingKey) {
  serve::ShardedScoreCache cache(2, 1);
  const auto a = hash_of_byte(1), b = hash_of_byte(2), c = hash_of_byte(3);
  cache.put(a, 0.1);
  cache.put(b, 0.2);
  cache.put(a, 0.9);  // refresh, not insert: b is now the LRU entry
  cache.put(c, 0.3);
  EXPECT_EQ(cache.get(a), (serve::CachedScore{0.9, 0}));
  EXPECT_FALSE(cache.get(b).has_value());
}

TEST(ScoreCache, ShardingSpreadsKeysAndIsolatesCapacity) {
  serve::ShardedScoreCache cache(/*capacity=*/64, /*shards=*/8);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.capacity(), 64u);

  std::set<std::size_t> shards_touched;
  for (int i = 0; i < 64; ++i) {
    evm::Bytecode code({static_cast<std::uint8_t>(i),
                        static_cast<std::uint8_t>(i >> 3), 0x60, 0x00});
    shards_touched.insert(cache.shard_index(code.code_hash()));
  }
  // Keccak output spreads 64 distinct codes over nearly all 8 shards.
  EXPECT_GE(shards_touched.size(), 6u);

  // Rounds shard counts up to a power of two.
  serve::ShardedScoreCache odd(30, 3);
  EXPECT_EQ(odd.shard_count(), 4u);
  EXPECT_EQ(odd.capacity(), 30u);  // 8+8+7+7, not 4*7

  EXPECT_THROW(serve::ShardedScoreCache(0, 1), InvalidArgument);
  EXPECT_THROW(serve::ShardedScoreCache(8, 0), InvalidArgument);
}

TEST(ScoreCache, CapacityMatchesRequestedBudgetExactly) {
  // Regression: bit_ceil(6)=8 shards with floor division used to report 96
  // entries for a 100-entry budget. The remainder now spreads across
  // shards so the requested budget is provisioned exactly.
  serve::ShardedScoreCache cache(100, 6);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.capacity(), 100u);

  // Fewer entries than shards: the shard count shrinks (power of two) so
  // no shard holds a zero budget.
  serve::ShardedScoreCache tiny(5, 8);
  EXPECT_EQ(tiny.shard_count(), 4u);
  EXPECT_EQ(tiny.capacity(), 5u);

  serve::ShardedScoreCache one(1, 16);
  EXPECT_EQ(one.shard_count(), 1u);
  EXPECT_EQ(one.capacity(), 1u);
}

TEST(ScoreCache, CountsHitsAndMisses) {
  serve::ShardedScoreCache cache(8, 2);
  const auto a = hash_of_byte(7);
  EXPECT_FALSE(cache.get(a).has_value());
  cache.put(a, 0.5);
  EXPECT_TRUE(cache.get(a).has_value());
  EXPECT_TRUE(cache.get(a).has_value());
  const serve::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);
}

// --- metrics -----------------------------------------------------------------

TEST(Metrics, HistogramQuantilesBracketRecordedValues) {
  serve::LatencyHistogram histogram;
  for (int i = 0; i < 99; ++i) histogram.record(100.0);  // bucket [64, 128)
  histogram.record(100000.0);  // one 100ms outlier
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_NEAR(histogram.mean_us(), 1099.0, 1.0);
  EXPECT_EQ(histogram.max_us(), 100000.0);
  EXPECT_LE(histogram.quantile_us(0.50), 256.0);
  EXPECT_GE(histogram.quantile_us(0.995), 65536.0);
}

TEST(Metrics, DumpContainsCountersAndOccupancy) {
  serve::ServiceMetrics metrics;
  metrics.requests_submitted.inc(10);
  metrics.requests_completed.inc(10);
  metrics.batches.inc(2);
  metrics.batched_requests.inc(10);
  metrics.request_latency.record(50.0);
  EXPECT_DOUBLE_EQ(metrics.mean_batch_occupancy(), 5.0);

  std::ostringstream out;
  metrics.dump(out, 0.75);
  const std::string text = out.str();
  EXPECT_NE(text.find("serve_requests_completed 10"), std::string::npos);
  EXPECT_NE(text.find("serve_batch_occupancy_mean 5"), std::string::npos);
  EXPECT_NE(text.find("serve_cache_hit_rate 0.75"), std::string::npos);
}

TEST(Metrics, DumpFormatIsByteStable) {
  // The dump() exposition is a public text interface (scrapers parse it);
  // this pins every line and the ostream double formatting exactly.
  serve::ServiceMetrics metrics;
  metrics.requests_submitted.inc(10);
  metrics.requests_completed.inc(10);
  metrics.batches.inc(2);
  metrics.batched_requests.inc(10);
  metrics.request_latency.record(50.0);  // single sample: every quantile 50

  std::ostringstream out;
  metrics.dump(out, 0.75);
  EXPECT_EQ(out.str(),
            "serve_requests_submitted 10\n"
            "serve_requests_completed 10\n"
            "serve_requests_failed 0\n"
            "serve_requests_shed 0\n"
            "serve_retries 0\n"
            "serve_empty_code_requests 0\n"
            "serve_batches_total 2\n"
            "serve_batch_occupancy_mean 5\n"
            "serve_model_invocations 0\n"
            "serve_model_rows 0\n"
            "serve_cache_hit_rate 0.75\n"
            "serve_request_latency_us_p50 50\n"
            "serve_request_latency_us_p95 50\n"
            "serve_request_latency_us_p99 50\n"
            "serve_request_latency_us_max 50\n"
            "serve_batch_latency_us_p50 0\n"
            "serve_batch_latency_us_p99 0\n");
}

TEST(Metrics, ScopedTimerFeedsSink) {
  double recorded = -1.0;
  {
    common::ScopedTimer timer([&](double s) { recorded = s; });
  }
  EXPECT_GE(recorded, 0.0);

  recorded = -1.0;
  {
    common::ScopedTimer timer([&](double s) { recorded = s; });
    timer.cancel();
  }
  EXPECT_EQ(recorded, -1.0);

  int fires = 0;
  {
    common::ScopedTimer timer([&](double) { ++fires; });
    timer.stop();
  }
  EXPECT_EQ(fires, 1);  // stop() disarms the destructor
}

// --- scoring engine ----------------------------------------------------------

class ScoringEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    adapter_ = std::make_unique<core::HistogramAdapter>(fitted_adapter(
        std::make_unique<ml::RandomForestClassifier>(small_forest())));
    for (const synth::LabeledContract& sample : dataset().samples) {
      addresses_.push_back(sample.address);
    }
  }

  static ml::RandomForestConfig small_forest() {
    ml::RandomForestConfig config;
    config.n_trees = 8;
    config.max_depth = 6;
    return config;
  }

  /// Ground truth: the same codes scored directly, bypassing the engine.
  std::vector<double> direct_scores() {
    const core::BytecodeExtractionModule bem(*dataset().explorer);
    std::vector<double> out;
    for (const evm::Address& address : addresses_) {
      const core::ExtractedContract contract = bem.extract(address);
      out.push_back(contract.code.empty()
                        ? 0.0
                        : adapter_->predict_proba({&contract.code}).front());
    }
    return out;
  }

  std::unique_ptr<core::HistogramAdapter> adapter_;
  std::vector<evm::Address> addresses_;
};

TEST_F(ScoringEngineTest, SingleThreadMatchesDirectScoring) {
  serve::EngineConfig config;
  config.workers = 1;
  config.max_batch = 16;
  serve::ScoringEngine engine(*dataset().explorer, *adapter_, config);
  const std::vector<serve::ScoreResult> results = engine.score_all(addresses_);
  const std::vector<double> expected = direct_scores();
  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].probability, expected[i]) << "address " << i;
    EXPECT_EQ(results[i].address, addresses_[i]);
    EXPECT_EQ(results[i].flagged, results[i].probability >= 0.5);
  }
}

TEST_F(ScoringEngineTest, MultiProducerMultiWorkerMatchesSingleThreaded) {
  serve::EngineConfig config;
  config.workers = 4;
  config.max_batch = 8;
  config.max_wait_us = 100;
  serve::ScoringEngine engine(*dataset().explorer, *adapter_, config);

  constexpr int kProducers = 4;
  std::vector<std::vector<serve::ScoreResult>> per_producer(kProducers);
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        std::vector<std::future<serve::ScoreResult>> futures;
        for (const evm::Address& address : addresses_) {
          futures.push_back(engine.submit(address));
        }
        for (auto& future : futures) {
          per_producer[p].push_back(future.get());
        }
      });
    }
    for (std::thread& producer : producers) producer.join();
  }

  const std::vector<double> expected = direct_scores();
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(per_producer[p].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(per_producer[p][i].probability, expected[i])
          << "producer " << p << " address " << i;
    }
  }

  // 4 producers x N addresses with heavy on-chain duplication: the cache
  // must be carrying most of the load.
  const serve::CacheStats stats = engine.cache_stats();
  EXPECT_GT(stats.hits, stats.misses);
  EXPECT_EQ(engine.metrics().requests_completed.value(),
            static_cast<std::uint64_t>(kProducers) * addresses_.size());
}

TEST_F(ScoringEngineTest, CacheHitsAreMarkedAndDeduplicated) {
  serve::EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  serve::ScoringEngine engine(*dataset().explorer, *adapter_, config);

  const evm::Address target = addresses_.front();
  const serve::ScoreResult first = engine.submit(target).get();
  const serve::ScoreResult second = engine.submit(target).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.probability, second.probability);
}

TEST_F(ScoringEngineTest, EmptyCodeIsScoredZeroNotCrashed) {
  serve::EngineConfig config;
  config.workers = 1;
  serve::ScoringEngine engine(*dataset().explorer, *adapter_, config);
  const serve::ScoreResult result =
      engine.submit(evm::Address::from_hex(
                        "0x00000000000000000000000000000000000000ff"))
          .get();
  EXPECT_EQ(result.status, serve::ScoreStatus::kEmptyCode);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.probability, 0.0);
  EXPECT_FALSE(result.flagged);
  EXPECT_EQ(engine.metrics().empty_code_requests.value(), 1u);
}

TEST_F(ScoringEngineTest, SubmitAfterShutdownThrows) {
  serve::EngineConfig config;
  config.workers = 2;
  serve::ScoringEngine engine(*dataset().explorer, *adapter_, config);
  engine.submit(addresses_.front()).get();
  engine.shutdown();
  engine.shutdown();  // idempotent
  EXPECT_THROW(engine.submit(addresses_.front()), StateError);
}

TEST_F(ScoringEngineTest, MetricsDumpAfterTraffic) {
  serve::EngineConfig config;
  config.workers = 2;
  serve::ScoringEngine engine(*dataset().explorer, *adapter_, config);
  engine.score_all(addresses_);
  engine.score_all(addresses_);  // second pass: warm cache

  std::ostringstream out;
  engine.dump_metrics(out);
  EXPECT_NE(out.str().find("serve_request_latency_us_p95"), std::string::npos);
  EXPECT_GT(engine.metrics().batches.value(), 0u);
  EXPECT_GT(engine.metrics().mean_batch_occupancy(), 0.0);
  EXPECT_GT(engine.cache_stats().hit_rate(), 0.4);
}

}  // namespace
}  // namespace phishinghook
