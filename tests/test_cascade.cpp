// Cost-aware cascade: band semantics (inclusive boundaries, disabled
// band), bit-identical determinism across engine worker counts, heavy-
// stage fault degradation (including the degraded-not-cached retry
// contract), cascade metrics, and the family-tagged artifact format.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "chain/fault_injection.hpp"
#include "common/binary_io.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/random_forest.hpp"
#include "obs/metrics.hpp"
#include "serve/artifact.hpp"
#include "serve/cascade.hpp"
#include "serve/scoring_engine.hpp"
#include "synth/dataset_builder.hpp"

namespace phishinghook {
namespace {

const synth::BuiltDataset& dataset() {
  static const synth::BuiltDataset built = [] {
    synth::DatasetConfig config;
    config.target_size = 160;
    config.seed = 97;
    return synth::DatasetBuilder(config).build();
  }();
  return built;
}

std::vector<const evm::Bytecode*> dataset_codes() {
  std::vector<const evm::Bytecode*> codes;
  for (const synth::LabeledContract& sample : dataset().samples) {
    codes.push_back(&sample.code);
  }
  return codes;
}

std::vector<int> dataset_labels() {
  std::vector<int> labels;
  for (const synth::LabeledContract& sample : dataset().samples) {
    labels.push_back(sample.phishing ? 1 : 0);
  }
  return labels;
}

std::unique_ptr<core::HistogramAdapter> fitted_adapter(
    std::unique_ptr<ml::TabularClassifier> model, std::string name) {
  auto adapter = std::make_unique<core::HistogramAdapter>(std::move(model),
                                                          std::move(name));
  adapter->fit(dataset_codes(), dataset_labels());
  return adapter;
}

/// Deterministic stub: probability = first byte / 100 (codes in these
/// tests keep their first byte <= 100).
class ByteProbScorer final : public ml::Scorer {
 public:
  void score_batch(const ml::BytecodeBatchView& view,
                   std::span<ml::ScoredRow> out) override {
    ASSERT_EQ(out.size(), view.size());
    for (std::size_t i = 0; i < view.size(); ++i) {
      out[i] = ml::ScoredRow{static_cast<double>(view[i].bytes()[0]) / 100.0,
                             0, false};
    }
  }
  std::string name() const override { return "byte-prob"; }
};

/// Fixed-probability stub (the "heavy refinement" in band tests).
class ConstScorer final : public ml::Scorer {
 public:
  explicit ConstScorer(double p, std::string name = "const")
      : p_(p), name_(std::move(name)) {}
  void score_batch(const ml::BytecodeBatchView& view,
                   std::span<ml::ScoredRow> out) override {
    for (std::size_t i = 0; i < view.size(); ++i) {
      out[i] = ml::ScoredRow{p_, 0, false};
    }
    calls_.fetch_add(1);
  }
  std::string name() const override { return name_; }
  std::uint64_t calls() const { return calls_.load(); }

 private:
  double p_;
  std::string name_;
  std::atomic<std::uint64_t> calls_{0};
};

/// Throws for the first `failures` score_batch calls, then answers `p`.
class HealingScorer final : public ml::Scorer {
 public:
  HealingScorer(int failures, double p) : failures_(failures), p_(p) {}
  void score_batch(const ml::BytecodeBatchView& view,
                   std::span<ml::ScoredRow> out) override {
    if (failures_.fetch_sub(1) > 0) {
      throw TransientError("injected heavy-stage fault");
    }
    for (std::size_t i = 0; i < view.size(); ++i) {
      out[i] = ml::ScoredRow{p_, 0, false};
    }
  }
  std::string name() const override { return "healing"; }

 private:
  std::atomic<int> failures_;
  double p_;
};

/// Non-owning forwarder so one fitted model can sit in many cascades.
class BorrowedScorer final : public ml::Scorer {
 public:
  explicit BorrowedScorer(ml::Scorer& inner) : inner_(&inner) {}
  void score_batch(const ml::BytecodeBatchView& view,
                   std::span<ml::ScoredRow> out) override {
    inner_->score_batch(view, out);
  }
  std::string name() const override { return inner_->name(); }
  const ml::FlatTreeEnsemble* flat_ensemble() const override {
    return inner_->flat_ensemble();
  }

 private:
  ml::Scorer* inner_;
};

std::unique_ptr<serve::CascadeScorer> make_cascade(
    std::vector<std::unique_ptr<ml::Scorer>> stages,
    serve::CascadeConfig config) {
  return std::make_unique<serve::CascadeScorer>(std::move(stages), config);
}

evm::Bytecode code_with_first_byte(std::uint8_t b) {
  return evm::Bytecode({b, 0x60, 0x00, 0x60, 0x00});
}

// --- band semantics ----------------------------------------------------------

TEST(CascadeConfig, BandIsInclusiveAndLoAboveHiDisables) {
  serve::CascadeConfig band{0.4, 0.6};
  EXPECT_TRUE(band.enabled());
  EXPECT_TRUE(band.in_band(0.4));   // lower boundary escalates
  EXPECT_TRUE(band.in_band(0.6));   // upper boundary escalates
  EXPECT_TRUE(band.in_band(0.5));
  EXPECT_FALSE(band.in_band(0.39));
  EXPECT_FALSE(band.in_band(0.61));

  serve::CascadeConfig disabled{1.0, 0.0};
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.in_band(0.5));
}

TEST(Cascade, EscalatesExactlyTheRowsInsideTheBand) {
  // Stage-0 probabilities by first byte: 0.39, 0.40, 0.41, 0.60, 0.61.
  const std::vector<evm::Bytecode> codes = {
      code_with_first_byte(39), code_with_first_byte(40),
      code_with_first_byte(41), code_with_first_byte(60),
      code_with_first_byte(61)};
  std::vector<const evm::Bytecode*> ptrs;
  for (const evm::Bytecode& code : codes) ptrs.push_back(&code);

  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::make_unique<ByteProbScorer>());
  stages.push_back(std::make_unique<ConstScorer>(0.99, "heavy"));
  serve::CascadeScorer cascade(std::move(stages),
                               serve::CascadeConfig{0.40, 0.60});

  std::vector<ml::ScoredRow> rows(ptrs.size());
  cascade.score_batch(ml::BytecodeBatchView(ptrs.data(), ptrs.size()), rows);

  // Outside the band: stage-0 score survives.
  EXPECT_EQ(rows[0].probability, 0.39);
  EXPECT_EQ(rows[0].stage, 0u);
  EXPECT_EQ(rows[4].probability, 0.61);
  EXPECT_EQ(rows[4].stage, 0u);
  // p == lo, inside, and p == hi all escalate (inclusive boundaries).
  for (const std::size_t i : {1, 2, 3}) {
    EXPECT_EQ(rows[i].probability, 0.99) << "row " << i;
    EXPECT_EQ(rows[i].stage, 1u) << "row " << i;
    EXPECT_FALSE(rows[i].degraded);
  }

  const serve::CascadeStats stats = cascade.stats();
  EXPECT_EQ(stats.rows_total, 5u);
  EXPECT_EQ(stats.escalations_total, 3u);
  EXPECT_EQ(stats.stages[0].rows, 5u);
  EXPECT_EQ(stats.stages[1].rows, 3u);
  EXPECT_EQ(stats.stages[1].escalations, 3u);
  EXPECT_DOUBLE_EQ(stats.escalation_rate(), 3.0 / 5.0);
  EXPECT_EQ(cascade.stage_model(0), "byte-prob");
  EXPECT_EQ(cascade.stage_model(1), "heavy");
  EXPECT_EQ(cascade.name(), "cascade(byte-prob -> heavy)");
}

TEST(Cascade, DisabledBandIsBitIdenticalToStageZeroAlone) {
  const std::unique_ptr<core::HistogramAdapter> adapter = fitted_adapter(
      std::make_unique<ml::LogisticRegressionClassifier>(), "lr");
  const std::vector<const evm::Bytecode*> codes = dataset_codes();
  const std::vector<double> direct = adapter->predict_proba(codes);

  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::make_unique<BorrowedScorer>(*adapter));
  stages.push_back(std::make_unique<ConstScorer>(0.99, "heavy"));
  serve::CascadeScorer cascade(std::move(stages),
                               serve::CascadeConfig{1.0, 0.0});

  std::vector<ml::ScoredRow> rows(codes.size());
  cascade.score_batch(ml::BytecodeBatchView(codes.data(), codes.size()),
                      rows);
  ASSERT_EQ(rows.size(), direct.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].probability, direct[i]) << "row " << i;
    EXPECT_EQ(rows[i].stage, 0u);
  }
  EXPECT_EQ(cascade.stats().escalations_total, 0u);
}

TEST(Cascade, StageZeroFailurePropagates) {
  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::make_unique<HealingScorer>(1000, 0.5));
  serve::CascadeScorer cascade(std::move(stages), serve::CascadeConfig{});
  const evm::Bytecode code = code_with_first_byte(10);
  const evm::Bytecode* ptr = &code;
  std::vector<ml::ScoredRow> rows(1);
  EXPECT_THROW(cascade.score_batch(ml::BytecodeBatchView(&ptr, 1), rows),
               TransientError);
}

TEST(Cascade, HeavyStageFaultDegradesRowsToStageZeroScore) {
  const std::vector<evm::Bytecode> codes = {code_with_first_byte(45),
                                            code_with_first_byte(55)};
  std::vector<const evm::Bytecode*> ptrs;
  for (const evm::Bytecode& code : codes) ptrs.push_back(&code);

  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::make_unique<ByteProbScorer>());
  stages.push_back(std::make_unique<HealingScorer>(1000, 0.99));
  serve::CascadeScorer cascade(std::move(stages),
                               serve::CascadeConfig{0.0, 1.0});

  std::vector<ml::ScoredRow> rows(ptrs.size());
  cascade.score_batch(ml::BytecodeBatchView(ptrs.data(), ptrs.size()), rows);
  EXPECT_EQ(rows[0].probability, 0.45);
  EXPECT_EQ(rows[1].probability, 0.55);
  for (const ml::ScoredRow& row : rows) {
    EXPECT_TRUE(row.degraded);
    EXPECT_EQ(row.stage, 0u);  // the score is stage 0's
  }
  const serve::CascadeStats stats = cascade.stats();
  EXPECT_EQ(stats.degraded_total, 2u);
  EXPECT_EQ(stats.stages[1].faults, 1u);
  EXPECT_EQ(stats.stages[1].rows, 0u);  // the heavy stage never scored
  EXPECT_EQ(stats.stages[1].escalations, 2u);
}

TEST(Cascade, RejectsBadConstruction) {
  EXPECT_THROW(serve::CascadeScorer({}, serve::CascadeConfig{}),
               InvalidArgument);

  std::vector<std::unique_ptr<ml::Scorer>> with_null;
  with_null.push_back(std::make_unique<ByteProbScorer>());
  with_null.push_back(nullptr);
  EXPECT_THROW(
      serve::CascadeScorer(std::move(with_null), serve::CascadeConfig{}),
      InvalidArgument);

  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::make_unique<ByteProbScorer>());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(serve::CascadeScorer(std::move(stages),
                                    serve::CascadeConfig{nan, 0.5}),
               InvalidArgument);

  std::vector<std::unique_ptr<ml::Scorer>> stages2;
  stages2.push_back(std::make_unique<ByteProbScorer>());
  EXPECT_THROW(serve::CascadeScorer(std::move(stages2),
                                    serve::CascadeConfig{-0.1, 0.5}),
               InvalidArgument);
}

TEST(Cascade, MetricsBindAndExport) {
  const std::vector<evm::Bytecode> codes = {code_with_first_byte(50),
                                            code_with_first_byte(90)};
  std::vector<const evm::Bytecode*> ptrs;
  for (const evm::Bytecode& code : codes) ptrs.push_back(&code);

  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::make_unique<ByteProbScorer>());
  stages.push_back(std::make_unique<ConstScorer>(0.99, "heavy"));
  serve::CascadeScorer cascade(std::move(stages),
                               serve::CascadeConfig{0.4, 0.6});

  obs::MetricsRegistry registry;
  cascade.bind_metrics(registry);
  std::vector<ml::ScoredRow> rows(ptrs.size());
  cascade.score_batch(ml::BytecodeBatchView(ptrs.data(), ptrs.size()), rows);
  cascade.export_metrics(registry);

  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("serve_cascade_stage_rows"), std::string::npos);
  EXPECT_NE(text.find("serve_cascade_escalations"), std::string::npos);
  EXPECT_NE(text.find("serve_cascade_escalation_rate 0.5"),
            std::string::npos);
  EXPECT_NE(text.find("model=\"heavy\""), std::string::npos);
}

// --- through the scoring engine ---------------------------------------------

class CascadeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ml::RandomForestConfig forest;
    forest.n_trees = 8;
    forest.max_depth = 6;
    stage0_ = fitted_adapter(
        std::make_unique<ml::LogisticRegressionClassifier>(), "lr");
    heavy_ = fitted_adapter(
        std::make_unique<ml::RandomForestClassifier>(forest), "rf");
    for (const synth::LabeledContract& sample : dataset().samples) {
      addresses_.push_back(sample.address);
    }
  }

  /// Fresh cascade borrowing the shared fitted models (the engine wants
  /// its own Scorer instance per test, the models are the slow part).
  std::unique_ptr<serve::CascadeScorer> cascade(serve::CascadeConfig band) {
    std::vector<std::unique_ptr<ml::Scorer>> stages;
    stages.push_back(std::make_unique<BorrowedScorer>(*stage0_));
    stages.push_back(std::make_unique<BorrowedScorer>(*heavy_));
    return make_cascade(std::move(stages), band);
  }

  std::unique_ptr<core::HistogramAdapter> stage0_;
  std::unique_ptr<core::HistogramAdapter> heavy_;
  std::vector<evm::Address> addresses_;
};

TEST_F(CascadeEngineTest, WorkerCountsProduceBitIdenticalResults) {
  // A wide band forces real escalations; the escalation decision reads
  // only the row's own stage-0 probability, so 1 worker and 4 workers
  // must produce byte-for-byte the same scores, stages, and models.
  const serve::CascadeConfig band{0.05, 0.95};
  std::vector<std::vector<serve::ScoreResult>> by_workers;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const std::unique_ptr<serve::CascadeScorer> scorer = cascade(band);
    serve::EngineConfig config;
    config.workers = workers;
    config.max_batch = 8;
    config.max_wait_us = 50;
    serve::ScoringEngine engine(*dataset().explorer, *scorer, config);
    by_workers.push_back(engine.score_all(addresses_));
  }
  ASSERT_EQ(by_workers[0].size(), by_workers[1].size());
  std::size_t escalated = 0;
  for (std::size_t i = 0; i < by_workers[0].size(); ++i) {
    const serve::ScoreResult& one = by_workers[0][i];
    const serve::ScoreResult& four = by_workers[1][i];
    EXPECT_EQ(one.probability, four.probability) << "address " << i;
    EXPECT_EQ(one.stage, four.stage) << "address " << i;
    EXPECT_EQ(one.model, four.model) << "address " << i;
    EXPECT_EQ(one.status, four.status) << "address " << i;
    if (one.stage == 1) ++escalated;
  }
  EXPECT_GT(escalated, 0u) << "band [0.05, 0.95] never escalated — the "
                              "determinism check did not exercise stage 1";
}

TEST_F(CascadeEngineTest, EmptyBandMatchesSingleModelThroughEngine) {
  serve::EngineConfig config;
  config.workers = 2;
  config.max_batch = 8;

  const std::unique_ptr<serve::CascadeScorer> disabled =
      cascade(serve::CascadeConfig{1.0, 0.0});
  serve::ScoringEngine cascade_engine(*dataset().explorer, *disabled, config);
  const std::vector<serve::ScoreResult> via_cascade =
      cascade_engine.score_all(addresses_);

  serve::ScoringEngine single_engine(*dataset().explorer, *stage0_, config);
  const std::vector<serve::ScoreResult> via_single =
      single_engine.score_all(addresses_);

  ASSERT_EQ(via_cascade.size(), via_single.size());
  for (std::size_t i = 0; i < via_cascade.size(); ++i) {
    EXPECT_EQ(via_cascade[i].probability, via_single[i].probability)
        << "address " << i;
    EXPECT_EQ(via_cascade[i].stage, 0u);
  }
}

TEST_F(CascadeEngineTest, ResultCarriesStageAndModelThroughCache) {
  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::make_unique<BorrowedScorer>(*stage0_));
  stages.push_back(std::make_unique<ConstScorer>(0.9, "heavy-model"));
  serve::CascadeScorer scorer(std::move(stages),
                              serve::CascadeConfig{0.0, 1.0});
  serve::EngineConfig config;
  config.workers = 1;
  serve::ScoringEngine engine(*dataset().explorer, scorer, config);

  const serve::ScoreResult first = engine.submit(addresses_.front()).get();
  EXPECT_EQ(first.status, serve::ScoreStatus::kOk);
  EXPECT_EQ(first.stage, 1u);
  EXPECT_EQ(first.model, "heavy-model");
  EXPECT_FALSE(first.cache_hit);

  // The cache remembers the stage, so a hit reports the same attribution.
  const serve::ScoreResult second = engine.submit(addresses_.front()).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.stage, 1u);
  EXPECT_EQ(second.model, "heavy-model");
  EXPECT_EQ(second.probability, first.probability);
}

TEST_F(CascadeEngineTest, HeavyFaultDegradesIsNotCachedAndHeals) {
  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::make_unique<BorrowedScorer>(*stage0_));
  stages.push_back(std::make_unique<HealingScorer>(/*failures=*/1, 0.9));
  serve::CascadeScorer scorer(std::move(stages),
                              serve::CascadeConfig{0.0, 1.0});
  serve::EngineConfig config;
  config.workers = 1;
  config.max_batch = 1;
  serve::ScoringEngine engine(*dataset().explorer, scorer, config);

  const std::vector<double> direct =
      stage0_->predict_proba({&dataset().samples.front().code});

  // First request: the heavy stage throws, the row degrades to stage 0.
  const serve::ScoreResult degraded =
      engine.submit(addresses_.front()).get();
  EXPECT_EQ(degraded.status, serve::ScoreStatus::kDegraded);
  EXPECT_TRUE(degraded.ok());
  EXPECT_EQ(degraded.probability, direct.front());
  EXPECT_EQ(degraded.stage, 0u);
  EXPECT_EQ(engine.metrics().requests_degraded.value(), 1u);
  EXPECT_EQ(engine.metrics().requests_completed.value(), 1u);

  // Degraded scores are not cached: the same address retries the heavy
  // stage (now healed) instead of serving the fallback from the cache.
  const serve::ScoreResult healed = engine.submit(addresses_.front()).get();
  EXPECT_EQ(healed.status, serve::ScoreStatus::kOk);
  EXPECT_FALSE(healed.cache_hit);
  EXPECT_EQ(healed.stage, 1u);
  EXPECT_EQ(healed.probability, 0.9);

  // The healthy score does land in the cache.
  const serve::ScoreResult cached = engine.submit(addresses_.front()).get();
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(cached.stage, 1u);
  EXPECT_EQ(cached.probability, 0.9);
}

TEST_F(CascadeEngineTest, ChaosAccountingHoldsWithFaultyHeavyStage) {
  // Hostile upstream AND a flaky heavy stage at once: every submission
  // still resolves to exactly one definite status, and degraded rows are
  // counted as completed.
  chain::FaultConfig faults;
  faults.throw_rate = 0.2;
  faults.empty_rate = 0.1;
  faults.seed = 7;
  chain::FaultInjectingExplorer chaos(*dataset().explorer, faults);

  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::make_unique<BorrowedScorer>(*stage0_));
  stages.push_back(std::make_unique<HealingScorer>(/*failures=*/5, 0.9));
  serve::CascadeScorer scorer(std::move(stages),
                              serve::CascadeConfig{0.0, 1.0});

  serve::EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.extract_retry.max_attempts = 2;
  config.extract_retry.base_delay_us = 10;
  serve::ScoringEngine engine(chaos, scorer, config);

  std::size_t degraded = 0;
  const std::vector<serve::ScoreResult> results =
      engine.score_all(addresses_);
  ASSERT_EQ(results.size(), addresses_.size());
  for (const serve::ScoreResult& result : results) {
    if (result.status == serve::ScoreStatus::kDegraded) {
      ++degraded;
      EXPECT_EQ(result.stage, 0u);
      EXPECT_TRUE(result.ok());
    }
  }
  const serve::ServiceMetrics& m = engine.metrics();
  EXPECT_EQ(m.requests_completed.value() + m.requests_failed.value() +
                m.requests_shed.value(),
            m.requests_submitted.value());
  EXPECT_EQ(m.requests_degraded.value(), degraded);
}

// --- artifacts ---------------------------------------------------------------

TEST(CascadeArtifact, RoundTripIsBitIdentical) {
  ml::RandomForestConfig forest;
  forest.n_trees = 8;
  forest.max_depth = 6;
  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(fitted_adapter(
      std::make_unique<ml::LogisticRegressionClassifier>(), "lr"));
  stages.push_back(fitted_adapter(
      std::make_unique<ml::RandomForestClassifier>(forest), "rf"));
  serve::CascadeScorer cascade(std::move(stages),
                               serve::CascadeConfig{0.3, 0.7});

  std::stringstream buffer;
  serve::save_scorer_artifact(buffer, cascade);
  const std::unique_ptr<ml::Scorer> loaded =
      serve::load_scorer_artifact(buffer);

  auto* loaded_cascade = dynamic_cast<serve::CascadeScorer*>(loaded.get());
  ASSERT_NE(loaded_cascade, nullptr);
  EXPECT_EQ(loaded_cascade->config().lo, 0.3);
  EXPECT_EQ(loaded_cascade->config().hi, 0.7);
  EXPECT_EQ(loaded_cascade->stage_count(), 2u);
  EXPECT_EQ(loaded_cascade->name(), cascade.name());

  const std::vector<const evm::Bytecode*> codes = dataset_codes();
  std::vector<ml::ScoredRow> expected(codes.size()), actual(codes.size());
  const ml::BytecodeBatchView view(codes.data(), codes.size());
  cascade.score_batch(view, expected);
  loaded_cascade->score_batch(view, actual);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(expected[i].probability, actual[i].probability) << "row " << i;
    EXPECT_EQ(expected[i].stage, actual[i].stage) << "row " << i;
  }
}

TEST(CascadeArtifact, VersionOneArtifactStillLoads) {
  // A v1 artifact (pre-family layout) hand-assembled from the adapter's
  // parts must load through the family-agnostic reader.
  const std::unique_ptr<core::HistogramAdapter> adapter = fitted_adapter(
      std::make_unique<ml::LogisticRegressionClassifier>(), "legacy-lr");
  std::stringstream v1;
  v1.write(serve::kArtifactMagic, sizeof(serve::kArtifactMagic));
  common::write_u32(v1, 1);
  common::write_string(v1, adapter->name());
  const auto& mnemonics = adapter->vocabulary().mnemonics();
  common::write_u64(v1, mnemonics.size());
  for (const std::string& mnemonic : mnemonics) {
    common::write_string(v1, mnemonic);
  }
  adapter->model().save(v1);

  const std::unique_ptr<ml::Scorer> loaded = serve::load_scorer_artifact(v1);
  EXPECT_EQ(loaded->name(), "legacy-lr");
  const std::vector<const evm::Bytecode*> codes = dataset_codes();
  const std::vector<double> expected = adapter->predict_proba(codes);
  const std::vector<double> actual = loaded->score_probabilities(
      ml::BytecodeBatchView(codes.data(), codes.size()));
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "row " << i;
  }
}

TEST(CascadeArtifact, UnsupportedFamilyAndWrongLoaderAreRejected) {
  // A scorer family without a persistence format fails at save time.
  ConstScorer stub(0.5);
  std::stringstream buffer;
  EXPECT_THROW(serve::save_scorer_artifact(buffer, stub), StateError);

  // The typed histogram loader refuses a cascade artifact.
  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(fitted_adapter(
      std::make_unique<ml::LogisticRegressionClassifier>(), "lr"));
  serve::CascadeScorer cascade(std::move(stages), serve::CascadeConfig{});
  std::stringstream saved;
  serve::save_scorer_artifact(saved, cascade);
  EXPECT_THROW(serve::load_artifact(saved), ParseError);

  // Unknown family tag and truncated cascade payloads are corruption.
  std::stringstream mystery;
  mystery.write(serve::kArtifactMagic, sizeof(serve::kArtifactMagic));
  common::write_u32(mystery, serve::kArtifactVersion);
  common::write_string(mystery, "mystery");
  EXPECT_THROW(serve::load_scorer_artifact(mystery), ParseError);

  std::stringstream full;
  serve::save_scorer_artifact(full, cascade);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(serve::load_scorer_artifact(truncated), ParseError);
}

}  // namespace
}  // namespace phishinghook
