// SHAP: local accuracy (sum phi + E[f] == f(x)) for exact TreeSHAP, and
// sanity of the sampling estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/shap.hpp"

namespace phishinghook::ml {
namespace {

struct Blob {
  Matrix x;
  std::vector<int> y;
};

Blob make_blobs(std::size_t n_per_class, std::size_t d, double separation,
                std::uint64_t seed) {
  common::Rng rng(seed);
  Blob blob;
  blob.x = Matrix(2 * n_per_class, d);
  for (std::size_t i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    blob.y.push_back(label);
    for (std::size_t c = 0; c < d; ++c) {
      blob.x.at(i, c) = rng.normal() + (label == 1 ? separation : 0.0);
    }
  }
  return blob;
}

TEST(TreeShap, LocalAccuracyOnSingleTree) {
  const Blob blob = make_blobs(50, 4, 2.0, 1);
  DecisionTreeConfig config;
  config.max_depth = 5;
  DecisionTreeClassifier tree(config);
  tree.fit(blob.x, blob.y);

  for (std::size_t r = 0; r < 10; ++r) {
    const auto row = blob.x.row(r);
    const ShapExplanation explanation = tree_shap(tree.nodes(), row, 4);
    double total = explanation.expected_value;
    for (double phi : explanation.values) total += phi;
    EXPECT_NEAR(total, tree.predict_row(row), 1e-9) << "row " << r;
  }
}

TEST(TreeShap, LocalAccuracyOnForest) {
  const Blob blob = make_blobs(60, 5, 2.0, 2);
  RandomForestConfig config;
  config.n_trees = 15;
  config.max_depth = 6;
  RandomForestClassifier forest(config);
  forest.fit(blob.x, blob.y);

  const auto probs = forest.predict_proba(blob.x);
  for (std::size_t r = 0; r < 8; ++r) {
    const ShapExplanation explanation = tree_shap(forest, blob.x.row(r));
    double total = explanation.expected_value;
    for (double phi : explanation.values) total += phi;
    EXPECT_NEAR(total, probs[r], 1e-9) << "row " << r;
  }
}

TEST(TreeShap, ExpectedValueIsTrainingMean) {
  // With bootstrap weights the forest's expected value tracks the positive
  // rate of the (balanced) training set.
  const Blob blob = make_blobs(60, 3, 2.0, 3);
  RandomForestConfig config;
  config.n_trees = 20;
  RandomForestClassifier forest(config);
  forest.fit(blob.x, blob.y);
  const ShapExplanation explanation = tree_shap(forest, blob.x.row(0));
  EXPECT_NEAR(explanation.expected_value, 0.5, 0.08);
}

TEST(TreeShap, InformativeFeatureDominates) {
  // Feature 1 carries all the signal; its |phi| must dominate.
  common::Rng rng(4);
  Matrix x(120, 3);
  std::vector<int> y;
  for (std::size_t i = 0; i < 120; ++i) {
    const int label = static_cast<int>(i % 2);
    y.push_back(label);
    x.at(i, 0) = rng.normal();
    x.at(i, 1) = rng.normal() + 5.0 * label;
    x.at(i, 2) = rng.normal();
  }
  RandomForestConfig config;
  config.n_trees = 20;
  RandomForestClassifier forest(config);
  forest.fit(x, y);

  double mass[3] = {0, 0, 0};
  for (std::size_t r = 0; r < 30; ++r) {
    const ShapExplanation explanation = tree_shap(forest, x.row(r));
    for (int c = 0; c < 3; ++c) {
      mass[c] += std::fabs(explanation.values[static_cast<std::size_t>(c)]);
    }
  }
  EXPECT_GT(mass[1], 5.0 * mass[0]);
  EXPECT_GT(mass[1], 5.0 * mass[2]);
}

TEST(TreeShap, AllRowsBatch) {
  const Blob blob = make_blobs(30, 3, 2.0, 5);
  RandomForestConfig config;
  config.n_trees = 10;
  RandomForestClassifier forest(config);
  forest.fit(blob.x, blob.y);
  const auto all = tree_shap_all(forest, blob.x);
  EXPECT_EQ(all.size(), blob.x.rows());
  EXPECT_EQ(all[0].values.size(), 3u);
}

TEST(TreeShap, UnfittedForestThrows) {
  RandomForestClassifier forest;
  const std::vector<double> row = {1.0, 2.0};
  EXPECT_THROW(tree_shap(forest, row), StateError);
}

TEST(SamplingShap, AgreesWithLinearModelAttribution) {
  // f(x) = 2 x0 - 3 x1: Shapley values against a zero background are
  // exactly (2 x0, -3 x1).
  auto predict = [](std::span<const double> row) {
    return 2.0 * row[0] - 3.0 * row[1];
  };
  Matrix background(1, 2);  // the zero row
  const std::vector<double> x = {1.5, 2.0};
  const ShapExplanation explanation =
      sampling_shap(predict, x, background, 200, 7);
  EXPECT_NEAR(explanation.values[0], 3.0, 1e-9);
  EXPECT_NEAR(explanation.values[1], -6.0, 1e-9);
  EXPECT_NEAR(explanation.expected_value, 0.0, 1e-9);
}

TEST(SamplingShap, LocalAccuracyInExpectation) {
  auto predict = [](std::span<const double> row) {
    return row[0] * row[1] + row[2];  // interaction term
  };
  common::Rng rng(8);
  Matrix background(20, 3);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 3; ++c) background.at(r, c) = rng.normal();
  }
  const std::vector<double> x = {1.0, 2.0, -0.5};
  const ShapExplanation explanation =
      sampling_shap(predict, x, background, 500, 9);
  double total = explanation.expected_value;
  for (double phi : explanation.values) total += phi;
  EXPECT_NEAR(total, predict(x), 0.15);
}

}  // namespace
}  // namespace phishinghook::ml
