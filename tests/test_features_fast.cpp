// Equivalence suite for the fast paths (DESIGN.md §10): the LUT-compiled
// feature transforms and the flattened tree ensembles must be
// *bit-identical* to the legacy Disassembly/string and node-walk oracles —
// EXPECT_EQ on doubles throughout, approximate equality would hide exactly
// the reordering bugs this suite exists to catch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/features.hpp"
#include "ml/catboost.hpp"
#include "ml/flat_tree.hpp"
#include "ml/gbdt_common.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/lightgbm.hpp"
#include "ml/random_forest.hpp"
#include "synth/dataset_builder.hpp"

namespace phishinghook::core {
namespace {

using ml::models::TokenSequence;

/// Adversarial bytecodes for the single-pass byte scanner: truncated PUSH
/// immediates at the end of the code, undefined opcode bytes (UNKNOWN_0xXX),
/// PUSH0, and the empty code.
std::vector<Bytecode> edge_codes() {
  return {
      Bytecode::from_hex("0x"),          // empty
      Bytecode::from_hex("0x61ff"),      // PUSH2, one of two immediate bytes
      Bytecode::from_hex("0x7f"),        // bare PUSH32, no immediate bytes
      Bytecode::from_hex("0x5f"),        // PUSH0 (no immediate)
      Bytecode::from_hex("0x0c21a5ee"),  // undefined bytes only
      // Mixed: real prologue, INVALID, undefined, truncated PUSH3.
      Bytecode::from_hex("0x6080604052fe0c62aabb"),
  };
}

/// Small synthesized corpus (deterministic): realistic opcode mix including
/// duplicated campaign bytecodes (exercises the FrequencyEncoder fit cache).
std::vector<Bytecode> synth_corpus() {
  synth::DatasetConfig config;
  config.target_size = 60;
  config.seed = 77;
  const synth::BuiltDataset dataset = synth::DatasetBuilder(config).build();
  std::vector<Bytecode> corpus;
  corpus.reserve(dataset.samples.size());
  for (const synth::LabeledContract& sample : dataset.samples) {
    corpus.push_back(sample.code);
  }
  return corpus;
}

std::vector<const Bytecode*> pointers(const std::vector<Bytecode>& codes) {
  std::vector<const Bytecode*> out;
  out.reserve(codes.size());
  for (const Bytecode& code : codes) out.push_back(&code);
  return out;
}

// --- HistogramVocabulary ------------------------------------------------------

TEST(HistogramFast, TransformMatchesLegacyOnCorpus) {
  const std::vector<Bytecode> corpus = synth_corpus();
  HistogramVocabulary vocab;
  vocab.fit(pointers(corpus));
  ASSERT_GT(vocab.size(), 0u);
  for (const Bytecode& code : corpus) {
    const std::vector<double> fast = vocab.transform(code);
    const std::vector<double> legacy = vocab.transform_legacy(code);
    ASSERT_EQ(fast.size(), legacy.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast[i], legacy[i]) << "column " << i;
    }
  }
}

TEST(HistogramFast, TransformMatchesLegacyOnEdgeCases) {
  // Fit on the edge codes themselves so UNKNOWN_0xXX and the truncated
  // PUSHes are *in* vocabulary, then also transform out-of-vocabulary
  // corpus codes through the edge vocabulary.
  const std::vector<Bytecode> edges = edge_codes();
  HistogramVocabulary vocab;
  vocab.fit(pointers(edges));
  const std::vector<Bytecode> corpus = synth_corpus();
  for (const std::vector<Bytecode>* set : {&edges, &corpus}) {
    for (const Bytecode& code : *set) {
      ASSERT_EQ(vocab.transform(code), vocab.transform_legacy(code));
    }
  }
}

TEST(HistogramFast, EdgeVocabularyContainsUnknownAndTruncatedPush) {
  const std::vector<Bytecode> edges = edge_codes();
  HistogramVocabulary vocab;
  vocab.fit(pointers(edges));
  const auto& names = vocab.mnemonics();
  const auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("PUSH2"));          // truncated PUSH still counts
  EXPECT_TRUE(has("PUSH32"));         // bare trailing PUSH32
  EXPECT_TRUE(has("PUSH0"));
  EXPECT_TRUE(has("UNKNOWN_0x0c"));   // undefined byte
  EXPECT_TRUE(has("INVALID"));        // 0xfe is a *defined* opcode
}

TEST(HistogramFast, TransformIntoReusesOneBuffer) {
  const std::vector<Bytecode> corpus = synth_corpus();
  HistogramVocabulary vocab;
  vocab.fit(pointers(corpus));
  std::vector<double> buffer(vocab.size(), -1.0);  // dirty: call must zero it
  for (const Bytecode& code : corpus) {
    vocab.transform_into(code, buffer);
    ASSERT_EQ(buffer, vocab.transform_legacy(code));
  }
}

TEST(HistogramFast, TransformIntoRejectsWrongSize) {
  const Bytecode code = Bytecode::from_hex("0x6080604052");
  HistogramVocabulary vocab;
  vocab.fit({&code});
  std::vector<double> wrong(vocab.size() + 1, 0.0);
  EXPECT_THROW(vocab.transform_into(code, wrong), InvalidArgument);
}

TEST(HistogramFast, FromMnemonicsRebuildsTheLut) {
  const std::vector<Bytecode> corpus = synth_corpus();
  HistogramVocabulary fitted;
  fitted.fit(pointers(corpus));
  const HistogramVocabulary restored =
      HistogramVocabulary::from_mnemonics(fitted.mnemonics());
  for (const Bytecode& code : corpus) {
    ASSERT_EQ(restored.transform(code), fitted.transform_legacy(code));
  }
}

TEST(HistogramFast, TransformAllMatchesPerRowLegacy) {
  const std::vector<Bytecode> corpus = synth_corpus();
  HistogramVocabulary vocab;
  vocab.fit(pointers(corpus));
  const ml::Matrix m = vocab.transform_all(pointers(corpus));
  ASSERT_EQ(m.rows(), corpus.size());
  ASSERT_EQ(m.cols(), vocab.size());
  for (std::size_t r = 0; r < corpus.size(); ++r) {
    const std::vector<double> legacy = vocab.transform_legacy(corpus[r]);
    const auto row = m.row(r);
    for (std::size_t c = 0; c < legacy.size(); ++c) {
      ASSERT_EQ(row[c], legacy[c]) << "row " << r << " col " << c;
    }
  }
}

TEST(HistogramFast, BankedHistogramMatchesLegacyAcrossSizeThreshold) {
  // transform_into switches to the 4-bank u32 histogram at
  // kBankedHistogramBytes; codes straddling the threshold must agree with
  // the legacy scan on both sides of the switch. Random bytes land on PUSH
  // opcodes often enough to exercise the arithmetic immediate skip,
  // including a truncated trailing PUSH.
  common::Rng rng(911);
  const std::size_t kb = HistogramVocabulary::kBankedHistogramBytes;
  std::vector<Bytecode> codes;
  for (const std::size_t n : {kb - 1, kb, kb + 1, 2 * kb + 33}) {
    std::vector<std::uint8_t> bytes(n);
    for (std::uint8_t& b : bytes) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    codes.emplace_back(std::move(bytes));
  }
  // A small code rides along so the direct-scatter path shares the vocab.
  codes.push_back(Bytecode::from_hex("0x6080604052fe"));
  HistogramVocabulary vocab;
  vocab.fit(pointers(codes));
  for (const Bytecode& code : codes) {
    ASSERT_EQ(vocab.transform(code), vocab.transform_legacy(code));
  }
}

// --- FrequencyEncoder ---------------------------------------------------------

void expect_tensors_identical(const ml::nn::Tensor& fast,
                              const ml::nn::Tensor& legacy) {
  ASSERT_EQ(fast.shape(), legacy.shape());
  const auto shape = fast.shape();
  for (std::size_t c = 0; c < shape[0]; ++c) {
    for (std::size_t h = 0; h < shape[1]; ++h) {
      for (std::size_t w = 0; w < shape[2]; ++w) {
        ASSERT_EQ(fast.at3(c, h, w), legacy.at3(c, h, w))
            << "pixel (" << c << "," << h << "," << w << ")";
      }
    }
  }
}

TEST(FrequencyFast, TransformMatchesLegacyOnFittedCorpus) {
  // Fitted codes hit the interned pixel cache — still must equal the
  // full legacy recomputation.
  const std::vector<Bytecode> corpus = synth_corpus();
  FrequencyEncoder encoder;
  encoder.fit(pointers(corpus));
  for (const Bytecode& code : corpus) {
    expect_tensors_identical(encoder.transform(code, 16),
                             encoder.transform_legacy(code, 16));
  }
}

TEST(FrequencyFast, TransformMatchesLegacyOnHeldOutEdgeCases) {
  // Held-out codes miss the cache and run the LUT scan, including
  // truncated PUSH operands and UNKNOWN mnemonics.
  const std::vector<Bytecode> corpus = synth_corpus();
  FrequencyEncoder encoder;
  encoder.fit(pointers(corpus));
  for (const Bytecode& code : edge_codes()) {
    expect_tensors_identical(encoder.transform(code, 8),
                             encoder.transform_legacy(code, 8));
  }
}

TEST(FrequencyFast, EdgeCorpusFitMatchesLegacy) {
  // Fit *on* the adversarial codes: operand table keyed by truncated
  // (zero-extended) immediates, gas table with UNKNOWN gas-NaN rows.
  const std::vector<Bytecode> edges = edge_codes();
  FrequencyEncoder encoder;
  encoder.fit(pointers(edges));
  for (const Bytecode& code : edges) {
    expect_tensors_identical(encoder.transform(code, 8),
                             encoder.transform_legacy(code, 8));
  }
}

// --- NgramTokenizer -----------------------------------------------------------

/// The pre-optimization fit verbatim (ordered map + reverse sort), as the
/// oracle that the unordered_map + explicit-comparator rewrite must match
/// id-for-id.
class LegacyNgramOracle {
 public:
  explicit LegacyNgramOracle(std::size_t vocab_size)
      : vocab_size_(vocab_size) {}

  void fit(const std::vector<const Bytecode*>& corpus) {
    std::map<std::uint32_t, std::size_t> counts;
    for (const Bytecode* code : corpus) {
      for (std::size_t offset = 0; offset < code->size(); offset += 3) {
        ++counts[gram_at(*code, offset)];
      }
    }
    std::vector<std::pair<std::size_t, std::uint32_t>> ranked;
    ranked.reserve(counts.size());
    for (const auto& [gram, count] : counts) ranked.emplace_back(count, gram);
    std::sort(ranked.rbegin(), ranked.rend());
    gram_ids_.clear();
    const std::size_t keep = std::min(ranked.size(), vocab_size_ - 1);
    for (std::size_t i = 0; i < keep; ++i) {
      gram_ids_.emplace(ranked[i].second, i + 1);
    }
  }

  TokenSequence transform(const Bytecode& code) const {
    TokenSequence out;
    for (std::size_t offset = 0; offset < code.size(); offset += 3) {
      const auto it = gram_ids_.find(gram_at(code, offset));
      out.push_back(it == gram_ids_.end() ? 0 : it->second);
    }
    if (out.empty()) out.push_back(0);
    return out;
  }

 private:
  static std::uint32_t gram_at(const Bytecode& code, std::size_t offset) {
    std::uint32_t gram = 0;
    for (std::size_t b = 0; b < 3; ++b) {
      gram = (gram << 8) |
             (offset + b < code.size() ? code.bytes()[offset + b] : 0u);
    }
    return gram;
  }

  std::size_t vocab_size_;
  std::map<std::uint32_t, std::size_t> gram_ids_;
};

TEST(NgramFast, VocabularyAndIdsMatchLegacyOracle) {
  const std::vector<Bytecode> corpus = synth_corpus();
  // A small vocab forces the frequency cutoff (and its tie-breaking) to
  // actually bite.
  for (const std::size_t vocab_size : {8u, 64u, 4096u}) {
    NgramTokenizer tokenizer(vocab_size);
    LegacyNgramOracle oracle(vocab_size);
    tokenizer.fit(pointers(corpus));
    oracle.fit(pointers(corpus));
    for (const Bytecode& code : corpus) {
      ASSERT_EQ(tokenizer.transform(code), oracle.transform(code));
    }
    for (const Bytecode& code : edge_codes()) {
      ASSERT_EQ(tokenizer.transform(code), oracle.transform(code));
    }
  }
}

// --- Flattened tree ensembles -------------------------------------------------

struct Dataset {
  ml::Matrix x;
  std::vector<int> y;
};

Dataset make_dataset(std::size_t n, std::size_t d, std::uint64_t seed) {
  common::Rng rng(seed);
  Dataset data;
  data.x = ml::Matrix(n, d);
  data.y.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      data.x.at(r, c) = rng.uniform(-3.0, 3.0);
    }
    const double margin = data.x.at(r, 0) + 0.5 * data.x.at(r, 1) -
                          0.25 * data.x.at(r, 2) + rng.normal(0.0, 0.5);
    data.y.push_back(margin > 0.0 ? 1 : 0);
  }
  return data;
}

/// Fit, then assert flat == node-walk on train and held-out rows, then
/// assert a save/load round trip reproduces the flat predictions.
template <typename Model>
void expect_flat_matches_nodewalk(Model& model, const Dataset& train,
                                  const Dataset& test) {
  model.fit(train.x, train.y);
  for (const Dataset* data : {&train, &test}) {
    const std::vector<double> flat = model.predict_proba(data->x);
    const std::vector<double> walked = model.predict_proba_nodewalk(data->x);
    ASSERT_EQ(flat.size(), walked.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      ASSERT_EQ(flat[i], walked[i]) << "row " << i;
    }
  }
  std::stringstream bytes;
  model.save(bytes);
  const std::unique_ptr<ml::TabularClassifier> loaded =
      ml::TabularClassifier::load(bytes);
  ASSERT_EQ(loaded->predict_proba(test.x), model.predict_proba(test.x));
}

TEST(FlatEnsemble, RandomForestMatchesNodewalk) {
  const Dataset train = make_dataset(200, 7, 301);
  const Dataset test = make_dataset(97, 7, 302);  // odd size: partial block
  ml::RandomForestConfig config;
  config.n_trees = 24;
  config.max_depth = 9;
  ml::RandomForestClassifier model(config);
  expect_flat_matches_nodewalk(model, train, test);
}

TEST(FlatEnsemble, GradientBoostingMatchesNodewalk) {
  const Dataset train = make_dataset(180, 6, 303);
  const Dataset test = make_dataset(65, 6, 304);
  ml::GradientBoostingConfig config;
  config.n_rounds = 15;
  config.max_depth = 4;
  config.subsample = 0.8;
  config.colsample = 0.8;
  ml::GradientBoostingClassifier model(config);
  expect_flat_matches_nodewalk(model, train, test);
}

TEST(FlatEnsemble, LightGbmMatchesNodewalk) {
  const Dataset train = make_dataset(180, 6, 305);
  const Dataset test = make_dataset(63, 6, 306);
  ml::LightGbmConfig config;
  config.n_rounds = 12;
  ml::LightGbmClassifier model(config);
  expect_flat_matches_nodewalk(model, train, test);
}

TEST(FlatEnsemble, CatBoostMatchesNodewalk) {
  const Dataset train = make_dataset(180, 6, 307);
  const Dataset test = make_dataset(70, 6, 308);
  ml::CatBoostConfig config;
  config.n_rounds = 10;
  config.depth = 5;
  ml::CatBoostClassifier model(config);
  expect_flat_matches_nodewalk(model, train, test);
}

// --- Traversal x row-block sweep ----------------------------------------------
//
// Every traversal mode (auto, forced walk, forced bitvector) at every
// supported row block must reproduce the node-walk oracle bit-for-bit, on
// odd row counts that straddle block boundaries. This is the contract that
// lets bench_infer sweep configurations without a correctness caveat.

using Traversal = ml::FlatTreeEnsemble::Traversal;

template <typename Model>
void expect_sweep_matches_nodewalk(ml::FlatTreeEnsemble flat,
                                   const Model& model,
                                   std::size_t n_features) {
  for (const std::size_t rows :
       {std::size_t{63}, std::size_t{65}, std::size_t{97}}) {
    const Dataset probe = make_dataset(rows, n_features, 500 + rows);
    const std::vector<double> walked = model.predict_proba_nodewalk(probe.x);
    for (const Traversal traversal :
         {Traversal::kAuto, Traversal::kWalk, Traversal::kBitvector}) {
      for (const std::size_t block :
           {std::size_t{4}, std::size_t{16}, std::size_t{32}, std::size_t{64},
            std::size_t{128}}) {
        flat.set_traversal(traversal);
        flat.set_row_block(block);
        const std::vector<double> fast = flat.predict_proba(probe.x);
        ASSERT_EQ(fast.size(), walked.size());
        for (std::size_t i = 0; i < fast.size(); ++i) {
          ASSERT_EQ(fast[i], walked[i])
              << "traversal " << static_cast<int>(traversal) << " block "
              << block << " rows " << rows << " row " << i;
        }
      }
    }
  }
}

TEST(FlatEnsembleSweep, RandomForestAllTraversalsAllBlocks) {
  const Dataset train = make_dataset(220, 7, 401);
  ml::RandomForestConfig config;
  config.n_trees = 12;
  // Depth 9 grows trees past 64 leaves: forced kBitvector must mix
  // QuickScorer trees with walk-fallback trees inside one ensemble.
  config.max_depth = 9;
  ml::RandomForestClassifier model(config);
  model.fit(train.x, train.y);
  expect_sweep_matches_nodewalk(
      ml::FlatTreeEnsemble::from_forest(model.trees()), model, 7);
}

TEST(FlatEnsembleSweep, GradientBoostingAllTraversalsAllBlocks) {
  const Dataset train = make_dataset(200, 6, 402);
  ml::GradientBoostingConfig config;
  config.n_rounds = 14;
  config.max_depth = 4;
  ml::GradientBoostingClassifier model(config);
  model.fit(train.x, train.y);
  expect_sweep_matches_nodewalk(
      ml::FlatTreeEnsemble::from_boosted(model.trees(), model.base_score()),
      model, 6);
}

TEST(FlatEnsembleSweep, LightGbmAllTraversalsAllBlocks) {
  const Dataset train = make_dataset(200, 6, 403);
  ml::LightGbmConfig config;
  config.n_rounds = 12;
  ml::LightGbmClassifier model(config);
  model.fit(train.x, train.y);
  expect_sweep_matches_nodewalk(
      ml::FlatTreeEnsemble::from_boosted(model.trees(), model.base_score()),
      model, 6);
}

TEST(FlatEnsembleSweep, CatBoostAllTraversalsAllBlocks) {
  const Dataset train = make_dataset(200, 6, 404);
  ml::CatBoostConfig config;
  config.n_rounds = 10;
  config.depth = 6;
  ml::CatBoostClassifier model(config);
  model.fit(train.x, train.y);
  expect_sweep_matches_nodewalk(
      ml::FlatTreeEnsemble::from_oblivious(model.trees(), model.base_score()),
      model, 6);
}

/// Complete binary tree of the given depth (2^depth leaves) with
/// deterministic pseudo-random splits; `extra_split` converts the first
/// leaf into one more split, pushing the leaf count past a power of two.
std::vector<ml::TreeNode> complete_tree(std::size_t depth, bool extra_split,
                                        std::size_t n_features,
                                        std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<ml::TreeNode> nodes;
  const std::function<int(std::size_t)> grow =
      [&](std::size_t level) -> int {
    const int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    if (level == 0) {
      nodes[id].value = rng.uniform(-1.0, 1.0);
      return id;  // feature stays -1: leaf
    }
    nodes[id].feature = static_cast<int>(rng.next_below(n_features));
    nodes[id].threshold = rng.uniform(-2.0, 2.0);
    const int left = grow(level - 1);
    const int right = grow(level - 1);
    nodes[id].left = left;  // re-index: grow() may reallocate `nodes`
    nodes[id].right = right;
    return id;
  };
  grow(depth);
  if (extra_split) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!nodes[i].is_leaf()) continue;
      const int left = static_cast<int>(nodes.size());
      nodes.emplace_back();
      nodes.emplace_back();
      nodes[left].value = 0.25;
      nodes[left + 1].value = -0.25;
      nodes[i].feature = 0;
      nodes[i].threshold = 0.5;
      nodes[i].left = left;
      nodes[i].right = left + 1;
      break;
    }
  }
  return nodes;
}

TEST(FlatEnsembleSweep, BitvectorEligibilityBoundaryAt64Leaves) {
  // A depth-6 complete tree has exactly 64 leaves — the last QuickScorer-
  // eligible shape (leaf masks are one u64). One extra split (65 leaves)
  // must silently fall back to the walk, with identical predictions.
  const std::size_t n_features = 5;
  const Dataset probe = make_dataset(65, n_features, 405);
  for (const bool extra : {false, true}) {
    std::vector<std::vector<ml::TreeNode>> trees;
    trees.push_back(complete_tree(6, extra, n_features, 406));
    ml::FlatTreeEnsemble flat = ml::FlatTreeEnsemble::from_boosted(trees, 0.1);
    flat.set_traversal(Traversal::kBitvector);
    EXPECT_EQ(flat.bitvector_tree_count(), extra ? 0u : 1u);
    const std::vector<double> bitvector = flat.predict_proba(probe.x);
    flat.set_traversal(Traversal::kWalk);
    ASSERT_EQ(flat.predict_proba(probe.x), bitvector);
  }
}

TEST(FlatEnsembleSweep, DenormalThresholdsStayBitIdentical) {
  // Thresholds at denormal spacing around zero: interning must keep each
  // distinct double distinct, and every traversal must agree with the
  // scalar oracle exactly at the boundary values themselves.
  const double denorm = std::numeric_limits<double>::denorm_min();
  ml::ObliviousTree tree;
  tree.features = {0, 1, 0};
  tree.thresholds = {0.0, denorm, -denorm};
  tree.leaf_values.resize(8);
  for (std::size_t i = 0; i < 8; ++i) {
    tree.leaf_values[i] = 0.125 * static_cast<double>(i) - 0.5;
  }
  const std::vector<ml::ObliviousTree> trees = {tree};
  const double base_score = 0.25;

  const std::vector<double> grid = {-2.0 * denorm, -denorm, -0.0, 0.0,
                                    denorm,        2.0 * denorm, 1.0};
  ml::Matrix x(grid.size() * grid.size(), 2);
  std::size_t r = 0;
  for (const double a : grid) {
    for (const double b : grid) {
      x.at(r, 0) = a;
      x.at(r, 1) = b;
      ++r;
    }
  }

  ml::FlatTreeEnsemble flat =
      ml::FlatTreeEnsemble::from_oblivious(trees, base_score);
  for (const Traversal traversal :
       {Traversal::kAuto, Traversal::kWalk, Traversal::kBitvector}) {
    flat.set_traversal(traversal);
    const std::vector<double> got = flat.predict_proba(x);
    ASSERT_EQ(got.size(), x.rows());
    for (std::size_t row = 0; row < x.rows(); ++row) {
      std::size_t leaf = 0;
      for (std::size_t level = 0; level < tree.features.size(); ++level) {
        const std::size_t feature =
            static_cast<std::size_t>(tree.features[level]);
        leaf = (leaf << 1) |
               (x.at(row, feature) > tree.thresholds[level] ? 1u : 0u);
      }
      const double want = ml::gbdt::sigmoid(base_score + tree.leaf_values[leaf]);
      ASSERT_EQ(got[row], want)
          << "traversal " << static_cast<int>(traversal) << " row " << row;
    }
  }
}

TEST(FlatEnsemble, PredictBeforeFitThrows) {
  const Dataset data = make_dataset(10, 4, 309);
  EXPECT_THROW(ml::RandomForestClassifier().predict_proba(data.x), StateError);
  EXPECT_THROW(ml::GradientBoostingClassifier().predict_proba(data.x),
               StateError);
  EXPECT_THROW(ml::LightGbmClassifier().predict_proba(data.x), StateError);
  EXPECT_THROW(ml::CatBoostClassifier().predict_proba(data.x), StateError);
}

}  // namespace
}  // namespace phishinghook::core
