// Execution tracing: the per-instruction event stream and its propagation
// through nested call frames.
#include <gtest/gtest.h>

#include "chain/state.hpp"
#include "common/csv.hpp"
#include "evm/disassembler.hpp"
#include "evm/interpreter.hpp"
#include "evm/trace.hpp"
#include "synth/assembler.hpp"
#include "synth/contract_synthesizer.hpp"

namespace phishinghook::evm {
namespace {

using chain::State;
using synth::Assembler;

class TraceTest : public ::testing::Test {
 protected:
  ExecutionResult run_traced(const Bytecode& code) {
    state_.set_code(contract_, code);
    state_.set_trace(&recorder_);
    Message msg;
    msg.caller = caller_;
    msg.origin = caller_;
    msg.code_address = contract_;
    msg.storage_address = contract_;
    msg.gas = 1'000'000;
    return state_.call(msg, CallKind::kCall, 0);
  }

  State state_;
  TraceRecorder recorder_;
  Address caller_ =
      Address::from_hex("0x00000000000000000000000000000000000000aa");
  Address contract_ =
      Address::from_hex("0x00000000000000000000000000000000000000cc");
};

TEST_F(TraceTest, RecordsEveryInstructionInOrder) {
  // PUSH1 0x80 PUSH1 0x40 MSTORE STOP.
  const ExecutionResult result = run_traced(Bytecode::from_hex("0x608060405200"));
  EXPECT_EQ(result.status, Status::kSuccess);
  ASSERT_EQ(recorder_.size(), 4u);
  EXPECT_EQ(recorder_.entries()[0].mnemonic, "PUSH1");
  EXPECT_EQ(recorder_.entries()[0].pc, 0u);
  EXPECT_EQ(recorder_.entries()[0].stack_size, 0u);
  EXPECT_EQ(recorder_.entries()[1].pc, 2u);
  EXPECT_EQ(recorder_.entries()[1].stack_size, 1u);
  EXPECT_EQ(recorder_.entries()[2].mnemonic, "MSTORE");
  EXPECT_EQ(recorder_.entries()[2].stack_size, 2u);
  EXPECT_EQ(recorder_.entries()[3].mnemonic, "STOP");
  // Gas decreases monotonically along the trace.
  for (std::size_t i = 1; i < recorder_.size(); ++i) {
    EXPECT_LT(recorder_.entries()[i].gas_left,
              recorder_.entries()[i - 1].gas_left);
  }
  EXPECT_EQ(recorder_.count("PUSH1"), 2u);
}

TEST_F(TraceTest, NestedCallFramesCarryDepth) {
  // Callee: STOP. Caller CALLs it.
  Assembler callee;
  callee.op(Op::kStop);
  const Address callee_addr =
      Address::from_hex("0x00000000000000000000000000000000000000dd");
  state_.set_code(callee_addr, callee.build());

  Assembler a;
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);
  a.push_bytes(callee_addr.bytes());
  a.push(100000);
  a.op(Op::kCall).op(Op::kPop).op(Op::kStop);
  const ExecutionResult result = run_traced(a.build());
  EXPECT_EQ(result.status, Status::kSuccess);

  bool saw_depth0 = false, saw_depth1 = false;
  for (const TraceEntry& entry : recorder_.entries()) {
    if (entry.depth == 0) saw_depth0 = true;
    if (entry.depth == 1) {
      saw_depth1 = true;
      EXPECT_EQ(entry.mnemonic, "STOP");
    }
  }
  EXPECT_TRUE(saw_depth0);
  EXPECT_TRUE(saw_depth1);
}

TEST_F(TraceTest, CsvExportParses) {
  (void)run_traced(Bytecode::from_hex("0x6001600201"));  // 1 + 2
  const auto table = common::parse_csv(recorder_.to_csv());
  EXPECT_EQ(table.header[3], "mnemonic");
  ASSERT_EQ(table.rows.size(), recorder_.size());
  EXPECT_EQ(table.rows[2][3], "ADD");
}

TEST_F(TraceTest, DetachedSinkStopsRecording) {
  (void)run_traced(Bytecode::from_hex("0x00"));
  const std::size_t before = recorder_.size();
  state_.set_trace(nullptr);
  Message msg;
  msg.caller = caller_;
  msg.origin = caller_;
  msg.code_address = contract_;
  msg.storage_address = contract_;
  (void)state_.call(msg, CallKind::kCall, 0);
  EXPECT_EQ(recorder_.size(), before);
}

TEST_F(TraceTest, TracesASyntheticDrainEndToEnd) {
  // Forensics scenario: trace a phishing claim and verify the drain CALL
  // actually executed (not just sits in the bytecode).
  common::Rng rng(9);
  const synth::ContractSynthesizer synthesizer;
  const Address owner = synth::random_address(rng);
  const auto drainer =
      synthesizer.phishing(chain::Month{0}, rng, owner);
  const Address addr = state_.install_code(caller_, drainer.runtime);
  state_.set_balance(addr, evm::U256(1000));
  state_.set_trace(&recorder_);

  // Hit every dispatcher selector until the balance moves.
  const evm::Disassembly listing =
      evm::Disassembler().disassemble(drainer.runtime);
  for (const evm::Instruction& ins : listing.instructions) {
    if (ins.mnemonic != "PUSH4" || !ins.operand.has_value()) continue;
    Message msg;
    msg.caller = caller_;
    msg.origin = caller_;
    msg.code_address = addr;
    msg.storage_address = addr;
    msg.gas = 3'000'000;
    msg.data.resize(36, 0);
    const auto selector_bytes = ins.operand->to_bytes_be();
    std::copy(selector_bytes.end() - 4, selector_bytes.end(),
              msg.data.begin());
    (void)state_.call(msg, CallKind::kCall, 0);
    if (state_.get_balance(addr).is_zero()) break;
  }
  if (!state_.get_balance(owner).is_zero()) {
    // The trace must contain the executed CALL that moved the funds.
    EXPECT_GE(recorder_.count("CALL"), 1u);
  }
  EXPECT_GT(recorder_.size(), 10u);
}

}  // namespace
}  // namespace phishinghook::evm
