// Opcode registry invariants (Table I) and disassembler behaviour (BDM).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "evm/bytecode.hpp"
#include "evm/disassembler.hpp"
#include "evm/opcodes.hpp"

namespace phishinghook::evm {
namespace {

TEST(Opcodes, ShanghaiHas144Opcodes) {
  EXPECT_EQ(OpcodeTable::shanghai().size(), 144u);
}

TEST(Opcodes, TableOneSpotChecks) {
  const auto& table = OpcodeTable::shanghai();
  // The rows the paper's Table I shows explicitly.
  EXPECT_EQ(table.at(0x00).mnemonic, "STOP");
  EXPECT_EQ(table.at(0x00).base_gas, 0u);
  EXPECT_EQ(table.at(0x01).mnemonic, "ADD");
  EXPECT_EQ(table.at(0x01).base_gas, 3u);
  EXPECT_EQ(table.at(0x02).mnemonic, "MUL");
  EXPECT_EQ(table.at(0x02).base_gas, 5u);
  EXPECT_EQ(table.at(0xFD).mnemonic, "REVERT");
  EXPECT_EQ(table.at(0xFD).base_gas, 0u);
  EXPECT_EQ(table.at(0xFE).mnemonic, "INVALID");
  EXPECT_TRUE(table.at(0xFE).gas_is_nan);
  EXPECT_EQ(table.at(0xFF).mnemonic, "SELFDESTRUCT");
  EXPECT_EQ(table.at(0xFF).base_gas, 5000u);
}

TEST(Opcodes, ShanghaiAdditions) {
  // The two opcodes the paper added to evmdasm.
  const auto& table = OpcodeTable::shanghai();
  EXPECT_EQ(table.at(0x5F).mnemonic, "PUSH0");
  EXPECT_EQ(table.at(0x5F).immediate_bytes, 0u);
  EXPECT_TRUE(table.is_defined(0xFE));
  EXPECT_FALSE(table.is_defined(0x0C));  // gap in the arithmetic range
  EXPECT_FALSE(table.is_defined(0x21));
  EXPECT_FALSE(table.is_defined(0xA5));
}

TEST(Opcodes, PushFamily) {
  for (int n = 1; n <= 32; ++n) {
    const std::uint8_t byte = static_cast<std::uint8_t>(0x5F + n);
    EXPECT_TRUE(is_push_with_data(byte));
    EXPECT_EQ(push_data_size(byte), static_cast<std::size_t>(n));
    EXPECT_EQ(push_opcode_for_size(static_cast<std::size_t>(n)), byte);
    EXPECT_EQ(OpcodeTable::shanghai().at(byte).immediate_bytes, n);
  }
  EXPECT_FALSE(is_push_with_data(0x5F));  // PUSH0 has no immediate
  EXPECT_EQ(push_opcode_for_size(0), 0x5F);
  EXPECT_THROW(push_opcode_for_size(33), InvalidArgument);
}

TEST(Opcodes, StackEffectsConsistent) {
  for (const OpcodeInfo& info : OpcodeTable::shanghai().all()) {
    EXPECT_LE(info.stack_inputs, 17) << info.mnemonic;
    EXPECT_LE(info.stack_outputs, 17) << info.mnemonic;
  }
  const auto& table = OpcodeTable::shanghai();
  EXPECT_EQ(table.at(0x80).stack_inputs, 1);   // DUP1
  EXPECT_EQ(table.at(0x80).stack_outputs, 2);
  EXPECT_EQ(table.at(0x8F).stack_inputs, 16);  // DUP16
  EXPECT_EQ(table.at(0x90).stack_inputs, 2);   // SWAP1
  EXPECT_EQ(table.at(0xF1).stack_inputs, 7);   // CALL
  EXPECT_EQ(table.at(0xF4).stack_inputs, 6);   // DELEGATECALL
  EXPECT_EQ(table.at(0xA4).stack_inputs, 6);   // LOG4
}

TEST(Opcodes, MnemonicLookup) {
  const auto& table = OpcodeTable::shanghai();
  EXPECT_EQ(table.by_mnemonic("DELEGATECALL").value, 0xF4);
  EXPECT_EQ(table.by_mnemonic("PUSH32").value, 0x7F);
  EXPECT_THROW(table.by_mnemonic("NOPE"), NotFound);
  EXPECT_THROW(table.at(0x0C), NotFound);
}

TEST(Bytecode, HexRoundTrip) {
  const Bytecode code = Bytecode::from_hex("0x6080604052");
  EXPECT_EQ(code.size(), 5u);
  EXPECT_EQ(code.to_hex(), "0x6080604052");
  EXPECT_EQ(Bytecode().to_hex(), "0x");
}

TEST(Bytecode, CodeHashMatchesKeccak) {
  const Bytecode code = Bytecode::from_hex("0x6080604052");
  EXPECT_EQ(code.code_hash(), keccak256(code.bytes()));
}

TEST(Bytecode, JumpdestInsidePushDataIsInvalid) {
  // PUSH2 0x5B5B JUMPDEST: the 0x5B bytes at offsets 1-2 are immediates;
  // only offset 3 is a real JUMPDEST.
  const Bytecode code = Bytecode::from_hex("0x615b5b5b");
  EXPECT_FALSE(code.is_valid_jump_dest(1));
  EXPECT_FALSE(code.is_valid_jump_dest(2));
  EXPECT_TRUE(code.is_valid_jump_dest(3));
  EXPECT_FALSE(code.is_valid_jump_dest(0));
  EXPECT_FALSE(code.is_valid_jump_dest(99));
}

TEST(Disassembler, PaperExample) {
  // §III: 0x6080604052 -> (PUSH1,0x80,3), (PUSH1,0x40,3), (MSTORE,-,3).
  const Disassembler disassembler;
  const Disassembly listing =
      disassembler.disassemble(Bytecode::from_hex("0x6080604052"));
  ASSERT_EQ(listing.instructions.size(), 3u);
  EXPECT_EQ(listing.instructions[0].mnemonic, "PUSH1");
  EXPECT_EQ(listing.instructions[0].operand.value(), U256(0x80));
  EXPECT_EQ(listing.instructions[0].gas, 3u);
  EXPECT_EQ(listing.instructions[1].mnemonic, "PUSH1");
  EXPECT_EQ(listing.instructions[1].operand.value(), U256(0x40));
  EXPECT_EQ(listing.instructions[2].mnemonic, "MSTORE");
  EXPECT_FALSE(listing.instructions[2].operand.has_value());
  EXPECT_EQ(listing.instructions[2].gas, 3u);
  EXPECT_EQ(listing.instructions[0].to_string(), "PUSH1 0x80");
}

TEST(Disassembler, TruncatedPushPadsWithZeros) {
  // PUSH4 with only 2 immediate bytes present: EVM pads code reads with 0.
  const Disassembly listing =
      Disassembler().disassemble(Bytecode::from_hex("0x63abcd"));
  ASSERT_EQ(listing.instructions.size(), 1u);
  EXPECT_EQ(listing.instructions[0].operand.value(),
            U256::from_string("0xabcd0000"));
}

TEST(Disassembler, UndefinedBytesReported) {
  const Disassembly listing =
      Disassembler().disassemble(Bytecode::from_hex("0x0c"));
  ASSERT_EQ(listing.instructions.size(), 1u);
  EXPECT_FALSE(listing.instructions[0].defined);
  EXPECT_EQ(listing.instructions[0].mnemonic, "UNKNOWN_0x0c");
  EXPECT_TRUE(listing.instructions[0].gas_is_nan);
}

TEST(Disassembler, InvalidGasIsNaN) {
  const Disassembly listing =
      Disassembler().disassemble(Bytecode::from_hex("0xfe"));
  ASSERT_EQ(listing.instructions.size(), 1u);
  EXPECT_TRUE(listing.instructions[0].defined);
  EXPECT_TRUE(listing.instructions[0].gas_is_nan);
}

TEST(Disassembler, CsvExport) {
  const std::string csv =
      Disassembler().disassemble(Bytecode::from_hex("0x6080fe")).to_csv();
  EXPECT_NE(csv.find("pc,opcode,mnemonic,operand,gas"), std::string::npos);
  EXPECT_NE(csv.find("PUSH1"), std::string::npos);
  EXPECT_NE(csv.find("NaN"), std::string::npos);
}

TEST(Disassembler, MnemonicCounts) {
  const Disassembly listing =
      Disassembler().disassemble(Bytecode::from_hex("0x6080604052"));
  const auto counts = listing.mnemonic_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "PUSH1");
  EXPECT_EQ(counts[0].second, 2u);
  EXPECT_EQ(counts[1].first, "MSTORE");
}

// Property: disassembly covers every byte exactly once (pc advance).
class DisassemblerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisassemblerSweep, PcCoverage) {
  common::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(300) + 1);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    const Bytecode code(bytes);
    const Disassembly listing = Disassembler().disassemble(code);
    std::size_t pc = 0;
    for (const Instruction& ins : listing.instructions) {
      EXPECT_EQ(ins.pc, pc);
      pc += 1 + push_data_size(ins.opcode);
    }
    EXPECT_GE(pc, bytes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisassemblerSweep,
                         ::testing::Values(21u, 22u, 23u));

}  // namespace
}  // namespace phishinghook::evm
