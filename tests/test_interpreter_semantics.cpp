// Second interpreter suite: per-opcode semantics not covered by the basic
// suite — modular arithmetic opcodes, SIGNEXTEND/BYTE/SAR, copy opcodes,
// EXT* account introspection, CREATE2, CALLCODE, block opcodes and dynamic
// gas components (EXP bytes, SHA3 words, LOG data, memory expansion).
#include <gtest/gtest.h>

#include <functional>

#include "chain/state.hpp"
#include "evm/interpreter.hpp"
#include "synth/assembler.hpp"

namespace phishinghook::evm {
namespace {

using chain::State;
using synth::Assembler;

class InterpreterSemantics : public ::testing::Test {
 protected:
  ExecutionResult run(const Bytecode& code, std::vector<std::uint8_t> data = {},
                      std::uint64_t gas = 5'000'000) {
    Message msg;
    msg.caller = caller_;
    msg.code_address = contract_;
    msg.storage_address = contract_;
    msg.origin = caller_;
    msg.data = std::move(data);
    msg.gas = gas;
    state_.set_code(contract_, code);
    const Interpreter interpreter(block_);
    return interpreter.execute(msg, code, state_, 0);
  }

  U256 run_for_word(const std::function<void(Assembler&)>& body) {
    Assembler a;
    body(a);
    a.push(0x00).op(Op::kMstore);
    a.push(0x20).push(0x00).op(Op::kReturn);
    const ExecutionResult result = run(a.build());
    EXPECT_EQ(result.status, Status::kSuccess) << status_name(result.status);
    EXPECT_EQ(result.output.size(), 32u);
    return U256::from_bytes_be(result.output);
  }

  BlockContext block_{.number = 19'000'000,
                      .timestamp = 1720000000,
                      .gas_limit = 30'000'000,
                      .chain_id = 1,
                      .base_fee = 21,
                      .coinbase = Address::from_hex(
                          "0x000000000000000000000000000000000000c01b"),
                      .prevrandao = U256(777)};
  State state_;
  Address caller_ =
      Address::from_hex("0x00000000000000000000000000000000000000aa");
  Address contract_ =
      Address::from_hex("0x00000000000000000000000000000000000000cc");
  Address other_ =
      Address::from_hex("0x00000000000000000000000000000000000000dd");
};

TEST_F(InterpreterSemantics, ModularArithmetic) {
  // ADDMOD pops a, b, m: push m, b, a.
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(5).push(4).push(3).op(Op::kAddmod);  // (3+4)%5
            }),
            U256(2));
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(7).push(6).push(5).op(Op::kMulmod);  // (5*6)%7
            }),
            U256(2));
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.op(Op::kPush0).push(4).push(3).op(Op::kAddmod);  // m = 0
            }),
            U256(0));
}

TEST_F(InterpreterSemantics, SignedOps) {
  // SDIV: -6 / 2 (operands: top = -6).
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(2).push(U256(6).negated()).op(Op::kSdiv);
            }),
            U256(3).negated());
  // SMOD: -7 % 3.
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(3).push(U256(7).negated()).op(Op::kSmod);
            }),
            U256(1).negated());
  // SLT: -1 < 1.
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(1).push(U256(1).negated()).op(Op::kSlt);
            }),
            U256(1));
  // SGT: 1 > -1.
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(U256(1).negated()).push(1).op(Op::kSgt);
            }),
            U256(1));
}

TEST_F(InterpreterSemantics, ByteSignextendSar) {
  // BYTE 31 of 0x1234 is 0x34 (index counts from MSB).
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(0x1234).push(31).op(Op::kByte);
            }),
            U256(0x34));
  // SIGNEXTEND(0, 0xFF) = -1.
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(0xFF).push(0).op(Op::kSignextend);
            }),
            U256::max());
  // SAR(-8 >> 1) = -4.
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(U256(8).negated()).push(1).op(Op::kSar);
            }),
            U256(4).negated());
}

TEST_F(InterpreterSemantics, CalldatacopyZeroPads) {
  // Copy 8 bytes from calldata offset 2 (calldata has only 4 bytes).
  Assembler a;
  a.push(8).push(2).push(0x20).op(Op::kCalldatacopy);  // dst=0x20 src=2 len=8
  a.push(0x20).op(Op::kMload);
  a.push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  const ExecutionResult result = run(a.build(), {0xAA, 0xBB, 0xCC, 0xDD});
  // bytes at src 2..: CC DD then zeros; MLOAD(0x20) puts CC at MSB.
  const U256 word = U256::from_bytes_be(result.output);
  EXPECT_EQ(word.byte_msb(0), 0xCC);
  EXPECT_EQ(word.byte_msb(1), 0xDD);
  EXPECT_EQ(word.byte_msb(2), 0x00);
}

TEST_F(InterpreterSemantics, CodecopyReadsOwnCode) {
  // Copy the first 2 code bytes to memory and return them.
  Assembler a;
  a.push(2).op(Op::kPush0).op(Op::kPush0).op(Op::kCodecopy);  // dst=0 src=0 len=2
  a.push(0x00).op(Op::kMload);
  a.push(0x40).op(Op::kMstore);
  a.push(0x20).push(0x40).op(Op::kReturn);
  const ExecutionResult result = run(a.build());
  const U256 word = U256::from_bytes_be(result.output);
  EXPECT_EQ(word.byte_msb(0), 0x60);  // PUSH1 (the assembled first byte)
}

TEST_F(InterpreterSemantics, ExtcodeOpcodesSeeOtherAccounts) {
  Assembler other_code;
  other_code.push(1).op(Op::kPop).op(Op::kStop);
  const Bytecode deployed = other_code.build();
  state_.set_code(other_, deployed);

  EXPECT_EQ(run_for_word([this](Assembler& a) {
              a.push_bytes(other_.bytes());
              a.op(Op::kExtcodesize);
            }),
            U256(deployed.size()));
  // EXTCODEHASH of a known account equals keccak(code).
  const U256 expected = U256::from_bytes_be(deployed.code_hash());
  EXPECT_EQ(run_for_word([this](Assembler& a) {
              a.push_bytes(other_.bytes());
              a.op(Op::kExtcodehash);
            }),
            expected);
  // Non-existent account: EXTCODEHASH = 0.
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(0x1234).op(Op::kExtcodehash);
            }),
            U256(0));
}

TEST_F(InterpreterSemantics, ReturndataAfterCall) {
  // Callee returns 8 bytes; caller checks RETURNDATASIZE and copies them.
  Assembler callee;
  callee.push(U256::from_string("0x1122334455667788")).push(0x00).op(Op::kMstore);
  callee.push(8).push(0x18).op(Op::kReturn);  // the low 8 bytes of the word
  state_.set_code(other_, callee.build());

  Assembler a;
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);
  a.push_bytes(other_.bytes());
  a.push(200000);
  a.op(Op::kCall).op(Op::kPop);
  a.op(Op::kReturndatasize);
  a.push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  const ExecutionResult result = run(a.build());
  EXPECT_EQ(U256::from_bytes_be(result.output), U256(8));
}

TEST_F(InterpreterSemantics, ReturndatacopyMovesPayload) {
  Assembler callee;
  callee.push(0xAB).push(0x00).op(Op::kMstore8);
  callee.push(1).push(0x00).op(Op::kReturn);
  state_.set_code(other_, callee.build());

  Assembler a;
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);
  a.push_bytes(other_.bytes());
  a.push(200000);
  a.op(Op::kCall).op(Op::kPop);
  a.push(1).op(Op::kPush0).push(0x40).op(Op::kReturndatacopy);  // dst=0x40
  a.push(0x40).op(Op::kMload);
  a.push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  const ExecutionResult result = run(a.build());
  EXPECT_EQ(U256::from_bytes_be(result.output).byte_msb(0), 0xAB);
}

TEST_F(InterpreterSemantics, BlockOpcodes) {
  EXPECT_EQ(run_for_word([](Assembler& a) { a.op(Op::kNumber); }),
            U256(19'000'000));
  EXPECT_EQ(run_for_word([](Assembler& a) { a.op(Op::kGaslimit); }),
            U256(30'000'000));
  EXPECT_EQ(run_for_word([](Assembler& a) { a.op(Op::kBasefee); }), U256(21));
  EXPECT_EQ(run_for_word([](Assembler& a) { a.op(Op::kPrevrandao); }),
            U256(777));
  EXPECT_EQ(run_for_word([this](Assembler& a) { a.op(Op::kCoinbase); }),
            block_.coinbase.to_word());
  // BLOCKHASH of a past block is deterministic and non-zero; of the current
  // block (or the future) it is zero.
  EXPECT_NE(run_for_word([](Assembler& a) {
              a.push(18'999'000).op(Op::kBlockhash);
            }),
            U256(0));
  EXPECT_EQ(run_for_word([](Assembler& a) {
              a.push(19'000'000).op(Op::kBlockhash);
            }),
            U256(0));
}

TEST_F(InterpreterSemantics, OriginVsCallerThroughNestedCall) {
  // Callee returns ORIGIN; caller forwards it. origin == external caller.
  Assembler callee;
  callee.op(Op::kOrigin).push(0x00).op(Op::kMstore);
  callee.push(0x20).push(0x00).op(Op::kReturn);
  state_.set_code(other_, callee.build());

  Assembler a;
  a.push(0x20).push(0x40);
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);
  a.push_bytes(other_.bytes());
  a.push(200000);
  a.op(Op::kCall).op(Op::kPop);
  a.push(0x40).op(Op::kMload);
  a.push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  const ExecutionResult result = run(a.build());
  EXPECT_EQ(U256::from_bytes_be(result.output), caller_.to_word());
}

TEST_F(InterpreterSemantics, Create2AddressIsDeterministic) {
  // CREATE2 with a fixed salt and empty-ish init code (STOP-only runtime):
  // init code returns empty -> created contract has empty code but exists.
  // init: RETURN(0, 0).
  Assembler init;
  init.op(Op::kPush0).op(Op::kPush0).op(Op::kReturn);
  const Bytecode init_code = init.build();
  // Write init code into memory via MSTORE8s, then CREATE2.
  Assembler a;
  for (std::size_t i = 0; i < init_code.size(); ++i) {
    a.push(init_code.bytes()[i]).push(i).op(Op::kMstore8);
  }
  a.push(0x42);                        // salt
  a.push(init_code.size()).op(Op::kPush0);  // len, off
  a.op(Op::kPush0);                    // value
  a.op(Op::kCreate2);
  a.push(0x00).op(Op::kMstore);
  a.push(0x20).push(0x00).op(Op::kReturn);
  const ExecutionResult result = run(a.build());
  ASSERT_EQ(result.status, Status::kSuccess);
  const Address created =
      Address::from_word(U256::from_bytes_be(result.output));
  EXPECT_EQ(created,
            derive_create2_address(contract_, U256(0x42), init_code.bytes()));
  EXPECT_TRUE(state_.account_exists(created));
}

TEST_F(InterpreterSemantics, CallcodeRunsCalleeCodeOnCallerStorage) {
  // Library writes 7 at slot 1; CALLCODE keeps the caller's storage.
  Assembler library_code;
  library_code.push(7).push(1).op(Op::kSstore).op(Op::kStop);
  state_.set_code(other_, library_code.build());

  Assembler a;
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);
  a.op(Op::kPush0);  // value
  a.push_bytes(other_.bytes());
  a.push(200000);
  a.op(Op::kCallcode).op(Op::kPop);
  a.op(Op::kStop);
  EXPECT_EQ(run(a.build()).status, Status::kSuccess);
  EXPECT_EQ(state_.sload(contract_, U256(1)), U256(7));
  EXPECT_EQ(state_.sload(other_, U256(1)), U256());
}

TEST_F(InterpreterSemantics, DynamicGasComponents) {
  // EXP charges 50 per exponent byte: PUSH1 3 + PUSH2 3 + EXP 10 + 2*50.
  {
    Assembler a;
    a.push(0x1234).push(2).op(Op::kExp).op(Op::kPop).op(Op::kStop);
    // exponent = 0x1234? careful: EXP pops base then exponent: base=2 (top
    // after pushes? push(0x1234) then push(2): top=2=base, exp=0x1234).
    const ExecutionResult result = run(a.build());
    EXPECT_EQ(result.status, Status::kSuccess);
    // PUSH2(3) + PUSH1(3) + EXP(10 + 2 bytes * 50) + POP(2) = 118
    EXPECT_EQ(result.gas_used, 118u);
  }
  // SHA3 charges 6 per word plus memory expansion.
  {
    Assembler a;
    a.push(0x40).op(Op::kPush0).op(Op::kSha3).op(Op::kPop).op(Op::kStop);
    const ExecutionResult result = run(a.build());
    // PUSH1 3 + PUSH0 2 + SHA3 (30 + 2*6) + mem 2 words (6) + POP 2 = 55.
    EXPECT_EQ(result.gas_used, 55u);
  }
  // LOG1 charges 375 + 375/topic + 8/byte.
  {
    Assembler a;
    a.push(0x99);                 // topic
    a.push(0x20).op(Op::kPush0);  // len=32, off=0
    a.op(Op::kLog1).op(Op::kStop);
    const ExecutionResult result = run(a.build());
    // PUSH1 3 + PUSH1 3 + PUSH0 2 + LOG1 base 375 + topic 375 + 32*8 256 +
    // mem 1 word 3 = 1017.
    EXPECT_EQ(result.gas_used, 1017u);
  }
}

TEST_F(InterpreterSemantics, CallDepthLimit) {
  const Interpreter interpreter(block_);
  Message msg;
  msg.caller = caller_;
  msg.code_address = contract_;
  msg.storage_address = contract_;
  msg.origin = caller_;
  Assembler a;
  a.op(Op::kStop);
  const Bytecode code = a.build();
  const ExecutionResult result =
      interpreter.execute(msg, code, state_, Interpreter::kMaxCallDepth + 1);
  EXPECT_EQ(result.status, Status::kCallDepthExceeded);
}

}  // namespace
}  // namespace phishinghook::evm
