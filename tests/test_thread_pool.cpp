// ThreadPool unit tests: chunk coverage, map ordering, exception
// propagation, nested-parallelism safety, zero-work, oversubscription, and
// the PHISHINGHOOK_THREADS global configuration. The whole file also runs
// under TSan in ci.sh, which is where chunk hand-off races would surface.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "common/thread_pool.hpp"

namespace phishinghook::common {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPool, ZeroWorkReturnsWithoutCallingFn) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  pool.parallel_for_chunks(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  std::vector<int> hits(n, 0);
  // Distinct slots per index: no synchronization needed, and any double
  // visit shows up as a count != 1.
  pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_chunks(100, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 100u);
}

TEST(ThreadPool, ParallelMapPreservesSlotOrder) {
  ThreadPool pool(4);
  const auto out =
      pool.parallel_map<std::size_t>(1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

TEST(ThreadPool, PropagatesExceptionToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, PoolStaysUsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallel_for(8, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 8);
}

TEST(ThreadPool, NestedParallelismRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);  // 1 worker: nested blocking waits would deadlock it
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, OversubscriptionManyTinyTasks) {
  ThreadPool pool(8);  // more threads than this machine likely has cores
  std::atomic<long> sum{0};
  pool.parallel_for(100'000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i % 7), std::memory_order_relaxed);
  });
  long expected = 0;
  for (std::size_t i = 0; i < 100'000; ++i) expected += static_cast<long>(i % 7);
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, ConcurrentExternalCallers) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      pool.parallel_for(1000, [&](std::size_t) { total.fetch_add(1); });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 4000);
}

TEST(ThreadPool, ConfiguredThreadsReadsEnv) {
  ASSERT_EQ(setenv("PHISHINGHOOK_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::configured_threads(), 3u);
  ASSERT_EQ(setenv("PHISHINGHOOK_THREADS", "garbage", 1), 0);
  EXPECT_GE(ThreadPool::configured_threads(), 1u);  // falls back to hardware
  ASSERT_EQ(setenv("PHISHINGHOOK_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
  ASSERT_EQ(unsetenv("PHISHINGHOOK_THREADS"), 0);
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
}

TEST(ThreadPool, SetGlobalThreadsResizesGlobalPool) {
  ThreadPool::set_global_threads(2);
  EXPECT_EQ(ThreadPool::global().size(), 2u);
  std::atomic<int> sum{0};
  parallel_for(10, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 10);
  ThreadPool::set_global_threads(0);  // back to the environment default
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace phishinghook::common
