// Keccak-256 test vectors and address derivation.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/hex.hpp"
#include "evm/address.hpp"
#include "evm/keccak.hpp"

namespace phishinghook::evm {
namespace {

TEST(Keccak, EmptyString) {
  // The canonical Ethereum constant: keccak256("").
  EXPECT_EQ(hash_to_hex(keccak256(std::string())),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak, Abc) {
  EXPECT_EQ(hash_to_hex(keccak256(std::string("abc"))),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak, TransferEventSignature) {
  // keccak256("Transfer(address,address,uint256)") — the ERC-20 topic used
  // throughout Ethereum tooling.
  EXPECT_EQ(hash_to_hex(keccak256(std::string(
                "Transfer(address,address,uint256)"))),
            "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef");
}

TEST(Keccak, MultiBlockInput) {
  // > rate (136 bytes) forces multiple absorb rounds; compare streaming vs
  // one-shot.
  std::string long_input(1000, 'x');
  const Hash256 oneshot = keccak256(long_input);
  Keccak256 streaming;
  for (char c : long_input) {
    const std::uint8_t byte = static_cast<std::uint8_t>(c);
    streaming.update(std::span<const std::uint8_t>(&byte, 1));
  }
  EXPECT_EQ(streaming.finalize(), oneshot);
}

TEST(Keccak, FinalizeTwiceThrows) {
  Keccak256 hasher;
  (void)hasher.finalize();
  EXPECT_THROW(hasher.finalize(), StateError);
}

TEST(Address, HexRoundTrip) {
  const Address a =
      Address::from_hex("0x279e2f385ce22f88650632d04260382bfb918082");
  EXPECT_EQ(a.to_hex(), "0x279e2f385ce22f88650632d04260382bfb918082");
  EXPECT_FALSE(a.is_zero());
  EXPECT_TRUE(Address().is_zero());
}

TEST(Address, WordRoundTrip) {
  const Address a =
      Address::from_hex("0xb5e7b87e7a84276b13da3f07495e18f3e229d3a0");
  EXPECT_EQ(Address::from_word(a.to_word()), a);
  // High 96 bits are zero.
  EXPECT_TRUE(a.to_word() < U256::pow2(160));
}

TEST(Address, RejectsWrongSize) {
  EXPECT_THROW(Address::from_hex("0x1234"), Error);
}

TEST(Address, CreateDerivationDeterministic) {
  const Address sender =
      Address::from_hex("0xb5e7b87e7a84276b13da3f07495e18f3e229d3a0");
  const Address a1 = derive_contract_address(sender, 0);
  const Address a2 = derive_contract_address(sender, 1);
  EXPECT_NE(a1, a2);
  EXPECT_EQ(a1, derive_contract_address(sender, 0));
  EXPECT_FALSE(a1.is_zero());
}

TEST(Address, Create2DependsOnSaltAndCode) {
  const Address sender =
      Address::from_hex("0xb5e7b87e7a84276b13da3f07495e18f3e229d3a0");
  const std::vector<std::uint8_t> code1 = {0x60, 0x00};
  const std::vector<std::uint8_t> code2 = {0x60, 0x01};
  const Address s0c1 = derive_create2_address(sender, U256(0), code1);
  const Address s1c1 = derive_create2_address(sender, U256(1), code1);
  const Address s0c2 = derive_create2_address(sender, U256(0), code2);
  EXPECT_NE(s0c1, s1c1);
  EXPECT_NE(s0c1, s0c2);
  EXPECT_EQ(s0c1, derive_create2_address(sender, U256(0), code1));
}

}  // namespace
}  // namespace phishinghook::evm
