// Network-layer tests: JSON document model, the event-loop scrape server
// (with regressions for the four bugs the blocking PR-8 implementation
// shipped: HEAD-as-GET, EINTR-aborted writes, unbounded stop() on a
// stalled peer, split-request mis-parse), and the JSON-RPC 2.0 front door
// (protocol errors, batches, sheds, keep-alive, disconnects, and a
// concurrent-clients hammer the TSan leg runs).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "net/event_loop.hpp"
#include "net/json.hpp"
#include "net/json_rpc_server.hpp"
#include "net/scrape_server.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace phishinghook;

// --- socket helpers ----------------------------------------------------------

/// Connects to 127.0.0.1:port with a 5s IO timeout; -1 on failure.
int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string recv_to_eof(int fd) {
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  return response;
}

/// Reads exactly one HTTP response off a keep-alive connection: headers
/// until the blank line, then Content-Length body bytes.
std::string recv_one_response(int fd) {
  std::string response;
  char ch = 0;
  while (response.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return response;
    response.push_back(ch);
  }
  std::size_t body_len = 0;
  const std::size_t cl = response.find("Content-Length: ");
  if (cl != std::string::npos) {
    body_len = static_cast<std::size_t>(
        std::strtoul(response.c_str() + cl + 16, nullptr, 10));
  }
  const std::size_t head_end = response.find("\r\n\r\n") + 4;
  while (response.size() < head_end + body_len) {
    char buffer[4096];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  return response;
}

/// One-shot request (Connection embedded in `request`), read to EOF.
std::string round_trip(std::uint16_t port, const std::string& request) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  send_all(fd, request);
  const std::string response = recv_to_eof(fd);
  ::close(fd);
  return response;
}

std::string http_request(const char* method, const std::string& target) {
  return std::string(method) + " " + target + " HTTP/1.0\r\nHost: x\r\n\r\n";
}

/// JSON-RPC POST with Connection: close.
std::string rpc_post(std::uint16_t port, const std::string& body) {
  return round_trip(
      port, "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
                body);
}

std::string body_of(const std::string& response) {
  const std::size_t head_end = response.find("\r\n\r\n");
  return head_end == std::string::npos ? std::string()
                                       : response.substr(head_end + 4);
}

// --- JSON document model -----------------------------------------------------

TEST(NetJson, ParseDumpRoundTripKeepsIntegralIds) {
  std::string error;
  const auto doc = net::JsonValue::parse(
      R"({"id":7,"pi":2.5,"flag":true,"none":null,"list":[1,-2,"x"]})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("id")->as_number(), 7.0);
  const std::string text = doc->dump();
  // Integral numbers must not grow a fractional part — the JSON-RPC id
  // echo has to match what the client sent.
  EXPECT_NE(text.find("\"id\":7"), std::string::npos) << text;
  EXPECT_NE(text.find("\"pi\":2.5"), std::string::npos) << text;
  const auto again = net::JsonValue::parse(text, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->dump(), text);
}

TEST(NetJson, RejectsTrailingGarbageAndControlChars) {
  std::string error;
  EXPECT_FALSE(net::JsonValue::parse("1 2", &error).has_value());
  EXPECT_FALSE(net::JsonValue::parse("{\"a\":1}x", &error).has_value());
  EXPECT_FALSE(net::JsonValue::parse("\"a\nb\"", &error).has_value());
  EXPECT_FALSE(net::JsonValue::parse("", &error).has_value());
}

TEST(NetJson, DepthLimitStopsNestingBombs) {
  std::string bomb;
  for (int i = 0; i < 200; ++i) bomb += '[';
  std::string error;
  EXPECT_FALSE(net::JsonValue::parse(bomb, &error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
  // At the default limit, 32 levels are fine.
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(net::JsonValue::parse(ok, &error).has_value()) << error;
}

TEST(NetJson, UnicodeEscapesIncludingSurrogatePairs) {
  std::string error;
  const auto doc = net::JsonValue::parse(R"(["\u00e9", "\ud83d\ude00"])",
                                         &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->as_array()[0].as_string(), "\xc3\xa9");
  EXPECT_EQ(doc->as_array()[1].as_string(), "\xf0\x9f\x98\x80");
  // Lone surrogate halves are malformed.
  EXPECT_FALSE(net::JsonValue::parse(R"("\ud83d")", &error).has_value());
}

// --- scrape server regressions ----------------------------------------------

class ScrapeRegressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.counter("netreg_test_total").inc(42);
    server_.add_registry(registry_);
    server_.start(0);
  }
  void TearDown() override { server_.stop(); }

  obs::MetricsRegistry registry_;
  net::ScrapeServer server_;
};

// Bug 1 (PR 8): HEAD was treated exactly like GET and sent the full body.
TEST_F(ScrapeRegressionTest, HeadGetsHeadersAndContentLengthButNoBody) {
  const std::string get =
      round_trip(server_.port(), http_request("GET", "/metrics"));
  const std::string head =
      round_trip(server_.port(), http_request("HEAD", "/metrics"));
  ASSERT_NE(get.find("200 OK"), std::string::npos);
  ASSERT_NE(head.find("200 OK"), std::string::npos);

  const std::string get_body = body_of(get);
  EXPECT_NE(get_body.find("netreg_test_total"), std::string::npos);
  // HEAD: no body at all...
  EXPECT_TRUE(body_of(head).empty()) << body_of(head);
  // ...but the Content-Length a GET would have produced.
  const std::string expected =
      "Content-Length: " + std::to_string(get_body.size()) + "\r\n";
  EXPECT_NE(head.find(expected), std::string::npos) << head;
}

// Bug 2 (PR 8): write_all() returned (dropping the rest of the response)
// on the first EINTR. send_some must retry through injected EINTRs.
TEST_F(ScrapeRegressionTest, EintrDuringSendStillDeliversFullResponse) {
  // Something big enough that the response takes several send() calls.
  obs::MetricsRegistry big;
  for (int i = 0; i < 200; ++i) {
    big.counter("netreg_bulk_total",
                obs::label("idx", std::to_string(i)))
        .inc(static_cast<std::uint64_t>(i));
  }
  server_.add_registry(big);
  const std::string clean =
      round_trip(server_.port(), http_request("GET", "/metrics"));
  net::testing::force_send_eintr(3);
  const std::string interrupted =
      round_trip(server_.port(), http_request("GET", "/metrics"));
  EXPECT_EQ(interrupted, clean);
  EXPECT_NE(interrupted.find("idx=\"199\""), std::string::npos);
}

// Bug 3 (PR 8): a peer that connected and then went silent pinned the
// accept thread in an untimed recv(), so stop() could hang forever.
TEST_F(ScrapeRegressionTest, StopIsBoundedWithStalledConnection) {
  const int stalled = connect_loopback(server_.port());
  ASSERT_GE(stalled, 0);
  send_all(stalled, "GET /met");  // never finished
  // Give the loop a moment to accept + buffer the partial request.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto start = std::chrono::steady_clock::now();
  server_.stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  ::close(stalled);
}

// Bug 4 (PR 8): the request was parsed out of a single recv(), so a head
// split across TCP segments came back 400.
TEST_F(ScrapeRegressionTest, RequestSplitAcrossSegmentsParses) {
  const int fd = connect_loopback(server_.port());
  ASSERT_GE(fd, 0);
  send_all(fd, "GET /heal");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  send_all(fd, "thz HTTP/1.0\r\nHost: x\r\n\r\n");
  const std::string response = recv_to_eof(fd);
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
}

// --- JSON-RPC server ---------------------------------------------------------

class JsonRpcTest : public ::testing::Test {
 protected:
  void start(net::RpcConfig config = {}) {
    server_ = std::make_unique<net::JsonRpcServer>(config);
    server_->register_method(
        "echo", [this](const net::JsonValue& params,
                       const net::JsonRpcServer::CallInfo&) {
          echo_calls_.fetch_add(1, std::memory_order_relaxed);
          return params;
        });
    server_->register_method(
        "gate", [this](const net::JsonValue&,
                       const net::JsonRpcServer::CallInfo&) {
          gate_entered_.set_value();
          gate_.get_future().wait();
          return net::JsonValue::string("opened");
        });
    server_->register_method(
        "slow", [](const net::JsonValue&,
                   const net::JsonRpcServer::CallInfo&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          return net::JsonValue::string("done");
        });
    server_->register_method(
        "boom", [](const net::JsonValue&,
                   const net::JsonRpcServer::CallInfo&) -> net::JsonValue {
          throw std::runtime_error("kaboom");
        });
    server_->start(0);
  }
  void TearDown() override {
    // A still-armed gate would deadlock a dispatcher on stop.
    if (!gate_released_) gate_.set_value();
    if (server_) server_->stop();
  }
  void release_gate() {
    gate_.set_value();
    gate_released_ = true;
  }

  std::unique_ptr<net::JsonRpcServer> server_;
  std::atomic<int> echo_calls_{0};
  std::promise<void> gate_;
  std::promise<void> gate_entered_;
  bool gate_released_ = false;
};

TEST_F(JsonRpcTest, EchoRoundTripAndIdFidelity) {
  start();
  const std::string response = rpc_post(
      server_->port(),
      R"({"jsonrpc":"2.0","id":41,"method":"echo","params":[1,"two"]})");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(body_of(response).find("\"id\":41"), std::string::npos);
  EXPECT_NE(body_of(response).find("\"result\":[1,\"two\"]"),
            std::string::npos);
}

TEST_F(JsonRpcTest, MalformedJsonReturnsParseError) {
  start();
  const std::string body = body_of(rpc_post(server_->port(), "{nope"));
  EXPECT_NE(body.find("-32700"), std::string::npos) << body;
  EXPECT_NE(body.find("\"id\":null"), std::string::npos);
}

TEST_F(JsonRpcTest, ProtocolViolationsGetTheirCodes) {
  start();
  // Missing jsonrpc member.
  EXPECT_NE(body_of(rpc_post(server_->port(),
                             R"({"id":1,"method":"echo"})"))
                .find("-32600"),
            std::string::npos);
  // method not a string.
  EXPECT_NE(body_of(rpc_post(server_->port(),
                             R"({"jsonrpc":"2.0","id":1,"method":4})"))
                .find("-32600"),
            std::string::npos);
  // Unknown method.
  EXPECT_NE(body_of(rpc_post(server_->port(),
                             R"({"jsonrpc":"2.0","id":1,"method":"nope"})"))
                .find("-32601"),
            std::string::npos);
  // Scalar params.
  EXPECT_NE(body_of(rpc_post(
                        server_->port(),
                        R"({"jsonrpc":"2.0","id":1,"method":"echo","params":3})"))
                .find("-32602"),
            std::string::npos);
  // Handler exception -> internal error, connection survives to report it.
  const std::string boom = body_of(rpc_post(
      server_->port(), R"({"jsonrpc":"2.0","id":9,"method":"boom"})"));
  EXPECT_NE(boom.find("-32603"), std::string::npos);
  EXPECT_NE(boom.find("kaboom"), std::string::npos);
}

TEST_F(JsonRpcTest, NotificationsGet204NoBody) {
  start();
  const std::string response = rpc_post(
      server_->port(), R"({"jsonrpc":"2.0","method":"echo","params":[]})");
  EXPECT_NE(response.find("204"), std::string::npos) << response;
  EXPECT_TRUE(body_of(response).empty());
  EXPECT_EQ(echo_calls_.load(), 1);  // the handler still ran
}

TEST_F(JsonRpcTest, BatchMixesValidInvalidAndNotifications) {
  start();
  const std::string body = body_of(rpc_post(
      server_->port(),
      R"([{"jsonrpc":"2.0","id":1,"method":"echo","params":["a"]},)"
      R"({"jsonrpc":"2.0","id":2,"method":"missing"},)"
      R"(42,)"
      R"({"jsonrpc":"2.0","method":"echo","params":["notify"]}])"));
  // Three responses (the notification is elided), order preserved.
  EXPECT_NE(body.find("\"result\":[\"a\"]"), std::string::npos) << body;
  EXPECT_NE(body.find("-32601"), std::string::npos);
  EXPECT_NE(body.find("-32600"), std::string::npos);
  EXPECT_EQ(echo_calls_.load(), 2);
  EXPECT_LT(body.find("\"id\":1"), body.find("\"id\":2"));

  // Empty batch and oversized batch are invalid requests.
  EXPECT_NE(body_of(rpc_post(server_->port(), "[]")).find("-32600"),
            std::string::npos);
  std::string big = "[";
  for (int i = 0; i < 65; ++i) {
    if (i > 0) big += ',';
    big += R"({"jsonrpc":"2.0","id":)" + std::to_string(i) +
           R"(,"method":"echo"})";
  }
  big += "]";
  EXPECT_NE(body_of(rpc_post(server_->port(), big)).find("-32600"),
            std::string::npos);
}

TEST_F(JsonRpcTest, TransportRulesEnforced) {
  start();
  EXPECT_NE(round_trip(server_->port(), http_request("GET", "/"))
                .find("405"),
            std::string::npos);
  EXPECT_NE(round_trip(server_->port(),
                       "POST / HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("411"),
            std::string::npos);
  // Declared body over the cap is refused before it is read.
  net::RpcConfig config;
  config.max_body_bytes = 512;
  TearDown();
  gate_ = std::promise<void>();
  gate_entered_ = std::promise<void>();
  gate_released_ = false;
  start(config);
  EXPECT_NE(round_trip(server_->port(),
                       "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: "
                       "100000\r\nConnection: close\r\n\r\n")
                .find("413"),
            std::string::npos);
}

TEST_F(JsonRpcTest, KeepAliveServesSequentialRequests) {
  start();
  const int fd = connect_loopback(server_->port());
  ASSERT_GE(fd, 0);
  const auto post = [&](const std::string& body) {
    send_all(fd, "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body);
    return recv_one_response(fd);
  };
  const std::string first =
      post(R"({"jsonrpc":"2.0","id":1,"method":"echo","params":[1]})");
  const std::string second =
      post(R"({"jsonrpc":"2.0","id":2,"method":"echo","params":[2]})");
  ::close(fd);
  EXPECT_NE(first.find("\"id\":1"), std::string::npos) << first;
  EXPECT_NE(second.find("\"id\":2"), std::string::npos) << second;
  EXPECT_NE(first.find("Connection: keep-alive"), std::string::npos);
  EXPECT_EQ(server_->connections_accepted(), 1u);
}

TEST_F(JsonRpcTest, FullDispatchQueueSheds503) {
  net::RpcConfig config;
  config.dispatchers = 1;
  config.queue_capacity = 1;
  start(config);
  // r1 occupies the only dispatcher inside the gate...
  std::thread r1([&] {
    rpc_post(server_->port(), R"({"jsonrpc":"2.0","id":1,"method":"gate"})");
  });
  gate_entered_.get_future().wait();
  // ...r2 fills the queue's single slot...
  const int r2 = connect_loopback(server_->port());
  ASSERT_GE(r2, 0);
  const std::string body2 = R"({"jsonrpc":"2.0","id":2,"method":"echo"})";
  send_all(r2, "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                   std::to_string(body2.size()) +
                   "\r\nConnection: close\r\n\r\n" + body2);
  while (server_->requests_received() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...so r3 must be shed at admission, immediately, with the engine's
  // shed vocabulary (503 / -32005) — not queued behind the gate.
  const std::string shed = rpc_post(
      server_->port(), R"({"jsonrpc":"2.0","id":3,"method":"echo"})");
  EXPECT_NE(shed.find("503"), std::string::npos) << shed;
  EXPECT_NE(shed.find("-32005"), std::string::npos);
  release_gate();
  const std::string served = recv_to_eof(r2);
  ::close(r2);
  EXPECT_NE(served.find("\"id\":2"), std::string::npos) << served;
  r1.join();
  EXPECT_EQ(server_->metrics_registry()
                .counter("net_requests_shed")
                .value(),
            1u);
}

TEST_F(JsonRpcTest, ExpiredDeadlineShedsBeforeHandlerRuns) {
  net::RpcConfig config;
  config.dispatchers = 1;
  config.request_deadline_us = 5000;  // 5ms
  start(config);
  std::thread r1([&] {
    rpc_post(server_->port(), R"({"jsonrpc":"2.0","id":1,"method":"gate"})");
  });
  gate_entered_.get_future().wait();
  // r2 queues behind the gate and ages past its deadline.
  const int r2 = connect_loopback(server_->port());
  ASSERT_GE(r2, 0);
  const std::string body2 = R"({"jsonrpc":"2.0","id":2,"method":"echo"})";
  send_all(r2, "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                   std::to_string(body2.size()) +
                   "\r\nConnection: close\r\n\r\n" + body2);
  while (server_->requests_received() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  release_gate();
  const std::string response = recv_to_eof(r2);
  ::close(r2);
  r1.join();
  EXPECT_NE(response.find("-32005"), std::string::npos) << response;
  // The whole point of the deadline: no handler work for a request the
  // client has already given up on.
  EXPECT_EQ(echo_calls_.load(), 0);
}

TEST_F(JsonRpcTest, ClientDisconnectMidResponseLeavesServerHealthy) {
  start();
  // Fire a slow request and hang up before the response can be written.
  const int fd = connect_loopback(server_->port());
  ASSERT_GE(fd, 0);
  const std::string body = R"({"jsonrpc":"2.0","id":1,"method":"slow"})";
  send_all(fd, "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                   std::to_string(body.size()) +
                   "\r\nConnection: close\r\n\r\n" + body);
  ::close(fd);
  // The dispatcher finishes the handler, the posted response is dropped
  // on the dead connection, and the server keeps serving.
  const std::string after = rpc_post(
      server_->port(), R"({"jsonrpc":"2.0","id":2,"method":"echo"})");
  EXPECT_NE(after.find("\"id\":2"), std::string::npos) << after;
}

// The TSan leg runs this: many client threads against the dispatcher pool
// exercises queue hand-off, with_connection re-entry, and metric writes.
TEST_F(JsonRpcTest, ConcurrentClientsAllGetTheirOwnResponses) {
  net::RpcConfig config;
  config.dispatchers = 4;
  start(config);
  constexpr int kThreads = 8;
  constexpr int kRequests = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequests; ++i) {
        const int id = t * 1000 + i;
        const std::string response = rpc_post(
            server_->port(),
            R"({"jsonrpc":"2.0","id":)" + std::to_string(id) +
                R"(,"method":"echo","params":[)" + std::to_string(id) +
                "]}");
        if (response.find("\"id\":" + std::to_string(id) + ",") ==
                std::string::npos ||
            response.find("\"result\":[" + std::to_string(id) + "]") ==
                std::string::npos) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(echo_calls_.load(), kThreads * kRequests);
  EXPECT_EQ(server_->requests_received(),
            static_cast<std::uint64_t>(kThreads * kRequests));
}

TEST(JsonRpcLifecycle, StartTwiceThrowsAndStopIsIdempotent) {
  net::JsonRpcServer server;
  server.start(0);
  EXPECT_THROW(server.start(0), StateError);
  server.stop();
  server.stop();
}

}  // namespace
