// U256: EVM word arithmetic — unit tests plus property sweeps (TEST_P).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "evm/uint256.hpp"

namespace phishinghook::evm {
namespace {

TEST(U256, BasicConstruction) {
  EXPECT_TRUE(U256().is_zero());
  EXPECT_EQ(U256(42).low64(), 42u);
  EXPECT_TRUE(U256(1).fits_u64());
  EXPECT_FALSE(U256::max().fits_u64());
}

TEST(U256, FromStringDecimalAndHex) {
  EXPECT_EQ(U256::from_string("255"), U256(255));
  EXPECT_EQ(U256::from_string("0xff"), U256(255));
  EXPECT_EQ(U256::from_string("0xFF"), U256(255));
  EXPECT_EQ(
      U256::from_string("115792089237316195423570985008687907853"
                        "269984665640564039457584007913129639935"),
      U256::max());
  EXPECT_THROW(U256::from_string(""), ParseError);
  EXPECT_THROW(U256::from_string("12a"), ParseError);
  EXPECT_THROW(
      U256::from_string("115792089237316195423570985008687907853"
                        "269984665640564039457584007913129639936"),
      ParseError);  // 2^256 overflows
}

TEST(U256, HexAndDecimalRendering) {
  EXPECT_EQ(U256().to_hex(), "0x0");
  EXPECT_EQ(U256(255).to_hex(), "0xff");
  EXPECT_EQ(U256(255).to_decimal(), "255");
  EXPECT_EQ(U256::max().to_decimal(),
            "115792089237316195423570985008687907853"
            "269984665640564039457584007913129639935");
}

TEST(U256, BytesRoundTrip) {
  const U256 value = U256::from_string("0x0102030405060708090a");
  const auto bytes = value.to_bytes_be();
  EXPECT_EQ(bytes[31], 0x0a);
  EXPECT_EQ(bytes[22], 0x01);
  EXPECT_EQ(U256::from_bytes_be(bytes), value);
  // Short inputs zero-extend on the left.
  const std::uint8_t short_bytes[] = {0xAB};
  EXPECT_EQ(U256::from_bytes_be(std::span<const std::uint8_t>(short_bytes, 1)),
            U256(0xAB));
}

TEST(U256, AdditionWrapsModulo2Pow256) {
  EXPECT_EQ(U256::max() + U256(1), U256());
  EXPECT_EQ(U256::max() + U256::max(), U256::max() - U256(1));
}

TEST(U256, SubtractionWraps) {
  EXPECT_EQ(U256() - U256(1), U256::max());
  EXPECT_EQ(U256(5) - U256(3), U256(2));
}

TEST(U256, MultiplicationTruncates) {
  const U256 big = U256::pow2(200);
  EXPECT_EQ(big * U256::pow2(56), U256());           // 2^256 == 0
  EXPECT_EQ(big * U256::pow2(55), U256::pow2(255));  // 2^255 survives
  EXPECT_EQ(U256(7) * U256(6), U256(42));
}

TEST(U256, DivisionByZeroIsZero) {
  EXPECT_EQ(U256(5) / U256(), U256());  // EVM DIV semantics
  EXPECT_EQ(U256(5) % U256(), U256());  // EVM MOD semantics
}

TEST(U256, LargeDivision) {
  const U256 n = U256::from_string(
      "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  const U256 d = U256::from_string("0x100000000");
  EXPECT_EQ(n / d, U256::from_string(
                       "0xffffffffffffffffffffffffffffffffffffffffffffffffff"
                       "ffffff"));
  EXPECT_EQ(n % d, U256::from_string("0xffffffff"));
}

TEST(U256, SignedDivision) {
  const U256 minus_six = U256(6).negated();
  EXPECT_EQ(U256::sdiv(minus_six, U256(2)), U256(3).negated());
  EXPECT_EQ(U256::sdiv(minus_six, U256(2).negated()), U256(3));
  EXPECT_EQ(U256::sdiv(U256(7), U256(2)), U256(3));  // trunc toward zero
  EXPECT_EQ(U256::sdiv(U256(7).negated(), U256(2)), U256(3).negated());
  // MIN_INT256 / -1 wraps to MIN_INT256 (the EVM's one overflow case).
  const U256 min_int = U256::pow2(255);
  EXPECT_EQ(U256::sdiv(min_int, U256(1).negated()), min_int);
}

TEST(U256, SignedModulo) {
  const U256 minus_seven = U256(7).negated();
  EXPECT_EQ(U256::smod(minus_seven, U256(3)), U256(1).negated());
  EXPECT_EQ(U256::smod(U256(7), U256(3).negated()), U256(1));
  EXPECT_EQ(U256::smod(U256(7), U256()), U256());
}

TEST(U256, SignedComparisons) {
  const U256 minus_one = U256(1).negated();
  EXPECT_TRUE(U256::slt(minus_one, U256(0)));
  EXPECT_TRUE(U256::sgt(U256(0), minus_one));
  EXPECT_TRUE(U256::slt(U256::pow2(255), U256(0)));  // MIN < 0
  EXPECT_FALSE(U256::slt(U256(3), U256(3)));
  // Unsigned comparison sees -1 as max.
  EXPECT_TRUE(minus_one > U256(0));
}

TEST(U256, AddmodMulmodAvoidTruncation) {
  // (MAX + MAX) % 7 computed over 257 bits.
  const U256 max = U256::max();
  const U256 expected_add = ((max % U256(7)) + (max % U256(7))) % U256(7);
  EXPECT_EQ(U256::addmod(max, max, U256(7)), expected_add);
  // MULMOD with operands whose product overflows 256 bits:
  // (2^200 * 2^200) % (2^128 + 1). Verified against modular arithmetic:
  // 2^400 mod (2^128+1): since 2^128 == -1 (mod m), 2^400 = (2^128)^3 * 2^16
  // == -(2^16) (mod m) == m - 65536.
  const U256 m = U256::pow2(128) + U256(1);
  EXPECT_EQ(U256::mulmod(U256::pow2(200), U256::pow2(200), m), m - U256(65536));
  EXPECT_EQ(U256::mulmod(max, max, U256()), U256());
}

TEST(U256, ExpSquareAndMultiply) {
  EXPECT_EQ(U256::exp(U256(2), U256(10)), U256(1024));
  EXPECT_EQ(U256::exp(U256(3), U256(0)), U256(1));
  EXPECT_EQ(U256::exp(U256(0), U256(0)), U256(1));  // EVM: 0^0 == 1
  EXPECT_EQ(U256::exp(U256(2), U256(256)), U256());  // wraps to 0
  EXPECT_EQ(U256::exp(U256(10), U256(5)), U256(100000));
}

TEST(U256, Shifts) {
  EXPECT_EQ(U256(1) << 255, U256::pow2(255));
  EXPECT_EQ(U256(1) << 256, U256(1) << 300);  // both zero by saturation
  EXPECT_EQ(U256::pow2(255) >> 255, U256(1));
  EXPECT_EQ((U256(0xFF) << 64).limbs()[1], 0xFFull);
}

TEST(U256, Sar) {
  const U256 minus_eight = U256(8).negated();
  EXPECT_EQ(U256::sar(minus_eight, U256(1)), U256(4).negated());
  EXPECT_EQ(U256::sar(U256(8), U256(1)), U256(4));
  EXPECT_EQ(U256::sar(minus_eight, U256(300)), U256::max());  // sign fill
  EXPECT_EQ(U256::sar(U256(8), U256(300)), U256());
}

TEST(U256, ByteExtraction) {
  const U256 value = U256::from_string("0x0102");
  EXPECT_EQ(value.byte_msb(31), 0x02);
  EXPECT_EQ(value.byte_msb(30), 0x01);
  EXPECT_EQ(value.byte_msb(0), 0x00);
  EXPECT_EQ(value.byte_msb(99), 0x00);
}

TEST(U256, SignExtend) {
  // Sign-extend the byte 0xFF at index 0: becomes -1.
  EXPECT_EQ(U256::signextend(U256(0), U256(0xFF)), U256::max());
  EXPECT_EQ(U256::signextend(U256(0), U256(0x7F)), U256(0x7F));
  // Index >= 31 leaves the value unchanged.
  EXPECT_EQ(U256::signextend(U256(31), U256(0xFF)), U256(0xFF));
  // 0xFF00 with index 1: sign bit of byte 1 is 1 -> extends.
  EXPECT_EQ(U256::signextend(U256(1), U256(0xFF00)),
            U256(0x100).negated());
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256().bit_length(), 0u);
  EXPECT_EQ(U256(1).bit_length(), 1u);
  EXPECT_EQ(U256(255).bit_length(), 8u);
  EXPECT_EQ(U256::pow2(255).bit_length(), 256u);
  EXPECT_EQ(U256(256).byte_length(), 2u);
}

// --- property sweeps over random operands -----------------------------------

class U256Property : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  U256 random_word(common::Rng& rng) {
    // Mix widths: small, 64-bit, and full-width words.
    switch (rng.next_below(3)) {
      case 0: return U256(rng.next_below(1000));
      case 1: return U256(rng.next_u64());
      default:
        return U256(rng.next_u64(), rng.next_u64(), rng.next_u64(),
                    rng.next_u64());
    }
  }
};

TEST_P(U256Property, AlgebraLaws) {
  common::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_word(rng);
    const U256 b = random_word(rng);
    const U256 c = random_word(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);  // distributes mod 2^256
    EXPECT_EQ(a - b + b, a);
    EXPECT_EQ(a ^ a, U256());
    EXPECT_EQ((a & b) | (a & c), a & (b | c));
    EXPECT_EQ(~(~a), a);
    EXPECT_EQ(a.negated() + a, U256());
  }
}

TEST_P(U256Property, DivisionInvariant) {
  common::Rng rng(GetParam() ^ 0xDEAD);
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_word(rng);
    U256 b = random_word(rng);
    if (b.is_zero()) b = U256(1);
    const U256 q = a / b;
    const U256 r = a % b;
    EXPECT_TRUE(r < b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST_P(U256Property, BytesRoundTrip) {
  common::Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_word(rng);
    EXPECT_EQ(U256::from_bytes_be(a.to_bytes_be()), a);
    EXPECT_EQ(U256::from_string(a.to_hex()), a);
    EXPECT_EQ(U256::from_string(a.to_decimal()), a);
  }
}

TEST_P(U256Property, ShiftsMatchMultiplication) {
  common::Rng rng(GetParam() ^ 0xF00D);
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_word(rng);
    const unsigned s = static_cast<unsigned>(rng.next_below(256));
    EXPECT_EQ(a << s, a * U256::pow2(s));
    EXPECT_EQ((a >> s) << s, a & (U256::max() << s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256Property,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace phishinghook::evm
