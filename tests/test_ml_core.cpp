// ML core: matrix, metrics, stratified cross-validation.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "ml/cross_validation.hpp"
#include "ml/matrix.hpp"
#include "ml/metrics.hpp"

namespace phishinghook::ml {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = 7.0;
  EXPECT_EQ(m.row(0)[1], 7.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), InvalidArgument);
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.at(1, 0), 3.0);
}

TEST(Matrix, SelectRows) {
  const Matrix m = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const std::vector<std::size_t> idx = {2, 0};
  const Matrix sel = m.select_rows(idx);
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_EQ(sel.at(0, 0), 3.0);
  EXPECT_EQ(sel.at(1, 0), 1.0);
}

TEST(Metrics, ConfusionAndDerived) {
  const std::vector<int> truth = {1, 1, 1, 0, 0, 0, 0, 1};
  const std::vector<int> pred = {1, 1, 0, 0, 0, 1, 0, 1};
  const ConfusionMatrix cm = confusion(truth, pred);
  EXPECT_EQ(cm.tp, 3u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 3u);
  const Metrics m = compute_metrics(cm);
  EXPECT_NEAR(m.accuracy, 6.0 / 8.0, 1e-12);
  EXPECT_NEAR(m.precision, 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(m.recall, 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(m.f1, 0.75, 1e-12);
}

TEST(Metrics, DegenerateDenominators) {
  // All-negative predictions: precision undefined -> 0, f1 -> 0.
  const Metrics m = compute_metrics({1, 0}, {0, 0});
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.f1, 0.0);
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_NEAR(m.accuracy, 0.5, 1e-12);
}

TEST(Metrics, MeanMetrics) {
  Metrics a{1.0, 1.0, 1.0, 1.0};
  Metrics b{0.0, 0.0, 0.0, 0.0};
  const Metrics m = mean_metrics({a, b});
  EXPECT_NEAR(m.accuracy, 0.5, 1e-12);
}

TEST(Metrics, ThresholdPredictions) {
  EXPECT_EQ(threshold_predictions({0.2, 0.5, 0.9}),
            (std::vector<int>{0, 1, 1}));
}

TEST(Metrics, AreaUnderTime) {
  EXPECT_NEAR(area_under_time({1.0, 1.0, 1.0}), 1.0, 1e-12);
  EXPECT_NEAR(area_under_time({1.0, 0.0}), 0.5, 1e-12);
  EXPECT_NEAR(area_under_time({0.8}), 0.8, 1e-12);
  EXPECT_EQ(area_under_time({}), 0.0);
}

class KFoldProperty : public ::testing::TestWithParam<int> {};

TEST_P(KFoldProperty, PartitionInvariants) {
  const int k = GetParam();
  common::Rng rng(5);
  std::vector<int> labels;
  for (int i = 0; i < 101; ++i) labels.push_back(i % 2);
  labels.push_back(1);  // slight imbalance

  const auto folds = stratified_kfold(labels, k, rng);
  ASSERT_EQ(folds.size(), static_cast<std::size_t>(k));

  std::vector<int> seen(labels.size(), 0);
  for (const Fold& fold : folds) {
    for (std::size_t i : fold.test_indices) ++seen[i];
    // train and test are disjoint and cover everything.
    std::vector<bool> in_test(labels.size(), false);
    for (std::size_t i : fold.test_indices) in_test[i] = true;
    for (std::size_t i : fold.train_indices) EXPECT_FALSE(in_test[i]);
    EXPECT_EQ(fold.train_indices.size() + fold.test_indices.size(),
              labels.size());
    // Stratification: test-set positive fraction within 15 points of 50%.
    double positives = 0;
    for (std::size_t i : fold.test_indices) positives += labels[i];
    const double fraction = positives / static_cast<double>(fold.test_indices.size());
    EXPECT_NEAR(fraction, 0.5, 0.15);
  }
  // Every sample is tested exactly once across folds.
  for (int count : seen) EXPECT_EQ(count, 1);
}

INSTANTIATE_TEST_SUITE_P(Ks, KFoldProperty, ::testing::Values(2, 3, 5, 10));

TEST(KFold, RejectsBadK) {
  common::Rng rng(1);
  std::vector<int> labels = {0, 1, 0, 1};
  EXPECT_THROW(stratified_kfold(labels, 1, rng), InvalidArgument);
  EXPECT_THROW(stratified_kfold(labels, 5, rng), InvalidArgument);
}

TEST(Holdout, StratifiedFractions) {
  common::Rng rng(2);
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) labels.push_back(i < 50 ? 0 : 1);
  const Fold fold = stratified_holdout(labels, 0.2, rng);
  EXPECT_EQ(fold.test_indices.size(), 20u);
  EXPECT_EQ(fold.train_indices.size(), 80u);
  double positives = 0;
  for (std::size_t i : fold.test_indices) positives += labels[i];
  EXPECT_NEAR(positives / 20.0, 0.5, 1e-12);
  EXPECT_THROW(stratified_holdout(labels, 0.0, rng), InvalidArgument);
}

}  // namespace
}  // namespace phishinghook::ml
