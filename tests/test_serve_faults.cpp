// Chaos suite for the fault-isolated serving path: deterministic fault
// injection at the explorer, per-slot error isolation in the scoring
// engine, retry of transient extract faults, admission control and
// deadline shedding — and the accounting invariant that every submission
// ends up in exactly one of completed / failed / shed.
//
// The TSan leg of ci.sh runs this whole file: workers, producers, the
// fault injector's attempt map, and the metrics cells all race here on
// purpose.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "chain/fault_injection.hpp"
#include "common/retry.hpp"
#include "core/model_registry.hpp"
#include "ml/random_forest.hpp"
#include "serve/scoring_engine.hpp"
#include "synth/dataset_builder.hpp"

namespace phishinghook {
namespace {

// One small dataset shared by the whole suite (building it is the slow
// part; these tests only need addresses + codes + the chain).
const synth::BuiltDataset& dataset() {
  static const synth::BuiltDataset built = [] {
    synth::DatasetConfig config;
    config.target_size = 160;
    config.seed = 97;
    return synth::DatasetBuilder(config).build();
  }();
  return built;
}

core::HistogramAdapter fitted_adapter() {
  ml::RandomForestConfig config;
  config.n_trees = 8;
  config.max_depth = 6;
  core::HistogramAdapter adapter(
      std::make_unique<ml::RandomForestClassifier>(config), "test-detector");
  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  for (const synth::LabeledContract& sample : dataset().samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
  }
  adapter.fit(codes, labels);
  return adapter;
}

std::vector<evm::Address> all_addresses() {
  std::vector<evm::Address> out;
  for (const synth::LabeledContract& sample : dataset().samples) {
    out.push_back(sample.address);
  }
  return out;
}

/// Detector decorator whose predict_proba can be told to throw — the
/// "model backend fell over" half of the chaos matrix.
class FailingDetector final : public core::PhishingClassifier {
 public:
  explicit FailingDetector(core::PhishingClassifier& inner)
      : inner_(&inner) {}

  void fit(const std::vector<const evm::Bytecode*>& codes,
           const std::vector<int>& labels) override {
    inner_->fit(codes, labels);
  }
  std::vector<double> predict_proba(
      const std::vector<const evm::Bytecode*>& codes) override {
    if (fail.load()) throw Error("model backend exploded");
    return inner_->predict_proba(codes);
  }
  std::string name() const override { return "failing"; }
  core::ModelCategory category() const override {
    return inner_->category();
  }

  std::atomic<bool> fail{false};

 private:
  core::PhishingClassifier* inner_;
};

/// Sum of the three terminal counters; must equal submissions once the
/// engine has drained.
std::uint64_t terminal_total(const serve::ServiceMetrics& metrics) {
  return metrics.requests_completed.value() +
         metrics.requests_failed.value() + metrics.requests_shed.value();
}

// --- RetryPolicy -------------------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndGrowing) {
  common::RetryPolicy policy;
  policy.base_delay_us = 100;
  policy.multiplier = 2.0;
  policy.max_delay_us = 10'000;
  policy.jitter = 0.5;
  policy.seed = 7;

  for (std::size_t retry = 1; retry <= 8; ++retry) {
    const std::uint64_t a = policy.delay_us(retry, 1234);
    const std::uint64_t b = policy.delay_us(retry, 1234);
    EXPECT_EQ(a, b) << "jitter must be a pure function, retry " << retry;
    const double raw =
        std::min(100.0 * std::pow(2.0, static_cast<double>(retry - 1)),
                 10'000.0);
    EXPECT_LE(static_cast<double>(a), raw);
    EXPECT_GE(static_cast<double>(a), raw * 0.5 - 1.0);
  }
  // Different salts decorrelate.
  std::set<std::uint64_t> delays;
  for (std::uint64_t salt = 0; salt < 16; ++salt) {
    delays.insert(policy.delay_us(3, salt));
  }
  EXPECT_GT(delays.size(), 8u);
}

TEST(RetryPolicy, RetriesTransientFaultsOnly) {
  common::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_us = 1;  // keep the test fast
  policy.max_delay_us = 10;

  int calls = 0, retries = 0;
  const int result = policy.run(
      [&] {
        if (++calls < 3) throw TransientError("blip");
        return 42;
      },
      /*salt=*/1, [&] { ++retries; });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);

  // Permanent faults propagate immediately, no retry.
  calls = retries = 0;
  EXPECT_THROW(policy.run(
                   [&]() -> int {
                     ++calls;
                     throw ParseError("corrupt");
                   },
                   1, [&] { ++retries; }),
               ParseError);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0);

  // Exhaustion rethrows the transient fault after max_attempts tries.
  calls = retries = 0;
  EXPECT_THROW(policy.run(
                   [&]() -> int {
                     ++calls;
                     throw TransientError("still down");
                   },
                   1, [&] { ++retries; }),
               TransientError);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retries, 3);
}

// --- FaultInjectingExplorer --------------------------------------------------

TEST(FaultInjection, ScheduleIsSeededAndReplayable) {
  const std::vector<evm::Address> addresses = all_addresses();
  chain::FaultConfig config;
  config.throw_rate = 0.2;
  config.empty_rate = 0.1;
  config.seed = 11;

  // Two decorators with the same seed produce the same outcome at every
  // (address, attempt) — the property every determinism test builds on.
  auto outcomes = [&](const chain::FaultInjectingExplorer& explorer) {
    std::string trace;
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (const evm::Address& address : addresses) {
        try {
          trace += explorer.get_code(address).empty() ? 'e' : 'c';
        } catch (const TransientError&) {
          trace += 't';
        }
      }
    }
    return trace;
  };
  const chain::FaultInjectingExplorer a(*dataset().explorer, config);
  const chain::FaultInjectingExplorer b(*dataset().explorer, config);
  const std::string trace_a = outcomes(a);
  EXPECT_EQ(trace_a, outcomes(b));
  EXPECT_NE(trace_a.find('t'), std::string::npos);

  // A different seed gives a different schedule.
  config.seed = 12;
  const chain::FaultInjectingExplorer c(*dataset().explorer, config);
  EXPECT_NE(trace_a, outcomes(c));

  // Injected counts roughly match the configured mix over 480 calls.
  const chain::FaultStats stats = a.stats();
  EXPECT_EQ(stats.calls, addresses.size() * 3);
  EXPECT_GT(stats.throws, stats.calls / 10);
  EXPECT_LT(stats.throws, stats.calls / 3);
  EXPECT_GT(stats.empties, 0u);

  EXPECT_THROW(chain::FaultInjectingExplorer(
                   *dataset().explorer, {.throw_rate = 0.9, .empty_rate = 0.9}),
               InvalidArgument);
}

TEST(FaultInjection, LabelPathDelegatesUnfaulted) {
  chain::FaultConfig config;
  config.throw_rate = 1.0;  // code path always faults...
  const chain::FaultInjectingExplorer chaos(*dataset().explorer, config);
  // ...but labels and crawls pass straight through to the inner explorer.
  EXPECT_EQ(chaos.flagged_count(), dataset().explorer->flagged_count());
  for (const synth::LabeledContract& sample : dataset().samples) {
    EXPECT_EQ(chaos.is_flagged_phishing(sample.address),
              dataset().explorer->is_flagged_phishing(sample.address));
  }
}

// --- chaos through the scoring engine ---------------------------------------

TEST(ChaosEngine, ThrowingExplorerDoesNotKillWorkersOrTheBatch) {
  core::HistogramAdapter adapter = fitted_adapter();
  chain::FaultConfig faults;
  faults.throw_rate = 0.25;
  faults.seed = 5;
  const chain::FaultInjectingExplorer chaos(*dataset().explorer, faults);

  serve::EngineConfig config;
  config.workers = 4;
  config.max_batch = 8;
  config.extract_retry.max_attempts = 1;  // surface every injected fault
  serve::ScoringEngine engine(chaos, adapter, config);

  const std::vector<evm::Address> addresses = all_addresses();
  const std::vector<serve::ScoreResult> results = engine.score_all(addresses);

  ASSERT_EQ(results.size(), addresses.size());
  std::size_t ok = 0, failed = 0;
  for (const serve::ScoreResult& result : results) {
    switch (result.status) {
      case serve::ScoreStatus::kOk:
        ++ok;
        EXPECT_TRUE(result.error.empty());
        break;
      case serve::ScoreStatus::kExtractError:
        ++failed;
        EXPECT_NE(result.error.find("injected explorer fault"),
                  std::string::npos);
        EXPECT_EQ(result.probability, 0.0);
        break;
      case serve::ScoreStatus::kEmptyCode:
        break;
      default:
        FAIL() << "unexpected status " << serve::to_string(result.status);
    }
  }
  // ~25% of 160 extracts throw: both populations must be present, and the
  // workers must all still be alive to have produced them.
  EXPECT_GT(ok, 0u);
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(engine.metrics().requests_failed.value(), failed);
  EXPECT_EQ(terminal_total(engine.metrics()),
            engine.metrics().requests_submitted.value());

  // The engine keeps serving after a fault storm.
  const std::vector<serve::ScoreResult> again = engine.score_all(addresses);
  EXPECT_EQ(again.size(), addresses.size());
}

TEST(ChaosEngine, RetryRecoversTransientExtractFaults) {
  core::HistogramAdapter adapter = fitted_adapter();
  const std::vector<evm::Address> addresses = all_addresses();

  auto failures_with_attempts = [&](std::size_t attempts) {
    chain::FaultConfig faults;
    faults.throw_rate = 0.25;
    faults.seed = 5;
    const chain::FaultInjectingExplorer chaos(*dataset().explorer, faults);
    serve::EngineConfig config;
    config.workers = 2;
    config.extract_retry.max_attempts = attempts;
    config.extract_retry.base_delay_us = 1;
    config.extract_retry.max_delay_us = 50;
    serve::ScoringEngine engine(chaos, adapter, config);
    std::size_t failed = 0;
    for (const serve::ScoreResult& r : engine.score_all(addresses)) {
      failed += r.status == serve::ScoreStatus::kExtractError;
    }
    if (attempts > 1) {
      EXPECT_GT(engine.metrics().retries.value(), 0u);
    }
    return failed;
  };

  const std::size_t without_retry = failures_with_attempts(1);
  const std::size_t with_retry = failures_with_attempts(3);
  EXPECT_GT(without_retry, 0u);
  // Three tries at p=0.25 fail together with p=~0.016: retries must
  // recover the overwhelming majority of transient faults.
  EXPECT_LT(with_retry, without_retry / 2);
}

TEST(ChaosEngine, CacheHitsAndEmptyCodeSurviveModelFailure) {
  core::HistogramAdapter adapter = fitted_adapter();
  FailingDetector detector(adapter);

  serve::EngineConfig config;
  config.workers = 1;
  config.max_batch = 8;
  serve::ScoringEngine engine(*dataset().explorer, detector, config);

  // Find two addresses with distinct code hashes.
  const std::vector<evm::Address> addresses = all_addresses();
  const evm::Address warm = addresses.front();
  evm::Address cold = addresses.front();
  const evm::Hash256 warm_hash =
      dataset().explorer->get_code(warm).code_hash();
  for (const evm::Address& candidate : addresses) {
    if (dataset().explorer->get_code(candidate).code_hash() != warm_hash) {
      cold = candidate;
      break;
    }
  }
  ASSERT_NE(dataset().explorer->get_code(cold).code_hash(), warm_hash);

  const serve::ScoreResult warmed = engine.submit(warm).get();
  ASSERT_EQ(warmed.status, serve::ScoreStatus::kOk);

  detector.fail = true;
  const serve::ScoreResult hit = engine.submit(warm).get();
  const serve::ScoreResult miss = engine.submit(cold).get();
  const serve::ScoreResult empty =
      engine.submit(evm::Address::from_hex(
                        "0x00000000000000000000000000000000000000ff"))
          .get();

  // The cache hit and the empty-code answer are valid results and must be
  // delivered even though predict_proba threw for the same traffic.
  EXPECT_EQ(hit.status, serve::ScoreStatus::kOk);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.probability, warmed.probability);
  EXPECT_EQ(miss.status, serve::ScoreStatus::kModelError);
  EXPECT_NE(miss.error.find("model backend exploded"), std::string::npos);
  EXPECT_EQ(empty.status, serve::ScoreStatus::kEmptyCode);

  // Failures are not cached: the model heals and the cold address scores.
  detector.fail = false;
  const serve::ScoreResult healed = engine.submit(cold).get();
  EXPECT_EQ(healed.status, serve::ScoreStatus::kOk);
  EXPECT_FALSE(healed.cache_hit);

  EXPECT_EQ(engine.metrics().requests_failed.value(), 1u);
  EXPECT_EQ(terminal_total(engine.metrics()),
            engine.metrics().requests_submitted.value());
}

TEST(ChaosEngine, FullQueueRejectsInsteadOfGrowing) {
  core::HistogramAdapter adapter = fitted_adapter();
  chain::FaultConfig faults;
  faults.latency_rate = 1.0;  // every extract stalls: the queue backs up
  faults.latency_us = 2000;
  const chain::FaultInjectingExplorer slow(*dataset().explorer, faults);

  serve::EngineConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.max_queue = 2;
  serve::ScoringEngine engine(slow, adapter, config);

  const std::vector<evm::Address> addresses = all_addresses();
  std::vector<std::future<serve::ScoreResult>> futures;
  for (std::size_t i = 0; i < 16; ++i) {
    futures.push_back(engine.submit(addresses[i]));
  }
  std::size_t shed = 0, served = 0;
  for (auto& future : futures) {
    const serve::ScoreResult result = future.get();  // all resolve
    if (result.status == serve::ScoreStatus::kShed) {
      ++shed;
      EXPECT_NE(result.error.find("queue full"), std::string::npos);
    } else {
      ++served;
    }
  }
  // 16 near-instant submissions against a 1-deep/2ms pipeline with a
  // 2-slot queue: most must be rejected, but whatever was admitted serves.
  EXPECT_GT(shed, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_EQ(engine.metrics().requests_shed.value(), shed);
  EXPECT_EQ(terminal_total(engine.metrics()), 16u);
}

TEST(ChaosEngine, ExpiredDeadlinesAreShedBeforeScoring) {
  core::HistogramAdapter adapter = fitted_adapter();
  chain::FaultConfig faults;
  faults.latency_rate = 1.0;
  faults.latency_us = 5000;
  const chain::FaultInjectingExplorer slow(*dataset().explorer, faults);

  serve::EngineConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.deadline_us = 500;  // far below the 5ms injected stall
  serve::ScoringEngine engine(slow, adapter, config);

  const std::vector<evm::Address> addresses = all_addresses();
  std::vector<std::future<serve::ScoreResult>> futures;
  for (std::size_t i = 0; i < 8; ++i) {
    futures.push_back(engine.submit(addresses[i]));
  }
  std::size_t shed = 0;
  for (auto& future : futures) {
    const serve::ScoreResult result = future.get();
    if (result.status == serve::ScoreStatus::kShed) {
      ++shed;
      EXPECT_NE(result.error.find("deadline exceeded"), std::string::npos);
    }
  }
  // Request 1 occupies the worker for 5ms; the ones queued behind it blow
  // their 500us budget and must be shed without extract/model work.
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(engine.metrics().requests_shed.value(), shed);
  EXPECT_EQ(terminal_total(engine.metrics()), 8u);
}

TEST(ChaosEngine, OutcomeIsDeterministicAcrossThreadCounts) {
  core::HistogramAdapter adapter = fitted_adapter();
  const std::vector<evm::Address> addresses = all_addresses();

  // Same seed, same submission list, 1 worker vs 4: the per-(address,
  // attempt) fault schedule plus deterministic retry must produce the same
  // terminal status and probability for every request.
  auto run = [&](std::size_t workers) {
    chain::FaultConfig faults;
    faults.throw_rate = 0.3;
    faults.empty_rate = 0.1;
    faults.seed = 42;
    const chain::FaultInjectingExplorer chaos(*dataset().explorer, faults);
    serve::EngineConfig config;
    config.workers = workers;
    config.max_batch = 8;
    config.extract_retry.max_attempts = 2;
    config.extract_retry.base_delay_us = 1;
    config.extract_retry.max_delay_us = 50;
    serve::ScoringEngine engine(chaos, adapter, config);
    std::vector<std::pair<serve::ScoreStatus, double>> out;
    for (const serve::ScoreResult& r : engine.score_all(addresses)) {
      out.emplace_back(r.status, r.probability);
    }
    return out;
  };

  const auto single = run(1);
  const auto quad = run(4);
  ASSERT_EQ(single.size(), quad.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].first, quad[i].first) << "address " << i;
    EXPECT_EQ(single[i].second, quad[i].second) << "address " << i;
  }
}

TEST(ChaosEngine, TenPercentFaultRateOverThousandSubmissionsAccountsExactly) {
  // The acceptance scenario: 10% injected throw rate, 1,000 submissions
  // from concurrent producers, zero aborts, every future resolves with a
  // definite status, and completed + failed + shed == submitted.
  core::HistogramAdapter adapter = fitted_adapter();
  chain::FaultConfig faults;
  faults.throw_rate = 0.10;
  faults.seed = 2026;
  const chain::FaultInjectingExplorer chaos(*dataset().explorer, faults);

  serve::EngineConfig config;
  config.workers = 4;
  config.max_batch = 16;
  config.extract_retry.base_delay_us = 1;
  config.extract_retry.max_delay_us = 100;
  serve::ScoringEngine engine(chaos, adapter, config);

  const std::vector<evm::Address> addresses = all_addresses();
  constexpr std::size_t kSubmissions = 1000;
  constexpr std::size_t kProducers = 4;
  std::atomic<std::size_t> resolved{0};
  std::map<serve::ScoreStatus, std::size_t> by_status;
  std::mutex by_status_mutex;
  {
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        std::vector<std::future<serve::ScoreResult>> futures;
        for (std::size_t i = p; i < kSubmissions; i += kProducers) {
          futures.push_back(engine.submit(addresses[i % addresses.size()]));
        }
        std::map<serve::ScoreStatus, std::size_t> local;
        for (auto& future : futures) {
          ++local[future.get().status];
          resolved.fetch_add(1);
        }
        std::lock_guard<std::mutex> lock(by_status_mutex);
        for (const auto& [status, count] : local) by_status[status] += count;
      });
    }
    for (std::thread& producer : producers) producer.join();
  }

  EXPECT_EQ(resolved.load(), kSubmissions);
  const serve::ServiceMetrics& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests_submitted.value(), kSubmissions);
  EXPECT_EQ(terminal_total(metrics), kSubmissions);
  std::size_t sum = 0;
  for (const auto& [status, count] : by_status) sum += count;
  EXPECT_EQ(sum, kSubmissions);
  // With default 3-attempt retry at p=0.1 almost everything completes, but
  // latency histograms must have seen every single request either way.
  EXPECT_EQ(metrics.request_latency.count(), kSubmissions);
  EXPECT_GT(by_status[serve::ScoreStatus::kOk], kSubmissions / 2);
}

}  // namespace
}  // namespace phishinghook
