// Bit-exact determinism of the parallel training runtime: for every
// parallelized model, fitting and predicting at PHISHINGHOOK_THREADS=1 and
// =4 must produce *identical* results — same doubles, same serialized
// bytes — because randomness is pre-drawn serially and every reduction is
// index-ordered (the contract documented in common/thread_pool.hpp and
// DESIGN.md §8).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/features.hpp"
#include "ml/catboost.hpp"
#include "ml/cross_validation.hpp"
#include "ml/flat_tree.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/hyper_search.hpp"
#include "ml/knn.hpp"
#include "ml/lightgbm.hpp"
#include "ml/random_forest.hpp"
#include "obs/trace.hpp"
#include "synth/dataset_builder.hpp"

namespace phishinghook::ml {
namespace {

struct Dataset {
  Matrix x;
  std::vector<int> y;
};

/// Noisy linear-rule dataset: non-trivial splits at every depth.
Dataset make_dataset(std::size_t n, std::size_t d, std::uint64_t seed) {
  common::Rng rng(seed);
  Dataset data;
  data.x = Matrix(n, d);
  data.y.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      data.x.at(r, c) = rng.uniform(-3.0, 3.0);
    }
    const double margin = data.x.at(r, 0) + 0.5 * data.x.at(r, 1) -
                          0.25 * data.x.at(r, 2) + rng.normal(0.0, 0.5);
    data.y.push_back(margin > 0.0 ? 1 : 0);
  }
  return data;
}

/// Restores the global pool to the environment default on scope exit, so
/// thread-count sweeps cannot leak into other tests.
class ParallelDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { common::ThreadPool::set_global_threads(0); }

  template <typename Fn>
  auto at_threads(std::size_t threads, Fn&& fn) {
    common::ThreadPool::set_global_threads(threads);
    return fn();
  }
};

template <typename Model, typename Config>
std::vector<double> fit_predict(Config config, const Dataset& data) {
  Model model(config);
  model.fit(data.x, data.y);
  return model.predict_proba(data.x);
}

void expect_identical(const std::vector<double>& serial,
                      const std::vector<double>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // EXPECT_EQ on doubles is exact — approximate equality would hide
    // reduction-order bugs, the whole point of this suite.
    ASSERT_EQ(serial[i], parallel[i]) << "row " << i;
  }
}

TEST_F(ParallelDeterminism, RandomForestFitAndProbaBitIdentical) {
  const Dataset data = make_dataset(240, 8, 101);
  RandomForestConfig config;
  config.n_trees = 16;
  config.max_depth = 8;
  config.seed = 7;

  const auto run = [&] {
    RandomForestClassifier model(config);
    model.fit(data.x, data.y);
    std::ostringstream bytes;
    model.save(bytes);
    return std::make_pair(model.predict_proba(data.x), bytes.str());
  };
  const auto serial = at_threads(1, run);
  const auto parallel = at_threads(4, run);
  expect_identical(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);  // fitted parameters, bytewise
}

TEST_F(ParallelDeterminism, TelemetryOnKeepsBitIdentical) {
  // Telemetry is observation only: with the tracer actively buffering
  // spans, fit + predict must stay bit-identical across thread counts.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(4096);
  const Dataset data = make_dataset(240, 8, 101);
  RandomForestConfig config;
  config.n_trees = 16;
  config.max_depth = 8;
  config.seed = 7;
  const auto run = [&] {
    RandomForestClassifier model(config);
    model.fit(data.x, data.y);
    std::ostringstream bytes;
    model.save(bytes);
    return std::make_pair(model.predict_proba(data.x), bytes.str());
  };
  const auto serial = at_threads(1, run);
  const auto parallel = at_threads(4, run);
  tracer.disable();
  tracer.clear();
  expect_identical(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

TEST_F(ParallelDeterminism, GradientBoostingBitIdentical) {
  const Dataset data = make_dataset(200, 6, 102);
  GradientBoostingConfig config;
  config.n_rounds = 12;
  config.max_depth = 4;
  config.subsample = 0.8;
  config.colsample = 0.8;
  const auto run = [&] {
    return fit_predict<GradientBoostingClassifier>(config, data);
  };
  expect_identical(at_threads(1, run), at_threads(4, run));
}

TEST_F(ParallelDeterminism, LightGbmBitIdentical) {
  const Dataset data = make_dataset(200, 6, 103);
  LightGbmConfig config;
  config.n_rounds = 12;
  const auto run = [&] { return fit_predict<LightGbmClassifier>(config, data); };
  expect_identical(at_threads(1, run), at_threads(4, run));
}

TEST_F(ParallelDeterminism, CatBoostBitIdentical) {
  const Dataset data = make_dataset(200, 6, 104);
  CatBoostConfig config;
  config.n_rounds = 10;
  const auto run = [&] { return fit_predict<CatBoostClassifier>(config, data); };
  expect_identical(at_threads(1, run), at_threads(4, run));
}

TEST_F(ParallelDeterminism, FlatEnsembleTraversalsBitIdenticalAcrossThreads) {
  // The serving-side flat predictor chunks rows across the pool with each
  // chunk's accumulation fully row-local, so 1 and 4 threads must produce
  // the same bytes — for the production auto traversal and the forced
  // bitvector path alike, on both tree kinds (binary and oblivious).
  const Dataset data = make_dataset(230, 6, 108);
  RandomForestConfig rf_config;
  rf_config.n_trees = 10;
  rf_config.max_depth = 8;
  RandomForestClassifier forest(rf_config);
  forest.fit(data.x, data.y);
  CatBoostConfig cb_config;
  cb_config.n_rounds = 8;
  CatBoostClassifier catboost(cb_config);
  catboost.fit(data.x, data.y);

  std::vector<FlatTreeEnsemble> flats;
  flats.push_back(FlatTreeEnsemble::from_forest(forest.trees()));
  flats.push_back(
      FlatTreeEnsemble::from_oblivious(catboost.trees(), catboost.base_score()));
  for (FlatTreeEnsemble& flat : flats) {
    for (const auto traversal : {FlatTreeEnsemble::Traversal::kAuto,
                                 FlatTreeEnsemble::Traversal::kBitvector}) {
      flat.set_traversal(traversal);
      const auto run = [&] { return flat.predict_proba(data.x); };
      expect_identical(at_threads(1, run), at_threads(4, run));
    }
  }
}

TEST_F(ParallelDeterminism, HistogramTransformAllBitIdentical) {
  // The row-parallel LUT feature extractor: each histogram row is written
  // by exactly one task, so the matrix must be bit-identical at any thread
  // count.
  synth::DatasetConfig config;
  config.target_size = 48;
  config.seed = 55;
  const synth::BuiltDataset dataset = synth::DatasetBuilder(config).build();
  std::vector<const core::Bytecode*> corpus;
  corpus.reserve(dataset.samples.size());
  for (const synth::LabeledContract& sample : dataset.samples) {
    corpus.push_back(&sample.code);
  }
  core::HistogramVocabulary vocab;
  vocab.fit(corpus);
  const auto run = [&] { return vocab.transform_all(corpus); };
  const Matrix serial = at_threads(1, run);
  const Matrix parallel = at_threads(4, run);
  ASSERT_EQ(serial.rows(), parallel.rows());
  ASSERT_EQ(serial.cols(), parallel.cols());
  for (std::size_t r = 0; r < serial.rows(); ++r) {
    for (std::size_t c = 0; c < serial.cols(); ++c) {
      ASSERT_EQ(serial.at(r, c), parallel.at(r, c))
          << "row " << r << " col " << c;
    }
  }
}

TEST_F(ParallelDeterminism, KnnBitIdentical) {
  const Dataset data = make_dataset(150, 5, 105);
  KnnConfig config;
  config.k = 7;
  config.distance_weighted = true;
  const auto run = [&] { return fit_predict<KnnClassifier>(config, data); };
  expect_identical(at_threads(1, run), at_threads(4, run));
}

TEST_F(ParallelDeterminism, CrossValidationFoldsBitIdentical) {
  const Dataset data = make_dataset(180, 5, 106);
  const auto run = [&] {
    common::Rng rng(9);
    const auto folds = stratified_kfold(data.y, 5, rng);
    return cross_validate_accuracy(
        [] {
          RandomForestConfig config;
          config.n_trees = 8;
          return std::make_unique<RandomForestClassifier>(config);
        },
        data.x, data.y, folds);
  };
  expect_identical(at_threads(1, run), at_threads(4, run));
}

TEST_F(ParallelDeterminism, HyperSearchGridBitIdentical) {
  const Dataset data = make_dataset(160, 5, 107);
  const ClassifierFactory factory = [](const ParamAssignment& params) {
    RandomForestConfig config;
    config.n_trees = static_cast<int>(params.at("n_trees"));
    config.max_depth = static_cast<int>(params.at("max_depth"));
    return std::unique_ptr<TabularClassifier>(
        std::make_unique<RandomForestClassifier>(config));
  };
  const std::map<std::string, std::vector<double>> space = {
      {"n_trees", {4.0, 8.0}}, {"max_depth", {3.0, 6.0}}};

  HyperSearchConfig search_config;
  search_config.folds = 3;
  const auto run = [&] {
    return HyperSearch(search_config).grid_search(factory, space, data.x,
                                                  data.y);
  };
  const Trial serial = at_threads(1, run);
  const Trial parallel = at_threads(4, run);
  EXPECT_EQ(serial.score, parallel.score);
  EXPECT_EQ(serial.params, parallel.params);
}

}  // namespace
}  // namespace phishinghook::ml
