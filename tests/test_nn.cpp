// NN framework: finite-difference gradient checks for every layer.
//
// Each check builds a scalar loss L = sum(c .* forward(x)) with fixed random
// coefficients c, computes analytic input/parameter gradients via
// backward(), and compares against central differences. Float32 arithmetic
// bounds the agreement to ~1e-2 relative.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "ml/nn/activations.hpp"
#include "ml/nn/attention.hpp"
#include "ml/nn/conv.hpp"
#include "ml/nn/gru.hpp"
#include "ml/nn/linear.hpp"
#include "ml/nn/loss.hpp"
#include "ml/nn/transformer.hpp"

namespace phishinghook::ml::nn {
namespace {

using common::Rng;

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng,
                     float scale = 1.0F) {
  return Tensor::randn(std::move(shape), scale, rng);
}

/// Checks dL/dx for a layer via central differences.
/// `forward` must be callable repeatedly (stateless wrt repeated calls).
void check_input_gradient(
    const std::function<Tensor(const Tensor&)>& forward,
    const std::function<Tensor(const Tensor&)>& backward, Tensor x,
    const Tensor& coeffs, double tolerance = 2e-2) {
  auto loss = [&](const Tensor& input) {
    const Tensor out = forward(input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      total += static_cast<double>(out[i]) * coeffs[i];
    }
    return total;
  };

  (void)forward(x);  // populate caches
  const Tensor analytic = backward(coeffs);

  const float eps = 1e-2F;
  double max_err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float original = x[i];
    x[i] = original + eps;
    const double up = loss(x);
    x[i] = original - eps;
    const double down = loss(x);
    x[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    const double err = std::fabs(numeric - analytic[i]) /
                       std::max(1.0, std::fabs(numeric));
    max_err = std::max(max_err, err);
  }
  // Re-prime caches for the caller.
  (void)forward(x);
  EXPECT_LT(max_err, tolerance);
}

/// Checks dL/dtheta for one parameter of a layer.
void check_param_gradient(const std::function<double()>& loss, Param& param,
                          const std::function<void()>& run_backward,
                          double tolerance = 2e-2) {
  // Zero grads, run backward once to accumulate.
  param.zero_grad();
  run_backward();
  const Tensor analytic = param.grad;

  const float eps = 1e-2F;
  double max_err = 0.0;
  // Check a subset of coordinates to keep the test fast.
  const std::size_t stride = std::max<std::size_t>(1, param.value.size() / 24);
  for (std::size_t i = 0; i < param.value.size(); i += stride) {
    const float original = param.value[i];
    param.value[i] = original + eps;
    const double up = loss();
    param.value[i] = original - eps;
    const double down = loss();
    param.value[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    const double err = std::fabs(numeric - analytic[i]) /
                       std::max(1.0, std::fabs(numeric));
    max_err = std::max(max_err, err);
  }
  EXPECT_LT(max_err, tolerance);
}

TEST(NnGrad, Linear) {
  Rng rng(1);
  Linear layer(5, 3, rng);
  Tensor x = random_tensor({4, 5}, rng);
  const Tensor coeffs = random_tensor({4, 3}, rng);
  check_input_gradient([&](const Tensor& in) { return layer.forward(in); },
                       [&](const Tensor& g) { return layer.backward(g); }, x,
                       coeffs);
  // Parameter gradient.
  auto loss = [&] {
    const Tensor out = layer.forward(x);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      total += static_cast<double>(out[i]) * coeffs[i];
    }
    return total;
  };
  for (Param* p : layer.params()) {
    check_param_gradient(loss, *p, [&] {
      (void)layer.forward(x);
      (void)layer.backward(coeffs);
    });
  }
}

TEST(NnGrad, LayerNorm) {
  Rng rng(2);
  LayerNorm layer(6);
  Tensor x = random_tensor({3, 6}, rng);
  const Tensor coeffs = random_tensor({3, 6}, rng);
  check_input_gradient([&](const Tensor& in) { return layer.forward(in); },
                       [&](const Tensor& g) { return layer.backward(g); }, x,
                       coeffs);
}

TEST(NnGrad, Activations) {
  Rng rng(3);
  ReLU relu;
  Gelu gelu;
  Silu silu;
  Tensor x = random_tensor({2, 7}, rng);
  // Nudge values away from ReLU's kink at 0.
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i]) < 0.05F) x[i] += 0.1F;
  }
  const Tensor coeffs = random_tensor({2, 7}, rng);
  check_input_gradient([&](const Tensor& in) { return relu.forward(in); },
                       [&](const Tensor& g) { return relu.backward(g); }, x,
                       coeffs);
  check_input_gradient([&](const Tensor& in) { return gelu.forward(in); },
                       [&](const Tensor& g) { return gelu.backward(g); }, x,
                       coeffs);
  check_input_gradient([&](const Tensor& in) { return silu.forward(in); },
                       [&](const Tensor& g) { return silu.backward(g); }, x,
                       coeffs);
}

TEST(NnGrad, AttentionBidirectional) {
  Rng rng(4);
  AttentionConfig config;
  config.dim = 8;
  config.heads = 2;
  MultiHeadAttention layer(config, rng);
  Tensor x = random_tensor({5, 8}, rng, 0.5F);
  const Tensor coeffs = random_tensor({5, 8}, rng, 0.5F);
  check_input_gradient([&](const Tensor& in) { return layer.forward(in); },
                       [&](const Tensor& g) { return layer.backward(g); }, x,
                       coeffs, 4e-2);
}

TEST(NnGrad, AttentionCausal) {
  Rng rng(5);
  AttentionConfig config;
  config.dim = 8;
  config.heads = 2;
  config.causal = true;
  MultiHeadAttention layer(config, rng);
  Tensor x = random_tensor({5, 8}, rng, 0.5F);
  const Tensor coeffs = random_tensor({5, 8}, rng, 0.5F);
  check_input_gradient([&](const Tensor& in) { return layer.forward(in); },
                       [&](const Tensor& g) { return layer.backward(g); }, x,
                       coeffs, 4e-2);
}

TEST(NnGrad, AttentionRelativeBias) {
  Rng rng(6);
  AttentionConfig config;
  config.dim = 8;
  config.heads = 2;
  config.max_rel_distance = 3;
  MultiHeadAttention layer(config, rng);
  Tensor x = random_tensor({5, 8}, rng, 0.5F);
  const Tensor coeffs = random_tensor({5, 8}, rng, 0.5F);
  check_input_gradient([&](const Tensor& in) { return layer.forward(in); },
                       [&](const Tensor& g) { return layer.backward(g); }, x,
                       coeffs, 4e-2);
  // The relative-bias parameter must receive gradients.
  Param* bias = layer.params().back();
  bias->zero_grad();
  (void)layer.forward(x);
  (void)layer.backward(coeffs);
  double grad_mass = 0.0;
  for (std::size_t i = 0; i < bias->grad.size(); ++i) {
    grad_mass += std::fabs(bias->grad[i]);
  }
  EXPECT_GT(grad_mass, 0.0);
}

TEST(NnGrad, TransformerBlock) {
  Rng rng(7);
  AttentionConfig config;
  config.dim = 8;
  config.heads = 2;
  TransformerBlock block(config, rng);
  Tensor x = random_tensor({4, 8}, rng, 0.5F);
  const Tensor coeffs = random_tensor({4, 8}, rng, 0.5F);
  check_input_gradient([&](const Tensor& in) { return block.forward(in); },
                       [&](const Tensor& g) { return block.backward(g); }, x,
                       coeffs, 5e-2);
}

TEST(NnGrad, Gru) {
  Rng rng(8);
  Gru layer(6, 5, rng);
  Tensor x = random_tensor({4, 6}, rng, 0.5F);
  const Tensor coeffs = random_tensor({4, 5}, rng, 0.5F);
  check_input_gradient([&](const Tensor& in) { return layer.forward(in); },
                       [&](const Tensor& g) { return layer.backward(g); }, x,
                       coeffs, 4e-2);
  // Parameter gradients through time.
  auto loss = [&] {
    const Tensor out = layer.forward(x);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      total += static_cast<double>(out[i]) * coeffs[i];
    }
    return total;
  };
  for (Param* p : layer.params()) {
    check_param_gradient(loss, *p,
                         [&] {
                           (void)layer.forward(x);
                           (void)layer.backward(coeffs);
                         },
                         4e-2);
  }
}

TEST(NnGrad, Conv2d) {
  Rng rng(9);
  Conv2dConfig config;
  config.in_channels = 2;
  config.out_channels = 3;
  config.kernel = 3;
  config.stride = 2;
  config.padding = 1;
  Conv2d layer(config, rng);
  Tensor x = random_tensor({2, 6, 6}, rng, 0.5F);
  const std::size_t out_side = layer.out_side(6);
  const Tensor coeffs = random_tensor({3, out_side, out_side}, rng, 0.5F);
  check_input_gradient([&](const Tensor& in) { return layer.forward(in); },
                       [&](const Tensor& g) { return layer.backward(g); }, x,
                       coeffs, 3e-2);
}

TEST(NnGrad, DepthwiseConv2d) {
  Rng rng(10);
  DepthwiseConv2d layer(3, 3, 1, 1, rng);
  Tensor x = random_tensor({3, 5, 5}, rng, 0.5F);
  const Tensor coeffs = random_tensor({3, 5, 5}, rng, 0.5F);
  check_input_gradient([&](const Tensor& in) { return layer.forward(in); },
                       [&](const Tensor& g) { return layer.backward(g); }, x,
                       coeffs, 3e-2);
}

TEST(NnGrad, Eca) {
  Rng rng(11);
  Eca layer(4, 3, rng);
  Tensor x = random_tensor({4, 4, 4}, rng, 0.5F);
  const Tensor coeffs = random_tensor({4, 4, 4}, rng, 0.5F);
  check_input_gradient([&](const Tensor& in) { return layer.forward(in); },
                       [&](const Tensor& g) { return layer.backward(g); }, x,
                       coeffs, 4e-2);
  EXPECT_THROW(Eca(4, 2, rng), InvalidArgument);  // even kernel
}

TEST(NnGrad, GlobalAvgPool) {
  Rng rng(12);
  GlobalAvgPool pool;
  Tensor x = random_tensor({3, 4, 4}, rng);
  const Tensor coeffs = random_tensor({1, 3}, rng);
  check_input_gradient([&](const Tensor& in) { return pool.forward(in); },
                       [&](const Tensor& g) { return pool.backward(g); }, x,
                       coeffs);
}

TEST(NnGrad, SoftmaxCrossEntropy) {
  Rng rng(13);
  Tensor logits = random_tensor({1, 4}, rng);
  const auto result = softmax_cross_entropy(logits, 2);
  // Numeric check of the loss gradient.
  const float eps = 1e-3F;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float original = logits[i];
    logits[i] = original + eps;
    const float up = softmax_cross_entropy(logits, 2).loss;
    logits[i] = original - eps;
    const float down = softmax_cross_entropy(logits, 2).loss;
    logits[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(numeric, result.grad[i], 2e-2);
  }
  // Probabilities sum to 1; loss positive.
  const auto probs = softmax(logits);
  double total = 0.0;
  for (float p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-5);
  EXPECT_GT(result.loss, 0.0F);
  EXPECT_THROW(softmax_cross_entropy(logits, 9), InvalidArgument);
}

TEST(Nn, EmbeddingForwardBackward) {
  Rng rng(14);
  Embedding embedding(10, 4, rng);
  const std::vector<std::size_t> ids = {3, 7, 3};
  const Tensor out = embedding.forward(ids);
  EXPECT_EQ(out.shape(), (std::vector<std::size_t>{3, 4}));
  // Rows 0 and 2 are the same embedding row.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out.at(0, i), out.at(2, i));

  Tensor grad({3, 4}, 1.0F);
  embedding.params()[0]->zero_grad();
  embedding.backward(grad);
  // Token 3 appears twice -> gradient 2 per dim; token 7 once; others 0.
  const Tensor& g = embedding.params()[0]->grad;
  EXPECT_EQ(g.at(3, 0), 2.0F);
  EXPECT_EQ(g.at(7, 0), 1.0F);
  EXPECT_EQ(g.at(0, 0), 0.0F);
  EXPECT_THROW(embedding.forward({11}), InvalidArgument);
}

TEST(Nn, AdamConvergesOnQuadratic) {
  // Minimize ||w - target||^2 with Adam: loss gradient = 2 (w - target).
  Rng rng(15);
  Param w(random_tensor({8}, rng));
  Tensor target = random_tensor({8}, rng);
  AdamConfig config;
  config.learning_rate = 0.05F;
  AdamOptimizer optimizer({&w}, config);
  for (int step = 0; step < 400; ++step) {
    for (std::size_t i = 0; i < 8; ++i) {
      w.grad[i] = 2.0F * (w.value[i] - target[i]);
    }
    optimizer.step();
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(w.value[i], target[i], 1e-2);
  }
}

TEST(Nn, GradClippingBoundsNorm) {
  Param w(Tensor({4}, 0.0F));
  AdamConfig config;
  config.clip_norm = 1.0F;
  config.learning_rate = 1.0F;
  AdamOptimizer optimizer({&w}, config);
  for (std::size_t i = 0; i < 4; ++i) w.grad[i] = 100.0F;
  optimizer.step();  // must not explode
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(std::fabs(w.value[i]), 2.0F);
  }
}

TEST(Nn, TensorReshapeAndErrors) {
  Tensor t({2, 6});
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_THROW(t.reshaped({5, 5}), InvalidArgument);
  Tensor other({13});
  EXPECT_THROW(t.add_(other), InvalidArgument);
}

}  // namespace
}  // namespace phishinghook::ml::nn
