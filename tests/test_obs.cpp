// Telemetry layer tests: metrics registry exactness under concurrency,
// pinned histogram quantiles (the bucket-edge fix), Prometheus/JSON
// exposition shape and conformance (HELP lines, name/label validation),
// tracer ring semantics plus the async/flow causal events, request-context
// lifecycle, the sliding-window aggregator + SLO evaluator (driven by an
// injected clock), the TCP scrape server (including concurrent
// scrape-vs-write, exercised by the TSan leg), and the serve-stack trace
// integration (spans from >= 3 subsystems in one engine run).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "core/model_registry.hpp"
#include "ml/random_forest.hpp"
#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "obs/scrape_server.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "serve/scoring_engine.hpp"
#include "synth/dataset_builder.hpp"

namespace phishinghook {
namespace {

// --- histogram quantiles (satellite 1: bucket-edge interpolation) -----------

TEST(ObsHistogram, SingleSampleIsExactAtEveryQuantile) {
  obs::LatencyHistogram histogram;
  histogram.record(777.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 777.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 777.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 777.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 777.0);
  EXPECT_DOUBLE_EQ(histogram.max_value(), 777.0);
}

TEST(ObsHistogram, SingleSmallSampleDoesNotReadBucketEdge) {
  // Pre-fix behavior returned the bucket's upper edge (2.0 for a 0-valued
  // sample); the interpolated quantile must report the sample itself.
  obs::LatencyHistogram histogram;
  histogram.record(0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  histogram.record(1.0);
  EXPECT_LE(histogram.quantile(1.0), 1.0);
}

TEST(ObsHistogram, UniformBucketInterpolatesWithinClampedEdges) {
  // Four identical samples of 100 land in bucket [64, 128); upper edge
  // clamps to the observed max (100). k = floor(q*4):
  //   q=0.5 -> k=2 -> 64 + (100-64) * 3/4 = 91.
  obs::LatencyHistogram histogram;
  for (int i = 0; i < 4; ++i) histogram.record(100.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 91.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 100.0);  // k=3 -> frac=1 -> max
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 73.0);   // k=0 -> 64 + 36/4
}

TEST(ObsHistogram, QuantilesNeverExceedObservedMax) {
  obs::LatencyHistogram histogram;
  for (int i = 0; i < 99; ++i) histogram.record(100.0);
  histogram.record(100000.0);
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_NEAR(histogram.mean(), 1099.0, 1.0);
  EXPECT_LE(histogram.quantile(0.50), 128.0);
  EXPECT_GE(histogram.quantile(0.995), 65536.0);
  EXPECT_LE(histogram.quantile(0.995), 100000.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 100000.0);
}

TEST(ObsHistogram, EmptyHistogramReportsZero) {
  obs::LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
}

// --- registry ----------------------------------------------------------------

TEST(ObsRegistry, ConcurrentIncrementsSumExactly) {
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("hits_total");
  obs::LatencyHistogram& histogram = registry.histogram("lat_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &histogram] {
      // Handles re-fetched per thread: same (name, labels) -> same cell.
      obs::Counter mine = registry.counter("hits_total");
      for (int i = 0; i < kPerThread; ++i) {
        mine.inc();
        histogram.record(static_cast<double>(i % 512));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, SameNameSameCellDifferentLabelsDifferentCells) {
  obs::MetricsRegistry registry;
  obs::Counter a = registry.counter("fit_total", obs::label("model", "RF"));
  obs::Counter a2 = registry.counter("fit_total", obs::label("model", "RF"));
  obs::Counter b = registry.counter("fit_total", obs::label("model", "SVM"));
  a.inc(3);
  a2.inc(2);
  b.inc(7);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x_total");
  EXPECT_THROW(registry.gauge("x_total"), InvalidArgument);
  EXPECT_THROW(registry.histogram("x_total"), InvalidArgument);
}

TEST(ObsRegistry, DefaultConstructedHandlesAreSafeNoops) {
  obs::Counter counter;
  obs::Gauge gauge;
  counter.inc();
  gauge.set(4.0);
  EXPECT_GE(counter.value(), 1u);  // null cell, shared; just must not crash
}

TEST(ObsRegistry, PrometheusExpositionShape) {
  obs::MetricsRegistry registry;
  registry.counter("b_total", obs::label("model", "Random Forest")).inc(4);
  registry.gauge("a_depth").set(2.5);
  registry.histogram("c_ms").record(10.0);

  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE a_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("a_depth 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_total counter"), std::string::npos);
  EXPECT_NE(text.find("b_total{model=\"Random Forest\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE c_ms summary"), std::string::npos);
  EXPECT_NE(text.find("c_ms{quantile=\"0.5\"} 10"), std::string::npos);
  EXPECT_NE(text.find("c_ms_count 1"), std::string::npos);
  // Sorted by name: a before b before c.
  EXPECT_LT(text.find("a_depth"), text.find("b_total"));
  EXPECT_LT(text.find("b_total"), text.find("c_ms"));
}

TEST(ObsRegistry, JsonDumpParsesAndRoundTripsValues) {
  obs::MetricsRegistry registry;
  registry.counter("hits_total").inc(12);
  registry.gauge("depth").set(3.0);
  registry.histogram("lat_us").record(50.0);
  std::ostringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\":[{\"name\":\"hits_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\":12"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":[{\"name\":\"lat_us\""),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":50"), std::string::npos);
}

TEST(ObsRegistry, LabelEscapesQuotesAndBackslashes) {
  EXPECT_EQ(obs::label("k", "a\"b\\c"), "k=\"a\\\"b\\\\c\"");
}

// --- exposition conformance --------------------------------------------------

TEST(ObsRegistry, HelpLinesPrecedeTypeAndDefaultWhenUnset) {
  obs::MetricsRegistry registry;
  registry.counter("documented_total").inc();
  registry.gauge("bare_depth").set(1.0);
  registry.set_help("documented_total", "Requests seen since boot");

  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  // Every name gets a HELP/TYPE pair, HELP first (the exposition format
  // requires the comments to precede the samples).
  EXPECT_NE(text.find("# HELP documented_total Requests seen since boot\n"
                      "# TYPE documented_total counter\n"),
            std::string::npos);
  // Unset help falls back to a self-describing default instead of a bare
  // TYPE line.
  EXPECT_NE(text.find("# HELP bare_depth phishinghook gauge\n"
                      "# TYPE bare_depth gauge\n"),
            std::string::npos);
}

TEST(ObsRegistry, HelpTextEscapesBackslashAndNewline) {
  obs::MetricsRegistry registry;
  registry.counter("tricky_total");
  registry.set_help("tricky_total", "line one\nback\\slash");
  std::ostringstream out;
  registry.write_prometheus(out);
  EXPECT_NE(out.str().find("# HELP tricky_total line one\\nback\\\\slash\n"),
            std::string::npos);
}

TEST(ObsRegistry, SetHelpBeforeRegistrationAppliesLater) {
  obs::MetricsRegistry registry;
  registry.set_help("late_total", "registered after the help text");
  registry.counter("late_total").inc(2);
  std::ostringstream out;
  registry.write_prometheus(out);
  EXPECT_NE(out.str().find("# HELP late_total registered after the help"),
            std::string::npos);
}

TEST(ObsRegistry, InvalidMetricNamesRejectedAtRegistration) {
  obs::MetricsRegistry registry;
  EXPECT_THROW(registry.counter("1starts_with_digit"), InvalidArgument);
  EXPECT_THROW(registry.gauge("has space"), InvalidArgument);
  EXPECT_THROW(registry.histogram("dash-ed"), InvalidArgument);
  EXPECT_THROW(registry.counter(""), InvalidArgument);
  // Colons and underscores are part of the grammar.
  registry.counter("ns:subsystem_total").inc();
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ObsRegistry, MalformedLabelFragmentsRejectedAtRegistration) {
  obs::MetricsRegistry registry;
  EXPECT_THROW(registry.counter("ok_total", "notapair"), InvalidArgument);
  EXPECT_THROW(registry.counter("ok_total", "bad-key=\"v\""), InvalidArgument);
  EXPECT_THROW(registry.counter("ok_total", "k=unquoted"), InvalidArgument);
  // The obs::label helper always produces a valid fragment, including for
  // values that need escaping.
  registry.counter("ok_total", obs::label("model", "a\"b\\c")).inc();
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ObsRegistry, ValidatorsMatchTheExpositionGrammar) {
  EXPECT_TRUE(obs::valid_metric_name("serve_stage_wait_us"));
  EXPECT_TRUE(obs::valid_metric_name("_leading_underscore"));
  EXPECT_TRUE(obs::valid_metric_name("with:colon"));
  EXPECT_FALSE(obs::valid_metric_name("9teen"));
  EXPECT_FALSE(obs::valid_metric_name("no-dash"));
  EXPECT_FALSE(obs::valid_metric_name(""));
  EXPECT_TRUE(obs::valid_label_fragment(""));
  EXPECT_TRUE(obs::valid_label_fragment("k=\"v\""));
  EXPECT_TRUE(obs::valid_label_fragment("a=\"1\",b=\"2\""));
  EXPECT_TRUE(obs::valid_label_fragment(obs::label("k", "quo\"te")));
  EXPECT_FALSE(obs::valid_label_fragment("k=\"v\",")); // trailing comma
  EXPECT_FALSE(obs::valid_label_fragment("k:colon=\"v\""));
}

TEST(ObsRegistry, KindMismatchErrorNamesBothKinds) {
  obs::MetricsRegistry registry;
  registry.counter("x_total");
  try {
    registry.gauge("x_total");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    // The message must name the existing kind and the conflicting one, so
    // the collision is debuggable from the exception alone.
    EXPECT_NE(what.find("x_total"), std::string::npos);
    EXPECT_NE(what.find("counter"), std::string::npos);
    EXPECT_NE(what.find("gauge"), std::string::npos);
  }
}

// --- sliding window + SLO ----------------------------------------------------

// All window tests drive an injected clock: `t` is the current time in
// seconds, advanced explicitly, so bucket wraparound and jump behavior are
// deterministic.

TEST(ObsWindow, SnapshotAggregatesRecentRecords) {
  double t = 0.0;
  obs::SlidingWindowAggregator window({.window_seconds = 10.0,
                                       .bucket_count = 10},
                                      [&t] { return t; });
  window.record_ok(100.0);
  window.record_ok(100.0);
  t = 3.0;
  window.record_error(400.0);
  t = 5.0;

  const auto snap = window.snapshot();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.errors, 1u);
  EXPECT_DOUBLE_EQ(snap.rate_per_sec, 0.3);  // 3 over a 10s window
  EXPECT_NEAR(snap.error_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(snap.max_us, 400.0);
  EXPECT_GE(snap.p99_us, snap.p50_us);
  EXPECT_LE(snap.p99_us, snap.max_us);
}

TEST(ObsWindow, SingleSampleQuantilesAreExact) {
  double t = 0.0;
  obs::SlidingWindowAggregator window({}, [&t] { return t; });
  window.record_ok(777.0);
  const auto snap = window.snapshot();
  // Same clamped-edge interpolation as LatencyHistogram: one sample reads
  // back exactly at every quantile.
  EXPECT_DOUBLE_EQ(snap.p50_us, 777.0);
  EXPECT_DOUBLE_EQ(snap.p99_us, 777.0);
  EXPECT_DOUBLE_EQ(snap.max_us, 777.0);
}

TEST(ObsWindow, BucketWraparoundEvictsExactlyTheAgedBuckets) {
  double t = 0.5;
  obs::SlidingWindowAggregator window({.window_seconds = 10.0,
                                       .bucket_count = 10},
                                      [&t] { return t; });
  window.record_ok(10.0);  // epoch 0
  t = 5.5;
  window.record_ok(20.0);  // epoch 5
  window.record_ok(30.0);

  t = 9.5;  // both buckets still inside (epoch 9 window covers 0..9)
  EXPECT_EQ(window.snapshot().total, 3u);

  t = 10.5;  // epoch 10: the epoch-0 bucket just aged out
  EXPECT_EQ(window.snapshot().total, 2u);

  // Writing at epoch 10 reuses the slot epoch 0 occupied (10 % 10) without
  // resurrecting its old contents.
  window.record_error(40.0);
  const auto snap = window.snapshot();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.errors, 1u);

  t = 15.6;  // epoch 15: the epoch-5 pair ages out, epoch 10 survives
  EXPECT_EQ(window.snapshot().total, 1u);
  EXPECT_EQ(window.snapshot().errors, 1u);
}

TEST(ObsWindow, IdleWindowDecaysToEmpty) {
  double t = 1.0;
  obs::SlidingWindowAggregator window({.window_seconds = 10.0,
                                       .bucket_count = 10},
                                      [&t] { return t; });
  for (int i = 0; i < 50; ++i) window.record_ok(100.0);
  window.record_error(200.0);
  ASSERT_EQ(window.snapshot().total, 51u);

  t = 11.5;  // a whole window of silence
  const auto snap = window.snapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_DOUBLE_EQ(snap.rate_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(snap.error_ratio, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99_us, 0.0);
  EXPECT_DOUBLE_EQ(snap.max_us, 0.0);
}

TEST(ObsWindow, ForwardJumpLargerThanWindowDropsEverything) {
  double t = 0.0;
  obs::SlidingWindowAggregator window({.window_seconds = 10.0,
                                       .bucket_count = 10},
                                      [&t] { return t; });
  for (int i = 0; i < 7; ++i) window.record_ok(50.0);
  t = 1.0e6;  // suspend/resume-sized jump, far past any slot's epoch
  EXPECT_EQ(window.snapshot().total, 0u);
  window.record_ok(60.0);
  const auto snap = window.snapshot();
  EXPECT_EQ(snap.total, 1u);
  EXPECT_DOUBLE_EQ(snap.max_us, 60.0);
}

TEST(ObsWindow, BackwardJumpClampsToFurthestEpoch) {
  double t = 5.0;
  obs::SlidingWindowAggregator window({.window_seconds = 10.0,
                                       .bucket_count = 10},
                                      [&t] { return t; });
  window.record_ok(100.0);
  t = 1.0;  // hostile clock: steps backwards by 4s
  window.record_ok(200.0);  // lands in the clamped (furthest) epoch
  const auto snap = window.snapshot();
  EXPECT_EQ(snap.total, 2u);
  EXPECT_DOUBLE_EQ(snap.max_us, 200.0);
  // Time resuming forward keeps both inside the same window.
  t = 6.0;
  EXPECT_EQ(window.snapshot().total, 2u);
}

TEST(ObsWindow, InvalidConfigThrows) {
  EXPECT_THROW(
      obs::SlidingWindowAggregator({.window_seconds = 0.0, .bucket_count = 4}),
      InvalidArgument);
  EXPECT_THROW(
      obs::SlidingWindowAggregator({.window_seconds = -1.0, .bucket_count = 4}),
      InvalidArgument);
  EXPECT_THROW(
      obs::SlidingWindowAggregator({.window_seconds = 5.0, .bucket_count = 0}),
      InvalidArgument);
}

TEST(ObsSlo, BurnRateAndShedPressureTrackTheErrorBudget) {
  double t = 0.0;
  obs::SlidingWindowAggregator window({.window_seconds = 10.0,
                                       .bucket_count = 10},
                                      [&t] { return t; });
  obs::SloConfig slo;
  slo.target_error_ratio = 0.10;
  slo.shed_pressure_burn = 2.0;
  obs::SloEvaluator evaluator(window, slo);

  // Idle: nothing burning.
  auto eval = evaluator.evaluate();
  EXPECT_DOUBLE_EQ(eval.burn_rate, 0.0);
  EXPECT_FALSE(eval.error_breach);
  EXPECT_DOUBLE_EQ(eval.shed_pressure, 0.0);

  // Exactly on budget: 1 error in 10 -> burn 1.0, not a breach, pressure
  // already at 1/shed_pressure_burn (headroom to shed *before* breaching).
  for (int i = 0; i < 9; ++i) window.record_ok(100.0);
  window.record_error(100.0);
  eval = evaluator.evaluate();
  EXPECT_DOUBLE_EQ(eval.burn_rate, 1.0);
  EXPECT_FALSE(eval.error_breach);
  EXPECT_DOUBLE_EQ(eval.shed_pressure, 0.5);

  // Blow the budget: breach, pressure saturates at 1.
  for (int i = 0; i < 30; ++i) window.record_error(100.0);
  eval = evaluator.evaluate();
  EXPECT_DOUBLE_EQ(eval.burn_rate, 7.75);  // 31/40 errors over a 10% target
  EXPECT_TRUE(eval.error_breach);
  EXPECT_DOUBLE_EQ(eval.shed_pressure, 1.0);
}

TEST(ObsSlo, LatencySloUsesItsOwnTarget) {
  double t = 0.0;
  obs::SlidingWindowAggregator window({}, [&t] { return t; });
  obs::SloConfig slo;
  slo.target_error_ratio = 0.5;
  slo.target_p99_us = 500.0;
  obs::SloEvaluator evaluator(window, slo);

  window.record_ok(100.0);
  EXPECT_FALSE(evaluator.evaluate().latency_breach);
  for (int i = 0; i < 200; ++i) window.record_ok(4000.0);
  const auto eval = evaluator.evaluate();
  EXPECT_TRUE(eval.latency_breach);
  EXPECT_FALSE(eval.error_breach);  // all requests succeeded
  EXPECT_GT(eval.shed_pressure, 0.0);
}

TEST(ObsSlo, BreachCountersAreEdgeTriggeredPerEpisode) {
  double t = 0.0;
  obs::SlidingWindowAggregator window({.window_seconds = 10.0,
                                       .bucket_count = 10},
                                      [&t] { return t; });
  obs::SloConfig slo;
  slo.name = "avail";
  slo.target_error_ratio = 0.10;
  obs::SloEvaluator evaluator(window, slo);
  obs::MetricsRegistry registry;
  obs::Counter breaches = registry.counter(
      "stream_slo_breach_total", obs::label("slo", "avail:errors"));

  // Episode 1: many exports while the breach lasts -> one increment.
  window.record_error(100.0);
  evaluator.export_to(registry, "stream");
  evaluator.export_to(registry, "stream");
  evaluator.export_to(registry, "stream");
  EXPECT_EQ(breaches.value(), 1u);

  // Recovery: the window decays clean; exporting while healthy does not
  // count and re-arms the edge.
  t = 20.0;
  evaluator.export_to(registry, "stream");
  EXPECT_EQ(breaches.value(), 1u);

  // Episode 2 begins: exactly one more increment.
  window.record_error(100.0);
  evaluator.export_to(registry, "stream");
  evaluator.export_to(registry, "stream");
  EXPECT_EQ(breaches.value(), 2u);
}

TEST(ObsSlo, ExportPublishesWindowGauges) {
  double t = 0.0;
  obs::SlidingWindowAggregator window({.window_seconds = 10.0,
                                       .bucket_count = 10},
                                      [&t] { return t; });
  obs::SloEvaluator evaluator(window, {});
  obs::MetricsRegistry registry;
  for (int i = 0; i < 20; ++i) window.record_ok(100.0);
  evaluator.export_to(registry, "stream");

  EXPECT_DOUBLE_EQ(registry.gauge("stream_window_rate_per_sec").value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("stream_window_error_ratio").value(), 0.0);
  EXPECT_GT(registry.gauge("stream_window_p99_us").value(), 0.0);
  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("stream_error_burn_rate"), std::string::npos);
  EXPECT_NE(text.find("stream_shed_pressure"), std::string::npos);
  EXPECT_NE(text.find("# HELP stream_error_burn_rate"), std::string::npos);
}

TEST(ObsSlo, InvalidTargetsThrow) {
  obs::SlidingWindowAggregator window;
  obs::SloConfig bad;
  bad.target_error_ratio = 0.0;
  EXPECT_THROW(obs::SloEvaluator(window, bad), InvalidArgument);
  bad.target_error_ratio = 0.01;
  bad.shed_pressure_burn = 0.0;
  EXPECT_THROW(obs::SloEvaluator(window, bad), InvalidArgument);
}

// --- scrape server -----------------------------------------------------------

/// One-shot HTTP/1.0 GET against the loopback scrape server; returns the
/// raw response (headers + body), or "" on connect failure.
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ObsScrape, ServesMetricsVarsHealthzAnd404) {
  obs::MetricsRegistry registry;
  registry.counter("scrape_test_total").inc(3);
  obs::ScrapeServer server;
  server.add_registry(registry);
  server.start(0);  // ephemeral
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE scrape_test_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("scrape_test_total 3"), std::string::npos);

  const std::string vars = http_get(server.port(), "/vars");
  EXPECT_NE(vars.find("200 OK"), std::string::npos);
  EXPECT_NE(vars.find("\"registries\":["), std::string::npos);
  EXPECT_NE(vars.find("scrape_test_total"), std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("{\"status\":\"ok\"}"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 4u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(ObsScrape, HooksRunPerScrapeAndHealthOverrides) {
  obs::MetricsRegistry registry;
  std::atomic<int> hook_runs{0};
  obs::ScrapeServer server;
  server.add_registry(registry);
  server.add_pre_scrape_hook([&registry, &hook_runs] {
    registry.gauge("synced_value").set(static_cast<double>(++hook_runs));
  });
  server.set_health([] { return std::string("{\"status\":\"draining\"}"); });
  server.start(0);

  // Hooks fire per metrics/vars scrape, so the exposition always carries
  // the freshly synced value; query strings are ignored for routing.
  EXPECT_NE(http_get(server.port(), "/metrics").find("synced_value 1"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/vars?verbose=1").find("synced_value"),
            std::string::npos);
  EXPECT_EQ(hook_runs.load(), 2);

  // /healthz serves the caller's JSON and skips the scrape hooks.
  EXPECT_NE(http_get(server.port(), "/healthz").find("\"draining\""),
            std::string::npos);
  EXPECT_EQ(hook_runs.load(), 2);
  server.stop();
}

TEST(ObsScrape, StartTwiceThrows) {
  obs::ScrapeServer server;
  server.start(0);
  EXPECT_THROW(server.start(0), StateError);
  server.stop();
}

TEST(ObsScrape, ConcurrentScrapesSeeConsistentResponsesUnderWrites) {
  // The TSan leg runs this: scrapes walk the registry while hot-path
  // threads hammer the cells. Every response must be a complete 200 with
  // the full exposition shape — never torn, never an error.
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("busy_total");
  obs::LatencyHistogram& histogram = registry.histogram("busy_us");
  obs::ScrapeServer server;
  server.add_registry(registry);
  server.start(0);

  std::atomic<bool> stop_writing{false};
  std::thread writer([&] {
    while (!stop_writing.load(std::memory_order_relaxed)) {
      counter.inc();
      histogram.record(123.0);
    }
  });

  constexpr int kScrapers = 4;
  constexpr int kScrapesEach = 20;
  std::atomic<int> good{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < kScrapesEach; ++i) {
        const std::string response = http_get(server.port(), "/metrics");
        if (response.find("200 OK") != std::string::npos &&
            response.find("# TYPE busy_total counter") != std::string::npos &&
            response.find("busy_us_count") != std::string::npos) {
          good.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& scraper : scrapers) scraper.join();
  stop_writing.store(true, std::memory_order_relaxed);
  writer.join();
  server.stop();

  EXPECT_EQ(good.load(), kScrapers * kScrapesEach);
  EXPECT_GE(server.requests_served(),
            static_cast<std::uint64_t>(kScrapers * kScrapesEach));
  EXPECT_GT(counter.value(), 0u);
}

// --- tracer ------------------------------------------------------------------

/// Minimal parser for the writer's own output: extracts (name, ts, dur)
/// triples without a JSON dependency.
std::vector<std::pair<std::string, std::pair<double, double>>> parse_events(
    const std::string& json) {
  std::vector<std::pair<std::string, std::pair<double, double>>> out;
  std::size_t at = 0;
  while ((at = json.find("{\"name\":\"", at)) != std::string::npos) {
    const std::size_t name_begin = at + 9;
    const std::size_t name_end = json.find('"', name_begin);
    const std::size_t ts_at = json.find("\"ts\":", name_end) + 5;
    const std::size_t dur_at = json.find("\"dur\":", name_end) + 6;
    out.emplace_back(
        json.substr(name_begin, name_end - name_begin),
        std::make_pair(std::strtod(json.c_str() + ts_at, nullptr),
                       std::strtod(json.c_str() + dur_at, nullptr)));
    at = name_end;
  }
  return out;
}

TEST(ObsTracer, NestedSpansRecordContainment) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(256);
  {
    obs::ScopedSpan outer(tracer, "outer");
    { obs::ScopedSpan inner(tracer, "inner", "detail"); }
  }
  tracer.disable();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const auto events = parse_events(out.str());
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it sorts and nests inside outer.
  std::map<std::string, std::pair<double, double>> by_name(events.begin(),
                                                           events.end());
  ASSERT_TRUE(by_name.contains("outer"));
  ASSERT_TRUE(by_name.contains("inner:detail"));
  const auto [outer_ts, outer_dur] = by_name["outer"];
  const auto [inner_ts, inner_dur] = by_name["inner:detail"];
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-6);
  tracer.clear();
}

TEST(ObsTracer, RingOverflowDropsOldestAndCounts) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(8);  // tiny ring
  for (int i = 0; i < 20; ++i) {
    obs::ScopedSpan span(tracer, i < 12 ? "old" : "new");
  }
  tracer.disable();
  EXPECT_EQ(tracer.events_buffered(), 8u);
  EXPECT_EQ(tracer.events_dropped(), 12u);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const auto events = parse_events(out.str());
  ASSERT_EQ(events.size(), 8u);
  for (const auto& [name, tsdur] : events) {
    EXPECT_EQ(name, "new");  // the 8 newest survive; the oldest 12 dropped
  }
  tracer.clear();
}

TEST(ObsTracer, DisabledSpansRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(64);
  tracer.clear();
  tracer.disable();
  { obs::ScopedSpan span(tracer, "ghost"); }
  EXPECT_EQ(tracer.events_buffered(), 0u);
}

TEST(ObsTracer, LongNamesTruncateSafely) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(16);
  const std::string long_name(200, 'x');
  { obs::ScopedSpan span(tracer, long_name.c_str(), "detail"); }
  tracer.disable();
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const auto events = parse_events(out.str());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first.size(), obs::Tracer::kMaxNameLength);
  tracer.clear();
}

TEST(ObsTracer, ExplicitEndStopsTheClock) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(16);
  {
    obs::ScopedSpan span(tracer, "stage");
    span.end();
    span.end();  // idempotent
  }
  tracer.disable();
  EXPECT_EQ(tracer.events_buffered(), 1u);
  tracer.clear();
}

// --- causal events (async slices + flow arrows) ------------------------------

TEST(ObsTracer, AsyncSlicesAndFlowArrowsExportWithSharedId) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(256);
  obs::RequestContext ctx = obs::mint_request(tracer);
  const std::uint64_t id = ctx.trace_id;
  ASSERT_NE(id, 0u);
  const double stage_start = tracer.now_us();
  tracer.flow_step(id);
  obs::stage_slice(ctx, "req.test_stage", stage_start, tracer.now_us(),
                   tracer);
  obs::finish_request(ctx, tracer);
  EXPECT_EQ(ctx.trace_id, 0u);  // finished: identity consumed
  tracer.disable();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  char id_hex[32];
  std::snprintf(id_hex, sizeof(id_hex), "\"id\":\"0x%llx\"",
                static_cast<unsigned long long>(id));

  // The umbrella slice and the stage slice pair b/e events on the
  // request's id under the async category...
  EXPECT_NE(json.find("\"name\":\"request\",\"cat\":\"phook.req\",\"ph\":"
                      "\"b\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\",\"cat\":\"phook.req\",\"ph\":"
                      "\"e\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"req.test_stage\",\"cat\":\"phook.req\","
                      "\"ph\":\"b\""),
            std::string::npos);
  // ...the flow arrow walks s -> t -> f on the same id, with the finish
  // binding to the enclosing slice ("bp":"e")...
  EXPECT_NE(json.find("\"cat\":\"phook.flow\",\"ph\":\"s\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"phook.flow\",\"ph\":\"t\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // ...and every causal event renders the id as the same hex string.
  std::size_t id_count = 0;
  for (std::size_t at = json.find(id_hex); at != std::string::npos;
       at = json.find(id_hex, at + 1)) {
    ++id_count;
  }
  EXPECT_EQ(id_count, 7u);  // request b/e, stage b/e, flow s/t/f
  tracer.clear();
}

TEST(ObsTracer, AsyncEventsTakeExplicitRetroactiveTimestamps) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(64);
  // A queue-wait stage is only known at pop time; the slice must still be
  // drawable where it began.
  tracer.async_begin("req.queue", 42, 10.0);
  tracer.async_end("req.queue", 42, 250.0);
  tracer.disable();
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ph\":\"b\",\"id\":\"0x2a\",\"pid\":1,\"tid\":1,"
                      "\"ts\":10"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\",\"id\":\"0x2a\",\"pid\":1,\"tid\":1,"
                      "\"ts\":250"),
            std::string::npos);
  tracer.clear();
}

TEST(ObsTracer, CausalEventsAreNoopsWhileDisabled) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(64);
  tracer.clear();
  tracer.disable();
  tracer.async_begin("ghost", 7, 0.0);
  tracer.flow_start(7);
  obs::RequestContext ctx = obs::mint_request(tracer);
  EXPECT_NE(ctx.trace_id, 0u);  // identity still minted (histograms need it)
  obs::finish_request(ctx, tracer);
  EXPECT_EQ(tracer.events_buffered(), 0u);
}

TEST(ObsTracer, ExportMetricsPublishesRingHealthWithMonotoneDropCounter) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(8);
  for (int i = 0; i < 12; ++i) {
    obs::ScopedSpan span(tracer, "spin");
  }
  obs::MetricsRegistry registry;
  tracer.export_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.gauge("trace_events_buffered").value(), 8.0);
  EXPECT_DOUBLE_EQ(registry.gauge("trace_enabled").value(), 1.0);
  EXPECT_EQ(registry.counter("trace_events_dropped_total").value(), 4u);

  // No new drops between scrapes: the counter must not re-add the total.
  tracer.export_metrics(registry);
  EXPECT_EQ(registry.counter("trace_events_dropped_total").value(), 4u);

  // Four more overflowing spans: the delta (and only the delta) lands.
  for (int i = 0; i < 4; ++i) {
    obs::ScopedSpan span(tracer, "spin");
  }
  tracer.export_metrics(registry);
  EXPECT_EQ(registry.counter("trace_events_dropped_total").value(), 8u);

  tracer.disable();
  tracer.export_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.gauge("trace_enabled").value(), 0.0);
  tracer.clear();
}

// --- request context ---------------------------------------------------------

TEST(ObsRequestContext, MintsUniqueIdsAndClampsQueueWait) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.disable();  // stamps and ids work without tracing
  obs::RequestContext a = obs::mint_request(tracer);
  obs::RequestContext b = obs::mint_request(tracer);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_GE(a.handoff_us, 0.0);
  EXPECT_DOUBLE_EQ(a.born_us, a.handoff_us);  // freshly minted: no hand-off

  a.handoff_us = 100.0;
  EXPECT_DOUBLE_EQ(a.wait_us(150.0), 50.0);
  EXPECT_DOUBLE_EQ(a.wait_us(40.0), 0.0);  // clock rebased: clamp, not negative

  obs::finish_request(a, tracer);
  EXPECT_FALSE(a.valid());
  obs::finish_request(a, tracer);  // second finish is a safe no-op
  EXPECT_FALSE(obs::RequestContext{}.valid());
}

// --- structured logging ------------------------------------------------------

std::vector<std::string>& captured_lines() {
  static std::vector<std::string> lines;
  return lines;
}

void capture_writer(const std::string& line) {
  captured_lines().push_back(line);
}

class ObsLoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    captured_lines().clear();
    common::set_log_writer(&capture_writer);
    common::set_log_level(common::LogLevel::kDebug);
  }
  void TearDown() override {
    common::set_log_writer(nullptr);
    common::set_log_format(common::LogFormat::kText);
    common::set_log_level(common::LogLevel::kInfo);
  }
};

TEST_F(ObsLoggingTest, JsonLinesHaveTimestampLevelThreadAndFields) {
  common::set_log_format(common::LogFormat::kJson);
  common::log_event(common::LogLevel::kInfo, "synth.build",
                    {{"rows", 1200}, {"balanced", true}, {"name", "fig2"}});
  ASSERT_EQ(captured_lines().size(), 1u);
  const std::string& line = captured_lines()[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"thread\":"), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"synth.build\""), std::string::npos);
  EXPECT_NE(line.find("\"rows\":1200"), std::string::npos);       // unquoted
  EXPECT_NE(line.find("\"balanced\":true"), std::string::npos);   // bare bool
  EXPECT_NE(line.find("\"name\":\"fig2\""), std::string::npos);   // quoted
}

TEST_F(ObsLoggingTest, JsonModeWrapsPlainMessages) {
  common::set_log_format(common::LogFormat::kJson);
  common::log_info("hello \"world\"");
  ASSERT_EQ(captured_lines().size(), 1u);
  EXPECT_NE(captured_lines()[0].find("\"msg\":\"hello \\\"world\\\"\""),
            std::string::npos);
}

TEST_F(ObsLoggingTest, TextModeRendersKeyValuePairs) {
  common::log_event(common::LogLevel::kWarn, "cache.evict",
                    {{"shard", 3}, {"entries", 128}});
  ASSERT_EQ(captured_lines().size(), 1u);
  EXPECT_EQ(captured_lines()[0],
            "[phook WARN ] cache.evict shard=3 entries=128");
}

TEST_F(ObsLoggingTest, EventsBelowLevelAreSuppressed) {
  common::set_log_level(common::LogLevel::kError);
  common::log_event(common::LogLevel::kInfo, "quiet", {});
  EXPECT_TRUE(captured_lines().empty());
}

TEST(ObsLoggingEnv, NewPrefixWinsOverLegacy) {
  setenv("PHOOK_LOG", "error", 1);
  setenv("PHISHINGHOOK_LOG", "debug", 1);
  common::refresh_log_from_env();
  EXPECT_EQ(common::log_level(), common::LogLevel::kDebug);

  unsetenv("PHISHINGHOOK_LOG");
  common::refresh_log_from_env();
  EXPECT_EQ(common::log_level(), common::LogLevel::kError);

  unsetenv("PHOOK_LOG");
  setenv("PHOOK_LOG_FORMAT", "json", 1);
  common::refresh_log_from_env();
  EXPECT_EQ(common::log_format(), common::LogFormat::kJson);
  unsetenv("PHOOK_LOG_FORMAT");
  common::refresh_log_from_env();
  EXPECT_EQ(common::log_level(), common::LogLevel::kInfo);
  EXPECT_EQ(common::log_format(), common::LogFormat::kText);
}

// --- serve-stack integration -------------------------------------------------

TEST(ObsIntegration, EngineRunProducesSpansFromThreeSubsystems) {
  synth::DatasetConfig config;
  config.target_size = 60;
  config.seed = 5;
  const synth::BuiltDataset data = synth::DatasetBuilder(config).build();

  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  std::vector<evm::Address> addresses;
  for (const synth::LabeledContract& sample : data.samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
    addresses.push_back(sample.address);
  }
  ml::RandomForestConfig forest;
  forest.n_trees = 5;
  forest.seed = 1;
  core::HistogramAdapter detector(
      std::make_unique<ml::RandomForestClassifier>(forest), "Random Forest");
  detector.fit(codes, labels);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(4096);
  {
    serve::EngineConfig engine_config;
    engine_config.workers = 2;
    engine_config.max_batch = 8;
    serve::ScoringEngine engine(*data.explorer, detector, engine_config);
    engine.score_all(addresses);
  }  // destructor joins the workers: rings quiesced before export
  tracer.disable();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const auto events = parse_events(out.str());
  ASSERT_FALSE(events.empty());
  std::map<std::string, int> span_counts;
  for (const auto& [name, tsdur] : events) {
    span_counts[name.substr(0, name.find(':'))] += 1;
  }
  EXPECT_GT(span_counts["serve.batch"], 0);            // serving layer
  EXPECT_GT(span_counts["serve.predict"], 0);
  EXPECT_GT(span_counts["features.transform_all"], 0);  // feature pipeline
  EXPECT_GT(span_counts["model.predict"], 0);           // model layer
  tracer.clear();
}

TEST(ObsIntegration, EnginePrometheusExpositionIncludesCacheCounters) {
  synth::DatasetConfig config;
  config.target_size = 40;
  config.seed = 6;
  const synth::BuiltDataset data = synth::DatasetBuilder(config).build();
  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  std::vector<evm::Address> addresses;
  for (const synth::LabeledContract& sample : data.samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
    addresses.push_back(sample.address);
  }
  ml::RandomForestConfig forest;
  forest.n_trees = 3;
  core::HistogramAdapter detector(
      std::make_unique<ml::RandomForestClassifier>(forest), "Random Forest");
  detector.fit(codes, labels);

  serve::EngineConfig engine_config;
  engine_config.workers = 1;
  serve::ScoringEngine engine(*data.explorer, detector, engine_config);
  engine.score_all(addresses);
  engine.score_all(addresses);  // warm pass: cache hits
  engine.shutdown();

  std::ostringstream out;
  engine.dump_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE serve_requests_completed counter"),
            std::string::npos);
  EXPECT_NE(text.find("serve_cache_hits "), std::string::npos);
  EXPECT_NE(text.find("serve_cache_hit_rate "), std::string::npos);
  EXPECT_NE(text.find("serve_request_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  // Two engines never share counts: a fresh engine's registry starts clean.
  serve::ScoringEngine fresh(*data.explorer, detector, engine_config);
  EXPECT_EQ(fresh.metrics().requests_completed.value(), 0u);
}

TEST(ObsIntegration, ResultsCarryTraceIdsAndStageAttribution) {
  synth::DatasetConfig config;
  config.target_size = 40;
  config.seed = 7;
  const synth::BuiltDataset data = synth::DatasetBuilder(config).build();
  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  std::vector<evm::Address> addresses;
  for (const synth::LabeledContract& sample : data.samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
    addresses.push_back(sample.address);
  }
  ml::RandomForestConfig forest;
  forest.n_trees = 3;
  core::HistogramAdapter detector(
      std::make_unique<ml::RandomForestClassifier>(forest), "Random Forest");
  detector.fit(codes, labels);

  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  serve::ScoringEngine engine(*data.explorer, detector, engine_config);
  const std::vector<serve::ScoreResult> results = engine.score_all(addresses);
  engine.shutdown();

  // Every result names its causal lane (ids are unique per request) and
  // reports how long it was parked before a worker picked it up.
  std::set<std::uint64_t> ids;
  for (const serve::ScoreResult& result : results) {
    EXPECT_NE(result.trace_id, 0u);
    ids.insert(result.trace_id);
    EXPECT_GE(result.queue_wait_us, 0.0);
    // The wait is a slice of the end-to-end latency; allow scheduler slack
    // between the hand-off stamp and the latency timer start.
    EXPECT_LE(result.queue_wait_us, result.latency_us + 1000.0);
  }
  EXPECT_EQ(ids.size(), results.size());

  // Latency attribution: queue-wait is recorded once per popped request,
  // extraction once per non-shed slot, inference for every slot that
  // actually needed the model.
  const serve::ServiceMetrics& metrics = engine.metrics();
  EXPECT_EQ(metrics.stage_queue_wait.count(), addresses.size());
  EXPECT_EQ(metrics.stage_extract.count(), addresses.size());
  EXPECT_GT(metrics.stage_predict.count(), 0u);
  EXPECT_LE(metrics.stage_predict.count(), addresses.size());

  // The per-stage series join the exposition, labeled by stage.
  std::ostringstream out;
  engine.dump_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("serve_stage_wait_us{stage=\"queue\""),
            std::string::npos);
  EXPECT_NE(text.find("serve_stage_service_us{stage=\"extract\""),
            std::string::npos);
  EXPECT_NE(text.find("serve_stage_service_us{stage=\"predict\""),
            std::string::npos);
}

}  // namespace
}  // namespace phishinghook
