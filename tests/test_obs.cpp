// Telemetry layer tests: metrics registry exactness under concurrency,
// pinned histogram quantiles (the bucket-edge fix), Prometheus/JSON
// exposition shape, tracer ring semantics, and the serve-stack trace
// integration (spans from >= 3 subsystems in one engine run).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "ml/random_forest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/scoring_engine.hpp"
#include "synth/dataset_builder.hpp"

namespace phishinghook {
namespace {

// --- histogram quantiles (satellite 1: bucket-edge interpolation) -----------

TEST(ObsHistogram, SingleSampleIsExactAtEveryQuantile) {
  obs::LatencyHistogram histogram;
  histogram.record(777.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 777.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 777.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 777.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 777.0);
  EXPECT_DOUBLE_EQ(histogram.max_value(), 777.0);
}

TEST(ObsHistogram, SingleSmallSampleDoesNotReadBucketEdge) {
  // Pre-fix behavior returned the bucket's upper edge (2.0 for a 0-valued
  // sample); the interpolated quantile must report the sample itself.
  obs::LatencyHistogram histogram;
  histogram.record(0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  histogram.record(1.0);
  EXPECT_LE(histogram.quantile(1.0), 1.0);
}

TEST(ObsHistogram, UniformBucketInterpolatesWithinClampedEdges) {
  // Four identical samples of 100 land in bucket [64, 128); upper edge
  // clamps to the observed max (100). k = floor(q*4):
  //   q=0.5 -> k=2 -> 64 + (100-64) * 3/4 = 91.
  obs::LatencyHistogram histogram;
  for (int i = 0; i < 4; ++i) histogram.record(100.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 91.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 100.0);  // k=3 -> frac=1 -> max
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 73.0);   // k=0 -> 64 + 36/4
}

TEST(ObsHistogram, QuantilesNeverExceedObservedMax) {
  obs::LatencyHistogram histogram;
  for (int i = 0; i < 99; ++i) histogram.record(100.0);
  histogram.record(100000.0);
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_NEAR(histogram.mean(), 1099.0, 1.0);
  EXPECT_LE(histogram.quantile(0.50), 128.0);
  EXPECT_GE(histogram.quantile(0.995), 65536.0);
  EXPECT_LE(histogram.quantile(0.995), 100000.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 100000.0);
}

TEST(ObsHistogram, EmptyHistogramReportsZero) {
  obs::LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
}

// --- registry ----------------------------------------------------------------

TEST(ObsRegistry, ConcurrentIncrementsSumExactly) {
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("hits_total");
  obs::LatencyHistogram& histogram = registry.histogram("lat_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &histogram] {
      // Handles re-fetched per thread: same (name, labels) -> same cell.
      obs::Counter mine = registry.counter("hits_total");
      for (int i = 0; i < kPerThread; ++i) {
        mine.inc();
        histogram.record(static_cast<double>(i % 512));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, SameNameSameCellDifferentLabelsDifferentCells) {
  obs::MetricsRegistry registry;
  obs::Counter a = registry.counter("fit_total", obs::label("model", "RF"));
  obs::Counter a2 = registry.counter("fit_total", obs::label("model", "RF"));
  obs::Counter b = registry.counter("fit_total", obs::label("model", "SVM"));
  a.inc(3);
  a2.inc(2);
  b.inc(7);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x_total");
  EXPECT_THROW(registry.gauge("x_total"), InvalidArgument);
  EXPECT_THROW(registry.histogram("x_total"), InvalidArgument);
}

TEST(ObsRegistry, DefaultConstructedHandlesAreSafeNoops) {
  obs::Counter counter;
  obs::Gauge gauge;
  counter.inc();
  gauge.set(4.0);
  EXPECT_GE(counter.value(), 1u);  // null cell, shared; just must not crash
}

TEST(ObsRegistry, PrometheusExpositionShape) {
  obs::MetricsRegistry registry;
  registry.counter("b_total", obs::label("model", "Random Forest")).inc(4);
  registry.gauge("a_depth").set(2.5);
  registry.histogram("c_ms").record(10.0);

  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE a_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("a_depth 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_total counter"), std::string::npos);
  EXPECT_NE(text.find("b_total{model=\"Random Forest\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE c_ms summary"), std::string::npos);
  EXPECT_NE(text.find("c_ms{quantile=\"0.5\"} 10"), std::string::npos);
  EXPECT_NE(text.find("c_ms_count 1"), std::string::npos);
  // Sorted by name: a before b before c.
  EXPECT_LT(text.find("a_depth"), text.find("b_total"));
  EXPECT_LT(text.find("b_total"), text.find("c_ms"));
}

TEST(ObsRegistry, JsonDumpParsesAndRoundTripsValues) {
  obs::MetricsRegistry registry;
  registry.counter("hits_total").inc(12);
  registry.gauge("depth").set(3.0);
  registry.histogram("lat_us").record(50.0);
  std::ostringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\":[{\"name\":\"hits_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\":12"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":[{\"name\":\"lat_us\""),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":50"), std::string::npos);
}

TEST(ObsRegistry, LabelEscapesQuotesAndBackslashes) {
  EXPECT_EQ(obs::label("k", "a\"b\\c"), "k=\"a\\\"b\\\\c\"");
}

// --- tracer ------------------------------------------------------------------

/// Minimal parser for the writer's own output: extracts (name, ts, dur)
/// triples without a JSON dependency.
std::vector<std::pair<std::string, std::pair<double, double>>> parse_events(
    const std::string& json) {
  std::vector<std::pair<std::string, std::pair<double, double>>> out;
  std::size_t at = 0;
  while ((at = json.find("{\"name\":\"", at)) != std::string::npos) {
    const std::size_t name_begin = at + 9;
    const std::size_t name_end = json.find('"', name_begin);
    const std::size_t ts_at = json.find("\"ts\":", name_end) + 5;
    const std::size_t dur_at = json.find("\"dur\":", name_end) + 6;
    out.emplace_back(
        json.substr(name_begin, name_end - name_begin),
        std::make_pair(std::strtod(json.c_str() + ts_at, nullptr),
                       std::strtod(json.c_str() + dur_at, nullptr)));
    at = name_end;
  }
  return out;
}

TEST(ObsTracer, NestedSpansRecordContainment) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(256);
  {
    obs::ScopedSpan outer(tracer, "outer");
    { obs::ScopedSpan inner(tracer, "inner", "detail"); }
  }
  tracer.disable();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const auto events = parse_events(out.str());
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it sorts and nests inside outer.
  std::map<std::string, std::pair<double, double>> by_name(events.begin(),
                                                           events.end());
  ASSERT_TRUE(by_name.contains("outer"));
  ASSERT_TRUE(by_name.contains("inner:detail"));
  const auto [outer_ts, outer_dur] = by_name["outer"];
  const auto [inner_ts, inner_dur] = by_name["inner:detail"];
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-6);
  tracer.clear();
}

TEST(ObsTracer, RingOverflowDropsOldestAndCounts) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(8);  // tiny ring
  for (int i = 0; i < 20; ++i) {
    obs::ScopedSpan span(tracer, i < 12 ? "old" : "new");
  }
  tracer.disable();
  EXPECT_EQ(tracer.events_buffered(), 8u);
  EXPECT_EQ(tracer.events_dropped(), 12u);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const auto events = parse_events(out.str());
  ASSERT_EQ(events.size(), 8u);
  for (const auto& [name, tsdur] : events) {
    EXPECT_EQ(name, "new");  // the 8 newest survive; the oldest 12 dropped
  }
  tracer.clear();
}

TEST(ObsTracer, DisabledSpansRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(64);
  tracer.clear();
  tracer.disable();
  { obs::ScopedSpan span(tracer, "ghost"); }
  EXPECT_EQ(tracer.events_buffered(), 0u);
}

TEST(ObsTracer, LongNamesTruncateSafely) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(16);
  const std::string long_name(200, 'x');
  { obs::ScopedSpan span(tracer, long_name.c_str(), "detail"); }
  tracer.disable();
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const auto events = parse_events(out.str());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first.size(), obs::Tracer::kMaxNameLength);
  tracer.clear();
}

TEST(ObsTracer, ExplicitEndStopsTheClock) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(16);
  {
    obs::ScopedSpan span(tracer, "stage");
    span.end();
    span.end();  // idempotent
  }
  tracer.disable();
  EXPECT_EQ(tracer.events_buffered(), 1u);
  tracer.clear();
}

// --- structured logging ------------------------------------------------------

std::vector<std::string>& captured_lines() {
  static std::vector<std::string> lines;
  return lines;
}

void capture_writer(const std::string& line) {
  captured_lines().push_back(line);
}

class ObsLoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    captured_lines().clear();
    common::set_log_writer(&capture_writer);
    common::set_log_level(common::LogLevel::kDebug);
  }
  void TearDown() override {
    common::set_log_writer(nullptr);
    common::set_log_format(common::LogFormat::kText);
    common::set_log_level(common::LogLevel::kInfo);
  }
};

TEST_F(ObsLoggingTest, JsonLinesHaveTimestampLevelThreadAndFields) {
  common::set_log_format(common::LogFormat::kJson);
  common::log_event(common::LogLevel::kInfo, "synth.build",
                    {{"rows", 1200}, {"balanced", true}, {"name", "fig2"}});
  ASSERT_EQ(captured_lines().size(), 1u);
  const std::string& line = captured_lines()[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"thread\":"), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"synth.build\""), std::string::npos);
  EXPECT_NE(line.find("\"rows\":1200"), std::string::npos);       // unquoted
  EXPECT_NE(line.find("\"balanced\":true"), std::string::npos);   // bare bool
  EXPECT_NE(line.find("\"name\":\"fig2\""), std::string::npos);   // quoted
}

TEST_F(ObsLoggingTest, JsonModeWrapsPlainMessages) {
  common::set_log_format(common::LogFormat::kJson);
  common::log_info("hello \"world\"");
  ASSERT_EQ(captured_lines().size(), 1u);
  EXPECT_NE(captured_lines()[0].find("\"msg\":\"hello \\\"world\\\"\""),
            std::string::npos);
}

TEST_F(ObsLoggingTest, TextModeRendersKeyValuePairs) {
  common::log_event(common::LogLevel::kWarn, "cache.evict",
                    {{"shard", 3}, {"entries", 128}});
  ASSERT_EQ(captured_lines().size(), 1u);
  EXPECT_EQ(captured_lines()[0],
            "[phook WARN ] cache.evict shard=3 entries=128");
}

TEST_F(ObsLoggingTest, EventsBelowLevelAreSuppressed) {
  common::set_log_level(common::LogLevel::kError);
  common::log_event(common::LogLevel::kInfo, "quiet", {});
  EXPECT_TRUE(captured_lines().empty());
}

TEST(ObsLoggingEnv, NewPrefixWinsOverLegacy) {
  setenv("PHOOK_LOG", "error", 1);
  setenv("PHISHINGHOOK_LOG", "debug", 1);
  common::refresh_log_from_env();
  EXPECT_EQ(common::log_level(), common::LogLevel::kDebug);

  unsetenv("PHISHINGHOOK_LOG");
  common::refresh_log_from_env();
  EXPECT_EQ(common::log_level(), common::LogLevel::kError);

  unsetenv("PHOOK_LOG");
  setenv("PHOOK_LOG_FORMAT", "json", 1);
  common::refresh_log_from_env();
  EXPECT_EQ(common::log_format(), common::LogFormat::kJson);
  unsetenv("PHOOK_LOG_FORMAT");
  common::refresh_log_from_env();
  EXPECT_EQ(common::log_level(), common::LogLevel::kInfo);
  EXPECT_EQ(common::log_format(), common::LogFormat::kText);
}

// --- serve-stack integration -------------------------------------------------

TEST(ObsIntegration, EngineRunProducesSpansFromThreeSubsystems) {
  synth::DatasetConfig config;
  config.target_size = 60;
  config.seed = 5;
  const synth::BuiltDataset data = synth::DatasetBuilder(config).build();

  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  std::vector<evm::Address> addresses;
  for (const synth::LabeledContract& sample : data.samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
    addresses.push_back(sample.address);
  }
  ml::RandomForestConfig forest;
  forest.n_trees = 5;
  forest.seed = 1;
  core::HistogramAdapter detector(
      std::make_unique<ml::RandomForestClassifier>(forest), "Random Forest");
  detector.fit(codes, labels);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(4096);
  {
    serve::EngineConfig engine_config;
    engine_config.workers = 2;
    engine_config.max_batch = 8;
    serve::ScoringEngine engine(*data.explorer, detector, engine_config);
    engine.score_all(addresses);
  }  // destructor joins the workers: rings quiesced before export
  tracer.disable();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const auto events = parse_events(out.str());
  ASSERT_FALSE(events.empty());
  std::map<std::string, int> span_counts;
  for (const auto& [name, tsdur] : events) {
    span_counts[name.substr(0, name.find(':'))] += 1;
  }
  EXPECT_GT(span_counts["serve.batch"], 0);            // serving layer
  EXPECT_GT(span_counts["serve.predict"], 0);
  EXPECT_GT(span_counts["features.transform_all"], 0);  // feature pipeline
  EXPECT_GT(span_counts["model.predict"], 0);           // model layer
  tracer.clear();
}

TEST(ObsIntegration, EnginePrometheusExpositionIncludesCacheCounters) {
  synth::DatasetConfig config;
  config.target_size = 40;
  config.seed = 6;
  const synth::BuiltDataset data = synth::DatasetBuilder(config).build();
  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  std::vector<evm::Address> addresses;
  for (const synth::LabeledContract& sample : data.samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
    addresses.push_back(sample.address);
  }
  ml::RandomForestConfig forest;
  forest.n_trees = 3;
  core::HistogramAdapter detector(
      std::make_unique<ml::RandomForestClassifier>(forest), "Random Forest");
  detector.fit(codes, labels);

  serve::EngineConfig engine_config;
  engine_config.workers = 1;
  serve::ScoringEngine engine(*data.explorer, detector, engine_config);
  engine.score_all(addresses);
  engine.score_all(addresses);  // warm pass: cache hits
  engine.shutdown();

  std::ostringstream out;
  engine.dump_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE serve_requests_completed counter"),
            std::string::npos);
  EXPECT_NE(text.find("serve_cache_hits "), std::string::npos);
  EXPECT_NE(text.find("serve_cache_hit_rate "), std::string::npos);
  EXPECT_NE(text.find("serve_request_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  // Two engines never share counts: a fresh engine's registry starts clean.
  serve::ScoringEngine fresh(*data.explorer, detector, engine_config);
  EXPECT_EQ(fresh.metrics().requests_completed.value(), 0u);
}

}  // namespace
}  // namespace phishinghook
