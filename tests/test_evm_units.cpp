// Unit tests for the interpreter's building blocks: operand stack, linear
// memory (with its quadratic expansion cost), and the synthesizer's
// assembler — plus a random-program robustness sweep over the interpreter.
#include <gtest/gtest.h>

#include "chain/state.hpp"
#include "common/errors.hpp"
#include "common/rng.hpp"
#include "evm/interpreter.hpp"
#include "evm/memory.hpp"
#include "evm/stack.hpp"
#include "synth/assembler.hpp"

namespace phishinghook::evm {
namespace {

TEST(Stack, PushPopPeek) {
  Stack stack;
  EXPECT_TRUE(stack.push(U256(1)));
  EXPECT_TRUE(stack.push(U256(2)));
  EXPECT_EQ(stack.peek(0), U256(2));
  EXPECT_EQ(stack.peek(1), U256(1));
  U256 out;
  EXPECT_TRUE(stack.pop(out));
  EXPECT_EQ(out, U256(2));
  EXPECT_TRUE(stack.pop(out));
  EXPECT_FALSE(stack.pop(out));  // underflow
}

TEST(Stack, OverflowAt1024) {
  Stack stack;
  for (std::size_t i = 0; i < Stack::kMaxDepth; ++i) {
    ASSERT_TRUE(stack.push(U256(i)));
  }
  EXPECT_FALSE(stack.push(U256(0)));
  EXPECT_EQ(stack.size(), Stack::kMaxDepth);
}

TEST(Stack, DupSemantics) {
  Stack stack;
  (void)stack.push(U256(10));
  (void)stack.push(U256(20));
  EXPECT_TRUE(stack.dup(2));  // DUP2 duplicates the 2nd item (10)
  EXPECT_EQ(stack.peek(0), U256(10));
  EXPECT_EQ(stack.size(), 3u);
  EXPECT_FALSE(stack.dup(4));  // not enough items
}

TEST(Stack, SwapSemantics) {
  Stack stack;
  (void)stack.push(U256(10));
  (void)stack.push(U256(20));
  (void)stack.push(U256(30));
  EXPECT_TRUE(stack.swap(2));  // SWAP2: top <-> 3rd
  EXPECT_EQ(stack.peek(0), U256(10));
  EXPECT_EQ(stack.peek(2), U256(30));
  EXPECT_FALSE(stack.swap(3));
}

TEST(EvmMemory, WordRoundTripAndZeroInit) {
  EvmMemory memory;
  EXPECT_EQ(memory.load_word(0x40), U256());  // fresh memory reads zero
  memory.store_word(0x40, U256(0xBEEF));
  EXPECT_EQ(memory.load_word(0x40), U256(0xBEEF));
  EXPECT_EQ(memory.size() % 32, 0u);
}

TEST(EvmMemory, ExpansionCostQuadratic) {
  // Yellow paper: C(w) = 3w + w^2/512.
  EXPECT_EQ(EvmMemory::expansion_cost(0), 0u);
  EXPECT_EQ(EvmMemory::expansion_cost(1), 3u);
  EXPECT_EQ(EvmMemory::expansion_cost(32), 3u * 32 + 2u);
  EXPECT_EQ(EvmMemory::expansion_cost(1024), 3u * 1024 + 2048u);
}

TEST(EvmMemory, GrowCostIsDelta) {
  EvmMemory memory;
  const std::uint64_t first = memory.grow_cost(0, 64);  // 2 words
  EXPECT_EQ(first, EvmMemory::expansion_cost(2));
  memory.grow(0, 64);
  EXPECT_EQ(memory.grow_cost(0, 64), 0u);  // already covered
  const std::uint64_t delta = memory.grow_cost(64, 32);  // word 3
  EXPECT_EQ(delta, EvmMemory::expansion_cost(3) - EvmMemory::expansion_cost(2));
  EXPECT_EQ(memory.grow_cost(0, 0), 0u);  // zero-length never grows
}

TEST(EvmMemory, StoreSpanZeroFillsTail) {
  EvmMemory memory;
  const std::uint8_t data[] = {1, 2, 3};
  memory.store_byte(5, 0xFF);  // pre-existing byte inside the target range
  memory.store_span(2, data, 6);
  const auto read = memory.read(2, 6);
  EXPECT_EQ(read, (std::vector<std::uint8_t>{1, 2, 3, 0, 0, 0}));
}

TEST(Assembler, MinimalWidthPush) {
  synth::Assembler a;
  a.push(U256());       // PUSH0
  a.push(0xFF);         // PUSH1
  a.push(0x100);        // PUSH2
  a.push(U256::max());  // PUSH32
  const Bytecode code = a.build();
  EXPECT_EQ(code.bytes()[0], 0x5F);
  EXPECT_EQ(code.bytes()[1], 0x60);
  EXPECT_EQ(code.bytes()[3], 0x61);
  EXPECT_EQ(code.bytes()[6], 0x7F);
  EXPECT_EQ(code.size(), 1u + 2u + 3u + 33u);
}

TEST(Assembler, ForwardAndBackwardLabels) {
  synth::Assembler a;
  const auto forward = a.make_label();
  a.jump(forward);              // forward reference (patched later)
  a.op(Op::kStop);
  a.bind(forward);
  const auto backward = a.make_label();
  a.bind(backward);
  a.jump(backward);             // backward reference
  const Bytecode code = a.build();
  // Layout: PUSH2 hi lo (0-2), JUMP (3), STOP (4), JUMPDEST (5).
  EXPECT_EQ(code.bytes()[1], 0x00);
  EXPECT_EQ(code.bytes()[2], 0x05);
  EXPECT_TRUE(code.is_valid_jump_dest(5));
}

TEST(Assembler, ErrorsOnMisuse) {
  synth::Assembler a;
  const auto label = a.make_label();
  a.bind(label);
  EXPECT_THROW(a.bind(label), StateError);  // double bind
  synth::Assembler b;
  const auto unbound = b.make_label();
  b.jump(unbound);
  EXPECT_THROW(b.build(), StateError);  // unbound reference
  synth::Assembler c;
  EXPECT_THROW(c.push_bytes(std::vector<std::uint8_t>(33, 0)), InvalidArgument);
}

TEST(Assembler, SelectorEncoding) {
  synth::Assembler a;
  a.push_selector(0x23b872dd);  // transferFrom
  const Bytecode code = a.build();
  EXPECT_EQ(code.bytes(),
            (std::vector<std::uint8_t>{0x63, 0x23, 0xb8, 0x72, 0xdd}));
}

// --- robustness: random byte soup must never crash the interpreter --------

class InterpreterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterpreterFuzz, RandomProgramsTerminateCleanly) {
  common::Rng rng(GetParam());
  chain::State state;
  const Address contract =
      Address::from_hex("0x00000000000000000000000000000000000000cc");
  const Address caller =
      Address::from_hex("0x00000000000000000000000000000000000000aa");
  state.set_balance(contract, U256(1000));

  const Interpreter interpreter(BlockContext{});
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(200) + 1);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    const Bytecode code(bytes);
    state.set_code(contract, code);

    Message msg;
    msg.caller = caller;
    msg.origin = caller;
    msg.code_address = contract;
    msg.storage_address = contract;
    msg.gas = 100'000;
    msg.data = {0x01, 0x02, 0x03, 0x04};
    // Must terminate with a status — never throw, hang or overrun gas.
    const ExecutionResult result = interpreter.execute(msg, code, state, 0);
    EXPECT_LE(result.gas_used, msg.gas);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpreterFuzz,
                         ::testing::Values(1001u, 2002u, 3003u, 4004u));

}  // namespace
}  // namespace phishinghook::evm
