// Hyperparameter search (the Optuna stand-in).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/hyper_search.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"

namespace phishinghook::ml {
namespace {

struct Blob {
  Matrix x;
  std::vector<int> y;
};

Blob make_blobs(std::size_t n_per_class, std::size_t d, double separation,
                std::uint64_t seed) {
  common::Rng rng(seed);
  Blob blob;
  blob.x = Matrix(2 * n_per_class, d);
  for (std::size_t i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    blob.y.push_back(label);
    for (std::size_t c = 0; c < d; ++c) {
      blob.x.at(i, c) = rng.normal() + (label == 1 ? separation : 0.0);
    }
  }
  return blob;
}

ClassifierFactory knn_factory() {
  return [](const ParamAssignment& params) {
    KnnConfig config;
    config.k = static_cast<int>(params.at("k"));
    return std::unique_ptr<TabularClassifier>(
        std::make_unique<KnnClassifier>(config));
  };
}

TEST(HyperSearch, GridEnumeratesFullProduct) {
  const Blob blob = make_blobs(30, 3, 2.0, 1);
  HyperSearchConfig config;
  config.folds = 3;
  const HyperSearch search(config);
  const Trial best = search.grid_search(
      knn_factory(), {{"k", {1.0, 3.0, 5.0, 7.0}}}, blob.x, blob.y);
  EXPECT_GT(best.score, 0.85);
  EXPECT_TRUE(best.params.contains("k"));
}

TEST(HyperSearch, GridFindsTheObviouslyBetterSetting) {
  // Forest with 1 tree of depth 1 vs a real forest: grid must pick the
  // latter on noisy data.
  const Blob blob = make_blobs(40, 4, 1.2, 2);
  const ClassifierFactory factory = [](const ParamAssignment& params) {
    RandomForestConfig config;
    config.n_trees = static_cast<int>(params.at("n_trees"));
    config.max_depth = static_cast<int>(params.at("max_depth"));
    return std::unique_ptr<TabularClassifier>(
        std::make_unique<RandomForestClassifier>(config));
  };
  HyperSearchConfig config;
  config.folds = 3;
  const HyperSearch search(config);
  const Trial best = search.grid_search(
      factory, {{"n_trees", {1.0, 25.0}}, {"max_depth", {1.0, 8.0}}}, blob.x,
      blob.y);
  EXPECT_EQ(best.params.at("n_trees"), 25.0);
}

TEST(HyperSearch, RandomSearchStaysInSpace) {
  const Blob blob = make_blobs(25, 3, 2.0, 3);
  HyperSearchConfig config;
  config.folds = 3;
  const HyperSearch search(config);
  const Trial best = search.random_search(
      knn_factory(), {{"k", {1.0, 3.0, 5.0}}}, blob.x, blob.y, 5);
  const double k = best.params.at("k");
  EXPECT_TRUE(k == 1.0 || k == 3.0 || k == 5.0);
  EXPECT_GT(best.score, 0.8);
}

TEST(HyperSearch, MaxTrialsBoundsGrid) {
  const Blob blob = make_blobs(20, 2, 2.5, 4);
  HyperSearchConfig config;
  config.folds = 2;
  config.max_trials = 2;
  const HyperSearch search(config);
  // 3x3 grid capped at 2 evaluations — must still return a valid trial.
  const Trial best = search.grid_search(
      knn_factory(), {{"k", {1.0, 3.0, 5.0}}, {"unused", {0.0, 1.0, 2.0}}},
      blob.x, blob.y);
  EXPECT_GE(best.score, 0.0);
}

TEST(HyperSearch, EmptyAxisRejected) {
  const Blob blob = make_blobs(20, 2, 2.5, 5);
  const HyperSearch search;
  EXPECT_THROW(
      search.grid_search(knn_factory(), {{"k", {}}}, blob.x, blob.y),
      InvalidArgument);
}

}  // namespace
}  // namespace phishinghook::ml
