// Scale configuration and logging plumbing.
#include <gtest/gtest.h>

#include "common/env.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"

namespace phishinghook::common {
namespace {

TEST(Scale, NamesRoundTrip) {
  EXPECT_EQ(scale_name(Scale::kSmoke), "smoke");
  EXPECT_EQ(scale_name(Scale::kSmall), "small");
  EXPECT_EQ(scale_name(Scale::kMedium), "medium");
  EXPECT_EQ(scale_name(Scale::kFull), "full");
}

TEST(Scale, ParamsGrowMonotonically) {
  const Scale scales[] = {Scale::kSmoke, Scale::kSmall, Scale::kMedium,
                          Scale::kFull};
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    const ScaleParams lo = scale_params(scales[i]);
    const ScaleParams hi = scale_params(scales[i + 1]);
    EXPECT_LE(lo.corpus_size, hi.corpus_size);
    EXPECT_LE(lo.folds, hi.folds);
    EXPECT_LE(lo.nn_epochs, hi.nn_epochs);
    EXPECT_LE(lo.image_side, hi.image_side);
    EXPECT_LE(lo.max_sequence, hi.max_sequence);
  }
}

TEST(Scale, FullMatchesPaperProtocol) {
  const ScaleParams full = scale_params(Scale::kFull);
  EXPECT_EQ(full.corpus_size, 7000u);  // the paper's dataset size
  EXPECT_EQ(full.folds, 10);           // 10-fold CV
  EXPECT_EQ(full.runs, 3);             // x 3 runs = 30 trials per model
}

TEST(Scale, ImageSideDivisibleByVitPatch) {
  // The ViT patch size is 4; every scale's image side must divide evenly.
  for (Scale scale : {Scale::kSmoke, Scale::kSmall, Scale::kMedium,
                      Scale::kFull}) {
    EXPECT_EQ(scale_params(scale).image_side % 4, 0u)
        << scale_name(scale);
  }
}

TEST(Logging, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must be cheap no-ops below the threshold (and must not crash).
  log_debug("invisible ", 1);
  log_info("invisible ", 2);
  log_warn("invisible ", 3);
  set_log_level(original);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double first = timer.seconds();
  EXPECT_GE(first, 0.0);
  timer.restart();
  EXPECT_LE(timer.seconds(), first + 1.0);
  EXPECT_GE(timer.milliseconds(), 0.0);
}

}  // namespace
}  // namespace phishinghook::common
