// Classical (HSC) classifiers: every model must learn cleanly separable
// data, stay honest on noise, and behave deterministically. One
// parameterized suite runs all seven Table II HSC models.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "ml/catboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/knn.hpp"
#include "ml/lightgbm.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"

namespace phishinghook::ml {
namespace {

struct Blob {
  Matrix x;
  std::vector<int> y;
};

/// Two Gaussian blobs in d dimensions, `separation` apart.
Blob make_blobs(std::size_t n_per_class, std::size_t d, double separation,
                std::uint64_t seed) {
  common::Rng rng(seed);
  Blob blob;
  blob.x = Matrix(2 * n_per_class, d);
  for (std::size_t i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    blob.y.push_back(label);
    for (std::size_t c = 0; c < d; ++c) {
      blob.x.at(i, c) = rng.normal() + (label == 1 ? separation : 0.0);
    }
  }
  return blob;
}

using Factory = std::function<std::unique_ptr<TabularClassifier>()>;

struct ModelCase {
  const char* name;
  Factory make;
};

class AllModels : public ::testing::TestWithParam<ModelCase> {};

TEST_P(AllModels, LearnsSeparableBlobs) {
  const Blob train = make_blobs(60, 6, 3.0, 11);
  const Blob test = make_blobs(40, 6, 3.0, 12);
  auto model = GetParam().make();
  model->fit(train.x, train.y);
  const Metrics m = compute_metrics(test.y, model->predict(test.x));
  EXPECT_GE(m.accuracy, 0.9) << GetParam().name;
}

TEST_P(AllModels, ProbabilitiesAreCalibratedToUnitInterval) {
  const Blob train = make_blobs(40, 4, 2.0, 21);
  auto model = GetParam().make();
  model->fit(train.x, train.y);
  for (double p : model->predict_proba(train.x)) {
    EXPECT_GE(p, 0.0) << GetParam().name;
    EXPECT_LE(p, 1.0) << GetParam().name;
  }
}

TEST_P(AllModels, PredictBeforeFitThrows) {
  auto model = GetParam().make();
  const Matrix x(1, 4);
  EXPECT_THROW((void)model->predict_proba(x), Error) << GetParam().name;
}

TEST_P(AllModels, FitSizeMismatchThrows) {
  auto model = GetParam().make();
  const Matrix x(4, 2);
  const std::vector<int> y = {0, 1};
  EXPECT_THROW(model->fit(x, y), InvalidArgument) << GetParam().name;
}

TEST_P(AllModels, DeterministicAcrossIdenticalRuns) {
  const Blob train = make_blobs(40, 4, 2.5, 31);
  const Blob test = make_blobs(20, 4, 2.5, 32);
  auto model_a = GetParam().make();
  auto model_b = GetParam().make();
  model_a->fit(train.x, train.y);
  model_b->fit(train.x, train.y);
  const auto pa = model_a->predict_proba(test.x);
  const auto pb = model_b->predict_proba(test.x);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table2Hscs, AllModels,
    ::testing::Values(
        ModelCase{"RandomForest",
                  [] {
                    RandomForestConfig config;
                    config.n_trees = 30;
                    return std::unique_ptr<TabularClassifier>(
                        std::make_unique<RandomForestClassifier>(config));
                  }},
        ModelCase{"kNN",
                  [] {
                    return std::unique_ptr<TabularClassifier>(
                        std::make_unique<KnnClassifier>());
                  }},
        ModelCase{"SVM",
                  [] {
                    return std::unique_ptr<TabularClassifier>(
                        std::make_unique<SvmClassifier>());
                  }},
        ModelCase{"LogisticRegression",
                  [] {
                    return std::unique_ptr<TabularClassifier>(
                        std::make_unique<LogisticRegressionClassifier>());
                  }},
        ModelCase{"XGBoost",
                  [] {
                    GradientBoostingConfig config;
                    config.n_rounds = 60;
                    return std::unique_ptr<TabularClassifier>(
                        std::make_unique<GradientBoostingClassifier>(config));
                  }},
        ModelCase{"LightGBM",
                  [] {
                    LightGbmConfig config;
                    config.n_rounds = 60;
                    return std::unique_ptr<TabularClassifier>(
                        std::make_unique<LightGbmClassifier>(config));
                  }},
        ModelCase{"CatBoost",
                  [] {
                    CatBoostConfig config;
                    config.n_rounds = 60;
                    config.depth = 4;
                    return std::unique_ptr<TabularClassifier>(
                        std::make_unique<CatBoostClassifier>(config));
                  }}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      return info.param.name;
    });

// --- model-specific behaviour -------------------------------------------------

TEST(DecisionTree, PureLeafStopsSplitting) {
  const Matrix x = Matrix::from_rows({{0.0}, {0.1}, {0.9}, {1.0}});
  const std::vector<int> y = {0, 0, 1, 1};
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  // One split suffices.
  EXPECT_EQ(tree.nodes().size(), 3u);
  EXPECT_EQ(tree.predict_row(x.row(0)), 0.0);
  EXPECT_EQ(tree.predict_row(x.row(3)), 1.0);
}

TEST(DecisionTree, MaxDepthRespected) {
  const Blob blob = make_blobs(100, 3, 0.5, 3);
  DecisionTreeConfig config;
  config.max_depth = 2;
  DecisionTreeClassifier tree(config);
  tree.fit(blob.x, blob.y);
  // depth 2 => at most 7 nodes.
  EXPECT_LE(tree.nodes().size(), 7u);
}

TEST(DecisionTree, ImportancesSumToOne) {
  const Blob blob = make_blobs(50, 5, 2.0, 4);
  DecisionTreeClassifier tree;
  tree.fit(blob.x, blob.y);
  double total = 0.0;
  for (double v : tree.feature_importances()) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DecisionTree, SharedPresortIsBitIdenticalToPerTreeSort) {
  // The forest shares one FeaturePresort across trees; each tree filters it
  // down to its bootstrap rows instead of sorting. That filter must
  // reproduce the sorted order exactly, including duplicate-value ties and
  // rows masked out by zero weights.
  const Blob blob = make_blobs(80, 4, 1.0, 9);
  Matrix x = blob.x;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x.at(i, 1) = static_cast<double>(i % 3);  // heavy ties on feature 1
  }
  common::Rng rng(17);
  std::vector<double> weights(x.rows(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    weights[rng.next_below(x.rows())] += 1.0;  // bootstrap: some rows drop out
  }
  const FeaturePresort presort = FeaturePresort::build(x);

  DecisionTreeConfig config;
  config.max_features = 2;
  config.seed = 23;
  DecisionTreeClassifier plain(config), shared(config);
  plain.fit_weighted(x, blob.y, weights);
  shared.fit_weighted(x, blob.y, weights, &presort);

  ASSERT_EQ(plain.nodes().size(), shared.nodes().size());
  for (std::size_t i = 0; i < plain.nodes().size(); ++i) {
    EXPECT_EQ(plain.nodes()[i].feature, shared.nodes()[i].feature);
    EXPECT_EQ(plain.nodes()[i].threshold, shared.nodes()[i].threshold);
    EXPECT_EQ(plain.nodes()[i].left, shared.nodes()[i].left);
    EXPECT_EQ(plain.nodes()[i].right, shared.nodes()[i].right);
    EXPECT_EQ(plain.nodes()[i].value, shared.nodes()[i].value);
    EXPECT_EQ(plain.nodes()[i].weight, shared.nodes()[i].weight);
  }
  EXPECT_EQ(plain.feature_importances(), shared.feature_importances());
}

TEST(RandomForest, ImportancesIdentifyInformativeFeature) {
  // Only feature 2 carries signal.
  common::Rng rng(5);
  Matrix x(200, 5);
  std::vector<int> y;
  for (std::size_t i = 0; i < 200; ++i) {
    const int label = i % 2;
    y.push_back(label);
    for (std::size_t c = 0; c < 5; ++c) {
      x.at(i, c) = rng.normal() + (c == 2 ? 4.0 * label : 0.0);
    }
  }
  RandomForestConfig config;
  config.n_trees = 30;
  RandomForestClassifier forest(config);
  forest.fit(x, y);
  const auto importances = forest.feature_importances();
  for (std::size_t c = 0; c < 5; ++c) {
    if (c != 2) EXPECT_GT(importances[2], importances[c]);
  }
}

TEST(Knn, ManhattanAndCosineMetrics) {
  const Blob blob = make_blobs(40, 4, 3.0, 6);
  for (KnnMetric metric :
       {KnnMetric::kEuclidean, KnnMetric::kManhattan, KnnMetric::kCosine}) {
    KnnConfig config;
    config.metric = metric;
    KnnClassifier knn(config);
    knn.fit(blob.x, blob.y);
    const Metrics m = compute_metrics(blob.y, knn.predict(blob.x));
    EXPECT_GE(m.accuracy, 0.9);
  }
  EXPECT_THROW(KnnClassifier(KnnConfig{.k = 0}), InvalidArgument);
}

TEST(Svm, LinearKernelOnLinearlySeparableData) {
  const Blob blob = make_blobs(60, 4, 3.0, 7);
  SvmConfig config;
  config.kernel = SvmKernel::kLinear;
  SvmClassifier svm(config);
  svm.fit(blob.x, blob.y);
  const Metrics m = compute_metrics(blob.y, svm.predict(blob.x));
  EXPECT_GE(m.accuracy, 0.95);
}

TEST(Svm, RbfSolvesXorLikeProblem) {
  // XOR: not linearly separable; RFF-approximated RBF must handle it.
  common::Rng rng(8);
  Matrix x(200, 2);
  std::vector<int> y;
  for (std::size_t i = 0; i < 200; ++i) {
    const double a = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double b = rng.bernoulli(0.5) ? 1.0 : -1.0;
    x.at(i, 0) = a + 0.15 * rng.normal();
    x.at(i, 1) = b + 0.15 * rng.normal();
    y.push_back(a * b > 0 ? 1 : 0);
  }
  SvmConfig config;
  config.kernel = SvmKernel::kRbf;
  config.gamma = 1.0;
  config.epochs = 80;
  SvmClassifier svm(config);
  svm.fit(x, y);
  const Metrics m = compute_metrics(y, svm.predict(x));
  EXPECT_GE(m.accuracy, 0.9);

  SvmConfig linear;
  linear.kernel = SvmKernel::kLinear;
  SvmClassifier linear_svm(linear);
  linear_svm.fit(x, y);
  const Metrics lm = compute_metrics(y, linear_svm.predict(x));
  // A linear boundary cannot solve XOR; the kernel must buy a clear margin.
  EXPECT_LT(lm.accuracy + 0.1, m.accuracy);
}

TEST(GradientBoosting, MoreRoundsFitTighter) {
  const Blob blob = make_blobs(80, 4, 1.0, 9);
  GradientBoostingConfig few;
  few.n_rounds = 3;
  GradientBoostingConfig many;
  many.n_rounds = 80;
  GradientBoostingClassifier a(few), b(many);
  a.fit(blob.x, blob.y);
  b.fit(blob.x, blob.y);
  const double acc_few =
      compute_metrics(blob.y, a.predict(blob.x)).accuracy;
  const double acc_many =
      compute_metrics(blob.y, b.predict(blob.x)).accuracy;
  EXPECT_GT(acc_many, acc_few);
}

TEST(LightGbm, RespectsLeafBudget) {
  const Blob blob = make_blobs(100, 4, 1.0, 10);
  LightGbmConfig config;
  config.num_leaves = 4;
  config.n_rounds = 5;
  LightGbmClassifier model(config);
  model.fit(blob.x, blob.y);
  for (const auto& tree : model.trees()) {
    std::size_t leaves = 0;
    for (const TreeNode& node : tree) {
      if (node.is_leaf()) ++leaves;
    }
    EXPECT_LE(leaves, 4u);
  }
}

TEST(CatBoost, TreesAreOblivious) {
  const Blob blob = make_blobs(80, 4, 2.0, 11);
  CatBoostConfig config;
  config.n_rounds = 5;
  config.depth = 3;
  CatBoostClassifier model(config);
  model.fit(blob.x, blob.y);
  for (const ObliviousTree& tree : model.trees()) {
    EXPECT_LE(tree.features.size(), 3u);
    EXPECT_EQ(tree.leaf_values.size(),
              std::size_t{1} << tree.features.size());
  }
}

}  // namespace
}  // namespace phishinghook::ml
