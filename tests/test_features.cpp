// Feature extraction: histograms, R2D2 / frequency images, tokenizers.
#include <gtest/gtest.h>

#include "core/features.hpp"
#include "synth/contract_synthesizer.hpp"

namespace phishinghook::core {
namespace {

using synth::ContractSynthesizer;

TEST(HistogramVocabulary, CountsMatchDisassembly) {
  const Bytecode code = Bytecode::from_hex("0x6080604052");  // PUSH1 x2, MSTORE
  HistogramVocabulary vocab;
  vocab.fit({&code});
  ASSERT_EQ(vocab.size(), 2u);
  const auto counts = vocab.transform(code);
  // First-seen order: PUSH1 then MSTORE.
  EXPECT_EQ(vocab.mnemonics()[0], "PUSH1");
  EXPECT_EQ(counts[0], 2.0);
  EXPECT_EQ(counts[1], 1.0);
}

TEST(HistogramVocabulary, UnseenMnemonicsDropped) {
  const Bytecode train = Bytecode::from_hex("0x6080");  // PUSH1
  const Bytecode test = Bytecode::from_hex("0x608052");  // PUSH1 + MSTORE
  HistogramVocabulary vocab;
  vocab.fit({&train});
  const auto counts = vocab.transform(test);
  ASSERT_EQ(counts.size(), 1u);  // MSTORE not in vocabulary
  EXPECT_EQ(counts[0], 1.0);
}

TEST(HistogramVocabulary, MatrixShape) {
  const Bytecode a = Bytecode::from_hex("0x6080604052");
  const Bytecode b = Bytecode::from_hex("0x00");
  HistogramVocabulary vocab;
  vocab.fit({&a, &b});
  const ml::Matrix m = vocab.transform_all({&a, &b});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), vocab.size());
}

TEST(R2d2Image, BytesBecomePixels) {
  // Bytes fill R,G,B of consecutive pixels, normalized by 255.
  const Bytecode code = Bytecode::from_hex("0xff0080112233");
  const auto image = r2d2_image(code, 4);
  EXPECT_EQ(image.shape(), (std::vector<std::size_t>{3, 4, 4}));
  EXPECT_FLOAT_EQ(image.at3(0, 0, 0), 1.0F);          // 0xff
  EXPECT_FLOAT_EQ(image.at3(1, 0, 0), 0.0F);          // 0x00
  EXPECT_FLOAT_EQ(image.at3(2, 0, 0), 128.0F / 255);  // 0x80
  EXPECT_FLOAT_EQ(image.at3(0, 0, 1), 0x11 / 255.0F);
  // Zero padding beyond the code.
  EXPECT_FLOAT_EQ(image.at3(0, 3, 3), 0.0F);
}

TEST(R2d2Image, LongCodeTruncates) {
  std::vector<std::uint8_t> bytes(1000, 0xAB);
  const Bytecode code(bytes);
  const auto image = r2d2_image(code, 4);  // 16 pixels * 3 = 48 bytes used
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t h = 0; h < 4; ++h) {
      for (std::size_t w = 0; w < 4; ++w) {
        EXPECT_FLOAT_EQ(image.at3(c, h, w), 0xAB / 255.0F);
      }
    }
  }
}

TEST(FrequencyEncoder, FrequentMnemonicsGetBrighterPixels) {
  // Training corpus dominated by PUSH1.
  const Bytecode train = Bytecode::from_hex("0x60016002600360045200");
  FrequencyEncoder encoder;
  encoder.fit({&train});
  const auto image = encoder.transform(train, 4);
  // Pixel 0 (PUSH1) must be brighter in the R channel than pixel 4 (MSTORE).
  EXPECT_GT(image.at3(0, 0, 0), image.at3(0, 1, 0));
  // The most frequent mnemonic saturates at 1.0.
  EXPECT_FLOAT_EQ(image.at3(0, 0, 0), 1.0F);
}

TEST(FrequencyEncoder, UnseenEntriesDark) {
  const Bytecode train = Bytecode::from_hex("0x6001");
  const Bytecode test = Bytecode::from_hex("0x00");  // STOP unseen
  FrequencyEncoder encoder;
  encoder.fit({&train});
  const auto image = encoder.transform(test, 4);
  EXPECT_FLOAT_EQ(image.at3(0, 0, 0), 0.0F);
}

TEST(NgramTokenizer, SixHexCharGrams) {
  // 6 hex chars = 3 bytes per token; 9 bytes -> 3 tokens.
  const Bytecode code = Bytecode::from_hex("0x112233445566778899");
  NgramTokenizer tokenizer(16);
  tokenizer.fit({&code});
  const TokenSequence tokens = tokenizer.transform(code);
  EXPECT_EQ(tokens.size(), 3u);
  // All three grams were in the training set -> none map to UNK.
  for (std::size_t token : tokens) EXPECT_NE(token, 0u);
}

TEST(NgramTokenizer, UnseenGramsMapToUnk) {
  const Bytecode train = Bytecode::from_hex("0x112233");
  const Bytecode test = Bytecode::from_hex("0xaabbcc112233");
  NgramTokenizer tokenizer(16);
  tokenizer.fit({&train});
  const TokenSequence tokens = tokenizer.transform(test);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], 0u);  // unseen
  EXPECT_NE(tokens[1], 0u);
}

TEST(NgramTokenizer, VocabCapKeepsMostFrequent) {
  // Gram A appears 3x, B 2x, C 1x; vocab allows only 2 non-UNK entries.
  const Bytecode code =
      Bytecode::from_hex("0xaaaaaa" "aaaaaa" "aaaaaa" "bbbbbb" "bbbbbb" "cccccc");
  NgramTokenizer tokenizer(3);
  tokenizer.fit({&code});
  const TokenSequence tokens = tokenizer.transform(code);
  // C (least frequent) fell out of the vocabulary.
  EXPECT_EQ(tokens.back(), 0u);
  EXPECT_NE(tokens.front(), 0u);
}

TEST(ByteTokens, RawBytesPlusPad) {
  const Bytecode code = Bytecode::from_hex("0x60ff00");
  const TokenSequence tokens = byte_tokens(code);
  EXPECT_EQ(tokens, (TokenSequence{0x60, 0xFF, 0x00}));
  EXPECT_EQ(byte_tokens(Bytecode()), (TokenSequence{256}));
}

TEST(Features, SyntheticContractsProduceNonTrivialFeatures) {
  common::Rng rng(42);
  const ContractSynthesizer synth;
  const auto benign = synth.benign(chain::Month{2}, rng);
  const auto phishing =
      synth.phishing(chain::Month{2}, rng, synth::random_address(rng));

  HistogramVocabulary vocab;
  vocab.fit({&benign.runtime, &phishing.runtime});
  EXPECT_GT(vocab.size(), 10u);
  const auto hist = vocab.transform(benign.runtime);
  double total = 0;
  for (double v : hist) total += v;
  EXPECT_GT(total, 20.0);

  const auto tokens = byte_tokens(phishing.runtime);
  EXPECT_EQ(tokens.size(), phishing.runtime.size());
}

}  // namespace
}  // namespace phishinghook::core
