// Simulated chain: months, deployments, crawl and label service.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "chain/explorer.hpp"
#include "synth/assembler.hpp"

namespace phishinghook::chain {
namespace {

using synth::Assembler;
using evm::Op;

TEST(Month, LabelsAcrossTheStudyWindow) {
  EXPECT_EQ(Month{0}.label(), "2023-10");
  EXPECT_EQ(Month{3}.label(), "2024-01");
  EXPECT_EQ(Month{12}.label(), "2024-10");
  EXPECT_THROW(Month{13}.label(), InvalidArgument);
  EXPECT_THROW((Month{-1}.label()), InvalidArgument);
}

TEST(Month, TimestampsAreMonotoneAndMonthSized) {
  for (int m = 0; m + 1 < Month::kCount; ++m) {
    const std::uint64_t delta =
        Month{m + 1}.start_timestamp() - Month{m}.start_timestamp();
    EXPECT_GE(delta, 28u * 86400u) << Month{m}.label();
    EXPECT_LE(delta, 31u * 86400u) << Month{m}.label();
  }
  // 2024-02 (leap year) has 29 days.
  EXPECT_EQ(Month{5}.start_timestamp() - Month{4}.start_timestamp(),
            29u * 86400u);
}

TEST(ChainStore, AdvanceUpdatesBlockContext) {
  ChainStore chain;
  const std::uint64_t block0 = chain.head_block();
  chain.advance_to(Month{2});
  EXPECT_GT(chain.head_block(), block0);
  EXPECT_EQ(chain.head_timestamp(), Month{2}.start_timestamp());
  EXPECT_EQ(chain.state().block().timestamp, chain.head_timestamp());
  EXPECT_THROW(chain.advance_to(Month{1}), InvalidArgument);
}

TEST(ChainStore, RegisterContractRecordsProvenance) {
  ChainStore chain;
  chain.advance_to(Month{4});
  Assembler a;
  a.op(Op::kStop);
  const Address deployer =
      Address::from_hex("0x00000000000000000000000000000000000000aa");
  const ContractRecord& record = chain.register_contract(deployer, a.build());
  EXPECT_EQ(record.month, (Month{4}));
  EXPECT_EQ(record.deployer, deployer);
  EXPECT_FALSE(record.address.is_zero());
  EXPECT_EQ(chain.find(record.address)->block_number, record.block_number);
  EXPECT_EQ(chain.contracts().size(), 1u);
}

TEST(ChainStore, ContractsBetweenFiltersByMonth) {
  ChainStore chain;
  const Address deployer =
      Address::from_hex("0x00000000000000000000000000000000000000aa");
  Assembler a;
  a.op(Op::kStop);
  const auto code = a.build();
  chain.register_contract(deployer, code);  // month 0
  chain.advance_to(Month{5});
  chain.register_contract(deployer, code);
  chain.register_contract(deployer, code);
  EXPECT_EQ(chain.contracts_between(Month{0}, Month{0}).size(), 1u);
  EXPECT_EQ(chain.contracts_between(Month{5}, Month{12}).size(), 2u);
  EXPECT_EQ(chain.contracts_between(Month{0}, Month{12}).size(), 3u);
  EXPECT_TRUE(chain.contracts_between(Month{1}, Month{4}).empty());
}

TEST(Explorer, EthGetCodeMatchesDeployedCode) {
  ChainStore chain;
  Assembler a;
  a.push(0x2A).op(Op::kPop).op(Op::kStop);
  const Address deployer =
      Address::from_hex("0x00000000000000000000000000000000000000aa");
  const ContractRecord& record = chain.register_contract(deployer, a.build());
  const Explorer explorer(chain);
  EXPECT_EQ(explorer.eth_get_code(record.address), a.build().to_hex());
  // Unknown accounts answer "0x" like a real JSON-RPC node.
  EXPECT_EQ(explorer.eth_get_code(Address()), "0x");
}

TEST(Explorer, PhishHackFlagging) {
  ChainStore chain;
  Explorer explorer(chain);
  const Address a =
      Address::from_hex("0x00000000000000000000000000000000000000ab");
  EXPECT_FALSE(explorer.is_flagged_phishing(a));
  explorer.flag(a, ContractFlag::kPhishHack);
  EXPECT_TRUE(explorer.is_flagged_phishing(a));
  EXPECT_EQ(explorer.flag_of(a), ContractFlag::kPhishHack);
  explorer.flag(a, ContractFlag::kNone);
  EXPECT_FALSE(explorer.is_flagged_phishing(a));
}

TEST(Explorer, CrawlReturnsWindowAddresses) {
  ChainStore chain;
  Assembler a;
  a.op(Op::kStop);
  const Address deployer =
      Address::from_hex("0x00000000000000000000000000000000000000aa");
  chain.register_contract(deployer, a.build());
  chain.advance_to(Month{6});
  chain.register_contract(deployer, a.build());
  const Explorer explorer(chain);
  EXPECT_EQ(explorer.crawl(Month{0}, Month{12}).size(), 2u);
  EXPECT_EQ(explorer.crawl(Month{6}, Month{6}).size(), 1u);
}

TEST(State, ExecuteTransactionBumpsNonce) {
  ChainStore chain;
  const Address sender =
      Address::from_hex("0x00000000000000000000000000000000000000aa");
  chain.state().set_balance(sender, evm::U256(1000));
  evm::Message msg;
  msg.caller = sender;
  msg.origin = sender;
  msg.code_address = Address();  // pure transfer to the zero address
  msg.storage_address = Address();
  msg.value = evm::U256(10);
  const auto result = chain.state().execute_transaction(msg);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(chain.state().find(sender)->nonce, 1u);
  EXPECT_EQ(chain.state().get_balance(sender), evm::U256(990));
}

}  // namespace
}  // namespace phishinghook::chain
