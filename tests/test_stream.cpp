// Streaming ingestion suite: incremental mining, the block follower's
// dedup accounting, the open-loop arrival model, bounded queues, the
// fault-schedule-under-streaming-order guarantee, and the coordinator's
// end-to-end lifecycle — including the conservation law
// submitted == completed + failed + shed after every drain.
//
// The TSan leg of ci.sh runs this whole file: four pipeline threads plus
// engine workers race over the queues, the chain lock, and the metrics
// cells on purpose.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "chain/fault_injection.hpp"
#include "core/model_registry.hpp"
#include "ml/random_forest.hpp"
#include "obs/trace.hpp"
#include "serve/scoring_engine.hpp"
#include "stream/bounded_queue.hpp"
#include "stream/coordinator.hpp"
#include "synth/dataset_builder.hpp"

namespace phishinghook {
namespace {

// One small dataset shared by the whole suite — only used to fit the
// detector the coordinator tests score with (building it is the slow part).
const synth::BuiltDataset& dataset() {
  static const synth::BuiltDataset built = [] {
    synth::DatasetConfig config;
    config.target_size = 160;
    config.seed = 97;
    return synth::DatasetBuilder(config).build();
  }();
  return built;
}

core::HistogramAdapter& detector() {
  static core::HistogramAdapter adapter = [] {
    ml::RandomForestConfig config;
    config.n_trees = 8;
    config.max_depth = 6;
    core::HistogramAdapter fitted(
        std::make_unique<ml::RandomForestClassifier>(config), "stream-test");
    std::vector<const evm::Bytecode*> codes;
    std::vector<int> labels;
    for (const synth::LabeledContract& sample : dataset().samples) {
      codes.push_back(&sample.code);
      labels.push_back(sample.phishing ? 1 : 0);
    }
    fitted.fit(codes, labels);
    return fitted;
  }();
  return adapter;
}

// ---------------------------------------------------------------- mining

TEST(ChainMining, MineNextBlockAdvancesHeadAndTimestamp) {
  chain::ChainStore chain;
  const std::uint64_t head0 = chain.head_block();
  const std::uint64_t ts0 = chain.head_timestamp();
  EXPECT_EQ(chain.mine_next_block(), head0 + 1);
  EXPECT_EQ(chain.head_timestamp(), ts0 + 12);
  EXPECT_EQ(chain.mine_next_block(5), head0 + 6);
  EXPECT_EQ(chain.head_timestamp(), ts0 + 6 * 12);
  EXPECT_THROW(chain.mine_next_block(0), InvalidArgument);
}

TEST(ChainMining, MonthRollsOverOnSlotBoundaryAndSaturates) {
  chain::ChainStore chain;
  ASSERT_EQ(chain.head_month().index, 0);
  // Mine exactly up to the next month's first timestamp.
  const std::uint64_t next_start = chain::Month{1}.start_timestamp();
  ASSERT_GT(next_start, chain.head_timestamp());
  const std::uint64_t slots =
      (next_start - chain.head_timestamp() + 11) / 12;
  chain.mine_next_block(slots);
  EXPECT_EQ(chain.head_month().index, 1);
  EXPECT_GE(chain.head_timestamp(), next_start);
  // A skip across several boundaries rolls every month it crossed; past
  // the study window the head month saturates at the last index.
  chain.mine_next_block(chain::Month::kCount * 32ull * 86400ull / 12ull);
  EXPECT_EQ(chain.head_month().index, chain::Month::kCount - 1);
}

TEST(ChainMining, ContractsAfterReturnsStrictSuffixInChainOrder) {
  chain::ChainStore chain;
  chain::Explorer explorer(chain);
  synth::MinerConfig config;
  config.seed = 5;
  synth::ChainMiner miner(chain, explorer, config);
  while (chain.contracts().size() < 6) miner.mine_next_block();
  const std::vector<chain::ContractRecord>& all = chain.contracts();
  const std::uint64_t cursor = all[1].block_number;
  const std::vector<chain::ContractRecord> tail = chain.contracts_after(cursor);
  ASSERT_EQ(tail.size(), all.size() - 2);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_GT(tail[i].block_number, cursor);
    EXPECT_EQ(tail[i].address, all[i + 2].address);
  }
  EXPECT_TRUE(chain.contracts_after(chain.head_block()).empty());
  EXPECT_EQ(chain.contracts_after(0).size(), all.size());
}

TEST(ChainMinerTest, SameSeedProducesIdenticalChainsAndLabels) {
  auto build = [] {
    auto chain = std::make_unique<chain::ChainStore>();
    auto explorer = std::make_unique<chain::Explorer>(*chain);
    synth::MinerConfig config;
    config.seed = 21;
    synth::ChainMiner miner(*chain, *explorer, config);
    for (int b = 0; b < 50; ++b) miner.mine_next_block();
    return std::make_tuple(std::move(chain), std::move(explorer),
                           miner.stats());
  };
  auto [chain_a, explorer_a, stats_a] = build();
  auto [chain_b, explorer_b, stats_b] = build();

  ASSERT_EQ(chain_a->contracts().size(), chain_b->contracts().size());
  ASSERT_GT(chain_a->contracts().size(), 0u);
  for (std::size_t i = 0; i < chain_a->contracts().size(); ++i) {
    const chain::ContractRecord& a = chain_a->contracts()[i];
    const chain::ContractRecord& b = chain_b->contracts()[i];
    EXPECT_EQ(a.address, b.address);
    EXPECT_EQ(a.code_hash, b.code_hash);
    EXPECT_EQ(a.block_number, b.block_number);
    EXPECT_EQ(explorer_a->is_flagged_phishing(a.address),
              explorer_b->is_flagged_phishing(b.address));
  }
  EXPECT_EQ(stats_a.blocks_mined, 50u);
  EXPECT_EQ(stats_a.deployments, stats_b.deployments);
  EXPECT_EQ(stats_a.phishing_deployments, stats_b.phishing_deployments);
  EXPECT_EQ(stats_a.clone_deployments, stats_b.clone_deployments);
  EXPECT_EQ(stats_a.deployments,
            stats_a.phishing_deployments + stats_a.benign_deployments);
}

// ---------------------------------------------------------------- queue

TEST(BoundedQueueTest, FifoCloseAndCounters) {
  EXPECT_THROW(stream::BoundedQueue<int>(0), InvalidArgument);
  stream::BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_FALSE(queue.try_push(3));  // full
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_TRUE(queue.try_push(3));
  queue.close();
  EXPECT_FALSE(queue.push(4));      // closed: producer fails fast
  EXPECT_EQ(queue.pop(), 2);        // but queued items still drain...
  EXPECT_EQ(queue.pop(), 3);
  EXPECT_EQ(queue.pop(), std::nullopt);  // ...before end-of-stream shows
  EXPECT_EQ(queue.total_pushed(), 3u);
  EXPECT_EQ(queue.total_popped(), 3u);
}

TEST(BoundedQueueTest, ConcurrentProducersAndConsumersConserveItems) {
  stream::BoundedQueue<int> queue(8);
  constexpr int kPerProducer = 400;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&queue] {
      for (int i = 0; i < kPerProducer; ++i) ASSERT_TRUE(queue.push(i));
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&queue, &consumed] {
      while (queue.pop().has_value()) consumed.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  queue.close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), 2 * kPerProducer);
  EXPECT_EQ(queue.total_pushed(), queue.total_popped());
}

TEST(BoundedQueueTest, PushBlockedOnFullQueueUnblocksAtClose) {
  stream::BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result.store(queue.push(2));  // blocks: queue is full
    push_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(push_returned.load());  // still parked on the bound
  queue.close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  // The blocked push must report failure (its item was dropped), while
  // what was already queued stays deliverable.
  EXPECT_FALSE(push_result.load());
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.total_pushed(), 1u);
}

TEST(BoundedQueueTest, TryPushRacingCloseNeverLosesOrInventsItems) {
  stream::BoundedQueue<int> queue(16);
  std::atomic<int> admitted{0};
  std::thread producer([&] {
    for (int i = 0; i < 100000; ++i) {
      if (queue.try_push(i)) {
        admitted.fetch_add(1);
      } else if (queue.closed()) {
        break;
      }
      // Full-but-open: drop and keep going (open-loop producer shape).
    }
  });
  std::thread consumer([&] {
    // Drain concurrently so the producer sees both full and open states.
    for (int i = 0; i < 1000; ++i) queue.try_pop();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.close();
  producer.join();
  consumer.join();
  // Everything admitted before the close is either already popped or
  // still drainable — the close drops nothing that was accepted.
  std::uint64_t drained = queue.total_popped();
  while (queue.pop().has_value()) ++drained;
  EXPECT_EQ(drained, static_cast<std::uint64_t>(admitted.load()));
  EXPECT_EQ(queue.total_pushed(), static_cast<std::uint64_t>(admitted.load()));
  EXPECT_FALSE(queue.try_push(-1));  // closed stays closed
}

TEST(BoundedQueueTest, PopAfterCloseDrainsInOrderThenSignalsEndOfStream) {
  stream::BoundedQueue<int> queue(8);
  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(queue.push(i));
  queue.close();
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(queue.pop(), i);  // FIFO survives close
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.try_pop(), std::nullopt);
  // pop() after end-of-stream stays nullopt (no re-arm, no hang).
  EXPECT_EQ(queue.pop(), std::nullopt);
}

// ------------------------------------------------------------- arrivals

TEST(LoadGeneratorTest, SeededScheduleIsBitReproducible) {
  stream::ArrivalConfig config = stream::LoadGenerator::steady_scenario();
  config.seed = 1234;
  stream::LoadGenerator a(config);
  stream::LoadGenerator b(config);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.next_arrival(), b.next_arrival()) << "arrival " << i;
  }
  EXPECT_EQ(a.virtual_time_s(), b.virtual_time_s());
}

TEST(LoadGeneratorTest, MeanGapMatchesRate) {
  stream::ArrivalConfig config;
  config.rate_per_s = 1000.0;
  config.seed = 7;
  stream::LoadGenerator gen(config);
  constexpr int kArrivals = 20000;
  for (int i = 0; i < kArrivals; ++i) gen.next_arrival();
  const double mean_gap = gen.virtual_time_s() / kArrivals;
  EXPECT_NEAR(mean_gap, 1.0 / config.rate_per_s, 0.1 / config.rate_per_s);
  EXPECT_FALSE(gen.in_burst(0.0));  // no burst configured
}

TEST(LoadGeneratorTest, BurstWindowsDominateTheArrivalCount) {
  stream::ArrivalConfig config = stream::LoadGenerator::mempool_burst_scenario();
  config.rate_per_s = 100.0;
  config.burst_rate_per_s = 10000.0;
  config.seed = 3;
  stream::LoadGenerator gen(config);
  int in_burst = 0;
  constexpr int kArrivals = 20000;
  for (int i = 0; i < kArrivals; ++i) {
    gen.next_arrival();
    if (gen.last_in_burst()) in_burst += 1;
  }
  // Burst windows are 10% of the time but carry 100x the rate, so they
  // must hold the large majority of arrivals (expected ~92%).
  EXPECT_GT(in_burst, kArrivals / 2);
}

TEST(LoadGeneratorTest, RejectsInvalidConfig) {
  stream::ArrivalConfig config;
  config.rate_per_s = 0.0;
  EXPECT_THROW(stream::LoadGenerator{config}, InvalidArgument);
  config = {};
  config.requery_fraction = 1.5;
  EXPECT_THROW(stream::LoadGenerator{config}, InvalidArgument);
  config = {};
  config.burst_rate_per_s = 100.0;
  config.burst_duration_s = 1.0;
  config.burst_every_s = 0.5;  // window wider than its period
  EXPECT_THROW(stream::LoadGenerator{config}, InvalidArgument);
}

// ------------------------------------------------- chaos under streaming

// Satellite: the chaos decorator's seeded fault schedule is a pure
// function of (seed, address, attempt), so reading the chain in streaming
// order (chunked, reordered polls) must observe exactly the faults a
// batch crawl observes.
TEST(FaultScheduleStreaming, ScheduleHoldsUnderStreamingOrder) {
  chain::ChainStore chain;
  chain::Explorer explorer(chain);
  synth::MinerConfig miner_config;
  miner_config.seed = 13;
  synth::ChainMiner miner(chain, explorer, miner_config);
  while (chain.contracts().size() < 30) miner.mine_next_block();

  chain::FaultConfig fault_config;
  fault_config.throw_rate = 0.4;
  fault_config.empty_rate = 0.2;
  fault_config.seed = 11;

  enum Outcome { kOk, kThrew, kEmpty };
  auto probe = [](const chain::Explorer& view,
                  const evm::Address& address) -> Outcome {
    try {
      return view.get_code(address).empty() ? kEmpty : kOk;
    } catch (const TransientError&) {
      return kThrew;
    }
  };
  using Key = std::pair<std::string, int>;  // (address hex, attempt)
  auto outcomes = [&](const chain::Explorer& view,
                      const std::vector<chain::ContractRecord>& order) {
    std::map<Key, Outcome> out;
    for (const chain::ContractRecord& record : order) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        out[{record.address.to_hex(), attempt}] = probe(view, record.address);
      }
    }
    return out;
  };

  // Batch order: the whole journal front to back, two attempts each.
  chain::FaultInjectingExplorer batch_view(explorer, fault_config);
  const auto batch = outcomes(batch_view, chain.contracts());

  // Streaming order: the same records ingested as reversed chunks of 7 —
  // a deliberately scrambled interleaving of the same per-address fetch
  // sequence.
  std::vector<chain::ContractRecord> scrambled;
  const std::vector<chain::ContractRecord>& records = chain.contracts();
  for (std::size_t chunk_end = records.size(); chunk_end > 0;) {
    const std::size_t chunk_begin = chunk_end >= 7 ? chunk_end - 7 : 0;
    for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
      scrambled.push_back(records[i]);
    }
    chunk_end = chunk_begin;
  }
  chain::FaultInjectingExplorer stream_view(explorer, fault_config);
  const auto streamed = outcomes(stream_view, scrambled);

  EXPECT_EQ(batch, streamed);
  EXPECT_EQ(batch_view.stats().throws, stream_view.stats().throws);
  EXPECT_EQ(batch_view.stats().empties, stream_view.stats().empties);
}

TEST(FaultScheduleStreaming, FollowerCountsFaultsAndStillForwards) {
  chain::ChainStore chain;
  chain::Explorer explorer(chain);
  synth::MinerConfig miner_config;
  miner_config.seed = 13;
  synth::ChainMiner miner(chain, explorer, miner_config);
  while (chain.contracts().size() < 30) miner.mine_next_block();

  chain::FaultConfig fault_config;
  fault_config.throw_rate = 0.4;
  fault_config.seed = 11;
  chain::FaultInjectingExplorer chaos(explorer, fault_config);

  stream::FollowerConfig follower_config;
  follower_config.start_block = 0;  // ingest the whole journal
  stream::BlockFollower follower(chaos, follower_config);
  const std::vector<chain::ContractRecord> forwarded = follower.poll();

  const stream::FollowerStats& stats = follower.stats();
  EXPECT_EQ(stats.deployments_seen, chain.contracts().size());
  // Faulted fetches are forwarded anyway — classification is the engine's
  // job — so nothing is lost to chaos.
  EXPECT_EQ(forwarded.size(), chain.contracts().size());
  EXPECT_EQ(stats.forwarded, stats.deployments_seen);
  EXPECT_EQ(stats.code_faults, chaos.stats().throws);
  EXPECT_GT(stats.code_faults, 0u);
  EXPECT_EQ(stats.dedup_unique + stats.dedup_hits + stats.code_faults +
                stats.empty_code,
            stats.deployments_seen);
}

// ----------------------------------------------------------------- dedup

// Satellite: identical runtime bytecode at two different addresses must
// cost one extraction row, serve both requests, and bump the cache-hit
// counter. Run at 1 and 4 workers (the TSan leg covers the racy variant).
TEST(StreamDedup, IdenticalBytecodeTwoAddressesOneModelRow) {
  chain::ChainStore chain;
  chain::Explorer explorer(chain);
  common::Rng rng(42);
  const synth::SynthContract impl =
      synth::ContractSynthesizer().benign(chain::Month{0}, rng);
  const chain::ContractRecord first =
      chain.register_contract(synth::random_address(rng), impl.runtime);
  const chain::ContractRecord second =
      chain.register_contract(synth::random_address(rng), impl.runtime);
  ASSERT_NE(first.address, second.address);
  ASSERT_EQ(first.code_hash, second.code_hash);

  stream::FollowerConfig follower_config;
  follower_config.start_block = 0;
  stream::BlockFollower follower(explorer, follower_config);
  const std::vector<chain::ContractRecord> forwarded = follower.poll();
  EXPECT_EQ(forwarded.size(), 2u);  // duplicates forwarded by default
  EXPECT_EQ(follower.stats().dedup_unique, 1u);
  EXPECT_EQ(follower.stats().dedup_hits, 1u);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    serve::EngineConfig engine_config;
    engine_config.workers = workers;
    serve::ScoringEngine engine(explorer, detector(), engine_config);
    const serve::ScoreResult a = engine.submit(first.address).get();
    const serve::ScoreResult b = engine.submit(second.address).get();
    EXPECT_EQ(a.status, serve::ScoreStatus::kOk);
    EXPECT_EQ(b.status, serve::ScoreStatus::kOk);
    EXPECT_EQ(a.probability, b.probability);
    // One unique hash => exactly one row through the model, and the
    // second request was served from the score cache.
    EXPECT_EQ(engine.metrics().model_rows.value(), 1u);
    EXPECT_GE(engine.cache_stats().hits, 1u);
    EXPECT_TRUE(b.cache_hit);
  }
}

TEST(StreamDedup, DropDuplicatesSuppressesRepeatCode) {
  chain::ChainStore chain;
  chain::Explorer explorer(chain);
  common::Rng rng(42);
  const synth::SynthContract impl =
      synth::ContractSynthesizer().benign(chain::Month{0}, rng);
  chain.register_contract(synth::random_address(rng), impl.runtime);
  chain.register_contract(synth::random_address(rng), impl.runtime);

  stream::FollowerConfig config;
  config.start_block = 0;
  config.drop_duplicates = true;
  stream::BlockFollower follower(explorer, config);
  EXPECT_EQ(follower.poll().size(), 1u);
  EXPECT_EQ(follower.stats().dropped, 1u);
  EXPECT_EQ(follower.stats().forwarded, 1u);
}

TEST(StreamDedup, FollowerCountsReproducibleAcrossSameSeedChains) {
  auto run = [] {
    stream::LiveChain live;  // default miner seed
    for (int b = 0; b < 40; ++b) live.mine_next_block();
    stream::FollowerConfig config;
    config.start_block = 0;
    stream::BlockFollower follower(live.explorer(), config);
    follower.poll();
    return follower.stats();
  };
  const stream::FollowerStats a = run();
  const stream::FollowerStats b = run();
  EXPECT_GT(a.deployments_seen, 0u);
  EXPECT_EQ(a.deployments_seen, b.deployments_seen);
  EXPECT_EQ(a.dedup_unique, b.dedup_unique);
  EXPECT_EQ(a.dedup_hits, b.dedup_hits);
  EXPECT_EQ(a.forwarded, b.forwarded);
  // The miner's campaign structure guarantees real duplication.
  EXPECT_GT(a.dedup_hits, 0u);
}

// ------------------------------------------------------------ coordinator

TEST(StreamFollowerTest, AttachAtHeadSkipsHistory) {
  stream::LiveChain live;
  for (int b = 0; b < 10; ++b) live.mine_next_block();
  stream::BlockFollower follower(live.explorer());  // attach at head
  EXPECT_TRUE(follower.poll().empty());
  live.mine_next_block();
  const std::size_t new_deployments = follower.poll().size();
  EXPECT_EQ(follower.stats().deployments_seen, new_deployments);
  EXPECT_EQ(follower.cursor(), live.head_block());
}

stream::StreamReport run_coordinator(std::uint64_t max_requests,
                                     std::uint64_t max_blocks) {
  stream::LiveChain live;
  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  serve::ScoringEngine engine(live.explorer(), detector(), engine_config);
  stream::StreamConfig config;
  config.paced = false;
  config.follower.start_block = 0;
  config.poll_interval_us = 500;
  config.max_blocks = max_blocks;
  config.max_requests = max_requests;
  stream::StreamCoordinator coordinator(live, engine, config);
  coordinator.start();
  if (max_requests != 0) {
    while (!coordinator.finished()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  coordinator.drain();
  return coordinator.report();
}

TEST(StreamCoordinatorTest, ExactSubmissionCountAndAccounting) {
  const stream::StreamReport a = run_coordinator(/*max_requests=*/300,
                                                 /*max_blocks=*/40);
  const stream::StreamReport b = run_coordinator(300, 40);
  for (const stream::StreamReport& report : {a, b}) {
    EXPECT_EQ(report.submitted, 300u);
    EXPECT_TRUE(report.accounting_ok())
        << "submitted=" << report.submitted
        << " completed=" << report.completed << " failed=" << report.failed
        << " shed=" << report.shed;
    EXPECT_EQ(report.fresh_submits + report.requery_submits,
              report.submitted);
    EXPECT_EQ(report.miner.blocks_mined, 40u);
  }
  // Chain content is a pure function of the miner seed: both runs mined
  // the same deployments even though scheduling differed.
  EXPECT_EQ(a.miner.deployments, b.miner.deployments);
  EXPECT_EQ(a.miner.phishing_deployments, b.miner.phishing_deployments);
  EXPECT_EQ(a.miner.clone_deployments, b.miner.clone_deployments);
}

TEST(StreamCoordinatorTest, DrainFlushesEveryForwardedAddress) {
  const stream::StreamReport report = run_coordinator(/*max_requests=*/0,
                                                      /*max_blocks=*/30);
  EXPECT_TRUE(report.accounting_ok());
  // Full drain with no request cap: the generator flushed the entire
  // follower feed, so every deployment was submitted exactly once as a
  // fresh request.
  EXPECT_EQ(report.fresh_submits, report.follower.forwarded);
  EXPECT_EQ(report.follower.forwarded, report.follower.deployments_seen);
  EXPECT_EQ(report.follower.deployments_seen, report.miner.deployments);
  EXPECT_GT(report.submitted, 0u);
  EXPECT_GT(report.completed, 0u);
}

TEST(StreamCoordinatorTest, OverloadedEngineShedsButConservesAccounting) {
  stream::LiveChain live;
  serve::EngineConfig engine_config;
  engine_config.workers = 1;
  engine_config.max_queue = 1;  // drastic admission control
  serve::ScoringEngine engine(live.explorer(), detector(), engine_config);
  stream::StreamConfig config;
  config.paced = false;
  config.follower.start_block = 0;
  config.max_blocks = 20;
  config.max_requests = 400;
  stream::StreamCoordinator coordinator(live, engine, config);
  coordinator.start();
  while (!coordinator.finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  coordinator.drain();
  const stream::StreamReport report = coordinator.report();
  EXPECT_EQ(report.submitted, 400u);
  EXPECT_TRUE(report.accounting_ok());
  // A 1-deep queue against an unpaced flood must reject work.
  EXPECT_GT(report.shed, 0u);
}

TEST(StreamCoordinatorTest, MetricsExpositionCarriesStreamSeries) {
  stream::LiveChain live;
  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  serve::ScoringEngine engine(live.explorer(), detector(), engine_config);
  stream::StreamConfig config;
  config.paced = false;
  config.follower.start_block = 0;
  config.max_blocks = 5;
  config.max_requests = 20;
  stream::StreamCoordinator coordinator(live, engine, config);
  coordinator.start();
  while (!coordinator.finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  coordinator.drain();
  std::ostringstream out;
  coordinator.registry().write_prometheus(out);
  const std::string exposition = out.str();
  EXPECT_NE(exposition.find("stream_requests_submitted"), std::string::npos);
  EXPECT_NE(exposition.find("stream_ingest_lag_blocks"), std::string::npos);
  EXPECT_NE(exposition.find("stream_fresh_submits"), std::string::npos);
  EXPECT_NE(exposition.find("stream_requests_shed"), std::string::npos);
}

TEST(StreamTelemetryTest, OneTraceIdConnectsAtLeastFourPipelineStages) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(1 << 15);

  stream::LiveChain live;
  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  serve::ScoringEngine engine(live.explorer(), detector(), engine_config);
  stream::StreamConfig config;
  config.paced = false;
  config.follower.start_block = 0;
  config.poll_interval_us = 500;
  config.max_blocks = 10;
  config.max_requests = 40;
  stream::StreamCoordinator coordinator(live, engine, config);
  coordinator.start();
  while (!coordinator.finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  coordinator.drain();
  engine.shutdown();  // quiesce every recording thread before the export
  tracer.disable();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  tracer.clear();

  // Group the async stage slices by trace id: each exported object is flat,
  // so scanning "{...}" substrings is enough.
  std::map<std::string, std::set<std::string>> stages_by_id;
  std::size_t at = 0;
  while ((at = json.find("{\"name\":\"", at)) != std::string::npos) {
    const std::size_t end = json.find('}', at);
    const std::string object = json.substr(at, end - at + 1);
    at = end;
    if (object.find("\"cat\":\"phook.req\"") == std::string::npos) continue;
    if (object.find("\"ph\":\"b\"") == std::string::npos) continue;
    const std::size_t name_begin = 9;  // after {"name":"
    const std::string name =
        object.substr(name_begin, object.find('"', name_begin) - name_begin);
    const std::size_t id_begin = object.find("\"id\":\"") + 6;
    const std::string id =
        object.substr(id_begin, object.find('"', id_begin) - id_begin);
    if (name != "request") stages_by_id[id].insert(name);
  }

  // The acceptance bar: a single request's journey is visible as one
  // connected lane across >= 4 pipeline stages. A fresh submission passes
  // ingest -> addr_queue -> engine queue -> extract (and usually predict).
  bool connected = false;
  for (const auto& [id, stages] : stages_by_id) {
    if (stages.count("req.ingest") != 0 && stages.count("req.addr_queue") != 0 &&
        stages.count("req.queue") != 0 && stages.count("req.extract") != 0) {
      connected = true;
      break;
    }
  }
  EXPECT_TRUE(connected)
      << "no trace id spans ingest/addr_queue/queue/extract; lanes seen: "
      << stages_by_id.size();

  // The flow arrows stitching the lane to the per-thread spans made it out
  // too, including the consumer-side finish.
  EXPECT_NE(json.find("\"cat\":\"phook.flow\",\"ph\":\"s\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(StreamTelemetryTest, WindowSloAndHealthSurfaceAfterDrain) {
  stream::LiveChain live;
  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  serve::ScoringEngine engine(live.explorer(), detector(), engine_config);
  stream::StreamConfig config;
  config.paced = false;
  config.follower.start_block = 0;
  config.max_blocks = 10;
  config.max_requests = 60;
  // A window far wider than the test runtime, so nothing decays between
  // the last result and the assertions below.
  config.window.window_seconds = 300.0;
  config.window.bucket_count = 10;
  config.slo.target_error_ratio = 0.5;
  stream::StreamCoordinator coordinator(live, engine, config);

  EXPECT_NE(coordinator.health_json().find("\"status\":\"idle\""),
            std::string::npos);
  coordinator.start();
  while (!coordinator.finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  coordinator.drain();

  // Every collected result landed in the sliding window.
  const stream::StreamReport report = coordinator.report();
  ASSERT_TRUE(report.accounting_ok());
  EXPECT_EQ(report.window.total, report.completed + report.failed + report.shed);
  EXPECT_GT(report.window.total, 0u);
  EXPECT_GT(report.window.rate_per_sec, 0.0);
  EXPECT_GT(report.window.p99_us, 0.0);
  EXPECT_GE(report.shed_pressure, 0.0);
  EXPECT_LE(report.shed_pressure, 1.0);

  // evaluate_slo publishes the windowed series into the stream registry.
  const obs::SloEvaluator::Evaluation eval = coordinator.evaluate_slo();
  EXPECT_EQ(eval.window.total, report.window.total);
  std::ostringstream out;
  coordinator.registry().write_prometheus(out);
  const std::string exposition = out.str();
  EXPECT_NE(exposition.find("stream_window_rate_per_sec"), std::string::npos);
  EXPECT_NE(exposition.find("stream_window_p99_us"), std::string::npos);
  EXPECT_NE(exposition.find("stream_error_burn_rate"), std::string::npos);
  EXPECT_NE(exposition.find("stream_shed_pressure"), std::string::npos);
  // The addr-queue hop recorded its hand-off waits.
  EXPECT_NE(exposition.find("stream_stage_wait_us{stage=\"addr_queue\""),
            std::string::npos);

  // /healthz-shaped state: drained, every queue closed, counts present.
  const std::string health = coordinator.health_json();
  EXPECT_NE(health.find("\"status\":\"drained\""), std::string::npos);
  EXPECT_NE(health.find("\"finished\":true"), std::string::npos);
  EXPECT_NE(health.find("\"queues\":{\"addresses\":{"), std::string::npos);
  EXPECT_NE(health.find("\"closed\":true"), std::string::npos);
}

TEST(StreamCoordinatorTest, StartTwiceThrows) {
  stream::LiveChain live;
  serve::ScoringEngine engine(live.explorer(), detector(), {});
  stream::StreamConfig config;
  config.paced = false;
  config.max_blocks = 1;
  config.max_requests = 1;
  stream::StreamCoordinator coordinator(live, engine, config);
  coordinator.start();
  EXPECT_THROW(coordinator.start(), StateError);
  coordinator.drain();
}

}  // namespace
}  // namespace phishinghook
