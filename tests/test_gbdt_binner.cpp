// FeatureBinner: the quantization layer under LightGBM and CatBoost.
//
// Includes the regression test for a real bug found during the Table II
// calibration: the fit() scratch vector was shrunk by unique() and never
// re-grown, so every feature after the first low-cardinality one was binned
// through a truncated window — silently degrading both histogram GBDTs to
// ~73% accuracy while the exact-greedy XGBoost scored 93% on the same data.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/gbdt_common.hpp"

namespace phishinghook::ml::gbdt {
namespace {

TEST(FeatureBinner, SingleFeatureQuantiles) {
  Matrix x(100, 1);
  for (std::size_t r = 0; r < 100; ++r) x.at(r, 0) = static_cast<double>(r);
  FeatureBinner binner;
  binner.fit(x, 10);
  EXPECT_GE(binner.bins(0), 8);
  EXPECT_LE(binner.bins(0), 10);
  // Bins are monotone in the value.
  std::uint8_t prev = 0;
  for (std::size_t r = 0; r < 100; ++r) {
    const std::uint8_t b = binner.bin(0, x.at(r, 0));
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(FeatureBinner, ConstantFeatureGetsOneBin) {
  Matrix x(50, 2);
  for (std::size_t r = 0; r < 50; ++r) {
    x.at(r, 0) = 7.0;                        // constant
    x.at(r, 1) = static_cast<double>(r % 5);  // 5 distinct values
  }
  FeatureBinner binner;
  binner.fit(x, 16);
  EXPECT_EQ(binner.bins(0), 1);
  EXPECT_EQ(binner.bins(1), 5);
}

TEST(FeatureBinner, LowCardinalityFeatureDoesNotPoisonLaterOnes) {
  // Regression: feature 0 has 2 distinct values; features 1.. must still be
  // binned over their full value range.
  common::Rng rng(5);
  Matrix x(200, 4);
  for (std::size_t r = 0; r < 200; ++r) {
    x.at(r, 0) = static_cast<double>(r % 2);
    for (std::size_t f = 1; f < 4; ++f) {
      x.at(r, f) = rng.uniform(0.0, 1000.0);
    }
  }
  FeatureBinner binner;
  binner.fit(x, 32);
  EXPECT_EQ(binner.bins(0), 2);
  for (std::size_t f = 1; f < 4; ++f) {
    EXPECT_GE(binner.bins(f), 24) << "feature " << f << " lost its range";
  }
  // Values near the top of the range must land in high bins.
  for (std::size_t f = 1; f < 4; ++f) {
    EXPECT_GT(binner.bin(f, 999.0), binner.bins(f) / 2);
  }
}

TEST(FeatureBinner, TransformShapesAndDeterminism) {
  common::Rng rng(7);
  Matrix x(30, 3);
  for (std::size_t r = 0; r < 30; ++r) {
    for (std::size_t f = 0; f < 3; ++f) x.at(r, f) = rng.normal();
  }
  FeatureBinner binner;
  binner.fit(x, 16);
  const auto a = binner.transform(x);
  const auto b = binner.transform(x);
  EXPECT_EQ(a.size(), 90u);
  EXPECT_EQ(a, b);
}

TEST(FeatureBinner, RejectsBadBinCounts) {
  Matrix x(4, 1);
  FeatureBinner binner;
  EXPECT_THROW(binner.fit(x, 1), InvalidArgument);
  EXPECT_THROW(binner.fit(x, 300), InvalidArgument);
}

TEST(GradHess, LogisticDerivatives) {
  // At score 0: p = 0.5; grad = 0.5 - label; hess = 0.25.
  const auto gh0 = logistic_grad_hess(0.0, 1);
  EXPECT_NEAR(gh0.grad, -0.5, 1e-12);
  EXPECT_NEAR(gh0.hess, 0.25, 1e-12);
  const auto gh1 = logistic_grad_hess(0.0, 0);
  EXPECT_NEAR(gh1.grad, 0.5, 1e-12);
  // Hessian floored away from zero at extreme scores.
  const auto extreme = logistic_grad_hess(40.0, 1);
  EXPECT_GT(extreme.hess, 0.0);
  EXPECT_NEAR(extreme.grad, 0.0, 1e-6);
}

}  // namespace
}  // namespace phishinghook::ml::gbdt
