// Integration: the full PhishingHook pipeline — data gathering -> BEM ->
// BDM -> features -> MEM (cross-validated models) -> PAM — on a small
// synthetic corpus.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/csv.hpp"
#include "core/bdm.hpp"
#include "core/bem.hpp"
#include "core/experiment.hpp"
#include "core/pam.hpp"
#include "core/report.hpp"

namespace phishinghook::core {
namespace {

using synth::BuiltDataset;
using synth::DatasetBuilder;
using synth::DatasetConfig;

const BuiltDataset& shared_dataset() {
  static const BuiltDataset* dataset = [] {
    DatasetConfig config;
    config.target_size = 140;
    config.seed = 99;
    return new BuiltDataset(DatasetBuilder(config).build());
  }();
  return *dataset;
}

TEST(Bem, ExtractsLabeledBytecode) {
  const BuiltDataset& dataset = shared_dataset();
  const BytecodeExtractionModule bem(*dataset.explorer);
  const auto& sample = dataset.samples.front();
  const ExtractedContract extracted = bem.extract(sample.address);
  EXPECT_EQ(extracted.code.bytes(), sample.code.bytes());
  EXPECT_EQ(extracted.flagged_phishing, sample.phishing);
}

TEST(Bem, BatchSkipsEmptyAccounts) {
  const BuiltDataset& dataset = shared_dataset();
  const BytecodeExtractionModule bem(*dataset.explorer);
  std::vector<evm::Address> addresses = {dataset.samples[0].address,
                                         evm::Address()};  // EOA
  const auto extracted = bem.extract_all(addresses);
  EXPECT_EQ(extracted.size(), 1u);
}

TEST(Bdm, WritesCsvListing) {
  const BuiltDataset& dataset = shared_dataset();
  const BytecodeDisassemblerModule bdm;
  const auto path =
      std::filesystem::temp_directory_path() / "phook_test" / "listing.csv";
  const auto listing = bdm.disassemble_to_csv(dataset.samples[0].code, path);
  EXPECT_FALSE(listing.instructions.empty());
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto table = common::read_csv_file(path);
  EXPECT_EQ(table.rows.size(), listing.instructions.size());
  EXPECT_EQ(table.header[2], "mnemonic");
  std::filesystem::remove_all(path.parent_path());
}

TEST(Registry, ContainsAll16Table2Models) {
  const auto specs = all_models(common::scale_params(common::Scale::kSmoke));
  EXPECT_EQ(specs.size(), 16u);
  int hsc = 0, vm = 0, lm = 0, vdm = 0;
  for (const ModelSpec& spec : specs) {
    switch (spec.category) {
      case ModelCategory::kHistogram: ++hsc; break;
      case ModelCategory::kVision: ++vm; break;
      case ModelCategory::kLanguage: ++lm; break;
      case ModelCategory::kVulnerability: ++vdm; break;
    }
  }
  EXPECT_EQ(hsc, 7);
  EXPECT_EQ(vm, 3);
  EXPECT_EQ(lm, 5);
  EXPECT_EQ(vdm, 1);
  EXPECT_EQ(find_model(specs, "Random Forest").category,
            ModelCategory::kHistogram);
  EXPECT_THROW(find_model(specs, "BERT"), NotFound);
}

TEST(Experiment, RandomForestBeatsChanceOnSyntheticCorpus) {
  const BuiltDataset& dataset = shared_dataset();
  const auto specs = all_models(common::scale_params(common::Scale::kSmoke));
  ExperimentConfig config;
  config.folds = 3;
  config.runs = 1;
  const ExperimentHarness harness(config);
  const ModelEvaluation eval =
      harness.evaluate(find_model(specs, "Random Forest"), dataset.samples);
  EXPECT_EQ(eval.trials.size(), 3u);
  EXPECT_GE(eval.mean().accuracy, 0.8);
  EXPECT_GT(eval.mean_train_seconds(), 0.0);
  // The metric series feed the PAM.
  EXPECT_EQ(eval.metric_series("accuracy").size(), 3u);
  EXPECT_THROW(eval.metric_series("auc"), InvalidArgument);
}

TEST(Experiment, TemporalEvaluationProtocol) {
  synth::DatasetConfig config;
  config.target_size = 140;
  config.seed = 7;
  config.match_benign_temporal = true;
  const BuiltDataset dataset = DatasetBuilder(config).build();
  const synth::TemporalSplit split = synth::temporal_split(dataset.samples);

  const auto specs = all_models(common::scale_params(common::Scale::kSmoke));
  const ExperimentHarness harness;
  std::vector<std::vector<const synth::LabeledContract*>> tests(
      split.monthly_tests.begin(), split.monthly_tests.end());
  const auto metrics = harness.evaluate_temporal(
      find_model(specs, "Random Forest"), split.train, tests);
  EXPECT_EQ(metrics.size(), 9u);
  double mean_acc = 0.0;
  for (const auto& m : metrics) mean_acc += m.accuracy;
  EXPECT_GE(mean_acc / 9.0, 0.6);
}

TEST(Pam, DetectsDifferencesBetweenRealAndChanceModels) {
  // Two strong models and one at chance: K-W must reject, Dunn must flag
  // cross-pair differences.
  ModelEvaluation strong_a, strong_b, chance;
  strong_a.model = "A";
  strong_a.category = ModelCategory::kHistogram;
  strong_b.model = "B";
  strong_b.category = ModelCategory::kHistogram;
  chance.model = "C";
  chance.category = ModelCategory::kVulnerability;
  common::Rng rng(3);
  for (int t = 0; t < 15; ++t) {
    auto trial = [&](double base) {
      TrialResult result;
      result.metrics.accuracy = base + 0.02 * rng.normal();
      result.metrics.f1 = base + 0.02 * rng.normal();
      result.metrics.precision = base + 0.02 * rng.normal();
      result.metrics.recall = base + 0.02 * rng.normal();
      return result;
    };
    strong_a.trials.push_back(trial(0.93));
    strong_b.trials.push_back(trial(0.91));
    chance.trials.push_back(trial(0.55));
  }

  const PostHocReport report =
      post_hoc_analysis({strong_a, strong_b, chance});
  ASSERT_EQ(report.kruskal_wallis.size(), 4u);
  for (const auto& row : report.kruskal_wallis) {
    EXPECT_LT(row.p_adjusted, 0.05) << row.metric;
  }
  ASSERT_EQ(report.dunn.size(), 4u);
  for (const auto& dunn : report.dunn) {
    // A-C and B-C significant; A-B likely too close -> cross-category
    // fraction must exceed within-category fraction.
    EXPECT_GE(dunn.cross_category_fraction, dunn.within_category_fraction);
    EXPECT_GT(dunn.significant_fraction, 0.0);
  }
  EXPECT_EQ(report.normality.size(), 12u);
}

TEST(Pam, HandlesConstantMetricSeries) {
  ModelEvaluation perfect, noisy;
  perfect.model = "perfect";
  noisy.model = "noisy";
  noisy.category = ModelCategory::kVision;
  common::Rng rng(4);
  for (int t = 0; t < 10; ++t) {
    TrialResult a;
    a.metrics = {1.0, 1.0, 1.0, 1.0};  // constant: S-W undefined
    perfect.trials.push_back(a);
    TrialResult b;
    b.metrics.accuracy = 0.8 + 0.05 * rng.normal();
    b.metrics.f1 = 0.8 + 0.05 * rng.normal();
    b.metrics.precision = 0.8;
    b.metrics.recall = 0.8;
    noisy.trials.push_back(b);
  }
  const PostHocReport report = post_hoc_analysis({perfect, noisy});
  for (const auto& entry : report.normality) {
    if (entry.model == "perfect") {
      EXPECT_TRUE(entry.normal);
      EXPECT_EQ(entry.w, 1.0);
    }
  }
}

TEST(Report, TextTableAlignsAndExportsCsv) {
  TextTable table({"Model", "Accuracy (%)"});
  table.add_row({"Random Forest", percent(0.9363)});
  table.add_row({"k-NN", percent(0.9060)});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Random Forest  93.63"), std::string::npos);
  EXPECT_NE(rendered.find("k-NN"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "many", "cols"}), InvalidArgument);

  const auto path =
      std::filesystem::temp_directory_path() / "phook_test_table.csv";
  table.write_csv(path);
  const auto parsed = common::read_csv_file(path);
  EXPECT_EQ(parsed.rows.size(), 2u);
  std::filesystem::remove(path);
}

TEST(EndToEnd, EscortStaysNearChanceWhileRandomForestDetects) {
  // The paper's negative result (Table II): the vulnerability detector's
  // frozen transfer features do not carry phishing intent, while the HSC
  // separates cleanly on the same corpus.
  const BuiltDataset& dataset = shared_dataset();
  const auto specs = all_models(common::scale_params(common::Scale::kSmoke));
  ExperimentConfig config;
  config.folds = 3;
  config.runs = 1;
  const ExperimentHarness harness(config);
  const double rf_acc =
      harness.evaluate(find_model(specs, "Random Forest"), dataset.samples)
          .mean()
          .accuracy;
  const double escort_acc =
      harness.evaluate(find_model(specs, "ESCORT"), dataset.samples)
          .mean()
          .accuracy;
  EXPECT_GE(rf_acc, 0.80);
  EXPECT_LE(escort_acc, 0.72);
  EXPECT_GT(rf_acc - escort_acc, 0.15);
}

TEST(EndToEnd, EverySixteenModelFitsAndPredictsAtSmokeScale) {
  // The full registry must at least train and emit valid probabilities on a
  // small split (accuracy claims are the benches' job).
  const BuiltDataset& dataset = shared_dataset();
  std::vector<const Bytecode*> codes = codes_of(dataset.samples);
  std::vector<int> labels = labels_of(dataset.samples);
  // 40 train / 12 test samples keep the neural models fast here.
  std::vector<const Bytecode*> train(codes.begin(), codes.begin() + 40);
  std::vector<int> train_y(labels.begin(), labels.begin() + 40);
  std::vector<const Bytecode*> test(codes.begin() + 40, codes.begin() + 52);

  common::ScaleParams params = common::scale_params(common::Scale::kSmoke);
  params.nn_epochs = 1;
  params.image_side = 8;
  params.max_sequence = 48;
  for (const ModelSpec& spec : all_models(params)) {
    auto model = spec.make(7);
    model->fit(train, train_y);
    const auto probs = model->predict_proba(test);
    ASSERT_EQ(probs.size(), test.size()) << spec.name;
    for (double p : probs) {
      EXPECT_GE(p, 0.0) << spec.name;
      EXPECT_LE(p, 1.0) << spec.name;
    }
  }
}

}  // namespace
}  // namespace phishinghook::core
