// Unit tests for the common support layer: hex codec, RNG, CSV, strings.
#include <gtest/gtest.h>

#include "common/csv.hpp"
#include "common/errors.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace phishinghook {
namespace {

using common::CsvWriter;
using common::hex_decode;
using common::hex_encode;
using common::hex_encode_prefixed;
using common::is_hex;
using common::parse_csv;
using common::Rng;

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x60, 0x80, 0x60, 0x40, 0x52};
  EXPECT_EQ(hex_encode(bytes), "6080604052");
  EXPECT_EQ(hex_encode_prefixed(bytes), "0x6080604052");
  EXPECT_EQ(hex_decode("0x6080604052"), bytes);
  EXPECT_EQ(hex_decode("6080604052"), bytes);
  EXPECT_EQ(hex_decode("0X6080604052"), bytes);
}

TEST(Hex, EmptyAndCase) {
  EXPECT_TRUE(hex_decode("0x").empty());
  EXPECT_TRUE(hex_decode("").empty());
  EXPECT_EQ(hex_decode("AbCd"), (std::vector<std::uint8_t>{0xAB, 0xCD}));
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(hex_decode("0x123"), ParseError);   // odd length
  EXPECT_THROW(hex_decode("zz"), ParseError);      // non-hex
  EXPECT_FALSE(is_hex("0x123"));
  EXPECT_FALSE(is_hex("xyz1"));
  EXPECT_TRUE(is_hex("0xdeadBEEF"));
  EXPECT_TRUE(is_hex(""));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, UniformDoublesInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  auto perm = common::random_permutation(50, rng);
  std::sort(perm.begin(), perm.end());
  for (std::size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(perm[i], i);
}

TEST(Csv, EscapeAndParseRoundTrip) {
  CsvWriter writer;
  writer.write_row({"a", "with,comma", "with\"quote", "multi\nline"});
  writer.write_row({"1", "2", "3", "4"});
  const auto table = parse_csv(writer.str());
  ASSERT_EQ(table.header.size(), 4u);
  EXPECT_EQ(table.header[1], "with,comma");
  EXPECT_EQ(table.header[2], "with\"quote");
  EXPECT_EQ(table.header[3], "multi\nline");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][3], "4");
}

TEST(Csv, ColumnLookup) {
  const auto table = parse_csv("pc,mnemonic\n0,PUSH1\n");
  EXPECT_EQ(table.column("mnemonic"), 1u);
  EXPECT_THROW(table.column("missing"), NotFound);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"unterminated"), ParseError);
}

TEST(Strings, SplitJoinTrim) {
  EXPECT_EQ(common::split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(common::join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(common::trim("  hi\t"), "hi");
  EXPECT_EQ(common::to_lower("AbC"), "abc");
  EXPECT_TRUE(common::starts_with("0x1234", "0x"));
}

TEST(Strings, Formatting) {
  EXPECT_EQ(common::format_fixed(93.634, 2), "93.63");
  EXPECT_EQ(common::pad_left("7", 3), "  7");
  EXPECT_EQ(common::pad_right("7", 3), "7  ");
  EXPECT_EQ(common::format_scientific(7.35e-70, 2), "7.35e-70");
}

}  // namespace
}  // namespace phishinghook
