// Dataset builder: the crawl -> scrape -> BEM -> dedup -> balance pipeline.
#include <gtest/gtest.h>

#include <set>

#include "synth/dataset_builder.hpp"

namespace phishinghook::synth {
namespace {

DatasetConfig small_config(std::uint64_t seed = 42) {
  DatasetConfig config;
  config.target_size = 120;
  config.seed = seed;
  return config;
}

TEST(DatasetBuilder, BalancedAndDeduplicated) {
  const BuiltDataset dataset = DatasetBuilder(small_config()).build();
  EXPECT_EQ(dataset.phishing_count(), dataset.benign_count());
  EXPECT_GE(dataset.samples.size(), 100u);

  // Bit-exact dedup: all code hashes unique within each class.
  std::set<std::string> phishing_hashes, benign_hashes;
  for (const LabeledContract& sample : dataset.samples) {
    const std::string key = evm::hash_to_hex(sample.code.code_hash());
    auto& bucket = sample.phishing ? phishing_hashes : benign_hashes;
    EXPECT_TRUE(bucket.insert(key).second) << "duplicate in final dataset";
  }
}

TEST(DatasetBuilder, DuplicateRateNearPaperRatio) {
  const BuiltDataset dataset = DatasetBuilder(small_config()).build();
  // Paper: 17,455 raw -> 3,458 unique (ratio ~ 5.05).
  const double ratio = static_cast<double>(dataset.raw_phishing) /
                       static_cast<double>(dataset.unique_phishing);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 9.0);
}

TEST(DatasetBuilder, DeterministicInSeed) {
  const BuiltDataset a = DatasetBuilder(small_config(7)).build();
  const BuiltDataset b = DatasetBuilder(small_config(7)).build();
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].code.bytes(), b.samples[i].code.bytes());
    EXPECT_EQ(a.samples[i].phishing, b.samples[i].phishing);
  }
  const BuiltDataset c = DatasetBuilder(small_config(8)).build();
  EXPECT_NE(evm::hash_to_hex(a.samples[0].code.code_hash()),
            evm::hash_to_hex(c.samples[0].code.code_hash()));
}

TEST(DatasetBuilder, MonthlyProfileSumsToOne) {
  double total = 0.0;
  for (double p : DatasetBuilder::monthly_profile()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DatasetBuilder, PhishingVolumeFollowsProfileShape) {
  const BuiltDataset dataset = DatasetBuilder(small_config()).build();
  // The peak month of the profile must carry more raw deployments than the
  // first month (Fig. 2's rise).
  EXPECT_GT(dataset.phishing_per_month[7], dataset.phishing_per_month[0]);
  std::size_t total = 0;
  for (std::size_t c : dataset.phishing_per_month) total += c;
  EXPECT_EQ(total, dataset.raw_phishing);
}

TEST(DatasetBuilder, LabelsComeFromTheExplorer) {
  const BuiltDataset dataset = DatasetBuilder(small_config()).build();
  for (const LabeledContract& sample : dataset.samples) {
    EXPECT_EQ(dataset.explorer->is_flagged_phishing(sample.address),
              sample.phishing);
  }
}

TEST(DatasetBuilder, TemporalVariantMatchesBenignToPhishing) {
  DatasetConfig config = small_config();
  config.match_benign_temporal = true;
  const BuiltDataset dataset = DatasetBuilder(config).build();
  // With matched temporal distributions, early months contain benign
  // samples too (so the Fig. 8 monthly test sets are two-class).
  const TemporalSplit split = temporal_split(dataset.samples);
  EXPECT_FALSE(split.train.empty());
  int two_class_months = 0;
  for (const auto& month_set : split.monthly_tests) {
    bool has_phishing = false, has_benign = false;
    for (const LabeledContract* sample : month_set) {
      (sample->phishing ? has_phishing : has_benign) = true;
    }
    if (has_phishing && has_benign) ++two_class_months;
  }
  EXPECT_GE(two_class_months, 6);
}

TEST(TemporalSplit, PartitionsByMonth) {
  const BuiltDataset dataset = DatasetBuilder(small_config()).build();
  const TemporalSplit split = temporal_split(dataset.samples);
  std::size_t total = split.train.size();
  for (const auto& test : split.monthly_tests) total += test.size();
  EXPECT_EQ(total, dataset.samples.size());
  for (const LabeledContract* sample : split.train) {
    EXPECT_LE(sample->month.index, 3);
  }
  for (std::size_t m = 0; m < split.monthly_tests.size(); ++m) {
    for (const LabeledContract* sample : split.monthly_tests[m]) {
      EXPECT_EQ(sample->month.index, static_cast<int>(m) + 4);
    }
  }
}

}  // namespace
}  // namespace phishinghook::synth
