// Fig. 2: number of phishing contracts per month (2023-10 .. 2024-10),
// plus the dataset-construction statistics of §III (raw vs unique counts,
// duplicate ratio, final balanced size).
#include <cstdio>

#include "bench_common.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Fig. 2 — phishing contracts per month",
                      "Fig. 2 + §III dataset construction");

  const bench::BuiltDataset dataset = bench::build_bench_dataset();

  std::size_t max_count = 1;
  for (std::size_t count : dataset.phishing_per_month) {
    max_count = std::max(max_count, count);
  }

  core::TextTable table({"Month", "Phishing deployments", "Histogram"});
  for (int m = 0; m < chain::Month::kCount; ++m) {
    const std::size_t count = dataset.phishing_per_month[static_cast<std::size_t>(m)];
    const int bar = static_cast<int>(40.0 * static_cast<double>(count) /
                                     static_cast<double>(max_count));
    table.add_row({chain::Month{m}.label(), std::to_string(count),
                   std::string(static_cast<std::size_t>(bar), '#')});
  }
  std::printf("%s\n", table.render().c_str());

  const double ratio = static_cast<double>(dataset.raw_phishing) /
                       static_cast<double>(dataset.unique_phishing);
  std::printf("raw phishing deployments:   %zu   (paper: 17,455)\n",
              dataset.raw_phishing);
  std::printf("unique phishing bytecodes:  %zu   (paper: 3,458)\n",
              dataset.unique_phishing);
  std::printf("duplicate ratio:            %.2fx (paper: ~5.05x — ERC-1167 "
              "minimal-proxy clones)\n",
              ratio);
  std::printf("final balanced dataset:     %zu   (paper: 7,000)\n",
              dataset.samples.size());

  table.write_csv(bench::bench_output_dir(argv[0]) / "fig2_monthly.csv");
  return 0;
}
