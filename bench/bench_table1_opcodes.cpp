// Table I: EVM opcodes for the Shanghai fork.
//
// Prints the registry in the paper's format (opcode, name, gas,
// stack-effect summary) — the excerpt rows the paper shows plus the full
// count — and writes the complete table as CSV.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "evm/opcodes.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Table I — EVM opcodes (Shanghai fork)",
                      "Table I, §II Background");

  const auto& table = evm::OpcodeTable::shanghai();
  core::TextTable text({"Opcode", "Name", "Gas", "In", "Out", "Category"});
  for (const evm::OpcodeInfo& info : table.all()) {
    char byte[8];
    std::snprintf(byte, sizeof(byte), "0x%02X", info.value);
    text.add_row({byte, std::string(info.mnemonic),
                  info.gas_is_nan ? "NaN" : std::to_string(info.base_gas),
                  std::to_string(info.stack_inputs),
                  std::to_string(info.stack_outputs),
                  std::string(category_name(info.category))});
  }
  std::printf("%s\n", text.render().c_str());
  std::printf("total defined opcodes: %zu (paper: 144 as of Shanghai)\n",
              table.size());
  std::printf("includes the two evmdasm additions: PUSH0 (0x5F), INVALID "
              "(0xFE, gas = NaN)\n");

  text.write_csv(bench::bench_output_dir(argv[0]) / "table1_opcodes.csv");
  return 0;
}
