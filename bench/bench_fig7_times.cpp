// Fig. 7: training and inference time of the per-category champions across
// the 1/3, 2/3, 3/3 data splits. Expected shape: the language model's
// costs dominate by orders of magnitude and grow with the split; HSC and
// vision costs stay low and stable.
#include <cstdio>

#include "bench_common.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Fig. 7 — training/inference time per data split",
                      "Fig. 7, §IV-F");

  const auto runs = bench::scalability_runs(bench::bench_output_dir(argv[0]));

  core::TextTable table(
      {"Model", "Split", "Train (s)", "Inference on test batch (s)"});
  for (const bench::ScalabilityCell& cell : runs) {
    table.add_row({cell.model, std::to_string(cell.split) + "/3",
                   common::format_fixed(cell.train_seconds, 3),
                   common::format_fixed(cell.inference_seconds, 4)});
  }
  std::printf("%s\n", table.render().c_str());

  auto mean_time = [&](const std::string& name, bool train) {
    double total = 0.0;
    int count = 0;
    for (const bench::ScalabilityCell& cell : runs) {
      if (cell.model != name) continue;
      total += train ? cell.train_seconds : cell.inference_seconds;
      ++count;
    }
    return count > 0 ? total / count : 0.0;
  };

  const double lm_train = mean_time("SCSGuard", true);
  const double hsc_train = mean_time("Random Forest", true);
  const double vm_train = mean_time("ECA+EfficientNet", true);
  const double lm_infer = mean_time("SCSGuard", false);
  const double hsc_infer = mean_time("Random Forest", false);
  const double vm_infer = mean_time("ECA+EfficientNet", false);

  core::TextTable summary({"Comparison", "Train", "Inference"});
  auto pct = [](double a, double b) {
    return b > 0 ? common::format_fixed(100.0 * (a - b) / b, 1) + "%" : "-";
  };
  summary.add_row({"SCSGuard vs Random Forest", "+" + pct(lm_train, hsc_train),
                   "+" + pct(lm_infer, hsc_infer)});
  summary.add_row({"SCSGuard vs ECA+EfficientNet",
                   "+" + pct(lm_train, vm_train), "+" + pct(lm_infer, vm_infer)});
  std::printf("%s\n", summary.render().c_str());
  std::printf(
      "paper reference: SCSGuard trains +64733%% vs Random Forest and\n"
      "+1031%% vs ECA+EfficientNet on average, with its cost nearly\n"
      "doubling per split enlargement; HSC/VM times stay low and stable.\n");
  return 0;
}
