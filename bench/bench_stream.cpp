// Streaming ingestion bench: the full miner → follower → open-loop load
// generator → ScoringEngine pipeline, run paced (honest wall-clock rates)
// under two arrival scenarios — steady Poisson traffic and periodic
// mempool bursts — and written as BENCH_stream.json next to the binary.
//
// Reported per scenario: sustained scored rows/s, shed and error rates,
// ingest lag in blocks, dedup/cache hit rates, the accounting identity
// (submitted == completed + failed + shed) that must hold after every
// drain, a mid-run sliding-window sample (rate, p99, SLO burn rate, shed
// pressure — the live view an operator would scrape), and per-stage
// latency attribution rows splitting each request's journey into
// queue-wait vs. service time (addr_queue / queue / extract / predict).
// The network mode (run last) drives the same open-loop LoadGenerator
// schedules through the JSON-RPC front door over real loopback sockets:
// client threads pace POST phook_score frames against serve::RpcFrontend,
// and the "network" JSON object attributes each request's journey across
// connect (client) / parse + dispatch + handle (net layer) / queue +
// extract + predict (engine), alongside client-observed RTT, RPS and the
// shed ratio.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/model_registry.hpp"
#include "ml/random_forest.hpp"
#include "serve/rpc_frontend.hpp"
#include "serve/scoring_engine.hpp"
#include "stream/coordinator.hpp"
#include "stream/load_generator.hpp"
#include "synth/dataset_builder.hpp"

namespace {

using namespace phishinghook;

/// One per-stage latency-attribution row: where requests spent time.
struct StageRow {
  std::string stage;  ///< addr_queue | queue | extract | predict
  std::string kind;   ///< "wait" (parked) or "service" (being worked)
  std::uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct ScenarioResult {
  std::string scenario;
  double elapsed_s = 0.0;
  std::uint64_t blocks = 0;
  std::uint64_t deployments = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  double sustained_rows_per_s = 0.0;
  double shed_rate = 0.0;
  double error_rate = 0.0;
  std::uint64_t ingest_lag_blocks = 0;
  std::uint64_t max_ingest_lag_blocks = 0;
  double dedup_hit_rate = 0.0;
  double cache_hit_rate = 0.0;
  bool accounting_ok = false;

  // Sliding-window sample taken mid-run, under load (not after drain,
  // when idle decay would have emptied the window).
  double window_rate_per_sec = 0.0;
  double window_p99_us = 0.0;
  double window_error_burn_rate = 0.0;
  double shed_pressure = 0.0;

  std::vector<StageRow> stages;
};

core::HistogramAdapter fit_detector(bool smoke) {
  synth::DatasetConfig dataset_config;
  dataset_config.target_size = smoke ? 160 : 320;
  dataset_config.seed = 97;
  const synth::BuiltDataset built =
      synth::DatasetBuilder(dataset_config).build();
  ml::RandomForestConfig rf;
  rf.n_trees = smoke ? 8 : 16;
  rf.max_depth = 6;
  core::HistogramAdapter adapter(
      std::make_unique<ml::RandomForestClassifier>(rf), "bench-stream");
  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  for (const synth::LabeledContract& sample : built.samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
  }
  adapter.fit(codes, labels);
  return adapter;
}

ScenarioResult run_scenario(const std::string& name,
                            stream::ArrivalConfig arrivals,
                            core::HistogramAdapter& detector,
                            double duration_s) {
  stream::LiveChain live;
  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  engine_config.max_queue = 256;  // admission control: overload becomes shed
  serve::ScoringEngine engine(live.explorer(), detector, engine_config);

  stream::StreamConfig config;
  config.arrivals = arrivals;
  config.paced = true;
  config.blocks_per_s = 50.0;
  config.max_blocks =
      static_cast<std::uint64_t>(std::ceil(config.blocks_per_s * duration_s));
  // Safety net well above what the schedule can produce in duration_s; the
  // timed drain below is the real stop condition.
  config.max_requests = static_cast<std::uint64_t>(
      (arrivals.rate_per_s + arrivals.burst_rate_per_s) * duration_s * 4.0);

  stream::StreamCoordinator coordinator(live, engine, config);
  coordinator.start();
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(duration_s);
  const auto sample_at =
      start + std::chrono::duration<double>(duration_s * 0.5);
  // The windowed sample must be taken while traffic is flowing — that is
  // the whole point of the window (an operator's live p99, not a
  // post-mortem aggregate).
  bool sampled = false;
  obs::SloEvaluator::Evaluation live_eval;
  while (!coordinator.finished() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!sampled && std::chrono::steady_clock::now() >= sample_at) {
      live_eval = coordinator.evaluate_slo();
      sampled = true;
    }
  }
  if (!sampled) live_eval = coordinator.evaluate_slo();
  coordinator.drain();
  const stream::StreamReport report = coordinator.report();

  ScenarioResult result;
  result.scenario = name;
  result.elapsed_s = report.elapsed_s;
  result.blocks = report.miner.blocks_mined;
  result.deployments = report.miner.deployments;
  result.submitted = report.submitted;
  result.completed = report.completed;
  result.failed = report.failed;
  result.shed = report.shed;
  result.sustained_rows_per_s = report.sustained_rows_per_s;
  result.shed_rate = report.submitted == 0
                         ? 0.0
                         : static_cast<double>(report.shed) /
                               static_cast<double>(report.submitted);
  result.error_rate = report.submitted == 0
                          ? 0.0
                          : static_cast<double>(report.failed) /
                                static_cast<double>(report.submitted);
  result.ingest_lag_blocks = report.ingest_lag_blocks;
  result.max_ingest_lag_blocks = report.max_ingest_lag_blocks;
  result.dedup_hit_rate = report.follower.dedup_hit_rate();
  result.cache_hit_rate = report.completed == 0
                              ? 0.0
                              : static_cast<double>(report.cache_hit_results) /
                                    static_cast<double>(report.completed);
  result.accounting_ok = report.accounting_ok();
  result.window_rate_per_sec = live_eval.window.rate_per_sec;
  result.window_p99_us = live_eval.window.p99_us;
  result.window_error_burn_rate = live_eval.burn_rate;
  result.shed_pressure = live_eval.shed_pressure;

  const auto stage_row = [](const char* stage, const char* kind,
                            const obs::LatencyHistogram& h) {
    StageRow row;
    row.stage = stage;
    row.kind = kind;
    row.count = h.count();
    row.mean_us = h.mean();
    row.p50_us = h.quantile(0.50);
    row.p95_us = h.quantile(0.95);
    row.p99_us = h.quantile(0.99);
    row.max_us = h.max_value();
    return row;
  };
  const serve::ServiceMetrics& sm = engine.metrics();
  result.stages.push_back(stage_row(
      "addr_queue", "wait",
      coordinator.registry().histogram("stream_stage_wait_us",
                                       obs::label("stage", "addr_queue"))));
  result.stages.push_back(stage_row("queue", "wait", sm.stage_queue_wait));
  result.stages.push_back(stage_row("extract", "service", sm.stage_extract));
  result.stages.push_back(stage_row("predict", "service", sm.stage_predict));
  return result;
}

/// Result of the socket-path scenario: LoadGenerator arrivals POSTed as
/// JSON-RPC frames at the RpcFrontend by real client connections.
struct NetworkResult {
  std::string scenario;
  double elapsed_s = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;             ///< engine kShed or HTTP 503
  std::uint64_t transport_errors = 0; ///< connect/send/recv failures
  double rps = 0.0;
  double shed_rate = 0.0;
  std::vector<StageRow> stages;
};

/// One blocking HTTP/1.1 request (Connection: close) against 127.0.0.1.
/// Returns the full response, or empty on a transport failure.
std::string rpc_round_trip(std::uint16_t port, const std::string& body,
                           obs::LatencyHistogram& connect_us) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  timeval timeout{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const auto connect_start = std::chrono::steady_clock::now();
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  connect_us.record(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - connect_start)
                        .count());
  std::string request =
      "POST / HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Type: application/json"
      "\r\nContent-Length: " + std::to_string(body.size()) +
      "\r\nConnection: close\r\n\r\n" + body;
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

NetworkResult run_network_scenario(const std::string& name,
                                   stream::ArrivalConfig arrivals,
                                   core::HistogramAdapter& detector,
                                   double duration_s) {
  // Address pool: pre-mine so every arrival has a real contract to score
  // (the socket path benches the serving stack, not the miner).
  stream::LiveChain live;
  for (int i = 0; i < 40; ++i) live.mine_next_block();
  const chain::ChainTail tail = live.explorer().crawl_after(0);
  std::vector<evm::Address> pool;
  pool.reserve(tail.records.size());
  for (const chain::ContractRecord& record : tail.records) {
    pool.push_back(record.address);
  }

  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  engine_config.max_queue = 256;
  serve::ScoringEngine engine(live.explorer(), detector, engine_config);

  net::RpcConfig rpc_config;
  rpc_config.dispatchers = 4;
  rpc_config.queue_capacity = 512;
  serve::RpcFrontend frontend(engine, rpc_config);
  frontend.start(0);  // ephemeral loopback port
  const std::uint16_t port = frontend.port();

  obs::LatencyHistogram connect_hist;
  obs::LatencyHistogram rtt_hist;
  std::atomic<std::uint64_t> requests{0}, ok{0}, shed{0}, transport{0};

  // One shared open-loop schedule, paced against a common epoch; client
  // threads take arrivals off it under a mutex so the aggregate traffic
  // matches the configured Poisson process.
  stream::LoadGenerator generator(arrivals);
  std::mutex generator_mutex;
  const auto epoch = std::chrono::steady_clock::now();
  const auto deadline = epoch + std::chrono::duration<double>(duration_s);

  const auto client = [&] {
    while (true) {
      double arrival_s = 0.0;
      std::size_t index = 0;
      {
        std::lock_guard<std::mutex> lock(generator_mutex);
        generator.next_arrival();
        arrival_s = generator.virtual_time_s();
        index = generator.draw_index(pool.size());
      }
      const auto when = epoch + std::chrono::duration<double>(arrival_s);
      if (when >= deadline) return;
      std::this_thread::sleep_until(when);
      const std::string body =
          "{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"phook_score\","
          "\"params\":[\"" + pool[index].to_hex() + "\"]}";
      requests.fetch_add(1, std::memory_order_relaxed);
      const auto sent_at = std::chrono::steady_clock::now();
      const std::string response = rpc_round_trip(port, body, connect_hist);
      if (response.empty()) {
        transport.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      rtt_hist.record(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - sent_at)
                          .count());
      if (response.find(" 503 ") != std::string::npos ||
          response.find("\"shed\"") != std::string::npos) {
        shed.fetch_add(1, std::memory_order_relaxed);
      } else if (response.find("\"result\"") != std::string::npos) {
        ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        transport.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) clients.emplace_back(client);
  for (std::thread& t : clients) t.join();
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - epoch)
                               .count();

  NetworkResult result;
  result.scenario = name;
  result.elapsed_s = elapsed_s;
  result.requests = requests.load();
  result.ok = ok.load();
  result.shed = shed.load();
  result.transport_errors = transport.load();
  result.rps = elapsed_s > 0.0
                   ? static_cast<double>(result.ok) / elapsed_s
                   : 0.0;
  result.shed_rate = result.requests == 0
                         ? 0.0
                         : static_cast<double>(result.shed) /
                               static_cast<double>(result.requests);

  const auto stage_row = [](const char* stage, const char* kind,
                            const obs::LatencyHistogram& h) {
    StageRow row;
    row.stage = stage;
    row.kind = kind;
    row.count = h.count();
    row.mean_us = h.mean();
    row.p50_us = h.quantile(0.50);
    row.p95_us = h.quantile(0.95);
    row.p99_us = h.quantile(0.99);
    row.max_us = h.max_value();
    return row;
  };
  obs::MetricsRegistry& net_registry = frontend.server().metrics_registry();
  const serve::ServiceMetrics& sm = engine.metrics();
  result.stages.push_back(stage_row("connect", "service", connect_hist));
  result.stages.push_back(stage_row("rtt", "service", rtt_hist));
  result.stages.push_back(stage_row(
      "parse", "service",
      net_registry.histogram("net_stage_service_us",
                             obs::label("stage", "parse"))));
  result.stages.push_back(stage_row(
      "dispatch", "wait",
      net_registry.histogram("net_stage_wait_us",
                             obs::label("stage", "dispatch"))));
  result.stages.push_back(stage_row(
      "handle", "service",
      net_registry.histogram("net_stage_service_us",
                             obs::label("stage", "handle"))));
  result.stages.push_back(stage_row("queue", "wait", sm.stage_queue_wait));
  result.stages.push_back(stage_row("extract", "service", sm.stage_extract));
  result.stages.push_back(stage_row("predict", "service", sm.stage_predict));
  frontend.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double duration_s = smoke ? 1.5 : 8.0;
  std::printf("bench_stream%s: %0.1fs per scenario\n",
              smoke ? " [smoke]" : "", duration_s);

  core::HistogramAdapter detector = fit_detector(smoke);

  stream::ArrivalConfig steady = stream::LoadGenerator::steady_scenario();
  steady.rate_per_s = smoke ? 800.0 : 2000.0;
  stream::ArrivalConfig burst = stream::LoadGenerator::mempool_burst_scenario();
  if (smoke) {
    burst.rate_per_s = 400.0;
    burst.burst_rate_per_s = 8000.0;
  }

  std::vector<ScenarioResult> results;
  results.push_back(run_scenario("steady", steady, detector, duration_s));
  results.push_back(
      run_scenario("mempool_burst", burst, detector, duration_s));

  // Socket path: the same arrival model, but every request crosses a real
  // loopback TCP connection into the JSON-RPC front door. Per-request
  // connects bound the sane rate well below the in-process scenarios'.
  stream::ArrivalConfig rpc_arrivals = stream::LoadGenerator::steady_scenario();
  rpc_arrivals.rate_per_s = smoke ? 300.0 : 800.0;
  const NetworkResult network =
      run_network_scenario("rpc_steady", rpc_arrivals, detector, duration_s);

  for (const ScenarioResult& r : results) {
    std::printf(
        "  %-14s %7.0f rows/s  shed=%.3f err=%.3f lag=%llu dedup=%.2f "
        "cache=%.2f %s\n",
        r.scenario.c_str(), r.sustained_rows_per_s, r.shed_rate,
        r.error_rate, static_cast<unsigned long long>(r.ingest_lag_blocks),
        r.dedup_hit_rate, r.cache_hit_rate,
        r.accounting_ok ? "accounting-ok" : "ACCOUNTING-BROKEN");
    std::printf(
        "  %-14s window: %.0f req/s p99=%.0fus burn=%.2f pressure=%.2f\n",
        "", r.window_rate_per_sec, r.window_p99_us,
        r.window_error_burn_rate, r.shed_pressure);
    for (const StageRow& s : r.stages) {
      std::printf("  %-14s stage %-10s %-7s n=%-7llu p50=%8.1fus "
                  "p99=%8.1fus\n",
                  "", s.stage.c_str(), s.kind.c_str(),
                  static_cast<unsigned long long>(s.count), s.p50_us,
                  s.p99_us);
    }
  }

  std::printf(
      "  %-14s %7.0f req/s  requests=%llu ok=%llu shed=%llu transport=%llu\n",
      network.scenario.c_str(), network.rps,
      static_cast<unsigned long long>(network.requests),
      static_cast<unsigned long long>(network.ok),
      static_cast<unsigned long long>(network.shed),
      static_cast<unsigned long long>(network.transport_errors));
  for (const StageRow& s : network.stages) {
    std::printf("  %-14s stage %-10s %-7s n=%-7llu p50=%8.1fus "
                "p99=%8.1fus\n",
                "", s.stage.c_str(), s.kind.c_str(),
                static_cast<unsigned long long>(s.count), s.p50_us, s.p99_us);
  }

  FILE* out = std::fopen("BENCH_stream.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_stream.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"stream\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"duration_s\": %g,\n", duration_s);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(
        out,
        "    {\"scenario\": \"%s\", \"elapsed_s\": %.4f, \"blocks\": %llu, "
        "\"deployments\": %llu, \"submitted\": %llu, \"completed\": %llu, "
        "\"failed\": %llu, \"shed\": %llu, \"sustained_rows_per_s\": %.2f, "
        "\"shed_rate\": %.6f, \"error_rate\": %.6f, "
        "\"ingest_lag_blocks\": %llu, \"max_ingest_lag_blocks\": %llu, "
        "\"dedup_hit_rate\": %.6f, \"cache_hit_rate\": %.6f, "
        "\"accounting_ok\": %s,\n",
        r.scenario.c_str(), r.elapsed_s,
        static_cast<unsigned long long>(r.blocks),
        static_cast<unsigned long long>(r.deployments),
        static_cast<unsigned long long>(r.submitted),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.shed), r.sustained_rows_per_s,
        r.shed_rate, r.error_rate,
        static_cast<unsigned long long>(r.ingest_lag_blocks),
        static_cast<unsigned long long>(r.max_ingest_lag_blocks),
        r.dedup_hit_rate, r.cache_hit_rate,
        r.accounting_ok ? "true" : "false");
    std::fprintf(
        out,
        "     \"window_rate_per_sec\": %.2f, \"window_p99_us\": %.2f, "
        "\"window_error_burn_rate\": %.6f, \"shed_pressure\": %.6f,\n",
        r.window_rate_per_sec, r.window_p99_us, r.window_error_burn_rate,
        r.shed_pressure);
    std::fprintf(out, "     \"stages\": [\n");
    for (std::size_t s = 0; s < r.stages.size(); ++s) {
      const StageRow& row = r.stages[s];
      std::fprintf(
          out,
          "       {\"stage\": \"%s\", \"kind\": \"%s\", \"count\": %llu, "
          "\"mean_us\": %.2f, \"p50_us\": %.2f, \"p95_us\": %.2f, "
          "\"p99_us\": %.2f, \"max_us\": %.2f}%s\n",
          row.stage.c_str(), row.kind.c_str(),
          static_cast<unsigned long long>(row.count), row.mean_us,
          row.p50_us, row.p95_us, row.p99_us, row.max_us,
          s + 1 < r.stages.size() ? "," : "");
    }
    std::fprintf(out, "     ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(
      out,
      "  \"network\": {\"scenario\": \"%s\", \"elapsed_s\": %.4f, "
      "\"requests\": %llu, \"ok\": %llu, \"shed\": %llu, "
      "\"transport_errors\": %llu, \"rps\": %.2f, \"shed_rate\": %.6f,\n",
      network.scenario.c_str(), network.elapsed_s,
      static_cast<unsigned long long>(network.requests),
      static_cast<unsigned long long>(network.ok),
      static_cast<unsigned long long>(network.shed),
      static_cast<unsigned long long>(network.transport_errors), network.rps,
      network.shed_rate);
  std::fprintf(out, "   \"stages\": [\n");
  for (std::size_t s = 0; s < network.stages.size(); ++s) {
    const StageRow& row = network.stages[s];
    std::fprintf(
        out,
        "     {\"stage\": \"%s\", \"kind\": \"%s\", \"count\": %llu, "
        "\"mean_us\": %.2f, \"p50_us\": %.2f, \"p95_us\": %.2f, "
        "\"p99_us\": %.2f, \"max_us\": %.2f}%s\n",
        row.stage.c_str(), row.kind.c_str(),
        static_cast<unsigned long long>(row.count), row.mean_us, row.p50_us,
        row.p95_us, row.p99_us, row.max_us,
        s + 1 < network.stages.size() ? "," : "");
  }
  std::fprintf(out, "   ]}\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_stream.json\n");

  bool ok = true;
  for (const ScenarioResult& r : results) ok = ok && r.accounting_ok;
  // The socket path must have moved real traffic: zero scored responses
  // means the front door (or the clients) silently broke.
  ok = ok && network.ok > 0;
  return ok ? 0 : 1;
}
