// Streaming ingestion bench: the full miner → follower → open-loop load
// generator → ScoringEngine pipeline, run paced (honest wall-clock rates)
// under two arrival scenarios — steady Poisson traffic and periodic
// mempool bursts — and written as BENCH_stream.json next to the binary.
//
// Reported per scenario: sustained scored rows/s, shed and error rates,
// ingest lag in blocks, dedup/cache hit rates, the accounting identity
// (submitted == completed + failed + shed) that must hold after every
// drain, a mid-run sliding-window sample (rate, p99, SLO burn rate, shed
// pressure — the live view an operator would scrape), and per-stage
// latency attribution rows splitting each request's journey into
// queue-wait vs. service time (addr_queue / queue / extract / predict).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ml/random_forest.hpp"
#include "serve/scoring_engine.hpp"
#include "stream/coordinator.hpp"
#include "synth/dataset_builder.hpp"

namespace {

using namespace phishinghook;

/// One per-stage latency-attribution row: where requests spent time.
struct StageRow {
  std::string stage;  ///< addr_queue | queue | extract | predict
  std::string kind;   ///< "wait" (parked) or "service" (being worked)
  std::uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct ScenarioResult {
  std::string scenario;
  double elapsed_s = 0.0;
  std::uint64_t blocks = 0;
  std::uint64_t deployments = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  double sustained_rows_per_s = 0.0;
  double shed_rate = 0.0;
  double error_rate = 0.0;
  std::uint64_t ingest_lag_blocks = 0;
  std::uint64_t max_ingest_lag_blocks = 0;
  double dedup_hit_rate = 0.0;
  double cache_hit_rate = 0.0;
  bool accounting_ok = false;

  // Sliding-window sample taken mid-run, under load (not after drain,
  // when idle decay would have emptied the window).
  double window_rate_per_sec = 0.0;
  double window_p99_us = 0.0;
  double window_error_burn_rate = 0.0;
  double shed_pressure = 0.0;

  std::vector<StageRow> stages;
};

core::HistogramAdapter fit_detector(bool smoke) {
  synth::DatasetConfig dataset_config;
  dataset_config.target_size = smoke ? 160 : 320;
  dataset_config.seed = 97;
  const synth::BuiltDataset built =
      synth::DatasetBuilder(dataset_config).build();
  ml::RandomForestConfig rf;
  rf.n_trees = smoke ? 8 : 16;
  rf.max_depth = 6;
  core::HistogramAdapter adapter(
      std::make_unique<ml::RandomForestClassifier>(rf), "bench-stream");
  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  for (const synth::LabeledContract& sample : built.samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
  }
  adapter.fit(codes, labels);
  return adapter;
}

ScenarioResult run_scenario(const std::string& name,
                            stream::ArrivalConfig arrivals,
                            core::HistogramAdapter& detector,
                            double duration_s) {
  stream::LiveChain live;
  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  engine_config.max_queue = 256;  // admission control: overload becomes shed
  serve::ScoringEngine engine(live.explorer(), detector, engine_config);

  stream::StreamConfig config;
  config.arrivals = arrivals;
  config.paced = true;
  config.blocks_per_s = 50.0;
  config.max_blocks =
      static_cast<std::uint64_t>(std::ceil(config.blocks_per_s * duration_s));
  // Safety net well above what the schedule can produce in duration_s; the
  // timed drain below is the real stop condition.
  config.max_requests = static_cast<std::uint64_t>(
      (arrivals.rate_per_s + arrivals.burst_rate_per_s) * duration_s * 4.0);

  stream::StreamCoordinator coordinator(live, engine, config);
  coordinator.start();
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(duration_s);
  const auto sample_at =
      start + std::chrono::duration<double>(duration_s * 0.5);
  // The windowed sample must be taken while traffic is flowing — that is
  // the whole point of the window (an operator's live p99, not a
  // post-mortem aggregate).
  bool sampled = false;
  obs::SloEvaluator::Evaluation live_eval;
  while (!coordinator.finished() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!sampled && std::chrono::steady_clock::now() >= sample_at) {
      live_eval = coordinator.evaluate_slo();
      sampled = true;
    }
  }
  if (!sampled) live_eval = coordinator.evaluate_slo();
  coordinator.drain();
  const stream::StreamReport report = coordinator.report();

  ScenarioResult result;
  result.scenario = name;
  result.elapsed_s = report.elapsed_s;
  result.blocks = report.miner.blocks_mined;
  result.deployments = report.miner.deployments;
  result.submitted = report.submitted;
  result.completed = report.completed;
  result.failed = report.failed;
  result.shed = report.shed;
  result.sustained_rows_per_s = report.sustained_rows_per_s;
  result.shed_rate = report.submitted == 0
                         ? 0.0
                         : static_cast<double>(report.shed) /
                               static_cast<double>(report.submitted);
  result.error_rate = report.submitted == 0
                          ? 0.0
                          : static_cast<double>(report.failed) /
                                static_cast<double>(report.submitted);
  result.ingest_lag_blocks = report.ingest_lag_blocks;
  result.max_ingest_lag_blocks = report.max_ingest_lag_blocks;
  result.dedup_hit_rate = report.follower.dedup_hit_rate();
  result.cache_hit_rate = report.completed == 0
                              ? 0.0
                              : static_cast<double>(report.cache_hit_results) /
                                    static_cast<double>(report.completed);
  result.accounting_ok = report.accounting_ok();
  result.window_rate_per_sec = live_eval.window.rate_per_sec;
  result.window_p99_us = live_eval.window.p99_us;
  result.window_error_burn_rate = live_eval.burn_rate;
  result.shed_pressure = live_eval.shed_pressure;

  const auto stage_row = [](const char* stage, const char* kind,
                            const obs::LatencyHistogram& h) {
    StageRow row;
    row.stage = stage;
    row.kind = kind;
    row.count = h.count();
    row.mean_us = h.mean();
    row.p50_us = h.quantile(0.50);
    row.p95_us = h.quantile(0.95);
    row.p99_us = h.quantile(0.99);
    row.max_us = h.max_value();
    return row;
  };
  const serve::ServiceMetrics& sm = engine.metrics();
  result.stages.push_back(stage_row(
      "addr_queue", "wait",
      coordinator.registry().histogram("stream_stage_wait_us",
                                       obs::label("stage", "addr_queue"))));
  result.stages.push_back(stage_row("queue", "wait", sm.stage_queue_wait));
  result.stages.push_back(stage_row("extract", "service", sm.stage_extract));
  result.stages.push_back(stage_row("predict", "service", sm.stage_predict));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double duration_s = smoke ? 1.5 : 8.0;
  std::printf("bench_stream%s: %0.1fs per scenario\n",
              smoke ? " [smoke]" : "", duration_s);

  core::HistogramAdapter detector = fit_detector(smoke);

  stream::ArrivalConfig steady = stream::LoadGenerator::steady_scenario();
  steady.rate_per_s = smoke ? 800.0 : 2000.0;
  stream::ArrivalConfig burst = stream::LoadGenerator::mempool_burst_scenario();
  if (smoke) {
    burst.rate_per_s = 400.0;
    burst.burst_rate_per_s = 8000.0;
  }

  std::vector<ScenarioResult> results;
  results.push_back(run_scenario("steady", steady, detector, duration_s));
  results.push_back(
      run_scenario("mempool_burst", burst, detector, duration_s));

  for (const ScenarioResult& r : results) {
    std::printf(
        "  %-14s %7.0f rows/s  shed=%.3f err=%.3f lag=%llu dedup=%.2f "
        "cache=%.2f %s\n",
        r.scenario.c_str(), r.sustained_rows_per_s, r.shed_rate,
        r.error_rate, static_cast<unsigned long long>(r.ingest_lag_blocks),
        r.dedup_hit_rate, r.cache_hit_rate,
        r.accounting_ok ? "accounting-ok" : "ACCOUNTING-BROKEN");
    std::printf(
        "  %-14s window: %.0f req/s p99=%.0fus burn=%.2f pressure=%.2f\n",
        "", r.window_rate_per_sec, r.window_p99_us,
        r.window_error_burn_rate, r.shed_pressure);
    for (const StageRow& s : r.stages) {
      std::printf("  %-14s stage %-10s %-7s n=%-7llu p50=%8.1fus "
                  "p99=%8.1fus\n",
                  "", s.stage.c_str(), s.kind.c_str(),
                  static_cast<unsigned long long>(s.count), s.p50_us,
                  s.p99_us);
    }
  }

  FILE* out = std::fopen("BENCH_stream.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_stream.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"stream\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"duration_s\": %g,\n", duration_s);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(
        out,
        "    {\"scenario\": \"%s\", \"elapsed_s\": %.4f, \"blocks\": %llu, "
        "\"deployments\": %llu, \"submitted\": %llu, \"completed\": %llu, "
        "\"failed\": %llu, \"shed\": %llu, \"sustained_rows_per_s\": %.2f, "
        "\"shed_rate\": %.6f, \"error_rate\": %.6f, "
        "\"ingest_lag_blocks\": %llu, \"max_ingest_lag_blocks\": %llu, "
        "\"dedup_hit_rate\": %.6f, \"cache_hit_rate\": %.6f, "
        "\"accounting_ok\": %s,\n",
        r.scenario.c_str(), r.elapsed_s,
        static_cast<unsigned long long>(r.blocks),
        static_cast<unsigned long long>(r.deployments),
        static_cast<unsigned long long>(r.submitted),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.shed), r.sustained_rows_per_s,
        r.shed_rate, r.error_rate,
        static_cast<unsigned long long>(r.ingest_lag_blocks),
        static_cast<unsigned long long>(r.max_ingest_lag_blocks),
        r.dedup_hit_rate, r.cache_hit_rate,
        r.accounting_ok ? "true" : "false");
    std::fprintf(
        out,
        "     \"window_rate_per_sec\": %.2f, \"window_p99_us\": %.2f, "
        "\"window_error_burn_rate\": %.6f, \"shed_pressure\": %.6f,\n",
        r.window_rate_per_sec, r.window_p99_us, r.window_error_burn_rate,
        r.shed_pressure);
    std::fprintf(out, "     \"stages\": [\n");
    for (std::size_t s = 0; s < r.stages.size(); ++s) {
      const StageRow& row = r.stages[s];
      std::fprintf(
          out,
          "       {\"stage\": \"%s\", \"kind\": \"%s\", \"count\": %llu, "
          "\"mean_us\": %.2f, \"p50_us\": %.2f, \"p95_us\": %.2f, "
          "\"p99_us\": %.2f, \"max_us\": %.2f}%s\n",
          row.stage.c_str(), row.kind.c_str(),
          static_cast<unsigned long long>(row.count), row.mean_us,
          row.p50_us, row.p95_us, row.p99_us, row.max_us,
          s + 1 < r.stages.size() ? "," : "");
    }
    std::fprintf(out, "     ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_stream.json\n");

  bool ok = true;
  for (const ScenarioResult& r : results) ok = ok && r.accounting_ok;
  return ok ? 0 : 1;
}
