// Shared infrastructure for the table/figure reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper. They all
// consume the same scaled dataset (PHOOK_SCALE) and reuse expensive trial
// data: the Table II cross-validation trials and the Fig. 5-7 scalability
// runs are cached as CSV next to the binaries, so bench_table2 /
// bench_table3 / bench_fig4 (and fig5/6/7) share one computation.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "core/experiment.hpp"
#include "core/pam.hpp"
#include "core/report.hpp"

namespace phishinghook::bench {

using core::ModelEvaluation;
using synth::BuiltDataset;

/// Prints the standard bench banner (what is being reproduced, at which
/// scale) to stdout.
void print_banner(const std::string& title, const std::string& paper_ref);

/// The bench dataset for the current PHOOK_SCALE (deterministic, seed 42).
BuiltDataset build_bench_dataset(bool temporal = false);

/// Table II trials for all 16 models: loaded from `table2_trials.csv` in
/// `cache_dir` when present (and scale-compatible), otherwise computed and
/// cached. This is the expensive step shared by Table II/III and Fig. 4.
std::vector<ModelEvaluation> table2_trials(
    const std::filesystem::path& cache_dir);

/// One scalability run (Fig. 5-7): the three per-category champions
/// evaluated on 1/3, 2/3 and 3/3 of the corpus.
struct ScalabilityCell {
  std::string model;
  int split = 1;  ///< 1, 2, 3 (thirds of the corpus)
  ml::Metrics metrics;
  double train_seconds = 0.0;
  double inference_seconds = 0.0;
};

std::vector<ScalabilityCell> scalability_runs(
    const std::filesystem::path& cache_dir);

/// Directory of the running binary (where caches and CSVs are written).
std::filesystem::path bench_output_dir(const char* argv0);

/// The 13 models of the post hoc analysis (Table II minus ESCORT and the
/// beta variants, per §IV-E).
std::vector<ModelEvaluation> post_hoc_subset(
    const std::vector<ModelEvaluation>& all);

}  // namespace phishinghook::bench
