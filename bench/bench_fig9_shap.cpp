// Fig. 9: SHAP values of the best classifier (HSC Random Forest) on a test
// split — the 20 most influential opcodes, with the per-sample beeswarm
// summarized as mean phi conditioned on low vs high opcode usage. The
// paper's marquee observation: rare use of GAS pushes predictions toward
// phishing (drainers skip explicit gas management).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/features.hpp"
#include "ml/cross_validation.hpp"
#include "ml/random_forest.hpp"
#include "ml/shap.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Fig. 9 — SHAP values of the Random Forest",
                      "Fig. 9, §IV-H");

  const bench::BuiltDataset dataset = bench::build_bench_dataset();
  const auto codes = core::codes_of(dataset.samples);
  const auto labels = core::labels_of(dataset.samples);

  // One fold, as in the paper ("the test set of a random fold").
  common::Rng rng(2024);
  const ml::Fold fold = ml::stratified_holdout(labels, 0.2, rng);

  std::vector<const evm::Bytecode*> train_codes, test_codes;
  std::vector<int> train_y;
  for (std::size_t i : fold.train_indices) {
    train_codes.push_back(codes[i]);
    train_y.push_back(labels[i]);
  }
  for (std::size_t i : fold.test_indices) test_codes.push_back(codes[i]);

  core::HistogramVocabulary vocab;
  vocab.fit(train_codes);
  const ml::Matrix train_x = vocab.transform_all(train_codes);
  const ml::Matrix test_x = vocab.transform_all(test_codes);

  ml::RandomForestConfig config;
  config.n_trees = 60;
  ml::RandomForestClassifier forest(config);
  forest.fit(train_x, train_y);

  std::printf("computing exact TreeSHAP for %zu test contracts...\n\n",
              test_x.rows());
  const auto explanations = ml::tree_shap_all(forest, test_x);

  // Rank features by mean |phi|.
  const std::size_t d = vocab.size();
  std::vector<double> mean_abs(d, 0.0);
  for (const ml::ShapExplanation& explanation : explanations) {
    for (std::size_t f = 0; f < d; ++f) {
      mean_abs[f] += std::fabs(explanation.values[f]);
    }
  }
  for (double& v : mean_abs) v /= static_cast<double>(explanations.size());
  std::vector<std::size_t> order(d);
  for (std::size_t i = 0; i < d; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return mean_abs[a] > mean_abs[b]; });

  core::TextTable table({"Opcode", "mean |phi|", "phi @ low usage",
                         "phi @ high usage", "Reading"});
  common::CsvWriter csv(bench::bench_output_dir(argv[0]) / "fig9_shap.csv");
  csv.write_row({"opcode", "mean_abs_phi", "phi_low_usage", "phi_high_usage"});

  const std::size_t top = std::min<std::size_t>(20, d);
  for (std::size_t k = 0; k < top; ++k) {
    const std::size_t f = order[k];
    // Median-split the test samples on feature usage; average phi per side
    // (a text rendering of the beeswarm's color axis).
    std::vector<double> values;
    for (std::size_t r = 0; r < test_x.rows(); ++r) {
      values.push_back(test_x.at(r, f));
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    double low_phi = 0.0, high_phi = 0.0;
    std::size_t low_n = 0, high_n = 0;
    for (std::size_t r = 0; r < test_x.rows(); ++r) {
      if (values[r] <= median) {
        low_phi += explanations[r].values[f];
        ++low_n;
      } else {
        high_phi += explanations[r].values[f];
        ++high_n;
      }
    }
    low_phi = low_n > 0 ? low_phi / static_cast<double>(low_n) : 0.0;
    high_phi = high_n > 0 ? high_phi / static_cast<double>(high_n) : 0.0;
    const char* reading =
        low_phi > high_phi ? "low usage -> phishing" : "high usage -> phishing";
    table.add_row({vocab.mnemonics()[f], common::format_fixed(mean_abs[f], 4),
                   common::format_fixed(low_phi, 4),
                   common::format_fixed(high_phi, 4), reading});
    csv.write_row({vocab.mnemonics()[f], std::to_string(mean_abs[f]),
                   std::to_string(low_phi), std::to_string(high_phi)});
  }
  std::printf("%s\n", table.render().c_str());

  // The paper's GAS observation, verified explicitly.
  for (std::size_t f = 0; f < d; ++f) {
    if (vocab.mnemonics()[f] != "GAS") continue;
    double low_phi = 0.0, high_phi = 0.0;
    std::size_t low_n = 0, high_n = 0;
    for (std::size_t r = 0; r < test_x.rows(); ++r) {
      if (test_x.at(r, f) <= 1.0) {  // rarely uses GAS
        low_phi += explanations[r].values[f];
        ++low_n;
      } else {
        high_phi += explanations[r].values[f];
        ++high_n;
      }
    }
    if (low_n > 0) low_phi /= static_cast<double>(low_n);
    if (high_n > 0) high_phi /= static_cast<double>(high_n);
    std::printf("GAS check (paper's worked example): phi(rare GAS) = %+.4f vs "
                "phi(frequent GAS) = %+.4f\n=> %s\n",
                low_phi, high_phi,
                low_phi > high_phi
                    ? "rare GAS usage pushes toward phishing, as in Fig. 9"
                    : "no GAS effect at this scale");
  }
  std::printf("\nmean base value E[f] = %.4f (mean phishing probability over "
              "the background)\n",
              explanations.empty() ? 0.0 : explanations[0].expected_value);
  return 0;
}
