// Parallel-training bench: fit wall-time for Random Forest and XGBoost at
// 1/2/4/8 threads, written as machine-readable BENCH_train.json next to the
// binary so the perf trajectory is tracked across PRs.
//
// On a single-core CI box every speedup is ~1.0 by construction; the JSON
// carries `hardware_threads` so downstream tooling knows whether a flat
// curve means "no cores" or "no scaling". Nothing here asserts a speedup.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/random_forest.hpp"
#include "ml/matrix.hpp"

namespace {

using phishinghook::common::Rng;
using phishinghook::common::ThreadPool;
using phishinghook::common::Timer;
using phishinghook::ml::Matrix;

struct Row {
  std::string model;
  std::size_t threads = 1;
  double ms = 0.0;
  double speedup = 1.0;
};

struct Dataset {
  Matrix x;
  std::vector<int> y;
};

Dataset make_dataset(std::size_t n, std::size_t d) {
  Rng rng(42);
  Dataset data;
  data.x = Matrix(n, d);
  data.y.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      data.x.at(r, c) = rng.uniform(-3.0, 3.0);
    }
    const double margin = data.x.at(r, 0) + 0.5 * data.x.at(r, 1) -
                          0.25 * data.x.at(r, 2) + rng.normal(0.0, 0.5);
    data.y.push_back(margin > 0.0 ? 1 : 0);
  }
  return data;
}

template <typename Fit>
std::vector<Row> sweep(const std::string& model, const Fit& fit) {
  const std::size_t thread_counts[] = {1, 2, 4, 8};
  std::vector<Row> rows;
  double baseline_ms = 0.0;
  for (std::size_t threads : thread_counts) {
    ThreadPool::set_global_threads(threads);
    Timer timer;
    fit();
    Row row;
    row.model = model;
    row.threads = threads;
    row.ms = timer.milliseconds();
    if (threads == 1) baseline_ms = row.ms;
    row.speedup = row.ms > 0.0 ? baseline_ms / row.ms : 1.0;
    rows.push_back(row);
    std::printf("  %-14s threads=%zu  %8.1f ms  speedup %.2fx\n",
                model.c_str(), threads, row.ms, row.speedup);
  }
  return rows;
}

}  // namespace

int main() {
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("bench_train_parallel: RF + XGBoost fit at 1/2/4/8 threads "
              "(%u hardware threads%s)\n",
              hardware,
              hardware <= 1 ? "; single-core box, speedups ~1.0 expected"
                            : "");

  const Dataset data = make_dataset(1500, 32);
  std::vector<Row> rows;

  {
    phishinghook::ml::RandomForestConfig config;
    config.n_trees = 32;
    config.max_depth = 12;
    const auto fit = [&] {
      phishinghook::ml::RandomForestClassifier model(config);
      model.fit(data.x, data.y);
    };
    const auto swept = sweep("random_forest", fit);
    rows.insert(rows.end(), swept.begin(), swept.end());
  }
  {
    phishinghook::ml::GradientBoostingConfig config;
    config.n_rounds = 40;
    config.max_depth = 5;
    const auto fit = [&] {
      phishinghook::ml::GradientBoostingClassifier model(config);
      model.fit(data.x, data.y);
    };
    const auto swept = sweep("xgboost", fit);
    rows.insert(rows.end(), swept.begin(), swept.end());
  }
  phishinghook::common::ThreadPool::set_global_threads(0);

  FILE* out = std::fopen("BENCH_train.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_train.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"train_parallel\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hardware);
  std::fprintf(out,
               "  \"note\": \"speedup is vs threads=1; ~1.0 on single-core "
               "CI\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"model\": \"%s\", \"threads\": %zu, \"ms\": %.3f, "
                 "\"speedup\": %.3f}%s\n",
                 row.model.c_str(), row.threads, row.ms, row.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_train.json (%zu rows)\n", rows.size());
  return 0;
}
