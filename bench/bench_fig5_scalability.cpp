// Fig. 5: performance metrics of the best model per category (Random
// Forest, ECA+EfficientNet, SCSGuard) across 1/3, 2/3 and 3/3 data splits.
// Expected shape: Random Forest stays high and stable; the deep models
// improve as the training set grows.
#include <cstdio>

#include "bench_common.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Fig. 5 — model scalability across data splits",
                      "Fig. 5, §IV-F");

  const auto runs = bench::scalability_runs(bench::bench_output_dir(argv[0]));

  core::TextTable table({"Model", "Split", "Accuracy (%)", "F1", "Precision",
                         "Recall"});
  for (const bench::ScalabilityCell& cell : runs) {
    table.add_row({cell.model, std::to_string(cell.split) + "/3",
                   core::percent(cell.metrics.accuracy),
                   core::percent(cell.metrics.f1),
                   core::percent(cell.metrics.precision),
                   core::percent(cell.metrics.recall)});
  }
  std::printf("%s\n", table.render().c_str());

  // Improvement from the smallest to the full split, per model.
  core::TextTable deltas({"Model", "Accuracy 1/3 (%)", "Accuracy 3/3 (%)",
                          "Delta (pts)"});
  for (const char* name : {"Random Forest", "ECA+EfficientNet", "SCSGuard"}) {
    double first = 0.0, last = 0.0;
    for (const bench::ScalabilityCell& cell : runs) {
      if (cell.model != name) continue;
      if (cell.split == 1) first = cell.metrics.accuracy;
      if (cell.split == 3) last = cell.metrics.accuracy;
    }
    deltas.add_row({name, core::percent(first), core::percent(last),
                    common::format_fixed(100.0 * (last - first), 2)});
  }
  std::printf("%s\n", deltas.render().c_str());
  std::printf(
      "paper reference: Random Forest is the most accurate at every split\n"
      "and stays stable; SCSGuard and ECA+EfficientNet scale better with\n"
      "more samples (Take-away 3).\n");
  return 0;
}
