// Fig. 8: time-resistance analysis (after TESSERACT) — train on
// 2023-10..2024-01, evaluate on nine monthly test sets 2024-02..2024-10,
// and report the phishing-F1 Area Under Time (AUT). Expected shape: mild
// decay driven by the generator's rising obfuscation, with
// AUT(Random Forest) > AUT(SCSGuard) > AUT(ECA+EfficientNet).
#include <cstdio>

#include "bench_common.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Fig. 8 — time-resistance over nine months",
                      "Fig. 8, §IV-G");

  // The dedicated temporal dataset: benign samples match the phishing
  // temporal profile (the paper built a second 7,000-sample dataset).
  const bench::BuiltDataset dataset =
      bench::build_bench_dataset(/*temporal=*/true);
  const synth::TemporalSplit split = synth::temporal_split(dataset.samples);
  std::printf("train: %zu contracts (2023-10..2024-01); test: nine monthly "
              "sets 2024-02..2024-10\n\n",
              split.train.size());

  // The temporal training window holds only the first four months'
  // contracts (~a quarter of the corpus), so the deep models get a larger
  // epoch budget here at unchanged wall-clock cost.
  auto params = common::current_scale_params();
  params.nn_epochs *= 3;
  const auto specs = core::all_models(params);
  const core::ExperimentHarness harness;
  std::vector<std::vector<const synth::LabeledContract*>> tests(
      split.monthly_tests.begin(), split.monthly_tests.end());

  const std::vector<std::string> models = {"Random Forest", "SCSGuard",
                                           "ECA+EfficientNet"};
  core::TextTable table({"Month", "RF F1", "SCSGuard F1", "ECA+EffNet F1",
                         "RF Acc", "SCSGuard Acc", "ECA+EffNet Acc"});
  common::CsvWriter csv(bench::bench_output_dir(argv[0]) /
                        "fig8_time_resistance.csv");
  csv.write_row({"model", "month", "accuracy", "f1", "precision", "recall"});

  std::vector<std::vector<ml::Metrics>> per_model;
  for (const std::string& name : models) {
    per_model.push_back(
        harness.evaluate_temporal(core::find_model(specs, name), split.train,
                                  tests));
    for (std::size_t m = 0; m < per_model.back().size(); ++m) {
      const ml::Metrics& metrics = per_model.back()[m];
      csv.write_row({name, chain::Month{static_cast<int>(m) + 4}.label(),
                     std::to_string(metrics.accuracy),
                     std::to_string(metrics.f1),
                     std::to_string(metrics.precision),
                     std::to_string(metrics.recall)});
    }
  }

  for (std::size_t m = 0; m < 9; ++m) {
    table.add_row({chain::Month{static_cast<int>(m) + 4}.label(),
                   core::percent(per_model[0][m].f1),
                   core::percent(per_model[1][m].f1),
                   core::percent(per_model[2][m].f1),
                   core::percent(per_model[0][m].accuracy),
                   core::percent(per_model[1][m].accuracy),
                   core::percent(per_model[2][m].accuracy)});
  }
  std::printf("%s\n", table.render().c_str());

  core::TextTable aut({"Model", "AUT (phishing F1)"});
  for (std::size_t i = 0; i < models.size(); ++i) {
    std::vector<double> f1_series;
    for (const ml::Metrics& metrics : per_model[i]) {
      f1_series.push_back(metrics.f1);
    }
    aut.add_row({models[i],
                 common::format_fixed(ml::area_under_time(f1_series), 2)});
  }
  std::printf("%s\n", aut.render().c_str());
  std::printf(
      "paper reference: AUT = 0.89 (Random Forest) > 0.84 (SCSGuard) >\n"
      "0.79 (ECA+EfficientNet); detection stays stable with only a slight\n"
      "decline as attack patterns evolve (Take-away 4).\n");
  return 0;
}
