// Microbenchmarks (google-benchmark) for the substrate primitives the
// pipeline leans on: Keccak-256, U256 arithmetic, disassembly, interpreter
// execution, feature extraction. Not a paper artifact — engineering
// telemetry for the library itself.
#include <benchmark/benchmark.h>

#include "chain/state.hpp"
#include "core/features.hpp"
#include "evm/disassembler.hpp"
#include "evm/interpreter.hpp"
#include "evm/keccak.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/contract_synthesizer.hpp"

namespace {

using namespace phishinghook;

const synth::SynthContract& sample_contract() {
  static const synth::SynthContract* contract = [] {
    common::Rng rng(7);
    static const synth::ContractSynthesizer synth;
    return new synth::SynthContract(synth.benign(chain::Month{3}, rng));
  }();
  return *contract;
}

void BM_Keccak256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evm::keccak256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Keccak256_1KiB);

void BM_U256_Mul(benchmark::State& state) {
  const evm::U256 a = evm::U256::from_string(
      "0xdeadbeefcafebabe1234567890abcdef00112233445566778899aabbccddeeff");
  evm::U256 acc(1);
  for (auto _ : state) {
    acc *= a;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_U256_Mul);

void BM_U256_Div(benchmark::State& state) {
  const evm::U256 n = evm::U256::max();
  const evm::U256 d = evm::U256::from_string("0x10000000000000001");
  for (auto _ : state) {
    benchmark::DoNotOptimize(n / d);
  }
}
BENCHMARK(BM_U256_Div);

void BM_Disassemble_Contract(benchmark::State& state) {
  const evm::Disassembler disassembler;
  const evm::Bytecode& code = sample_contract().runtime;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disassembler.disassemble(code));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(code.size()));
}
BENCHMARK(BM_Disassemble_Contract);

void BM_Interpreter_Dispatch(benchmark::State& state) {
  // A full dispatcher round trip into the fallback (unknown selector).
  chain::State world;
  const evm::Address contract = world.install_code(
      evm::Address::from_hex("0x00000000000000000000000000000000000000bb"),
      sample_contract().runtime);
  evm::Message msg;
  msg.caller = evm::Address::from_hex(
      "0x00000000000000000000000000000000000000aa");
  msg.origin = msg.caller;
  msg.code_address = contract;
  msg.storage_address = contract;
  msg.data = {0xde, 0xad, 0xbe, 0xef};
  msg.gas = 1'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.call(msg, evm::CallKind::kCall, 0));
  }
}
BENCHMARK(BM_Interpreter_Dispatch);

void BM_HistogramExtraction(benchmark::State& state) {
  const evm::Bytecode& code = sample_contract().runtime;
  core::HistogramVocabulary vocab;
  vocab.fit({&code});
  for (auto _ : state) {
    benchmark::DoNotOptimize(vocab.transform(code));
  }
}
BENCHMARK(BM_HistogramExtraction);

void BM_R2D2ImageEncoding(benchmark::State& state) {
  const evm::Bytecode& code = sample_contract().runtime;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::r2d2_image(code, 16));
  }
}
BENCHMARK(BM_R2D2ImageEncoding);

void BM_SynthesizeBenignContract(benchmark::State& state) {
  const synth::ContractSynthesizer synth;
  common::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.benign(chain::Month{5}, rng));
  }
}
BENCHMARK(BM_SynthesizeBenignContract);

// --- telemetry overhead (DESIGN.md section 9 quotes these) ------------------

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Tracer::global().disable();
  for (auto _ : state) {
    obs::ScopedSpan span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Tracer::global().enable(1024);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
  obs::Tracer::global().disable();
  obs::Tracer::global().clear();
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter counter =
      obs::MetricsRegistry::global().counter("bench_counter_total");
  for (auto _ : state) {
    counter.inc();
  }
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::LatencyHistogram& histogram =
      obs::MetricsRegistry::global().histogram("bench_histogram_us");
  double v = 1.0;
  for (auto _ : state) {
    histogram.record(v);
    v = v < 1e6 ? v * 1.1 : 1.0;
  }
}
BENCHMARK(BM_ObsHistogramRecord);

}  // namespace

BENCHMARK_MAIN();
