// Fig. 4: Dunn's test for pairwise comparison between each model pair's
// metrics (Holm-Bonferroni adjusted), with the paper's within- vs
// cross-category significant-pair breakdown.
#include <cstdio>

#include "bench_common.hpp"

namespace {

const char* significance_stars(double p_adjusted) {
  if (p_adjusted < 0.0001) return "****";
  if (p_adjusted < 0.001) return "*** ";
  if (p_adjusted < 0.01) return "**  ";
  if (p_adjusted < 0.05) return "*   ";
  return "ns  ";
}

}  // namespace

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Fig. 4 — Dunn's pairwise comparisons",
                      "Fig. 4, §IV-E");

  const auto all = bench::table2_trials(bench::bench_output_dir(argv[0]));
  const auto models = bench::post_hoc_subset(all);
  const core::PostHocReport report = core::post_hoc_analysis(models);

  // Matrix for the accuracy metric (the paper shows all four; accuracy is
  // printed as the representative grid, all metrics go to CSV).
  const core::MetricDunn& accuracy = report.dunn.front();
  std::printf("pairwise significance grid (accuracy; row vs column):\n\n");
  std::printf("%-22s", "");
  for (std::size_t m = 0; m < models.size(); ++m) {
    std::printf("%4zu ", m);
  }
  std::printf("\n");
  std::vector<std::vector<std::string>> grid(
      models.size(), std::vector<std::string>(models.size(), "  . "));
  for (const stats::DunnPair& pair : accuracy.result.pairs) {
    grid[pair.group_a][pair.group_b] = significance_stars(pair.p_adjusted);
    grid[pair.group_b][pair.group_a] = significance_stars(pair.p_adjusted);
  }
  for (std::size_t row = 0; row < models.size(); ++row) {
    std::printf("%2zu %-19s", row, models[row].model.substr(0, 19).c_str());
    for (std::size_t col = 0; col < models.size(); ++col) {
      std::printf("%s ", grid[row][col].c_str());
    }
    std::printf("\n");
  }
  std::printf("\nlegend: **** p<1e-4, *** p<1e-3, ** p<0.01, * p<0.05, ns "
              "not significant (Holm-adjusted)\n\n");

  core::TextTable summary({"Metric", "Significant pairs (%)",
                           "Within-category (%)", "Cross-category (%)"});
  common::CsvWriter csv(bench::bench_output_dir(argv[0]) / "fig4_dunn.csv");
  csv.write_row({"metric", "model_a", "model_b", "z", "p", "p_adj"});
  for (const core::MetricDunn& metric : report.dunn) {
    summary.add_row({metric.metric,
                     core::percent(metric.significant_fraction),
                     core::percent(metric.within_category_fraction),
                     core::percent(metric.cross_category_fraction)});
    for (const stats::DunnPair& pair : metric.result.pairs) {
      csv.write_row({metric.metric, models[pair.group_a].model,
                     models[pair.group_b].model, std::to_string(pair.z),
                     std::to_string(pair.p_value),
                     std::to_string(pair.p_adjusted)});
    }
  }
  std::printf("%s\n", summary.render().c_str());
  std::printf(
      "paper reference: 65.38%% of pairs significant for accuracy/F1/\n"
      "precision (61.54%% recall); within-category 33-41%%, cross-category\n"
      "76-80%% — divergence concentrates *across* model families.\n");
  return 0;
}
