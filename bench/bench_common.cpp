#include "bench_common.hpp"

#include <cstdio>

#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "ml/cross_validation.hpp"

namespace phishinghook::bench {

using common::ScaleParams;

void print_banner(const std::string& title, const std::string& paper_ref) {
  const auto params = common::current_scale_params();
  std::printf("=== PhishingHook reproduction: %s ===\n", title.c_str());
  std::printf("paper artifact: %s\n", paper_ref.c_str());
  std::printf(
      "scale: %s (corpus %zu, %d folds x %d runs, %d NN epochs, image %zux%zu,"
      " seq cap %zu) — set PHOOK_SCALE=smoke|small|medium|full\n\n",
      common::scale_name(common::experiment_scale()).c_str(),
      params.corpus_size, params.folds, params.runs, params.nn_epochs,
      params.image_side, params.image_side, params.max_sequence);
}

BuiltDataset build_bench_dataset(bool temporal) {
  const auto params = common::current_scale_params();
  synth::DatasetConfig config;
  config.target_size = params.corpus_size;
  config.seed = 42;
  config.match_benign_temporal = temporal;
  return synth::DatasetBuilder(config).build();
}

std::filesystem::path bench_output_dir(const char* argv0) {
  const std::filesystem::path self(argv0);
  if (self.has_parent_path()) return self.parent_path();
  return std::filesystem::current_path();
}

namespace {

std::filesystem::path trials_cache_path(const std::filesystem::path& dir) {
  return dir / ("table2_trials_" +
                common::scale_name(common::experiment_scale()) + ".csv");
}

std::filesystem::path scalability_cache_path(
    const std::filesystem::path& dir) {
  return dir / ("scalability_" +
                common::scale_name(common::experiment_scale()) + ".csv");
}

core::ModelCategory category_from(const std::string& label) {
  if (label == "Histogram") return core::ModelCategory::kHistogram;
  if (label == "Vision") return core::ModelCategory::kVision;
  if (label == "Language") return core::ModelCategory::kLanguage;
  return core::ModelCategory::kVulnerability;
}

std::optional<std::vector<ModelEvaluation>> load_trials(
    const std::filesystem::path& path) {
  if (!std::filesystem::exists(path)) return std::nullopt;
  const auto table = common::read_csv_file(path);
  std::vector<ModelEvaluation> out;
  for (const auto& row : table.rows) {
    const std::string& model = row[0];
    if (out.empty() || out.back().model != model) {
      ModelEvaluation evaluation;
      evaluation.model = model;
      evaluation.category = category_from(row[1]);
      out.push_back(std::move(evaluation));
    }
    core::TrialResult trial;
    trial.run = std::stoi(row[2]);
    trial.fold = std::stoi(row[3]);
    trial.metrics.accuracy = std::stod(row[4]);
    trial.metrics.f1 = std::stod(row[5]);
    trial.metrics.precision = std::stod(row[6]);
    trial.metrics.recall = std::stod(row[7]);
    trial.train_seconds = std::stod(row[8]);
    trial.inference_seconds = std::stod(row[9]);
    out.back().trials.push_back(trial);
  }
  return out.empty() ? std::nullopt : std::optional(std::move(out));
}

void save_trials(const std::filesystem::path& path,
                 const std::vector<ModelEvaluation>& evaluations) {
  common::CsvWriter writer(path);
  writer.write_row({"model", "category", "run", "fold", "accuracy", "f1",
                    "precision", "recall", "train_s", "inference_s"});
  for (const ModelEvaluation& evaluation : evaluations) {
    for (const core::TrialResult& trial : evaluation.trials) {
      writer.write_row(
          {evaluation.model, std::string(category_label(evaluation.category)),
           std::to_string(trial.run), std::to_string(trial.fold),
           std::to_string(trial.metrics.accuracy),
           std::to_string(trial.metrics.f1),
           std::to_string(trial.metrics.precision),
           std::to_string(trial.metrics.recall),
           std::to_string(trial.train_seconds),
           std::to_string(trial.inference_seconds)});
    }
  }
}

}  // namespace

std::vector<ModelEvaluation> table2_trials(
    const std::filesystem::path& cache_dir) {
  const auto cache = trials_cache_path(cache_dir);
  if (auto loaded = load_trials(cache)) {
    std::printf("[using cached trials: %s]\n\n", cache.string().c_str());
    return *loaded;
  }

  const auto params = common::current_scale_params();
  const BuiltDataset dataset = build_bench_dataset();
  const auto specs = core::all_models(params);
  core::ExperimentConfig config;
  config.folds = params.folds;
  config.runs = params.runs;
  config.seed = 1234;
  const core::ExperimentHarness harness(config);

  std::vector<ModelEvaluation> out;
  for (const core::ModelSpec& spec : specs) {
    common::Timer timer;
    out.push_back(harness.evaluate(spec, dataset.samples));
    std::fprintf(stderr, "[trials] %-20s mean acc %.4f (%.1fs)\n",
                 spec.name.c_str(), out.back().mean().accuracy,
                 timer.seconds());
  }
  save_trials(cache, out);
  return out;
}

std::vector<ScalabilityCell> scalability_runs(
    const std::filesystem::path& cache_dir) {
  const auto cache = scalability_cache_path(cache_dir);
  if (std::filesystem::exists(cache)) {
    std::printf("[using cached scalability runs: %s]\n\n",
                cache.string().c_str());
    const auto table = common::read_csv_file(cache);
    std::vector<ScalabilityCell> out;
    for (const auto& row : table.rows) {
      ScalabilityCell cell;
      cell.model = row[0];
      cell.split = std::stoi(row[1]);
      cell.metrics.accuracy = std::stod(row[2]);
      cell.metrics.f1 = std::stod(row[3]);
      cell.metrics.precision = std::stod(row[4]);
      cell.metrics.recall = std::stod(row[5]);
      cell.train_seconds = std::stod(row[6]);
      cell.inference_seconds = std::stod(row[7]);
      out.push_back(std::move(cell));
    }
    return out;
  }

  const auto params = common::current_scale_params();
  const BuiltDataset dataset = build_bench_dataset();
  const auto specs = core::all_models(params);
  // Per-category champions (paper §IV-F): HSC / VM / LM best performers.
  const std::vector<std::string> champions = {"Random Forest",
                                              "ECA+EfficientNet", "SCSGuard"};
  std::vector<ScalabilityCell> out;
  for (int split = 1; split <= 3; ++split) {
    // Nested splits: 1/3 <= 2/3 <= 3/3 of the shuffled corpus.
    const std::size_t count = dataset.samples.size() * static_cast<std::size_t>(split) / 3;
    std::vector<synth::LabeledContract> subset(
        dataset.samples.begin(),
        dataset.samples.begin() + static_cast<std::ptrdiff_t>(count));
    std::vector<int> labels = core::labels_of(subset);
    common::Rng rng(17);
    const ml::Fold holdout = ml::stratified_holdout(labels, 0.2, rng);

    std::vector<const evm::Bytecode*> codes = core::codes_of(subset);
    std::vector<const evm::Bytecode*> train_codes, test_codes;
    std::vector<int> train_y, test_y;
    for (std::size_t i : holdout.train_indices) {
      train_codes.push_back(codes[i]);
      train_y.push_back(labels[i]);
    }
    for (std::size_t i : holdout.test_indices) {
      test_codes.push_back(codes[i]);
      test_y.push_back(labels[i]);
    }

    for (const std::string& name : champions) {
      auto model = core::find_model(specs, name).make(91 + static_cast<std::uint64_t>(split));
      common::Timer train_timer;
      model->fit(train_codes, train_y);
      ScalabilityCell cell;
      cell.model = name;
      cell.split = split;
      cell.train_seconds = train_timer.seconds();
      common::Timer inference_timer;
      const auto predictions = model->predict(test_codes);
      cell.inference_seconds = inference_timer.seconds();
      cell.metrics = ml::compute_metrics(test_y, predictions);
      out.push_back(std::move(cell));
      std::fprintf(stderr, "[scalability] %-18s split %d/3 acc %.4f\n",
                   name.c_str(), split, out.back().metrics.accuracy);
    }
  }

  common::CsvWriter writer(cache);
  writer.write_row({"model", "split", "accuracy", "f1", "precision", "recall",
                    "train_s", "inference_s"});
  for (const ScalabilityCell& cell : out) {
    writer.write_row({cell.model, std::to_string(cell.split),
                      std::to_string(cell.metrics.accuracy),
                      std::to_string(cell.metrics.f1),
                      std::to_string(cell.metrics.precision),
                      std::to_string(cell.metrics.recall),
                      std::to_string(cell.train_seconds),
                      std::to_string(cell.inference_seconds)});
  }
  return out;
}

std::vector<ModelEvaluation> post_hoc_subset(
    const std::vector<ModelEvaluation>& all) {
  std::vector<ModelEvaluation> out;
  for (const ModelEvaluation& evaluation : all) {
    if (evaluation.model == "ESCORT" || evaluation.model == "GPT-2 (beta)" ||
        evaluation.model == "T5 (beta)") {
      continue;
    }
    out.push_back(evaluation);
  }
  return out;
}

}  // namespace phishinghook::bench
