// Cost-aware cascade bench: throughput and accuracy of the stage-0 +
// heavy-stage cascade across uncertainty-band widths, written as
// BENCH_cascade.json next to the binary.
//
// The paper's Fig. 7 cost hierarchy (LMs >> VMs >> HSCs) motivates the
// cascade: CatBoost through the flat-tree path scores millions of rows per
// second while a sequence model manages thousands, so sending only the
// band of uncertain rows to the heavy model should recover most of the
// cheap model's throughput at (nearly) the ensemble's accuracy. Per band
// the bench emits end-to-end rows/s, the escalation rate, per-stage row
// counts, and held-out accuracy against the best single model; ci.sh
// gates on at least one enabled band clearing the 2x-throughput /
// -0.5 pp-accuracy floor, and on the full [0, 1] band actually escalating
// every row (proof the escalation path ran).
//
// Usage: bench_cascade [--smoke]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "ml/catboost.hpp"
#include "ml/models/scsguard.hpp"
#include "serve/cascade.hpp"

namespace {

using namespace phishinghook;

/// Non-owning forwarder so one fitted model can sit behind many cascade
/// configurations without retraining (CascadeScorer owns its stages).
class BorrowedScorer final : public ml::Scorer {
 public:
  explicit BorrowedScorer(ml::Scorer& inner) : inner_(&inner) {}
  void score_batch(const ml::BytecodeBatchView& view,
                   std::span<ml::ScoredRow> out) override {
    inner_->score_batch(view, out);
  }
  std::string name() const override { return inner_->name(); }
  const ml::FlatTreeEnsemble* flat_ensemble() const override {
    return inner_->flat_ensemble();
  }

 private:
  ml::Scorer* inner_;
};

double accuracy_of(const std::vector<ml::ScoredRow>& rows,
                   const std::vector<int>& labels) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if ((rows[i].probability >= 0.5 ? 1 : 0) == labels[i]) ++correct;
  }
  return rows.empty() ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(rows.size());
}

template <typename Fn>
double best_seconds(int reps, int inner, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    common::Timer timer;
    for (int i = 0; i < inner; ++i) fn();
    best = std::min(best, timer.seconds() / inner);
  }
  return best;
}

struct BandResult {
  double lo = 0.0;
  double hi = 0.0;
  bool enabled = false;
  double rows_per_s = 0.0;
  double escalation_rate = 0.0;
  double degraded = 0.0;
  std::vector<std::uint64_t> stage_rows;
  double accuracy = 0.0;
  double accuracy_delta_pp = 0.0;  ///< vs best single model, percent points
  double speedup_vs_heavy = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_banner("Cost-aware cascade (stage-0 HSC + heavy escalation)",
                      "serving-path optimization over Fig. 7's cost gap");

  // --- dataset: train split fits both stages, held-out split scores ------
  const synth::BuiltDataset data = bench::build_bench_dataset();
  const std::size_t n_total = data.samples.size();
  const std::size_t n_train = (n_total * 7) / 10;
  std::vector<const evm::Bytecode*> train_codes, test_codes;
  std::vector<int> train_labels, test_labels;
  for (std::size_t i = 0; i < n_total; ++i) {
    const synth::LabeledContract& sample = data.samples[i];
    if (i < n_train) {
      train_codes.push_back(&sample.code);
      train_labels.push_back(sample.phishing ? 1 : 0);
    } else {
      test_codes.push_back(&sample.code);
      test_labels.push_back(sample.phishing ? 1 : 0);
    }
  }
  std::printf("corpus: %zu train / %zu held-out%s\n", train_codes.size(),
              test_codes.size(), smoke ? " [smoke]" : "");

  // --- stage 0: CatBoost behind the histogram vocabulary ------------------
  core::HistogramAdapter stage0(std::make_unique<ml::CatBoostClassifier>(),
                                "CatBoost");
  common::Timer t0;
  stage0.fit(train_codes, train_labels);
  std::printf("stage 0 (%s) trained in %.2fs\n", stage0.name().c_str(),
              t0.seconds());

  // --- heavy stage: SCSGuard over n-gram tokens ---------------------------
  ml::models::SequenceModelConfig seq_config;
  seq_config.vocab = smoke ? 512 : 2048;
  seq_config.dim = smoke ? 16 : 32;
  seq_config.max_len = smoke ? 64 : 128;
  seq_config.epochs = smoke ? 1 : 3;
  seq_config.seed = 42;
  core::SequenceAdapter heavy(
      std::make_unique<ml::models::ScsGuardModel>(seq_config), "SCSGuard",
      core::Tokenization::kNgram, core::ModelCategory::kLanguage,
      seq_config.vocab);
  common::Timer t1;
  heavy.fit(train_codes, train_labels);
  std::printf("heavy stage (%s) trained in %.2fs\n\n", heavy.name().c_str(),
              t1.seconds());

  const ml::BytecodeBatchView test_view(test_codes.data(), test_codes.size());
  const double n_test = static_cast<double>(test_codes.size());
  const int reps = smoke ? 2 : 3;
  const int cheap_inner = smoke ? 5 : 20;
  const int heavy_inner = smoke ? 1 : 2;

  // --- single-model baselines --------------------------------------------
  std::vector<ml::ScoredRow> rows(test_codes.size());
  const double stage0_s = best_seconds(reps, cheap_inner, [&] {
    stage0.score_batch(test_view, rows);
  });
  const double stage0_rows_per_s = n_test / stage0_s;
  const double stage0_accuracy = accuracy_of(rows, test_labels);

  const double heavy_s = best_seconds(reps, heavy_inner, [&] {
    heavy.score_batch(test_view, rows);
  });
  const double heavy_rows_per_s = n_test / heavy_s;
  const double heavy_accuracy = accuracy_of(rows, test_labels);

  const bool stage0_best = stage0_accuracy >= heavy_accuracy;
  const double best_single_accuracy =
      stage0_best ? stage0_accuracy : heavy_accuracy;
  const std::string best_single_model =
      stage0_best ? stage0.name() : heavy.name();

  std::printf("%-10s %12.0f rows/s  accuracy %.4f\n", stage0.name().c_str(),
              stage0_rows_per_s, stage0_accuracy);
  std::printf("%-10s %12.0f rows/s  accuracy %.4f\n\n", heavy.name().c_str(),
              heavy_rows_per_s, heavy_accuracy);

  // --- band sweep ---------------------------------------------------------
  // Disabled (lo > hi), widths centered on the 0.5 decision boundary, and
  // the degenerate [0, 1] band that escalates every row (the bench's proof
  // that the escalation path actually runs).
  struct Band {
    double lo, hi;
  };
  std::vector<Band> bands = {{1.0, 0.0}};
  for (const double width : {0.02, 0.1, 0.2, 0.3, 0.5}) {
    bands.push_back({0.5 - width / 2.0, 0.5 + width / 2.0});
  }
  bands.push_back({0.0, 1.0});

  std::printf("%8s %8s %12s %8s %10s %10s %10s\n", "lo", "hi", "rows/s",
              "esc%", "accuracy", "d_pp", "vs_heavy");
  std::vector<BandResult> results;
  for (const Band& band : bands) {
    serve::CascadeConfig config;
    config.lo = band.lo;
    config.hi = band.hi;
    std::vector<std::unique_ptr<ml::Scorer>> stages;
    stages.push_back(std::make_unique<BorrowedScorer>(stage0));
    stages.push_back(std::make_unique<BorrowedScorer>(heavy));
    serve::CascadeScorer cascade(std::move(stages), config);

    // One untimed pass pins the per-pass stage traffic and the accuracy;
    // the timed passes only shift the counters proportionally, so the
    // escalation *rate* they report is unchanged.
    cascade.score_batch(test_view, rows);
    const serve::CascadeStats pass_stats = cascade.stats();

    const int inner = config.enabled() ? heavy_inner : cheap_inner;
    const double seconds = best_seconds(reps, inner, [&] {
      cascade.score_batch(test_view, rows);
    });

    BandResult result;
    result.lo = config.lo;
    result.hi = config.hi;
    result.enabled = config.enabled();
    result.rows_per_s = n_test / seconds;
    result.escalation_rate = pass_stats.escalation_rate();
    result.degraded = static_cast<double>(pass_stats.degraded_total);
    for (const serve::CascadeStageStats& stage : pass_stats.stages) {
      result.stage_rows.push_back(stage.rows);
    }
    result.accuracy = accuracy_of(rows, test_labels);
    result.accuracy_delta_pp =
        (result.accuracy - best_single_accuracy) * 100.0;
    result.speedup_vs_heavy = result.rows_per_s / heavy_rows_per_s;
    results.push_back(result);

    std::printf("%8.2f %8.2f %12.0f %7.1f%% %10.4f %+10.2f %9.2fx\n",
                result.lo, result.hi, result.rows_per_s,
                100.0 * result.escalation_rate, result.accuracy,
                result.accuracy_delta_pp, result.speedup_vs_heavy);
  }

  // --- machine-readable exposition ---------------------------------------
  FILE* out = std::fopen("BENCH_cascade.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cascade.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"cascade\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"test_rows\": %zu,\n", test_codes.size());
  std::fprintf(out,
               "  \"models\": {\"stage0\": \"%s\", \"heavy\": \"%s\"},\n",
               stage0.name().c_str(), heavy.name().c_str());
  std::fprintf(out, "  \"stage0_rows_per_s\": %.1f,\n", stage0_rows_per_s);
  std::fprintf(out, "  \"heavy_rows_per_s\": %.1f,\n", heavy_rows_per_s);
  std::fprintf(out, "  \"stage0_accuracy\": %.6f,\n", stage0_accuracy);
  std::fprintf(out, "  \"heavy_accuracy\": %.6f,\n", heavy_accuracy);
  std::fprintf(out, "  \"best_single_model\": \"%s\",\n",
               best_single_model.c_str());
  std::fprintf(out, "  \"best_single_accuracy\": %.6f,\n",
               best_single_accuracy);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BandResult& r = results[i];
    std::string stage_rows = "[";
    for (std::size_t s = 0; s < r.stage_rows.size(); ++s) {
      if (s != 0) stage_rows += ", ";
      stage_rows += std::to_string(r.stage_rows[s]);
    }
    stage_rows += "]";
    std::fprintf(out,
                 "    {\"band_lo\": %.4f, \"band_hi\": %.4f, "
                 "\"enabled\": %s, \"rows_per_s\": %.1f, "
                 "\"escalation_rate\": %.6f, \"degraded_rows\": %.0f, "
                 "\"stage_rows\": %s, \"accuracy\": %.6f, "
                 "\"accuracy_delta_pp\": %.4f, "
                 "\"speedup_vs_heavy\": %.4f}%s\n",
                 r.lo, r.hi, r.enabled ? "true" : "false", r.rows_per_s,
                 r.escalation_rate, r.degraded, stage_rows.c_str(),
                 r.accuracy, r.accuracy_delta_pp, r.speedup_vs_heavy,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_cascade.json (%zu bands)\n", results.size());
  return 0;
}
