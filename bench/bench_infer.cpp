// Ensemble-inference bench: per-row node walks (predict_proba_nodewalk)
// vs the flattened SoA batched traversal (predict_proba) for all four tree
// ensembles, written as BENCH_infer.json next to the binary.
//
// The nodewalk and flat single-thread rows run on one thread so rows/s and
// the speedup ratio isolate the memory-layout effect; a flat_parallel row
// reports the production path on the default pool.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "ml/catboost.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/lightgbm.hpp"
#include "ml/matrix.hpp"
#include "ml/random_forest.hpp"

namespace {

using phishinghook::common::Rng;
using phishinghook::common::ThreadPool;
using phishinghook::common::Timer;
using phishinghook::ml::Matrix;

struct Row {
  std::string model;
  std::string path;
  std::size_t threads = 1;
  double ms = 0.0;        // one predict over the whole matrix
  double rows_per_s = 0.0;
  double speedup = 1.0;   // vs the model's single-thread nodewalk
};

struct Dataset {
  Matrix x;
  std::vector<int> y;
};

Dataset make_dataset(std::size_t n, std::size_t d) {
  Rng rng(42);
  Dataset data;
  data.x = Matrix(n, d);
  data.y.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      data.x.at(r, c) = rng.uniform(-3.0, 3.0);
    }
    const double margin = data.x.at(r, 0) + 0.5 * data.x.at(r, 1) -
                          0.25 * data.x.at(r, 2) + rng.normal(0.0, 0.5);
    data.y.push_back(margin > 0.0 ? 1 : 0);
  }
  return data;
}

template <typename Fn>
double best_ms(int reps, int inner, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    for (int i = 0; i < inner; ++i) fn();
    best = std::min(best, timer.milliseconds() / inner);
  }
  return best;
}

template <typename Model>
void bench_model(const std::string& name, const Model& model, const Matrix& x,
                 int reps, int inner, double& checksum,
                 std::vector<Row>& rows) {
  const double n_rows = static_cast<double>(x.rows());
  ThreadPool::set_global_threads(1);
  Row walk;
  walk.model = name;
  walk.path = "nodewalk";
  walk.ms = best_ms(reps, inner, [&] {
    checksum += model.predict_proba_nodewalk(x)[0];
  });
  walk.rows_per_s = walk.ms > 0.0 ? n_rows / (walk.ms / 1000.0) : 0.0;
  rows.push_back(walk);

  Row flat;
  flat.model = name;
  flat.path = "flat";
  flat.ms = best_ms(reps, inner, [&] {
    checksum += model.predict_proba(x)[0];
  });
  flat.rows_per_s = flat.ms > 0.0 ? n_rows / (flat.ms / 1000.0) : 0.0;
  flat.speedup = flat.ms > 0.0 ? walk.ms / flat.ms : 1.0;
  rows.push_back(flat);

  ThreadPool::set_global_threads(0);
  Row par;
  par.model = name;
  par.path = "flat_parallel";
  par.threads = std::max(1u, std::thread::hardware_concurrency());
  par.ms = best_ms(reps, inner, [&] {
    checksum += model.predict_proba(x)[0];
  });
  par.rows_per_s = par.ms > 0.0 ? n_rows / (par.ms / 1000.0) : 0.0;
  par.speedup = par.ms > 0.0 ? walk.ms / par.ms : 1.0;
  rows.push_back(par);

  for (const Row* row : {&walk, &flat, &par}) {
    std::printf("  %-14s %-14s threads=%zu  %9.3f ms  %12.0f rows/s  %5.1fx\n",
                row->model.c_str(), row->path.c_str(), row->threads, row->ms,
                row->rows_per_s, row->speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::size_t n = smoke ? 600 : 4000;
  const Dataset data = make_dataset(n, 48);
  const int reps = smoke ? 3 : 5;
  const int inner = smoke ? 3 : 5;
  std::printf("bench_infer: %zu rows x 48 features%s\n", n,
              smoke ? " [smoke]" : "");

  double checksum = 0.0;
  std::vector<Row> rows;

  {
    phishinghook::ml::RandomForestConfig config;
    config.n_trees = smoke ? 24 : 64;
    config.max_depth = 12;
    phishinghook::ml::RandomForestClassifier model(config);
    model.fit(data.x, data.y);
    bench_model("random_forest", model, data.x, reps, inner, checksum, rows);
  }
  {
    phishinghook::ml::GradientBoostingConfig config;
    config.n_rounds = smoke ? 30 : 80;
    config.max_depth = 5;
    phishinghook::ml::GradientBoostingClassifier model(config);
    model.fit(data.x, data.y);
    bench_model("xgboost", model, data.x, reps, inner, checksum, rows);
  }
  {
    phishinghook::ml::LightGbmConfig config;
    config.n_rounds = smoke ? 30 : 80;
    phishinghook::ml::LightGbmClassifier model(config);
    model.fit(data.x, data.y);
    bench_model("lightgbm", model, data.x, reps, inner, checksum, rows);
  }
  {
    phishinghook::ml::CatBoostConfig config;
    config.n_rounds = smoke ? 20 : 60;
    config.depth = 6;
    phishinghook::ml::CatBoostClassifier model(config);
    model.fit(data.x, data.y);
    bench_model("catboost", model, data.x, reps, inner, checksum, rows);
  }
  ThreadPool::set_global_threads(0);
  std::printf("  (checksum %.3f)\n", checksum);

  FILE* out = std::fopen("BENCH_infer.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_infer.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"infer\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"rows\": %zu,\n", n);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"model\": \"%s\", \"path\": \"%s\", \"threads\": %zu, "
                 "\"ms\": %.4f, \"rows_per_s\": %.1f, "
                 "\"speedup_vs_nodewalk\": %.2f}%s\n",
                 row.model.c_str(), row.path.c_str(), row.threads, row.ms,
                 row.rows_per_s, row.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_infer.json (%zu rows)\n", rows.size());
  return 0;
}
