// Ensemble-inference bench: per-row node walks (predict_proba_nodewalk)
// vs the branch-free compiled traversals (ml::FlatTreeEnsemble) for all
// four tree ensembles, written as BENCH_infer.json next to the binary.
//
// Per model the bench emits:
//   * nodewalk        — single-thread per-row walk oracle (baseline)
//   * flat            — the production path (model.predict_proba: kAuto
//                       traversal, default row block) on one thread; its
//                       `traversal` field reports the resolved path
//                       (bitvector / flat / mixed). ci.sh enforces the
//                       per-model speedup floor on these rows.
//   * flat_sweep      — forced walk traversal at row blocks 16/32/64/128,
//                       isolating the layout win from the bitvector win
//   * bitvector_sweep — forced bitvector/mask traversal over the same row
//                       blocks (trees over 64 leaves fall back to the walk)
//   * flat_parallel   — the production path on the default pool
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "ml/catboost.hpp"
#include "ml/flat_tree.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/lightgbm.hpp"
#include "ml/matrix.hpp"
#include "ml/random_forest.hpp"

namespace {

using phishinghook::common::Rng;
using phishinghook::common::ThreadPool;
using phishinghook::common::Timer;
using phishinghook::ml::FlatTreeEnsemble;
using phishinghook::ml::Matrix;

struct Row {
  std::string model;
  std::string path;
  std::string traversal;  // nodewalk | flat | bitvector | mixed
  std::size_t row_block = FlatTreeEnsemble::kDefaultRowBlock;
  std::size_t threads = 1;
  double ms = 0.0;        // one predict over the whole matrix
  double rows_per_s = 0.0;
  double speedup = 1.0;   // vs the model's single-thread nodewalk
};

struct Dataset {
  Matrix x;
  std::vector<int> y;
};

Dataset make_dataset(std::size_t n, std::size_t d) {
  Rng rng(42);
  Dataset data;
  data.x = Matrix(n, d);
  data.y.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      data.x.at(r, c) = rng.uniform(-3.0, 3.0);
    }
    const double margin = data.x.at(r, 0) + 0.5 * data.x.at(r, 1) -
                          0.25 * data.x.at(r, 2) + rng.normal(0.0, 0.5);
    data.y.push_back(margin > 0.0 ? 1 : 0);
  }
  return data;
}

template <typename Fn>
double best_ms(int reps, int inner, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    for (int i = 0; i < inner; ++i) fn();
    best = std::min(best, timer.milliseconds() / inner);
  }
  return best;
}

FlatTreeEnsemble build_flat(
    const phishinghook::ml::RandomForestClassifier& model) {
  return FlatTreeEnsemble::from_forest(model.trees());
}
FlatTreeEnsemble build_flat(
    const phishinghook::ml::GradientBoostingClassifier& model) {
  return FlatTreeEnsemble::from_boosted(model.trees(), model.base_score());
}
FlatTreeEnsemble build_flat(
    const phishinghook::ml::LightGbmClassifier& model) {
  return FlatTreeEnsemble::from_boosted(model.trees(), model.base_score());
}
FlatTreeEnsemble build_flat(
    const phishinghook::ml::CatBoostClassifier& model) {
  return FlatTreeEnsemble::from_oblivious(model.trees(), model.base_score());
}

void print_row(const Row& row) {
  std::printf(
      "  %-14s %-16s %-10s block=%-4zu threads=%zu  %9.3f ms  %12.0f rows/s"
      "  %5.2fx\n",
      row.model.c_str(), row.path.c_str(), row.traversal.c_str(),
      row.row_block, row.threads, row.ms, row.rows_per_s, row.speedup);
}

template <typename Model>
void bench_model(const std::string& name, const Model& model, const Matrix& x,
                 int reps, int inner, double& checksum,
                 std::vector<Row>& rows) {
  const double n_rows = static_cast<double>(x.rows());
  const auto finish = [&](Row& row, double baseline_ms) {
    row.rows_per_s = row.ms > 0.0 ? n_rows / (row.ms / 1000.0) : 0.0;
    row.speedup = row.ms > 0.0 ? baseline_ms / row.ms : 1.0;
    rows.push_back(row);
    print_row(row);
  };

  ThreadPool::set_global_threads(1);
  Row walk;
  walk.model = name;
  walk.path = "nodewalk";
  walk.traversal = "nodewalk";
  walk.ms = best_ms(reps, inner, [&] {
    checksum += model.predict_proba_nodewalk(x)[0];
  });
  finish(walk, walk.ms);

  // Production path: whatever the fitted model's compiled ensemble picks
  // (kAuto traversal, default row block). This is the row ci.sh holds to
  // the per-model speedup floor.
  FlatTreeEnsemble flat_auto = build_flat(model);
  Row flat;
  flat.model = name;
  flat.path = "flat";
  flat.traversal = flat_auto.traversal_label();
  flat.ms = best_ms(reps, inner, [&] {
    checksum += model.predict_proba(x)[0];
  });
  finish(flat, walk.ms);

  // Row-block sweep for each forced traversal, isolating layout wins from
  // bitvector wins.
  for (const std::size_t block : {16, 32, 64, 128}) {
    FlatTreeEnsemble forced = build_flat(model);
    forced.set_row_block(block);
    forced.set_traversal(FlatTreeEnsemble::Traversal::kWalk);
    Row sweep;
    sweep.model = name;
    sweep.path = "flat_sweep";
    sweep.traversal = forced.traversal_label();
    sweep.row_block = block;
    sweep.ms = best_ms(reps, inner, [&] {
      checksum += forced.predict_proba(x)[0];
    });
    finish(sweep, walk.ms);

    forced.set_traversal(FlatTreeEnsemble::Traversal::kBitvector);
    Row bv;
    bv.model = name;
    bv.path = "bitvector_sweep";
    bv.traversal = forced.traversal_label();
    bv.row_block = block;
    bv.ms = best_ms(reps, inner, [&] {
      checksum += forced.predict_proba(x)[0];
    });
    finish(bv, walk.ms);
  }

  ThreadPool::set_global_threads(0);
  Row par;
  par.model = name;
  par.path = "flat_parallel";
  par.traversal = flat_auto.traversal_label();
  par.threads = std::max(1u, std::thread::hardware_concurrency());
  par.ms = best_ms(reps, inner, [&] {
    checksum += model.predict_proba(x)[0];
  });
  finish(par, walk.ms);
  ThreadPool::set_global_threads(1);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::size_t n = smoke ? 600 : 4000;
  const Dataset data = make_dataset(n, 48);
  const int reps = smoke ? 3 : 5;
  const int inner = smoke ? 3 : 5;
  std::printf("bench_infer: %zu rows x 48 features%s\n", n,
              smoke ? " [smoke]" : "");

  double checksum = 0.0;
  std::vector<Row> rows;

  {
    phishinghook::ml::RandomForestConfig config;
    config.n_trees = smoke ? 24 : 64;
    config.max_depth = 12;
    phishinghook::ml::RandomForestClassifier model(config);
    model.fit(data.x, data.y);
    bench_model("random_forest", model, data.x, reps, inner, checksum, rows);
  }
  {
    phishinghook::ml::GradientBoostingConfig config;
    config.n_rounds = smoke ? 30 : 80;
    config.max_depth = 5;
    phishinghook::ml::GradientBoostingClassifier model(config);
    model.fit(data.x, data.y);
    bench_model("xgboost", model, data.x, reps, inner, checksum, rows);
  }
  {
    phishinghook::ml::LightGbmConfig config;
    config.n_rounds = smoke ? 30 : 80;
    phishinghook::ml::LightGbmClassifier model(config);
    model.fit(data.x, data.y);
    bench_model("lightgbm", model, data.x, reps, inner, checksum, rows);
  }
  {
    phishinghook::ml::CatBoostConfig config;
    config.n_rounds = smoke ? 20 : 60;
    config.depth = 6;
    phishinghook::ml::CatBoostClassifier model(config);
    model.fit(data.x, data.y);
    bench_model("catboost", model, data.x, reps, inner, checksum, rows);
  }
  ThreadPool::set_global_threads(0);
  std::printf("  (checksum %.3f)\n", checksum);

  FILE* out = std::fopen("BENCH_infer.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_infer.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"infer\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"rows\": %zu,\n", n);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"model\": \"%s\", \"path\": \"%s\", "
                 "\"traversal\": \"%s\", \"row_block\": %zu, "
                 "\"threads\": %zu, \"ms\": %.4f, \"rows_per_s\": %.1f, "
                 "\"speedup_vs_nodewalk\": %.2f}%s\n",
                 row.model.c_str(), row.path.c_str(), row.traversal.c_str(),
                 row.row_block, row.threads, row.ms, row.rows_per_s,
                 row.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_infer.json (%zu rows)\n", rows.size());
  return 0;
}
