// Table II: averaged performance metrics for all 16 models (Accuracy, F1,
// Precision, Recall; k-fold x runs), plus per-category means — the paper's
// headline result. Expected shape: HSCs best (Random Forest on top), LMs
// second (SCSGuard best), VMs third, ESCORT near chance.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Table II — averaged model performance",
                      "Table II, §IV-D");

  const auto trials = bench::table2_trials(bench::bench_output_dir(argv[0]));

  const char* marker_of[] = {"+", "#", "*", "S"};  // †, ‡, *, § stand-ins
  core::TextTable table(
      {"Model", "Cat", "Accuracy (%)", "F1 Score", "Precision", "Recall"});
  struct CategoryAgg {
    ml::Metrics sum;
    int count = 0;
  };
  CategoryAgg per_category[4];

  const bench::ModelEvaluation* best = nullptr;
  for (const bench::ModelEvaluation& evaluation : trials) {
    const ml::Metrics mean = evaluation.mean();
    table.add_row({evaluation.model,
                   marker_of[static_cast<int>(evaluation.category)],
                   core::percent(mean.accuracy), core::percent(mean.f1),
                   core::percent(mean.precision), core::percent(mean.recall)});
    auto& agg = per_category[static_cast<int>(evaluation.category)];
    agg.sum.accuracy += mean.accuracy;
    agg.sum.f1 += mean.f1;
    agg.sum.precision += mean.precision;
    agg.sum.recall += mean.recall;
    agg.count += 1;
    if (best == nullptr || mean.accuracy > best->mean().accuracy) {
      best = &evaluation;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("markers: + Histogram (HSC), # Vision, * Language, S "
              "Vulnerability detector\n\n");

  core::TextTable category_table(
      {"Category", "Avg Accuracy (%)", "Avg F1", "Avg Precision", "Avg Recall"});
  const char* names[] = {"Histogram (HSC)", "Vision (VM)", "Language (LM)",
                         "Vulnerability (VDM)"};
  for (int c = 0; c < 4; ++c) {
    const auto& agg = per_category[c];
    if (agg.count == 0) continue;
    const double n = agg.count;
    category_table.add_row({names[c], core::percent(agg.sum.accuracy / n),
                            core::percent(agg.sum.f1 / n),
                            core::percent(agg.sum.precision / n),
                            core::percent(agg.sum.recall / n)});
  }
  std::printf("%s\n", category_table.render().c_str());

  if (best != nullptr) {
    std::printf("best model overall: %s (paper: Random Forest, 93.63%%)\n",
                best->model.c_str());
  }
  std::printf(
      "paper reference means — HSC 91.52%%, LM 88.83%%, VM 83.75%%, ESCORT "
      "55.91%%;\nexpected shape: HSC >= LM > VM >> ESCORT (~ chance).\n");

  table.write_csv(bench::bench_output_dir(argv[0]) / "table2_results.csv");
  return 0;
}
