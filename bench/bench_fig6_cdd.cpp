// Fig. 6: critical difference diagram of model scalability — Friedman test
// over (split x metric) blocks, pairwise Wilcoxon signed-rank with Holm
// correction, and Cliff's delta effect sizes (Demsar's methodology).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "stats/cliffs_delta.hpp"
#include "stats/friedman.hpp"
#include "stats/holm.hpp"
#include "stats/wilcoxon.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Fig. 6 — critical difference diagram",
                      "Fig. 6, §IV-F");

  const auto runs = bench::scalability_runs(bench::bench_output_dir(argv[0]));
  const std::vector<std::string> models = {"Random Forest", "ECA+EfficientNet",
                                           "SCSGuard"};

  // Observation vector per model: (split, metric) measurements — 12 blocks,
  // 36 measurements total, exactly the paper's count.
  auto series_of = [&](const std::string& name) {
    std::vector<double> out;
    for (int split = 1; split <= 3; ++split) {
      for (const bench::ScalabilityCell& cell : runs) {
        if (cell.model != name || cell.split != split) continue;
        out.push_back(cell.metrics.accuracy);
        out.push_back(cell.metrics.f1);
        out.push_back(cell.metrics.precision);
        out.push_back(cell.metrics.recall);
      }
    }
    return out;
  };
  std::vector<std::vector<double>> observations;
  for (const std::string& name : models) observations.push_back(series_of(name));
  const std::size_t blocks = observations.front().size();
  std::printf("measurements: %zu models x %zu = %zu (paper: 36)\n\n",
              models.size(), blocks, models.size() * blocks);

  // Friedman over blocks (one block = one (split, metric) cell).
  std::vector<std::vector<double>> friedman_blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    friedman_blocks.push_back({observations[0][b], observations[1][b],
                               observations[2][b]});
  }
  const auto friedman = stats::friedman_test(friedman_blocks);
  std::printf("Friedman: chi2 = %.3f, df = %.0f, p = %s\n\n", friedman.chi_square,
              friedman.df, common::format_scientific(friedman.p_value, 2).c_str());

  // CDD axis: mean ranks (higher metric -> higher rank -> better).
  std::vector<std::size_t> order = {0, 1, 2};
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return friedman.mean_ranks[a] < friedman.mean_ranks[b];
  });
  std::printf("critical difference axis (left = worst, right = best):\n  ");
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::printf("%s (R=%.2f)%s", models[order[i]].c_str(),
                friedman.mean_ranks[order[i]],
                i + 1 < order.size() ? "  <--  " : "\n\n");
  }

  // Pairwise Wilcoxon + Holm, and Cliff's delta.
  core::TextTable table({"Pair", "Wilcoxon W", "p", "p_adj", "Cliff's d",
                         "Magnitude"});
  std::vector<double> raw_p;
  struct PairRow {
    std::string label;
    stats::WilcoxonResult wilcoxon;
    double delta;
  };
  std::vector<PairRow> pairs;
  for (std::size_t a = 0; a < models.size(); ++a) {
    for (std::size_t b = a + 1; b < models.size(); ++b) {
      PairRow row;
      row.label = models[a] + " vs " + models[b];
      row.wilcoxon = stats::wilcoxon_signed_rank(observations[a], observations[b]);
      row.delta = stats::cliffs_delta(observations[a], observations[b]);
      raw_p.push_back(row.wilcoxon.p_value);
      pairs.push_back(std::move(row));
    }
  }
  const auto adjusted = stats::holm_bonferroni(raw_p);
  bool any_connected = false;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    table.add_row({pairs[i].label, common::format_fixed(pairs[i].wilcoxon.w, 1),
                   common::format_fixed(pairs[i].wilcoxon.p_value, 3),
                   common::format_fixed(adjusted[i], 3),
                   common::format_fixed(pairs[i].delta, 3),
                   std::string(stats::cliffs_delta_magnitude(pairs[i].delta))});
    if (adjusted[i] >= 0.05) any_connected = true;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "%s\npaper reference: all pairwise p_adj = 0.75 (no statistical\n"
      "evidence at 36 measurements — nonparametric tests need larger\n"
      "samples), with large negative Cliff's delta for SCSGuard vs\n"
      "ECA+EfficientNet; the thick CDD line connects all three models.\n",
      any_connected
          ? "thick line: models with p_adj >= 0.05 are connected (no evidence)"
          : "no connected groups at this scale");
  return 0;
}
