// Table III: Kruskal-Wallis test on the per-metric model comparison, with
// Holm-Bonferroni-adjusted p-values — preceded by the Shapiro-Wilk
// normality screening that motivates the nonparametric choice (§IV-E).
#include <cstdio>

#include "bench_common.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Table III — Kruskal-Wallis across models",
                      "Table III + §IV-E post hoc methodology");

  const auto all = bench::table2_trials(bench::bench_output_dir(argv[0]));
  const auto models = bench::post_hoc_subset(all);
  std::printf("post hoc population: %zu models x %zu trials (paper: 13 x 30; "
              "ESCORT and the beta variants excluded)\n\n",
              models.size(), models.front().trials.size());

  const core::PostHocReport report = core::post_hoc_analysis(models);

  std::printf("Shapiro-Wilk screening: %zu / %zu model-metric pairs reject "
              "normality at 5%% (paper: 20 / 52)\n",
              report.non_normal_pairs, report.normality.size());
  std::printf("=> nonparametric group comparison (Kruskal-Wallis), as in the "
              "paper\n\n");

  core::TextTable table({"Metric", "H", "p", "p_adj", "Significant"});
  for (const core::MetricKruskalWallis& row : report.kruskal_wallis) {
    table.add_row({row.metric, common::format_fixed(row.h, 2),
                   common::format_scientific(row.p, 2),
                   common::format_scientific(row.p_adjusted, 2),
                   row.p_adjusted < 0.05 ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper reference: H in [322, 361], all p_adj < 1e-60 — the null of\n"
      "equal model medians is firmly rejected for all four metrics.\n");

  table.write_csv(bench::bench_output_dir(argv[0]) / "table3_kruskal.csv");
  return 0;
}
