// Feature-extraction bench: legacy (Disassembly + string lookup) vs fast
// (256-entry LUT, single pass over raw bytes) histogram transforms, written
// as BENCH_extract.json next to the binary.
//
// Both single-thread paths sweep the same synthesized corpus, so MB/s and
// the speedup ratio compare like for like; a parallel transform_all row
// reports the multi-thread throughput of the production path. ci.sh runs
// `--smoke` and asserts the single-thread speedup floor.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/features.hpp"
#include "synth/dataset_builder.hpp"

namespace {

using phishinghook::common::ThreadPool;
using phishinghook::common::Timer;
using phishinghook::core::Bytecode;
using phishinghook::core::HistogramVocabulary;

struct Row {
  std::string path;
  std::size_t threads = 1;
  double ms = 0.0;          // one corpus sweep
  double mb_per_s = 0.0;
  double speedup = 1.0;     // vs the single-thread legacy sweep
};

/// Best-of-`reps` wall time of one corpus sweep (each sweep runs `inner`
/// passes to stay well above timer resolution); returns ms per sweep.
template <typename Fn>
double best_sweep_ms(int reps, int inner, const Fn& sweep) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    for (int i = 0; i < inner; ++i) sweep();
    best = std::min(best, timer.milliseconds() / inner);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  phishinghook::synth::DatasetConfig config;
  config.target_size = smoke ? 120 : 600;
  config.seed = 42;
  const phishinghook::synth::BuiltDataset dataset =
      phishinghook::synth::DatasetBuilder(config).build();
  std::vector<const Bytecode*> corpus;
  std::size_t corpus_bytes = 0;
  for (const auto& sample : dataset.samples) {
    corpus.push_back(&sample.code);
    corpus_bytes += sample.code.size();
  }

  HistogramVocabulary vocab;
  vocab.fit(corpus);
  const double mb = static_cast<double>(corpus_bytes) / (1024.0 * 1024.0);
  std::printf("bench_extract: %zu contracts, %.2f MB, vocab %zu%s\n",
              corpus.size(), mb, vocab.size(), smoke ? " [smoke]" : "");

  const int reps = smoke ? 3 : 5;
  const int inner = smoke ? 5 : 10;
  double checksum = 0.0;  // keeps the transforms observable
  std::vector<Row> rows;

  ThreadPool::set_global_threads(1);
  {
    Row row;
    row.path = "legacy";
    row.ms = best_sweep_ms(reps, inner, [&] {
      for (const Bytecode* code : corpus) {
        const std::vector<double> counts = vocab.transform_legacy(*code);
        checksum += counts.empty() ? 0.0 : counts[0];
      }
    });
    row.mb_per_s = row.ms > 0.0 ? mb / (row.ms / 1000.0) : 0.0;
    rows.push_back(row);
  }
  const double legacy_ms = rows[0].ms;
  {
    Row row;
    row.path = "fast";
    std::vector<double> buffer(vocab.size());
    row.ms = best_sweep_ms(reps, inner, [&] {
      for (const Bytecode* code : corpus) {
        vocab.transform_into(*code, buffer);
        checksum += buffer.empty() ? 0.0 : buffer[0];
      }
    });
    row.mb_per_s = row.ms > 0.0 ? mb / (row.ms / 1000.0) : 0.0;
    row.speedup = row.ms > 0.0 ? legacy_ms / row.ms : 1.0;
    rows.push_back(row);
  }
  // Production path at full parallelism: transform_all on the default pool.
  ThreadPool::set_global_threads(0);
  {
    Row row;
    row.path = "fast_parallel";
    row.threads = std::max(1u, std::thread::hardware_concurrency());
    row.ms = best_sweep_ms(reps, inner, [&] {
      const auto m = vocab.transform_all(corpus);
      checksum += m.at(0, 0);
    });
    row.mb_per_s = row.ms > 0.0 ? mb / (row.ms / 1000.0) : 0.0;
    row.speedup = row.ms > 0.0 ? legacy_ms / row.ms : 1.0;
    rows.push_back(row);
  }

  for (const Row& row : rows) {
    std::printf("  %-14s threads=%zu  %9.3f ms/sweep  %9.1f MB/s  %6.1fx\n",
                row.path.c_str(), row.threads, row.ms, row.mb_per_s,
                row.speedup);
  }
  std::printf("  (checksum %.1f)\n", checksum);

  FILE* out = std::fopen("BENCH_extract.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_extract.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"extract\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"contracts\": %zu,\n", corpus.size());
  std::fprintf(out, "  \"corpus_bytes\": %zu,\n", corpus_bytes);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"path\": \"%s\", \"threads\": %zu, \"ms\": %.4f, "
                 "\"mb_per_s\": %.2f, \"speedup_vs_legacy\": %.2f}%s\n",
                 row.path.c_str(), row.threads, row.ms, row.mb_per_s,
                 row.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_extract.json (%zu rows)\n", rows.size());
  return 0;
}
