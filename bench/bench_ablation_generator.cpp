// Ablation (not a paper artifact): the synthetic-corpus knobs that DESIGN.md
// §3.4 calls out as the dataset's causal levers.
//
//  A. Obfuscation sweep — detector accuracy vs the phishing-obfuscation
//     level, the knob whose month-over-month drift produces the temporal
//     decay of Fig. 8. Accuracy must fall monotonically-ish as phishing
//     bodies absorb more benign boilerplate.
//  B. Representation ablation — the same Random Forest trained on the three
//     feature spaces (opcode histogram / raw-byte histogram / flattened
//     R2D2 image), isolating how much of HSC performance comes from the
//     *disassembly* (BDM) rather than raw bytes.
#include <cstdio>

#include "bench_common.hpp"
#include "core/features.hpp"
#include "ml/cross_validation.hpp"
#include "ml/random_forest.hpp"

namespace {

using namespace phishinghook;

double rf_accuracy(const ml::Matrix& x, const std::vector<int>& y,
                   std::uint64_t seed) {
  common::Rng rng(seed);
  const ml::Fold fold = ml::stratified_holdout(y, 0.25, rng);
  ml::RandomForestConfig config;
  config.n_trees = 60;
  config.seed = seed;
  ml::RandomForestClassifier forest(config);
  forest.fit(x.select_rows(fold.train_indices),
             ml::select(y, fold.train_indices));
  return ml::compute_metrics(ml::select(y, fold.test_indices),
                             forest.predict(x.select_rows(fold.test_indices)))
      .accuracy;
}

}  // namespace

int main(int, char** argv) {
  bench::print_banner("Ablation — generator knobs and representations",
                      "DESIGN.md §3.4 (supporting analysis, not a paper "
                      "artifact)");

  // --- A: generator knob sweeps -------------------------------------------------
  auto sweep_accuracy = [&](double obfuscation, double stealth) {
    synth::DatasetConfig config;
    config.target_size = 240;
    config.seed = 77;
    config.synth.obfuscation_base = obfuscation;
    config.synth.obfuscation_drift = 0.0;  // hold constant over the window
    config.synth.stealth_base = stealth;
    config.synth.stealth_drift = 0.0;
    const synth::BuiltDataset dataset = synth::DatasetBuilder(config).build();
    const auto codes = core::codes_of(dataset.samples);
    const auto labels = core::labels_of(dataset.samples);
    core::HistogramVocabulary vocab;
    vocab.fit(codes);
    return rf_accuracy(vocab.transform_all(codes), labels, 11);
  };

  core::TextTable sweep(
      {"Knob", "Level", "RF accuracy (%)"});
  common::CsvWriter csv(bench::bench_output_dir(argv[0]) /
                        "ablation_knobs.csv");
  csv.write_row({"knob", "level", "rf_accuracy"});
  for (double level : {0.0, 0.3, 0.6, 0.9}) {
    const double accuracy = sweep_accuracy(level, 0.05);
    sweep.add_row({"obfuscation", common::format_fixed(level, 1),
                   core::percent(accuracy)});
    csv.write_row({"obfuscation", std::to_string(level),
                   std::to_string(accuracy)});
  }
  for (double level : {0.0, 0.2, 0.4, 0.6}) {
    const double accuracy = sweep_accuracy(0.3, level);
    sweep.add_row({"stealth share", common::format_fixed(level, 1),
                   core::percent(accuracy)});
    csv.write_row({"stealth", std::to_string(level),
                   std::to_string(accuracy)});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf(
      "reading: in-distribution, the HSC is robust to both knobs — padding\n"
      "does not hide a drain's histogram, and even benign-shaped stealth\n"
      "drainers separate once the training set contains them.\n\n");

  // --- A2: the novelty effect (Fig. 8's actual mechanism) ----------------------
  // Train on a stealth-free corpus, evaluate on corpora with growing
  // stealth share: accuracy decays with the share of *unseen* patterns.
  {
    synth::DatasetConfig train_config;
    train_config.target_size = 240;
    train_config.seed = 78;
    train_config.synth.stealth_base = 0.0;
    train_config.synth.stealth_drift = 0.0;
    const synth::BuiltDataset train_set =
        synth::DatasetBuilder(train_config).build();
    core::HistogramVocabulary vocab;
    const auto train_codes = core::codes_of(train_set.samples);
    vocab.fit(train_codes);
    ml::RandomForestConfig rf_config;
    rf_config.n_trees = 60;
    ml::RandomForestClassifier forest(rf_config);
    forest.fit(vocab.transform_all(train_codes),
               core::labels_of(train_set.samples));

    core::TextTable novelty({"Unseen stealth share", "RF accuracy (%)",
                             "Phishing recall (%)"});
    common::CsvWriter novelty_csv(bench::bench_output_dir(argv[0]) /
                                  "ablation_novelty.csv");
    novelty_csv.write_row({"stealth_share", "accuracy", "recall"});
    for (double level : {0.0, 0.2, 0.4, 0.6}) {
      synth::DatasetConfig test_config;
      test_config.target_size = 240;
      test_config.seed = 79;  // different campaigns than training
      test_config.synth.stealth_base = level;
      test_config.synth.stealth_drift = 0.0;
      const synth::BuiltDataset test_set =
          synth::DatasetBuilder(test_config).build();
      const auto metrics = ml::compute_metrics(
          core::labels_of(test_set.samples),
          forest.predict(vocab.transform_all(core::codes_of(test_set.samples))));
      novelty.add_row({common::format_fixed(level, 1),
                       core::percent(metrics.accuracy),
                       core::percent(metrics.recall)});
      novelty_csv.write_row({std::to_string(level),
                             std::to_string(metrics.accuracy),
                             std::to_string(metrics.recall)});
    }
    std::printf("%s\n", novelty.render().c_str());
    std::printf(
        "reading: what degrades detection is *novelty* — stealth drainers\n"
        "absent from training masquerade as benign treasury sweeps and are\n"
        "missed (recall falls). Their month-over-month growth in the corpus\n"
        "is the mechanism behind Fig. 8's temporal decay.\n\n");
  }

  // --- B: representation ablation ----------------------------------------------
  const synth::BuiltDataset dataset = bench::build_bench_dataset();
  const auto codes = core::codes_of(dataset.samples);
  const auto labels = core::labels_of(dataset.samples);

  // Opcode histogram (the BDM path).
  core::HistogramVocabulary vocab;
  vocab.fit(codes);
  const double opcode_acc = rf_accuracy(vocab.transform_all(codes), labels, 13);

  // Raw byte histogram (no disassembly: PUSH immediates pollute counts).
  ml::Matrix byte_hist(codes.size(), 256);
  for (std::size_t r = 0; r < codes.size(); ++r) {
    for (std::uint8_t b : codes[r]->bytes()) byte_hist.at(r, b) += 1.0;
  }
  const double byte_acc = rf_accuracy(byte_hist, labels, 13);

  // Flattened 8x8 R2D2 image (the vision representation fed to a forest).
  ml::Matrix image_features(codes.size(), 3 * 8 * 8);
  for (std::size_t r = 0; r < codes.size(); ++r) {
    const auto image = core::r2d2_image(*codes[r], 8);
    for (std::size_t i = 0; i < image.size(); ++i) {
      image_features.at(r, i) = image[i];
    }
  }
  const double image_acc = rf_accuracy(image_features, labels, 13);

  core::TextTable repr({"Representation", "RF accuracy (%)"});
  repr.add_row({"opcode histogram (BDM)", core::percent(opcode_acc)});
  repr.add_row({"raw byte histogram", core::percent(byte_acc)});
  repr.add_row({"flattened R2D2 image 8x8", core::percent(image_acc)});
  std::printf("%s\n", repr.render().c_str());
  std::printf("reading: the disassembly step earns its keep — separating\n"
              "opcodes from PUSH immediates beats raw byte statistics, and\n"
              "truncated image encodings lose the long-tail structure.\n");
  return 0;
}
