// Serving throughput: contracts/sec and tail latency of the online scoring
// engine at 1/4/8 worker threads, on a warm score cache.
//
// This is the deployment half of the paper (§IV-F): the detector is
// trained once, frozen to a model artifact, loaded back, and then put
// behind the batching engine while producer threads replay the deployment
// stream. The cold pass pays one model row per *unique* code hash; the
// warm passes measure the steady state a monitor would live in (Fig. 2's
// ~5x duplication makes hits the common case).
//
// A fault-mix mode measures the same engine under a hostile upstream: with
// --faults <rate>, eth_getCode throws at <rate> and returns empty code at
// <rate>/2 through a seeded FaultInjectingExplorer, and the table gains
// failed/shed/retry columns. Throughput under chaos is the number that
// matters for the paper's real deployment: a production monitor lives on a
// flaky node, not a clean one.
//
// Usage: bench_serve_throughput [passes-per-config] [--faults <rate>]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "bench_common.hpp"
#include "chain/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "common/timer.hpp"
#include "ml/random_forest.hpp"
#include "serve/artifact.hpp"
#include "serve/scoring_engine.hpp"

int main(int argc, char** argv) {
  using namespace phishinghook;

  bench::print_banner("Serving throughput (online scoring engine)",
                      "deployment scenario of §IV-F; not a paper figure");
  int passes = 3;
  double fault_rate = 0.0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--faults") == 0 && a + 1 < argc) {
      fault_rate = std::atof(argv[++a]);
    } else {
      passes = std::atoi(argv[a]);
    }
  }

  // --- train once, persist, load the artifact ------------------------------
  const synth::BuiltDataset data = bench::build_bench_dataset();
  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  for (const synth::LabeledContract& sample : data.samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
  }

  core::HistogramAdapter trained(std::make_unique<ml::RandomForestClassifier>(),
                                 "Random Forest");
  common::Timer train_timer;
  trained.fit(codes, labels);
  std::printf("trained Random Forest on %zu contracts in %.2fs\n",
              codes.size(), train_timer.seconds());

  const std::filesystem::path artifact_path =
      bench::bench_output_dir(argv[0]) / "serve_rf.phookmdl";
  serve::save_artifact_file(artifact_path, trained);
  common::Timer load_timer;
  const std::unique_ptr<core::HistogramAdapter> detector =
      serve::load_artifact_file(artifact_path);
  std::printf("artifact %s: %ju bytes, loaded in %.1f ms\n\n",
              artifact_path.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(artifact_path)),
              load_timer.milliseconds());

  // The replayed request stream: every address of the corpus window.
  std::vector<evm::Address> stream;
  for (const synth::LabeledContract& sample : data.samples) {
    stream.push_back(sample.address);
  }

  // Fault-mix mode: the engine reads through a seeded chaos decorator, so
  // every pass exercises the per-slot isolation and retry path.
  std::unique_ptr<chain::FaultInjectingExplorer> chaos;
  if (fault_rate > 0.0) {
    chain::FaultConfig faults;
    faults.throw_rate = fault_rate;
    faults.empty_rate = fault_rate / 2.0;
    faults.seed = 99;
    chaos = std::make_unique<chain::FaultInjectingExplorer>(*data.explorer,
                                                            faults);
    std::printf("fault mix: throw %.0f%%, empty %.0f%% (seeded, replayable)\n",
                100.0 * faults.throw_rate, 100.0 * faults.empty_rate);
  }
  const chain::Explorer& upstream =
      chaos ? static_cast<const chain::Explorer&>(*chaos) : *data.explorer;

  std::printf("%8s %10s %12s %10s %10s %10s %8s %8s %8s\n", "workers",
              "requests", "contracts/s", "p50(us)", "p95(us)", "p99(us)",
              "hit%", "failed", "retries");
  double single_thread_rate = 0.0;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    serve::EngineConfig config;
    config.workers = workers;
    config.max_batch = 32;
    config.max_wait_us = 100;
    config.extract_retry.base_delay_us = 10;
    config.extract_retry.max_delay_us = 500;
    serve::ScoringEngine engine(upstream, *detector, config);

    engine.score_all(stream);  // cold pass: fills the cache, not timed

    common::Timer timer;
    std::size_t completed = 0;
    for (int pass = 0; pass < passes; ++pass) {
      // Producers submit concurrently, as independent wallets would.
      constexpr int kProducers = 4;
      std::vector<std::thread> producers;
      std::atomic<std::size_t> done{0};
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
          const std::vector<serve::ScoreResult> results =
              engine.score_all(stream);
          done.fetch_add(results.size());
        });
      }
      for (std::thread& producer : producers) producer.join();
      completed += done.load();
    }
    const double seconds = timer.seconds();
    const double rate = static_cast<double>(completed) / seconds;
    if (workers == 1) single_thread_rate = rate;

    const auto& latency = engine.metrics().request_latency;
    std::printf("%8zu %10zu %12.0f %10.0f %10.0f %10.0f %7.1f%% %8ju %8ju\n",
                workers, completed, rate, latency.quantile_us(0.50),
                latency.quantile_us(0.95), latency.quantile_us(0.99),
                100.0 * engine.cache_stats().hit_rate(),
                static_cast<std::uintmax_t>(
                    engine.metrics().requests_failed.value()),
                static_cast<std::uintmax_t>(engine.metrics().retries.value()));

    // The accounting invariant holds in every mode; in fault-mix mode it is
    // the whole point of the bench, so fail loudly if it breaks.
    const auto& m = engine.metrics();
    if (m.requests_completed.value() + m.requests_failed.value() +
            m.requests_shed.value() !=
        m.requests_submitted.value()) {
      std::fprintf(stderr,
                   "accounting violation: completed+failed+shed != "
                   "submitted\n");
      return 1;
    }
    if (workers == 8 && single_thread_rate > 0.0) {
      std::printf("\nspeedup at 8 workers vs 1: %.2fx "
                  "(hardware concurrency: %u)\n",
                  rate / single_thread_rate,
                  std::thread::hardware_concurrency());
    }

    // Machine-readable exposition for CI: overwritten per config, so the
    // file holds the final (8-worker) engine plus the process registry.
    engine.shutdown();
    std::ofstream exposition("BENCH_serve_metrics.prom");
    engine.dump_prometheus(exposition);
    obs::MetricsRegistry::global().write_prometheus(exposition);
  }
  std::printf("\nmetrics exposition: BENCH_serve_metrics.prom\n");
  return 0;
}
