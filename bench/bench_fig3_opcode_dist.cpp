// Fig. 3: distribution, by opcode usage, of contracts for 20 influential
// opcodes — phishing vs benign usage-share distributions, demonstrating the
// paper's point that no single opcode's frequency separates the classes.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/features.hpp"
#include "ml/random_forest.hpp"

int main(int, char** argv) {
  using namespace phishinghook;
  bench::print_banner("Fig. 3 — contract distribution by opcode usage",
                      "Fig. 3, §III (BDM)");

  const bench::BuiltDataset dataset = bench::build_bench_dataset();
  const auto codes = core::codes_of(dataset.samples);
  const auto labels = core::labels_of(dataset.samples);

  core::HistogramVocabulary vocab;
  vocab.fit(codes);
  const ml::Matrix counts = vocab.transform_all(codes);

  // "Influential" opcodes, as in §IV-H: ranked by Random Forest importance.
  ml::RandomForestConfig config;
  config.n_trees = 60;
  ml::RandomForestClassifier forest(config);
  forest.fit(counts, labels);
  const auto importances = forest.feature_importances();
  std::vector<std::size_t> order(importances.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importances[a] > importances[b];
  });
  const std::size_t top = std::min<std::size_t>(20, order.size());

  // Per-contract usage share of each opcode.
  std::vector<double> totals(counts.rows(), 0.0);
  for (std::size_t r = 0; r < counts.rows(); ++r) {
    for (std::size_t c = 0; c < counts.cols(); ++c) {
      totals[r] += counts.at(r, c);
    }
  }

  core::TextTable table({"Opcode", "Importance", "Phishing mean %",
                         "Benign mean %", "Overlap coeff."});
  common::CsvWriter csv(bench::bench_output_dir(argv[0]) / "fig3_usage.csv");
  csv.write_row({"opcode", "importance", "phishing_mean_share",
                 "benign_mean_share", "overlap"});

  for (std::size_t k = 0; k < top; ++k) {
    const std::size_t feature = order[k];
    std::vector<double> phishing_share, benign_share;
    for (std::size_t r = 0; r < counts.rows(); ++r) {
      const double share =
          totals[r] > 0 ? counts.at(r, feature) / totals[r] : 0.0;
      (labels[r] != 0 ? phishing_share : benign_share).push_back(share);
    }
    auto mean_of = [](const std::vector<double>& v) {
      double total = 0.0;
      for (double x : v) total += x;
      return v.empty() ? 0.0 : total / static_cast<double>(v.size());
    };
    // Histogram-overlap coefficient over 20 usage-share bins: ~1 means the
    // two class distributions coincide (the paper's "unreliable to filter
    // on a single opcode" observation).
    double max_share = 1e-9;
    for (double v : phishing_share) max_share = std::max(max_share, v);
    for (double v : benign_share) max_share = std::max(max_share, v);
    constexpr int kBins = 20;
    std::vector<double> hp(kBins, 0.0), hb(kBins, 0.0);
    for (double v : phishing_share) {
      hp[std::min<int>(kBins - 1, static_cast<int>(v / max_share * kBins))] +=
          1.0 / static_cast<double>(phishing_share.size());
    }
    for (double v : benign_share) {
      hb[std::min<int>(kBins - 1, static_cast<int>(v / max_share * kBins))] +=
          1.0 / static_cast<double>(benign_share.size());
    }
    double overlap = 0.0;
    for (int b = 0; b < kBins; ++b) overlap += std::min(hp[b], hb[b]);

    const std::string name = vocab.mnemonics()[feature];
    table.add_row({name, common::format_fixed(importances[feature], 4),
                   common::format_fixed(100.0 * mean_of(phishing_share), 2),
                   common::format_fixed(100.0 * mean_of(benign_share), 2),
                   common::format_fixed(overlap, 3)});
    csv.write_row({name, std::to_string(importances[feature]),
                   std::to_string(mean_of(phishing_share)),
                   std::to_string(mean_of(benign_share)),
                   std::to_string(overlap)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: overlap near 1.0 reproduces the paper's observation that\n"
      "phishing contracts use opcodes at rates similar to benign ones, so\n"
      "no single opcode frequency suffices as a filter (Fig. 3).\n");
  return 0;
}
