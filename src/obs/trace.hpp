// Span tracer: chrome://tracing-compatible trace-event JSON from RAII
// spans, cheap enough to leave compiled in everywhere.
//
//   obs::ScopedSpan span("rf.fit");            // or span("fit", name)
//   ...                                         // nested spans nest by time
//
// Besides the thread-local "X" complete events, the tracer records
// *causal* events for request-scoped telemetry: chrome async slices
// (ph "b"/"e", keyed by a 64-bit id — one request's stages render as a
// connected lane in Perfetto regardless of which thread ran them) and
// flow arrows (ph "s"/"t"/"f") stitching the per-thread spans a request
// passed through. Async events take explicit timestamps, so a stage whose
// start was only known retroactively (e.g. queue-wait measured at pop)
// can still be drawn where it actually began.
//
// Disabled (the default), a span costs one relaxed atomic load and a
// branch — no clock read, no allocation. Enabled, each span closes with a
// clock read and a write into a bounded lock-free per-thread ring buffer
// (fixed-size name copy, no allocation after a thread's first span), so
// tracing can stay on in production; when a ring wraps, the oldest events
// are dropped and counted, never corrupted.
//
// Gating: set PHISHINGHOOK_TRACE=out.json (legacy alias PHOOK_TRACE; the
// new prefix wins) to enable the global tracer at startup and flush the
// trace to `out.json` at process exit — openable in chrome://tracing or
// https://ui.perfetto.dev. Or call enable()/write_to_file() directly.
//
// Concurrency contract: spans may close on any number of threads
// concurrently. enable()/clear() and the export walk must not overlap
// *active* span recording on other threads (configure at startup, export
// at quiescent points — after joins, at exit); the per-ring head counter
// is released by writers and acquired by the exporter, so a quiesced
// export observes every completed event without locks on the hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace phishinghook::obs {

class MetricsRegistry;
class ScopedSpan;

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 16384;  ///< events/thread
  static constexpr std::size_t kMaxNameLength = 47;

  /// Process-wide tracer; reads PHISHINGHOOK_TRACE / PHOOK_TRACE on first
  /// use and, when set, enables itself and registers an at-exit flush to
  /// that path.
  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Starts buffering spans into per-thread rings of `ring_capacity`
  /// events (rounded up to a power of two). Resets previously buffered
  /// events and the time origin.
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);

  /// Stops recording; buffered events remain exportable.
  void disable();

  /// Drops all buffered events (keeps the enabled state and capacity).
  void clear();

  /// Completed events currently buffered / dropped to ring overflow.
  std::uint64_t events_buffered() const;
  std::uint64_t events_dropped() const;

  /// Publishes ring health into `registry` so overflow is visible on a
  /// metrics scrape without opening the trace file:
  /// `trace_events_buffered` / `trace_enabled` gauges plus a monotone
  /// `trace_events_dropped_total` counter (incremented by the drop delta
  /// since the previous export — call it from a pre-scrape hook).
  void export_metrics(MetricsRegistry& registry) const;

  /// Async slice boundary (chrome ph "b"/"e") at an explicit timestamp
  /// (pass now_us(), or an earlier stamp for a retroactive stage start).
  /// Events with the same (name, id) pair up into one slice on the
  /// request's async lane. No-op while disabled.
  void async_begin(const char* name, std::uint64_t id, double ts_us);
  void async_end(const char* name, std::uint64_t id, double ts_us);

  /// Flow arrow through the current thread (chrome ph "s"/"t"/"f"): start
  /// at the producing span, step at each relay, finish at the consumer.
  /// Binds to the enclosing "X" slice at that timestamp. No-op while
  /// disabled.
  void flow_start(std::uint64_t id);
  void flow_step(std::uint64_t id);
  void flow_finish(std::uint64_t id);

  /// Chrome trace-event JSON ("X" complete events with ts/dur in
  /// microseconds, async "b"/"e" slices and flow "s"/"t"/"f" arrows with
  /// their ids, one tid per recording thread), sorted by start time.
  void write_chrome_trace(std::ostream& out) const;

  /// write_chrome_trace to `path`; false (plus a stderr note) on IO error.
  bool write_to_file(const std::string& path) const;

  /// Microseconds since the tracer's time origin (monotonic).
  double now_us() const;

  /// RAII span on this tracer (equivalent to constructing ScopedSpan).
  ScopedSpan span(const char* name, const char* detail = nullptr);

 private:
  friend class ScopedSpan;

  struct Event {
    char name[kMaxNameLength + 1];
    char ph;           ///< 'X' span, 'b'/'e' async, 's'/'t'/'f' flow
    double ts_us;
    double dur_us;     ///< meaningful for 'X' only
    std::uint64_t id;  ///< async/flow correlation id (0 for 'X')
  };

  struct Ring {
    Ring(std::size_t capacity, std::uint32_t tid)
        : slots(capacity), tid(tid) {}
    std::vector<Event> slots;          ///< capacity is a power of two
    std::atomic<std::uint64_t> head{0};  ///< next slot (mod capacity)
    std::uint32_t tid;
  };

  Tracer() = default;

  /// Closes a span: one clock read, one ring write. `detail`, when given,
  /// is appended to the name as "name:detail" (truncated, no allocation).
  void record(const char* name, const char* detail, double start_us);

  /// One ring write of an arbitrary event (the async/flow entry points).
  void record_event(char ph, const char* name, std::uint64_t id,
                    double ts_us, double dur_us = 0.0);

  Ring& ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_ns_{0};
  std::atomic<std::uint64_t> generation_{0};

  mutable std::mutex mutex_;  ///< guards rings_ registration and export
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = kDefaultRingCapacity;
  std::uint32_t next_tid_ = 1;
  /// Drop count already folded into trace_events_dropped_total, so the
  /// exported counter stays monotone across scrapes (guarded by mutex_).
  mutable std::uint64_t dropped_exported_ = 0;
};

/// RAII span against the global tracer (or an explicit one via
/// Tracer::span). When tracing is disabled at construction the destructor
/// is a no-op.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* detail = nullptr)
      : ScopedSpan(Tracer::global(), name, detail) {}

  ScopedSpan(Tracer& tracer, const char* name, const char* detail = nullptr)
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        name_(name),
        detail_(detail) {
    if (tracer_ != nullptr) start_us_ = tracer_->now_us();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { end(); }

  /// Closes the span now (for stage boundaries that don't align with a
  /// scope); the destructor then does nothing.
  void end() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, detail_, start_us_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* detail_;
  double start_us_ = 0.0;
};

inline ScopedSpan Tracer::span(const char* name, const char* detail) {
  return ScopedSpan(*this, name, detail);
}

}  // namespace phishinghook::obs
