#include "obs/window.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/errors.hpp"

namespace phishinghook::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Same log2 bin layout as LatencyHistogram::bucket_of.
std::size_t bin_of(std::uint64_t v, std::size_t bins) {
  std::size_t b = 0;
  while (v > 1 && b + 1 < bins) {
    v >>= 1;
    ++b;
  }
  return b;
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

SlidingWindowAggregator::SlidingWindowAggregator(WindowConfig config,
                                                 ClockFn clock)
    : config_(config), clock_(clock ? std::move(clock) : steady_seconds) {
  if (!(config_.window_seconds > 0.0)) {
    throw InvalidArgument("window_seconds must be > 0");
  }
  if (config_.bucket_count == 0) {
    throw InvalidArgument("bucket_count must be > 0");
  }
  bucket_width_s_ = config_.window_seconds /
                    static_cast<double>(config_.bucket_count);
  ring_.resize(config_.bucket_count);
}

std::int64_t SlidingWindowAggregator::current_epoch() const {
  const double now_s = clock_();
  std::int64_t epoch =
      static_cast<std::int64_t>(std::floor(now_s / bucket_width_s_));
  // A clock that steps backwards (suspend/resume quirks, or a test probing
  // exactly this) must not resurrect buckets the window already aged out:
  // clamp to the furthest point the ring has reached.
  if (epoch < furthest_epoch_) {
    epoch = furthest_epoch_;
  } else {
    furthest_epoch_ = epoch;
  }
  return epoch;
}

SlidingWindowAggregator::Bucket& SlidingWindowAggregator::bucket_for(
    std::int64_t epoch) {
  Bucket& bucket = ring_[static_cast<std::size_t>(
      epoch % static_cast<std::int64_t>(ring_.size()))];
  if (bucket.epoch != epoch) {
    // Lazy reuse: the slot's previous tenancy (one full window ago, or
    // arbitrarily older after an idle gap / forward jump) ends here.
    bucket = Bucket{};
    bucket.epoch = epoch;
  }
  return bucket;
}

void SlidingWindowAggregator::record(double latency_us, bool ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = bucket_for(current_epoch());
  bucket.total += 1;
  if (!ok) bucket.errors += 1;
  if (latency_us > 0.0) {
    const auto v = static_cast<std::uint64_t>(latency_us);
    bucket.bins[bin_of(v, kBins)] += 1;
    bucket.max_us = std::max(bucket.max_us, v);
  }
}

void SlidingWindowAggregator::record_ok(double latency_us) {
  record(latency_us, /*ok=*/true);
}

void SlidingWindowAggregator::record_error(double latency_us) {
  record(latency_us, /*ok=*/false);
}

SlidingWindowAggregator::Snapshot SlidingWindowAggregator::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t now_epoch = current_epoch();
  const std::int64_t oldest =
      now_epoch - static_cast<std::int64_t>(ring_.size()) + 1;

  Snapshot snap;
  snap.window_seconds = config_.window_seconds;
  std::array<std::uint64_t, kBins> bins{};
  std::uint64_t binned = 0;
  for (const Bucket& bucket : ring_) {
    if (bucket.epoch < oldest || bucket.epoch > now_epoch) continue;
    snap.total += bucket.total;
    snap.errors += bucket.errors;
    snap.max_us = std::max(snap.max_us,
                           static_cast<double>(bucket.max_us));
    for (std::size_t b = 0; b < kBins; ++b) {
      bins[b] += bucket.bins[b];
      binned += bucket.bins[b];
    }
  }
  snap.rate_per_sec = static_cast<double>(snap.total) / config_.window_seconds;
  snap.error_ratio = snap.total == 0
                         ? 0.0
                         : static_cast<double>(snap.errors) /
                               static_cast<double>(snap.total);

  // Quantiles over the merged bins, same rank + in-bucket interpolation
  // rules as LatencyHistogram::quantile (upper edge clamped to the max).
  const auto quantile = [&](double q) -> double {
    if (binned == 0) return 0.0;
    const auto k = std::min<std::uint64_t>(
        binned - 1,
        static_cast<std::uint64_t>(q * static_cast<double>(binned)));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBins; ++b) {
      const std::uint64_t c = bins[b];
      if (c == 0) continue;
      if (cum + c > k) {
        const double lower =
            b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << b);
        const double upper =
            std::min(static_cast<double>(std::uint64_t{1} << (b + 1)),
                     snap.max_us);
        const double frac =
            static_cast<double>(k - cum + 1) / static_cast<double>(c);
        return lower + (upper - lower) * frac;
      }
      cum += c;
    }
    return snap.max_us;
  };
  snap.p50_us = quantile(0.50);
  snap.p95_us = quantile(0.95);
  snap.p99_us = quantile(0.99);
  return snap;
}

SloEvaluator::SloEvaluator(const SlidingWindowAggregator& window,
                           SloConfig config)
    : window_(&window), config_(std::move(config)) {
  if (!(config_.target_error_ratio > 0.0)) {
    throw InvalidArgument("target_error_ratio must be > 0");
  }
  if (!(config_.shed_pressure_burn > 0.0)) {
    throw InvalidArgument("shed_pressure_burn must be > 0");
  }
}

SloEvaluator::Evaluation SloEvaluator::evaluate() const {
  Evaluation eval;
  eval.window = window_->snapshot();
  eval.burn_rate = eval.window.error_ratio / config_.target_error_ratio;
  eval.error_breach = eval.burn_rate > 1.0;
  double latency_ratio = 0.0;
  if (config_.target_p99_us > 0.0) {
    latency_ratio = eval.window.p99_us / config_.target_p99_us;
    eval.latency_breach = latency_ratio > 1.0;
  }
  // Pressure rises with whichever budget is burning faster and saturates
  // at shed_pressure_burn — at exactly-on-budget it reads 1/burn, giving
  // the coordinator headroom to shed *before* the breach.
  eval.shed_pressure = clamp01(std::max(eval.burn_rate, latency_ratio) /
                               config_.shed_pressure_burn);
  return eval;
}

SloEvaluator::Evaluation SloEvaluator::export_to(MetricsRegistry& registry,
                                                 std::string_view prefix) {
  const Evaluation eval = evaluate();
  const std::string p(prefix);
  registry.gauge(p + "_window_rate_per_sec").set(eval.window.rate_per_sec);
  registry.gauge(p + "_window_error_ratio").set(eval.window.error_ratio);
  registry.gauge(p + "_window_p50_us").set(eval.window.p50_us);
  registry.gauge(p + "_window_p95_us").set(eval.window.p95_us);
  registry.gauge(p + "_window_p99_us").set(eval.window.p99_us);
  registry.gauge(p + "_error_burn_rate").set(eval.burn_rate);
  registry.gauge(p + "_shed_pressure").set(eval.shed_pressure);
  registry.set_help(p + "_error_burn_rate",
                    "Windowed error ratio over SLO target (1.0 = at budget)");
  registry.set_help(p + "_shed_pressure",
                    "Backoff signal in [0,1] derived from SLO burn rate");

  // Edge-triggered: one increment per breach episode, however often the
  // evaluator runs while the episode lasts.
  if (eval.error_breach && !error_breach_latched_) {
    registry
        .counter(p + "_slo_breach_total",
                 label("slo", config_.name + ":errors"))
        .inc();
  }
  error_breach_latched_ = eval.error_breach;
  if (eval.latency_breach && !latency_breach_latched_) {
    registry
        .counter(p + "_slo_breach_total",
                 label("slo", config_.name + ":latency"))
        .inc();
  }
  latency_breach_latched_ = eval.latency_breach;
  return eval;
}

}  // namespace phishinghook::obs
