#include "obs/scrape_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/errors.hpp"

namespace phishinghook::obs {

namespace {

std::string http_response(int code, const char* reason,
                          const char* content_type, const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

/// Request target out of "GET /path HTTP/1.1"; empty when malformed.
std::string parse_target(const std::string& request) {
  const std::size_t method_end = request.find(' ');
  if (method_end == std::string::npos) return {};
  if (request.compare(0, method_end, "GET") != 0 &&
      request.compare(0, method_end, "HEAD") != 0) {
    return {};
  }
  const std::size_t target_end = request.find(' ', method_end + 1);
  if (target_end == std::string::npos) return {};
  std::string target =
      request.substr(method_end + 1, target_end - method_end - 1);
  // Scrapers may append a query string (?seconds=...); the paths ignore it.
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  return target;
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away mid-response: nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

ScrapeServer::~ScrapeServer() { stop(); }

void ScrapeServer::add_registry(const MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  registries_.push_back(&registry);
}

void ScrapeServer::add_pre_scrape_hook(Hook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  hooks_.push_back(std::move(hook));
}

void ScrapeServer::set_health(HealthFn health) {
  std::lock_guard<std::mutex> lock(mutex_);
  health_ = std::move(health);
}

void ScrapeServer::start(std::uint16_t port) {
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    throw StateError("ScrapeServer::start: already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw StateError(std::string("ScrapeServer: socket() failed: ") +
                     std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw StateError("ScrapeServer: cannot listen on 127.0.0.1:" +
                     std::to_string(port) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void ScrapeServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() wakes the blocking accept(); close() alone is not reliable
  // for that on all kernels.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ScrapeServer::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (stop()) or unrecoverable
    }
    // One short read covers any real scrape request line + headers; a
    // slow-loris peer just gets a 400 for whatever arrived first.
    char buffer[2048];
    const ssize_t got = ::recv(conn, buffer, sizeof(buffer) - 1, 0);
    std::string response;
    if (got > 0) {
      buffer[got] = '\0';
      const std::string target = parse_target(buffer);
      response = target.empty()
                     ? http_response(400, "Bad Request", "text/plain",
                                     "expected GET /metrics|/vars|/healthz\n")
                     : respond(target);
    } else {
      response = http_response(400, "Bad Request", "text/plain", "\n");
    }
    write_all(conn, response);
    ::close(conn);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string ScrapeServer::respond(const std::string& target) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (target == "/metrics" || target == "/vars") {
    for (const Hook& hook : hooks_) hook();
  }
  if (target == "/metrics") {
    std::ostringstream body;
    for (const MetricsRegistry* registry : registries_) {
      registry->write_prometheus(body);
    }
    return http_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                         body.str());
  }
  if (target == "/vars") {
    std::ostringstream body;
    body << "{\"registries\":[";
    for (std::size_t i = 0; i < registries_.size(); ++i) {
      if (i > 0) body << ',';
      registries_[i]->write_json(body);
    }
    body << "]}";
    return http_response(200, "OK", "application/json", body.str());
  }
  if (target == "/healthz") {
    const std::string body = health_ ? health_() : "{\"status\":\"ok\"}";
    return http_response(200, "OK", "application/json", body);
  }
  return http_response(404, "Not Found", "text/plain",
                       "unknown path (try /metrics, /vars, /healthz)\n");
}

}  // namespace phishinghook::obs
