// Compatibility shim: the scrape endpoint moved onto the shared net-layer
// event loop (src/net/scrape_server.hpp) so the repo has one socket
// substrate instead of two. The class keeps its old name here for the
// examples/tests that adopted it under obs::; linking now requires
// phook_net (phook_serve pulls it in transitively).
//
// The port also fixed four bugs in the old blocking implementation —
// HEAD-as-GET, EINTR-aborted writes, the stop() hang on stalled peers,
// and the single-recv parse of segmented request heads; see the header it
// forwards to for the details and tests/test_net.cpp for the regressions.
#pragma once

#include "net/scrape_server.hpp"

namespace phishinghook::obs {

using ScrapeServer = net::ScrapeServer;

}  // namespace phishinghook::obs
