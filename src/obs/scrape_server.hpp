// Minimal blocking-TCP scrape endpoint: /metrics, /vars, /healthz.
//
// Scrapers (Prometheus, curl, a load-test harness) want to *pull* state on
// their own schedule instead of parsing whatever the process decides to
// print. This server binds loopback, runs one accept-loop thread, and
// answers three paths from any number of attached registries:
//
//   /metrics  — Prometheus text exposition 0.0.4 (registries concatenated)
//   /vars     — {"registries":[<write_json of each>]}
//   /healthz  — caller-supplied JSON (drain/queue state) or {"status":"ok"}
//
// Deliberately not a web server: HTTP/1.0-style one-request-per-connection
// with Connection: close, no keep-alive, no TLS, loopback only. A scrape
// every few seconds is the design load; the interesting engineering is in
// what it serves, not how fast it serves it.
//
// Pre-scrape hooks run before the body is built (under the server's hook
// mutex, on the accept thread) — the place to sync pull-model sources into
// the registries, e.g. Tracer::export_metrics or an SloEvaluator's
// export_to. Hooks and registries may be added before *or* after start();
// additions are picked up by the next scrape.
//
// Lifecycle: start(port) binds (port 0 = ephemeral, read back via port())
// and launches the thread; stop() closes the listen socket to unblock
// accept() and joins. The destructor stops. Attached registries, hooks and
// the health callback must outlive the server or its stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace phishinghook::obs {

class ScrapeServer {
 public:
  using Hook = std::function<void()>;
  using HealthFn = std::function<std::string()>;

  ScrapeServer() = default;
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Attaches a registry; /metrics concatenates expositions in attachment
  /// order, /vars emits one JSON object per registry in the same order.
  void add_registry(const MetricsRegistry& registry);

  /// Runs before every /metrics and /vars body build, on the accept thread.
  void add_pre_scrape_hook(Hook hook);

  /// Supplies the /healthz body (must already be JSON). Unset = static ok.
  void set_health(HealthFn health);

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, see port()) and starts
  /// serving. Throws StateError if already started or the bind fails.
  void start(std::uint16_t port);

  /// Closes the listen socket, joins the accept thread. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolved after start(), also for ephemeral binds).
  std::uint16_t port() const { return port_; }
  /// Requests answered so far (any path, including 404s).
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  /// Full HTTP response (headers + body) for one request target.
  std::string respond(const std::string& target);

  mutable std::mutex mutex_;  ///< guards registries_/hooks_/health_
  std::vector<const MetricsRegistry*> registries_;
  std::vector<Hook> hooks_;
  HealthFn health_;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace phishinghook::obs
