#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "common/errors.hpp"

namespace phishinghook::obs {

namespace detail {

std::atomic<std::uint64_t>& null_counter_cell() {
  static std::atomic<std::uint64_t> cell{0};
  return cell;
}

std::atomic<double>& null_gauge_cell() {
  static std::atomic<double> cell{0.0};
  return cell;
}

}  // namespace detail

std::string label(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(key.size() + value.size() + 3);
  out.append(key);
  out.append("=\"");
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

bool name_start_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool name_char(char c) { return name_start_char(c) || (c >= '0' && c <= '9'); }

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "summary";
  }
}

}  // namespace

bool valid_metric_name(std::string_view name) {
  if (name.empty() || !name_start_char(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!name_char(c)) return false;
  }
  return true;
}

bool valid_label_fragment(std::string_view labels) {
  // Grammar: key="value"(,key="value")* — exactly what obs::label() joined
  // by commas produces. Colons are not legal in label keys.
  std::size_t at = 0;
  while (at < labels.size()) {
    std::size_t key_end = at;
    while (key_end < labels.size() && labels[key_end] != '=' &&
           labels[key_end] != ':') {
      ++key_end;
    }
    const std::string_view key = labels.substr(at, key_end - at);
    if (key.empty() || !name_start_char(key[0]) || key[0] == ':') return false;
    for (char c : key.substr(1)) {
      if (!name_char(c) || c == ':') return false;
    }
    if (key_end >= labels.size() || labels[key_end] != '=' ||
        key_end + 1 >= labels.size() || labels[key_end + 1] != '"') {
      return false;
    }
    std::size_t cursor = key_end + 2;
    bool closed = false;
    while (cursor < labels.size()) {
      if (labels[cursor] == '\\') {
        if (cursor + 1 >= labels.size()) return false;
        cursor += 2;
        continue;
      }
      if (labels[cursor] == '"') {
        closed = true;
        ++cursor;
        break;
      }
      ++cursor;
    }
    if (!closed) return false;
    if (cursor == labels.size()) return true;
    if (labels[cursor] != ',' || cursor + 1 == labels.size()) return false;
    at = cursor + 1;
  }
  return labels.empty();
}

const MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, std::string_view labels, Kind kind) {
  // Caller holds mutex_.
  for (const Entry& entry : entries_) {
    if (entry.name == name && entry.labels == labels) {
      if (entry.kind != kind) {
        throw InvalidArgument(
            "metric '" + std::string(name) + "' is already registered as a " +
            kind_name(static_cast<int>(entry.kind)) +
            "; cannot re-register it as a " +
            kind_name(static_cast<int>(kind)) +
            " (one name, one kind — pick a new name or reuse the handle)");
      }
      return entry;
    }
  }
  if (!valid_metric_name(name)) {
    throw InvalidArgument("metric name '" + std::string(name) +
                          "' is not a valid Prometheus name "
                          "([a-zA-Z_:][a-zA-Z0-9_:]*)");
  }
  if (!valid_label_fragment(labels)) {
    throw InvalidArgument("label fragment '" + std::string(labels) +
                          "' for metric '" + std::string(name) +
                          "' is not well-formed key=\"value\" pairs "
                          "(build it with obs::label())");
  }
  Entry entry;
  entry.name = std::string(name);
  entry.labels = std::string(labels);
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.index = counters_.size();
      counters_.emplace_back(0);
      break;
    case Kind::kGauge:
      entry.index = gauges_.size();
      gauges_.emplace_back(0.0);
      break;
    case Kind::kHistogram:
      entry.index = histograms_.size();
      histograms_.emplace_back();
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back();
}

Counter MetricsRegistry::counter(std::string_view name,
                                 std::string_view labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counter(&counters_[find_or_create(name, labels, Kind::kCounter).index]);
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Gauge(&gauges_[find_or_create(name, labels, Kind::kGauge).index]);
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name,
                                             std::string_view labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[find_or_create(name, labels, Kind::kHistogram).index];
}

void MetricsRegistry::set_help(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [known, text] : help_) {
    if (known == name) {
      text = std::string(help);
      return;
    }
  }
  help_.emplace_back(std::string(name), std::string(help));
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<const MetricsRegistry::Entry*> MetricsRegistry::sorted_entries()
    const {
  // Caller holds mutex_.
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& entry : entries_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    return a->name != b->name ? a->name < b->name : a->labels < b->labels;
  });
  return sorted;
}

namespace {

/// `name{labels}` or `name{labels,extra}` with empties handled.
std::string exposition_name(const std::string& name, const std::string& labels,
                            const std::string& extra = "") {
  std::string joined = labels;
  if (!extra.empty()) {
    if (!joined.empty()) joined += ',';
    joined += extra;
  }
  return joined.empty() ? name : name + '{' + joined + '}';
}

/// `# HELP` text must keep the exposition line-oriented: escape the two
/// characters the format reserves (backslash and newline).
std::string help_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<const Entry*> sorted = sorted_entries();
  const std::string* last_name = nullptr;
  for (const Entry* entry : sorted) {
    if (last_name == nullptr || *last_name != entry->name) {
      // HELP precedes TYPE per the exposition format. Metrics without
      // registered help text get a self-describing default so scrapers
      // that require the comment pair never see a bare TYPE.
      const std::string* help = nullptr;
      for (const auto& [known, text] : help_) {
        if (known == entry->name) {
          help = &text;
          break;
        }
      }
      out << "# HELP " << entry->name << ' '
          << (help != nullptr ? help_escape(*help)
                              : "phishinghook " +
                                    std::string(kind_name(
                                        static_cast<int>(entry->kind))))
          << '\n';
      out << "# TYPE " << entry->name << ' '
          << kind_name(static_cast<int>(entry->kind)) << '\n';
      last_name = &entry->name;
    }
    switch (entry->kind) {
      case Kind::kCounter:
        out << exposition_name(entry->name, entry->labels) << ' '
            << counters_[entry->index].load(std::memory_order_relaxed) << '\n';
        break;
      case Kind::kGauge:
        out << exposition_name(entry->name, entry->labels) << ' '
            << gauges_[entry->index].load(std::memory_order_relaxed) << '\n';
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h = histograms_[entry->index];
        static constexpr std::pair<double, const char*> kQuantiles[] = {
            {0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}};
        for (const auto& [q, tag] : kQuantiles) {
          out << exposition_name(entry->name, entry->labels,
                                 std::string("quantile=\"") + tag + '"')
              << ' ' << h.quantile(q) << '\n';
        }
        out << exposition_name(entry->name + "_sum", entry->labels) << ' '
            << h.sum() << '\n';
        out << exposition_name(entry->name + "_count", entry->labels) << ' '
            << h.count() << '\n';
        out << exposition_name(entry->name + "_max", entry->labels) << ' '
            << h.max_value() << '\n';
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<const Entry*> sorted = sorted_entries();
  const auto open_common = [&](const Entry* entry) {
    out << "{\"name\":\"" << json_escape(entry->name) << "\",\"labels\":\""
        << json_escape(entry->labels) << "\",";
  };
  out << '{';
  for (int kind = 0; kind < 3; ++kind) {
    if (kind > 0) out << ',';
    out << '"' << (kind == 0 ? "counters" : kind == 1 ? "gauges" : "histograms")
        << "\":[";
    bool first = true;
    for (const Entry* entry : sorted) {
      if (static_cast<int>(entry->kind) != kind) continue;
      if (!first) out << ',';
      first = false;
      open_common(entry);
      switch (entry->kind) {
        case Kind::kCounter:
          out << "\"value\":"
              << counters_[entry->index].load(std::memory_order_relaxed);
          break;
        case Kind::kGauge:
          out << "\"value\":"
              << gauges_[entry->index].load(std::memory_order_relaxed);
          break;
        case Kind::kHistogram: {
          const LatencyHistogram& h = histograms_[entry->index];
          out << "\"count\":" << h.count() << ",\"sum\":" << h.sum()
              << ",\"p50\":" << h.quantile(0.5) << ",\"p95\":" << h.quantile(0.95)
              << ",\"p99\":" << h.quantile(0.99) << ",\"max\":" << h.max_value();
          break;
        }
      }
      out << '}';
    }
    out << ']';
  }
  out << '}';
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instruments with static storage duration may still
  // publish during process teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace phishinghook::obs
