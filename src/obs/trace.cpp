#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"  // json_escape

namespace phishinghook::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Thread-local cache of this thread's ring; invalidated when the tracer
/// bumps its generation (enable/clear rebuild the rings).
struct RingCache {
  const void* tracer = nullptr;
  std::uint64_t generation = 0;
  void* ring = nullptr;
};

// Destination of the env-var-gated at-exit flush.
std::string& trace_path_storage() {
  static std::string* path = new std::string();
  return *path;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();  // leaked: at-exit flush still needs it
    const char* path = std::getenv("PHISHINGHOOK_TRACE");
    if (path == nullptr || *path == '\0') path = std::getenv("PHOOK_TRACE");
    if (path != nullptr && *path != '\0') {
      trace_path_storage() = path;
      t->enable();
      std::atexit([] {
        Tracer::global().write_to_file(trace_path_storage());
      });
    }
    return t;
  }();
  return *tracer;
}

void Tracer::enable(std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = round_up_pow2(std::max<std::size_t>(1, ring_capacity));
  rings_.clear();
  next_tid_ = 1;
  dropped_exported_ = 0;
  generation_.fetch_add(1, std::memory_order_release);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
  next_tid_ = 1;
  dropped_exported_ = 0;
  generation_.fetch_add(1, std::memory_order_release);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

double Tracer::now_us() const {
  return static_cast<double>(steady_now_ns() -
                             epoch_ns_.load(std::memory_order_relaxed)) *
         1e-3;
}

Tracer::Ring& Tracer::ring_for_this_thread() {
  thread_local RingCache cache;
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (cache.tracer != this || cache.generation != generation ||
      cache.ring == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(std::make_unique<Ring>(capacity_, next_tid_++));
    cache.ring = rings_.back().get();
    cache.tracer = this;
    cache.generation = generation;
  }
  return *static_cast<Ring*>(cache.ring);
}

void Tracer::record(const char* name, const char* detail, double start_us) {
  if (!enabled()) return;  // disabled mid-span: drop
  const double end_us = now_us();
  Ring& ring = ring_for_this_thread();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Event& event = ring.slots[head & (ring.slots.size() - 1)];

  std::size_t n = 0;
  for (; n < kMaxNameLength && name[n] != '\0'; ++n) event.name[n] = name[n];
  if (detail != nullptr && n + 1 < kMaxNameLength) {
    event.name[n++] = ':';
    for (std::size_t d = 0; n < kMaxNameLength && detail[d] != '\0'; ++d) {
      event.name[n++] = detail[d];
    }
  }
  event.name[n] = '\0';
  event.ph = 'X';
  event.ts_us = start_us;
  event.dur_us = end_us - start_us;
  event.id = 0;
  // Publishes the slot: the exporter acquires head and reads only below it.
  ring.head.store(head + 1, std::memory_order_release);
}

void Tracer::record_event(char ph, const char* name, std::uint64_t id,
                          double ts_us, double dur_us) {
  if (!enabled()) return;
  Ring& ring = ring_for_this_thread();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Event& event = ring.slots[head & (ring.slots.size() - 1)];
  std::size_t n = 0;
  for (; n < kMaxNameLength && name[n] != '\0'; ++n) event.name[n] = name[n];
  event.name[n] = '\0';
  event.ph = ph;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.id = id;
  ring.head.store(head + 1, std::memory_order_release);
}

void Tracer::async_begin(const char* name, std::uint64_t id, double ts_us) {
  record_event('b', name, id, ts_us);
}

void Tracer::async_end(const char* name, std::uint64_t id, double ts_us) {
  record_event('e', name, id, ts_us);
}

void Tracer::flow_start(std::uint64_t id) {
  record_event('s', "req", id, now_us());
}

void Tracer::flow_step(std::uint64_t id) {
  record_event('t', "req", id, now_us());
}

void Tracer::flow_finish(std::uint64_t id) {
  record_event('f', "req", id, now_us());
}

std::uint64_t Tracer::events_buffered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += std::min<std::uint64_t>(
        ring->head.load(std::memory_order_acquire), ring->slots.size());
  }
  return total;
}

std::uint64_t Tracer::events_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > ring->slots.size()) dropped += head - ring->slots.size();
  }
  return dropped;
}

void Tracer::export_metrics(MetricsRegistry& registry) const {
  std::uint64_t buffered = 0;
  std::uint64_t dropped_delta = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t dropped = 0;
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      buffered += std::min<std::uint64_t>(head, ring->slots.size());
      if (head > ring->slots.size()) dropped += head - ring->slots.size();
    }
    // The counter delta is computed under the same lock that enable()/
    // clear() reset dropped_exported_ under, so it can never go negative.
    if (dropped > dropped_exported_) {
      dropped_delta = dropped - dropped_exported_;
      dropped_exported_ = dropped;
    }
  }
  registry.gauge("trace_events_buffered").set(static_cast<double>(buffered));
  registry.gauge("trace_enabled").set(enabled() ? 1.0 : 0.0);
  registry.counter("trace_events_dropped_total").inc(dropped_delta);
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  struct Row {
    const Event* event;
    std::uint32_t tid;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t capacity = ring->slots.size();
      const std::uint64_t count = std::min(head, capacity);
      for (std::uint64_t i = head - count; i < head; ++i) {
        rows.push_back({&ring->slots[i & (capacity - 1)], ring->tid});
      }
    }
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      // Stable tiebreak: an async begin sorts before its end at equal ts.
      return a.event->ts_us != b.event->ts_us
                 ? a.event->ts_us < b.event->ts_us
                 : a.event->ph < b.event->ph;
    });
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char id_hex[24];
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) out << ',';
      const Event& event = *rows[i].event;
      switch (event.ph) {
        case 'b':
        case 'e':
          // Async slice boundary: (cat, id, name) pairs b with e; one id =
          // one request lane, regardless of the recording thread.
          std::snprintf(id_hex, sizeof(id_hex), "0x%llx",
                        static_cast<unsigned long long>(event.id));
          out << "{\"name\":\"" << json_escape(event.name)
              << "\",\"cat\":\"phook.req\",\"ph\":\"" << event.ph
              << "\",\"id\":\"" << id_hex << "\",\"pid\":1,\"tid\":"
              << rows[i].tid << ",\"ts\":" << event.ts_us << '}';
          break;
        case 's':
        case 't':
        case 'f':
          std::snprintf(id_hex, sizeof(id_hex), "0x%llx",
                        static_cast<unsigned long long>(event.id));
          out << "{\"name\":\"" << json_escape(event.name)
              << "\",\"cat\":\"phook.flow\",\"ph\":\"" << event.ph
              << "\",\"id\":\"" << id_hex << "\",\"pid\":1,\"tid\":"
              << rows[i].tid << ",\"ts\":" << event.ts_us
              << (event.ph == 'f' ? ",\"bp\":\"e\"}" : "}");
          break;
        default:
          out << "{\"name\":\"" << json_escape(event.name)
              << "\",\"cat\":\"phook\",\"ph\":\"X\",\"pid\":1,\"tid\":"
              << rows[i].tid << ",\"ts\":" << event.ts_us
              << ",\"dur\":" << event.dur_us << '}';
      }
    }
    out << "]}";
  }
}

bool Tracer::write_to_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[phook obs] cannot write trace to %s\n",
                 path.c_str());
    return false;
  }
  write_chrome_trace(out);
  return out.good();
}

}  // namespace phishinghook::obs
