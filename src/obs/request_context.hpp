// Request-scoped causal identity for the serving/streaming path.
//
// A RequestContext is minted where a request enters the system (the block
// follower forwarding a fresh deployment, the load generator drawing a
// re-query, or ScoringEngine::submit for direct callers) and travels *by
// value* with the request through every hand-off: bounded queues, the
// engine's request queue, batching, extraction, inference, delivery. It
// carries two things:
//
//   * a process-unique 64-bit trace id — the key that stitches the
//     request's async stage slices (Tracer::async_begin/async_end) and
//     flow arrows into one connected lane in Perfetto, and
//   * the timestamps needed to split latency into *queue-wait* (sitting
//     in a hand-off, nobody working on it) vs. *service time* (a stage
//     actually executing) — born_us anchors end-to-end, handoff_us is
//     restamped at every queue push so the next pop knows how long the
//     request waited.
//
// The stamps use Tracer::now_us() so stage events and X spans share one
// clock; they are read even when tracing is disabled, because the
// per-stage LatencyHistograms (queue-wait vs. service-time) are always on.
// Minting is one relaxed atomic increment + one clock read — cheap enough
// for every request at open-loop rates.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/trace.hpp"

namespace phishinghook::obs {

struct RequestContext {
  std::uint64_t trace_id = 0;  ///< 0 = unminted (no identity yet)
  double born_us = 0.0;        ///< mint time, tracer clock
  double handoff_us = 0.0;     ///< last queue push, tracer clock

  bool valid() const { return trace_id != 0; }

  /// Queue-wait for a pop happening at `now_us`, clamped nonnegative
  /// (enable()/clear() mid-run can rebase the tracer clock).
  double wait_us(double now_us) const {
    const double wait = now_us - handoff_us;
    return wait > 0.0 ? wait : 0.0;
  }
};

namespace detail {
inline std::atomic<std::uint64_t>& trace_id_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}
}  // namespace detail

/// Mints a fresh context: unique nonzero trace id, born/handoff stamped
/// now. When `tracer` is enabled this also opens the request's umbrella
/// async slice ("request", closed by whoever terminates the request) and
/// starts its flow arrow.
inline RequestContext mint_request(Tracer& tracer = Tracer::global()) {
  RequestContext ctx;
  ctx.trace_id =
      detail::trace_id_counter().fetch_add(1, std::memory_order_relaxed) + 1;
  ctx.born_us = tracer.now_us();
  ctx.handoff_us = ctx.born_us;
  if (tracer.enabled()) {
    tracer.async_begin("request", ctx.trace_id, ctx.born_us);
    tracer.flow_start(ctx.trace_id);
  }
  return ctx;
}

/// Closes the request's umbrella slice and finishes its flow arrow — call
/// exactly once, at the terminal stage (delivery or collection).
inline void finish_request(RequestContext& ctx,
                           Tracer& tracer = Tracer::global()) {
  if (!ctx.valid()) return;
  if (tracer.enabled()) {
    tracer.flow_finish(ctx.trace_id);
    tracer.async_end("request", ctx.trace_id, tracer.now_us());
  }
  ctx.trace_id = 0;
}

/// Emits one completed stage slice [start_us, end_us] on the request's
/// async lane. Call sites record the same interval into their per-stage
/// LatencyHistogram; this only draws it.
inline void stage_slice(const RequestContext& ctx, const char* stage,
                        double start_us, double end_us,
                        Tracer& tracer = Tracer::global()) {
  if (!ctx.valid() || !tracer.enabled()) return;
  tracer.async_begin(stage, ctx.trace_id, start_us);
  tracer.async_end(stage, ctx.trace_id, end_us);
}

}  // namespace phishinghook::obs
