// Process-wide metrics registry: named counters, gauges and log-scale
// histograms, with optional labels (`train_fit_ms{model="Random Forest"}`),
// a Prometheus-style text exposition and a JSON dump.
//
// Split of responsibilities:
//   * registration (`registry.counter("name")`) takes a mutex and may
//     allocate — do it once, at construction/startup;
//   * the returned handles are trivially copyable pointers into
//     registry-owned stable storage, and every operation on them is a
//     relaxed atomic — safe and cheap from any number of hot-path threads;
//   * exposition walks the registry under the mutex, reading cells
//     relaxed, so scraping never blocks writers.
//
// `MetricsRegistry::global()` is the process-wide instance the thread pool,
// the disassembler and the experiment harness publish into; subsystems
// whose tests need isolated exact counts (the scoring engine) own a private
// registry instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace phishinghook::obs {

namespace detail {
/// Cell behind default-constructed handles, so an unbound Counter/Gauge is
/// a safe no-op target instead of a crash.
std::atomic<std::uint64_t>& null_counter_cell();
std::atomic<double>& null_gauge_cell();
}  // namespace detail

/// Monotone counter handle. Copyable; the cell lives in the registry and
/// stays valid for the registry's lifetime.
class Counter {
 public:
  Counter() : cell_(&detail::null_counter_cell()) {}

  void inc(std::uint64_t n = 1) { cell_->fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_;
};

/// Point-in-time value handle (queue depths, cache occupancy, rates).
class Gauge {
 public:
  Gauge() : cell_(&detail::null_gauge_cell()) {}

  void set(double v) { cell_->store(v, std::memory_order_relaxed); }
  void add(double d) { cell_->fetch_add(d, std::memory_order_relaxed); }
  double value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_;
};

/// Renders one `key="value"` label fragment, escaping backslashes and
/// quotes. Join several with commas before passing to the registry.
std::string label(std::string_view key, std::string_view value);

/// Escapes a string for embedding inside a JSON string literal (shared by
/// the exposition writers and the structured log sink).
std::string json_escape(std::string_view text);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the metric named `name` with an optional
  /// comma-joined label fragment built via obs::label(). Re-registering the
  /// same (name, labels) returns a handle onto the same cell; registering
  /// it as a different kind throws InvalidArgument (naming both kinds), as
  /// does a name outside [a-zA-Z_:][a-zA-Z0-9_:]* or a label fragment that
  /// is not well-formed key="value" pairs — exposition-breaking names fail
  /// at registration, not at scrape time.
  Counter counter(std::string_view name, std::string_view labels = {});
  Gauge gauge(std::string_view name, std::string_view labels = {});
  LatencyHistogram& histogram(std::string_view name,
                              std::string_view labels = {});

  /// Attaches Prometheus `# HELP` text to a metric name (any labels).
  /// Idempotent — the last call wins; unknown names are remembered and
  /// apply when the metric registers later.
  void set_help(std::string_view name, std::string_view help);

  std::size_t size() const;

  /// Prometheus-style text exposition: `# HELP` + `# TYPE` comments per
  /// metric name, `name{labels} value` lines sorted by (name, labels);
  /// histograms render as summaries (quantile lines plus _sum/_count/_max).
  /// Values are read relaxed, so a concurrent scrape sees a near-consistent
  /// snapshot.
  void write_prometheus(std::ostream& out) const;

  /// JSON object with "counters"/"gauges"/"histograms" arrays, same
  /// ordering as the text exposition.
  void write_json(std::ostream& out) const;

  /// Process-wide registry (never destroyed, so handles taken by
  /// static-lifetime instruments stay valid during shutdown).
  static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string labels;
    Kind kind;
    std::size_t index;  ///< into the kind's storage deque
  };

  const Entry& find_or_create(std::string_view name, std::string_view labels,
                              Kind kind);
  std::vector<const Entry*> sorted_entries() const;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, std::string>> help_;  ///< name -> text
  // Deques: stable addresses across registration, required by the handles.
  std::deque<std::atomic<std::uint64_t>> counters_;
  std::deque<std::atomic<double>> gauges_;
  std::deque<LatencyHistogram> histograms_;
};

/// Exposition-grammar validators (shared with the registry's registration
/// checks and the tests): Prometheus metric names are
/// [a-zA-Z_:][a-zA-Z0-9_:]*, label keys [a-zA-Z_][a-zA-Z0-9_]*, and a
/// label fragment is zero or more key="value" pairs joined by commas with
/// only \\ and \" escapes inside the value.
bool valid_metric_name(std::string_view name);
bool valid_label_fragment(std::string_view labels);

}  // namespace phishinghook::obs
