// Fixed-bucket log-scale histogram for latencies (or any nonnegative
// magnitude; the unit is whatever the caller records — the serving layer
// records microseconds, the training layer milliseconds).
//
// Buckets are half-open [2^i, 2^(i+1)) up to ~67M units, which keeps
// recording to a handful of relaxed-atomic instructions. Quantiles
// interpolate linearly inside the bucket holding the target rank, with the
// bucket's upper edge clamped to the observed max — so a single sample
// reports itself exactly at every q, and the top bucket never overstates
// the maximum (see quantile() for the exact formula, pinned by test_obs).
//
// Everything here is written from hot-path worker threads, so all state is
// std::atomic with relaxed ordering — readers get a near-consistent
// snapshot, writers never serialize on a lock.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>

namespace phishinghook::obs {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 27;  // 2^26 ~ 67M units cap

  void record(double value) {
    const auto v = value <= 0.0 ? std::uint64_t{0}
                                : static_cast<std::uint64_t>(value);
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value <= 0.0 ? 0.0 : value, std::memory_order_relaxed);
    // Monotone max via CAS; contention here is rare (only on new maxima).
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  double sum() const { return sum_.load(std::memory_order_relaxed); }

  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  double max_value() const {
    return static_cast<double>(max_.load(std::memory_order_relaxed));
  }

  /// Quantile estimate for q in [0, 1]: the target rank is
  /// k = min(n-1, floor(q*n)); within the bucket holding rank k (lower edge
  /// L, upper edge U clamped to the observed max, population c, preceding
  /// cumulative count p) the estimate is L + (U - L) * (k - p + 1) / c.
  /// With one sample every quantile is that sample exactly.
  double quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto k = std::min<std::uint64_t>(
        n - 1, static_cast<std::uint64_t>(q * static_cast<double>(n)));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t c = buckets_[b].load(std::memory_order_relaxed);
      if (c == 0) continue;
      if (cum + c > k) {
        const double lower =
            b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << b);
        // The observed max sits in the highest nonempty bucket, so clamping
        // is a no-op everywhere below it and exact at the top.
        const double upper =
            std::min(static_cast<double>(std::uint64_t{1} << (b + 1)),
                     max_value());
        const double frac = static_cast<double>(k - cum + 1) /
                            static_cast<double>(c);
        return lower + (upper - lower) * frac;
      }
      cum += c;
    }
    return max_value();
  }

  // Microsecond-named aliases kept for the serving layer, whose histograms
  // all record microseconds.
  double mean_us() const { return mean(); }
  double max_us() const { return max_value(); }
  double quantile_us(double q) const { return quantile(q); }

 private:
  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v > 1 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace phishinghook::obs
