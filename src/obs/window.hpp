// Sliding-window aggregation and SLO evaluation over the last N seconds.
//
// The cumulative MetricsRegistry answers "what happened since boot"; an
// operator watching a live stream wants "what is happening *now*". A
// SlidingWindowAggregator keeps a ring of time buckets (window_seconds /
// bucket_count each), every record lands in the bucket owning the current
// instant, and a snapshot aggregates only the buckets whose epoch still
// falls inside the window — so rate, error-ratio and p50/p95/p99 decay
// naturally as traffic stops, without a background sweeper thread.
//
// Staleness is handled by *epoch tagging*, not eager clearing: each slot
// remembers the absolute bucket index it last served, a writer reuses a
// slot by resetting it when the epoch moved on, and readers simply skip
// slots whose epoch left the window. That makes idle decay, forward clock
// jumps larger than the window, and wraparound all the same code path.
// Backward jumps (a hostile/buggy injected clock) clamp to the furthest
// epoch ever seen — time never runs backwards inside the ring.
//
// The clock is injectable (seconds, monotone) so tests can drive bucket
// wraparound and jump behavior deterministically; the default reads
// std::chrono::steady_clock.
//
// SloEvaluator sits on top: given an error-ratio target (and optionally a
// p99 target), it turns a snapshot into a burn-rate (observed error ratio
// over target — 1.0 = exactly at budget), edge-triggered breach counters,
// and a [0,1] shed-pressure signal a coordinator can consult to start
// refusing work before the SLO is torched.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace phishinghook::obs {

struct WindowConfig {
  double window_seconds = 10.0;
  std::size_t bucket_count = 10;
};

class SlidingWindowAggregator {
 public:
  /// Monotone clock in seconds. Injectable for deterministic tests.
  using ClockFn = std::function<double()>;

  explicit SlidingWindowAggregator(WindowConfig config = {},
                                   ClockFn clock = {});

  /// Records one completed request with its latency (any nonnegative unit;
  /// the serving layer records microseconds).
  void record_ok(double latency_us);

  /// Records one failed request. A positive latency also lands in the
  /// latency bins (failures took time too); pass 0 when unknown.
  void record_error(double latency_us = 0.0);

  struct Snapshot {
    double window_seconds = 0.0;
    std::uint64_t total = 0;
    std::uint64_t errors = 0;
    double rate_per_sec = 0.0;  ///< total / window
    double error_ratio = 0.0;   ///< errors / total (0 when idle)
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
  };

  /// Aggregates the buckets still inside the window as of now.
  Snapshot snapshot() const;

  double window_seconds() const { return config_.window_seconds; }

 private:
  // Log2 latency bins, same [2^i, 2^(i+1)) layout and interpolation rules
  // as LatencyHistogram, but plain integers under the ring mutex.
  static constexpr std::size_t kBins = 27;

  struct Bucket {
    std::int64_t epoch = -1;  ///< absolute bucket index; -1 = never used
    std::uint64_t total = 0;
    std::uint64_t errors = 0;
    std::uint64_t max_us = 0;
    std::array<std::uint64_t, kBins> bins{};
  };

  /// Clamped absolute bucket index for "now"; caller holds mutex_.
  std::int64_t current_epoch() const;
  /// The slot for `epoch`, reset if it last served an older epoch.
  Bucket& bucket_for(std::int64_t epoch);
  void record(double latency_us, bool ok);

  WindowConfig config_;
  ClockFn clock_;
  double bucket_width_s_;

  mutable std::mutex mutex_;
  mutable std::int64_t furthest_epoch_ = 0;  ///< backward-jump clamp
  std::vector<Bucket> ring_;
};

struct SloConfig {
  /// Label value on the breach counters (`slo="<name>:errors"` etc.).
  std::string name = "availability";
  /// Error-ratio budget over the window; burn rate is observed/target.
  double target_error_ratio = 0.01;
  /// p99 latency target in the window's unit; 0 disables the latency SLO.
  double target_p99_us = 0.0;
  /// Burn rate at which shed pressure saturates to 1.0. At 1.0 burn
  /// (exactly on budget) pressure is 1/shed_pressure_burn.
  double shed_pressure_burn = 2.0;
};

/// Evaluates a window against SLO targets and (optionally) publishes the
/// result as metrics. Borrows the aggregator; not thread-safe itself —
/// evaluate from one place (the scrape hook or the coordinator loop).
class SloEvaluator {
 public:
  explicit SloEvaluator(const SlidingWindowAggregator& window,
                        SloConfig config = {});

  struct Evaluation {
    SlidingWindowAggregator::Snapshot window;
    double burn_rate = 0.0;       ///< error_ratio / target (1.0 = at budget)
    bool error_breach = false;    ///< burn_rate > 1
    bool latency_breach = false;  ///< p99 over target (when one is set)
    double shed_pressure = 0.0;   ///< [0,1] backoff signal
  };

  Evaluation evaluate() const;

  /// Evaluates, then publishes gauges (`<prefix>_window_rate_per_sec`,
  /// `_window_error_ratio`, `_window_p50_us`/`_p95_us`/`_p99_us`,
  /// `_error_burn_rate`, `_shed_pressure`) plus edge-triggered
  /// `<prefix>_slo_breach_total{slo="<name>:errors"|"<name>:latency"}`
  /// counters — a breach episode counts once, at onset, not per scrape.
  Evaluation export_to(MetricsRegistry& registry, std::string_view prefix);

 private:
  const SlidingWindowAggregator* window_;
  SloConfig config_;
  bool error_breach_latched_ = false;
  bool latency_breach_latched_ = false;
};

}  // namespace phishinghook::obs
