#include "serve/scoring_engine.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/errors.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

namespace phishinghook::serve {

namespace {
/// Map hash for within-batch dedup; leading digest bytes are uniform.
struct DigestHash {
  std::size_t operator()(const evm::Hash256& h) const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(h[i]) << (8 * i);
    }
    return static_cast<std::size_t>(v);
  }
};

}  // namespace

ScoringEngine::ScoringEngine(const chain::Explorer& explorer,
                             core::PhishingClassifier& detector,
                             EngineConfig config)
    : bem_(explorer),
      detector_(&detector),
      config_(config),
      cache_(config.cache_capacity, config.cache_shards) {
  // workers == 0 = auto: the same PHISHINGHOOK_THREADS knob that sizes the
  // training thread pool sizes the serving pool.
  if (config_.workers == 0) {
    config_.workers = common::ThreadPool::configured_threads();
  }
  if (config_.max_batch == 0) throw InvalidArgument("max_batch must be > 0");
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ScoringEngine::~ScoringEngine() { shutdown(); }

std::future<ScoreResult> ScoringEngine::submit(const evm::Address& address) {
  Request request;
  request.address = address;
  std::future<ScoreResult> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw StateError("ScoringEngine::submit after shutdown");
    queue_.push_back(std::move(request));
  }
  queue_cv_.notify_one();
  metrics_.requests_submitted.inc();
  return future;
}

std::vector<ScoreResult> ScoringEngine::score_all(
    const std::vector<evm::Address>& addresses) {
  std::vector<std::future<ScoreResult>> futures;
  futures.reserve(addresses.size());
  for (const evm::Address& address : addresses) {
    futures.push_back(submit(address));
  }
  std::vector<ScoreResult> results;
  results.reserve(futures.size());
  for (std::future<ScoreResult>& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

void ScoringEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ScoringEngine::worker_loop() {
  for (;;) {
    std::vector<Request> batch = next_batch();
    if (batch.empty()) return;  // stopping and drained
    process_batch(std::move(batch));
  }
}

std::vector<ScoringEngine::Request> ScoringEngine::next_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // only reachable when stopping_
    // Micro-batch: hold an under-full batch open briefly so closely spaced
    // arrivals share one model invocation. Another worker may drain the
    // queue while we wait, so re-check and go back to sleep if so.
    if (queue_.size() < config_.max_batch && !stopping_) {
      queue_cv_.wait_for(lock, std::chrono::microseconds(config_.max_wait_us),
                         [this] {
                           return stopping_ ||
                                  queue_.size() >= config_.max_batch;
                         });
      if (queue_.empty()) continue;
    }
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    std::vector<Request> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return batch;
  }
}

void ScoringEngine::process_batch(std::vector<Request> batch) {
  obs::ScopedSpan batch_span("serve.batch");
  metrics_.batches.inc();
  metrics_.batched_requests.inc(batch.size());
  common::ScopedTimer batch_timer(
      [this](double s) { metrics_.batch_latency.record(s * 1e6); });

  struct Slot {
    evm::Bytecode code;
    evm::Hash256 hash{};
    double probability = 0.0;
    bool cache_hit = false;
    bool empty = false;
  };
  std::vector<Slot> slots(batch.size());

  // Pull bytecode, probe the cache, and collapse duplicate code hashes so
  // each unique miss costs exactly one model row.
  std::unordered_map<evm::Hash256, std::size_t, DigestHash> miss_index;
  std::vector<const evm::Bytecode*> miss_codes;
  std::vector<std::vector<std::size_t>> miss_slots;
  obs::ScopedSpan extract_span("serve.extract");
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Slot& slot = slots[i];
    slot.code = bem_.extract(batch[i].address).code;
    if (slot.code.empty()) {
      slot.empty = true;
      metrics_.empty_code_requests.inc();
      continue;
    }
    slot.hash = slot.code.code_hash();
    if (const std::optional<double> cached = cache_.get(slot.hash)) {
      slot.probability = *cached;
      slot.cache_hit = true;
      continue;
    }
    const auto [it, inserted] = miss_index.try_emplace(slot.hash,
                                                       miss_codes.size());
    if (inserted) {
      miss_codes.push_back(&slot.code);
      miss_slots.emplace_back();
    }
    miss_slots[it->second].push_back(i);
  }
  extract_span.end();

  if (!miss_codes.empty()) {
    std::vector<double> probabilities;
    try {
      obs::ScopedSpan predict_span("serve.predict");
      probabilities = detector_->predict_proba(miss_codes);
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (Request& request : batch) request.promise.set_exception(error);
      return;
    }
    metrics_.model_invocations.inc();
    metrics_.model_rows.inc(miss_codes.size());
    for (std::size_t u = 0; u < miss_codes.size(); ++u) {
      cache_.put(miss_codes[u]->code_hash(), probabilities[u]);
      for (std::size_t slot_id : miss_slots[u]) {
        slots[slot_id].probability = probabilities[u];
      }
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    ScoreResult result;
    result.address = batch[i].address;
    result.probability = slots[i].probability;
    result.flagged = result.probability >= 0.5;
    result.cache_hit = slots[i].cache_hit;
    result.empty_code = slots[i].empty;
    result.latency_us = batch[i].queued.seconds() * 1e6;
    metrics_.request_latency.record(result.latency_us);
    metrics_.requests_completed.inc();
    batch[i].promise.set_value(std::move(result));
  }
}

}  // namespace phishinghook::serve
