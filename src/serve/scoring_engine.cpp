#include "serve/scoring_engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <functional>
#include <unordered_map>

#include "common/errors.hpp"
#include "common/thread_pool.hpp"
#include "ml/flat_tree.hpp"
#include "obs/trace.hpp"

namespace phishinghook::serve {

namespace {
/// Map hash for within-batch dedup; leading digest bytes are uniform.
struct DigestHash {
  std::size_t operator()(const evm::Hash256& h) const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(h[i]) << (8 * i);
    }
    return static_cast<std::size_t>(v);
  }
};

}  // namespace

const char* to_string(ScoreStatus status) {
  switch (status) {
    case ScoreStatus::kOk: return "ok";
    case ScoreStatus::kEmptyCode: return "empty_code";
    case ScoreStatus::kExtractError: return "extract_error";
    case ScoreStatus::kModelError: return "model_error";
    case ScoreStatus::kShed: return "shed";
  }
  return "unknown";
}

ScoringEngine::ScoringEngine(const chain::Explorer& explorer,
                             core::PhishingClassifier& detector,
                             EngineConfig config)
    : bem_(explorer),
      detector_(&detector),
      config_(config),
      cache_(config.cache_capacity, config.cache_shards) {
  // workers == 0 = auto: the same PHISHINGHOOK_THREADS knob that sizes the
  // training thread pool sizes the serving pool.
  if (config_.workers == 0) {
    config_.workers = common::ThreadPool::configured_threads();
  }
  if (config_.max_batch == 0) throw InvalidArgument("max_batch must be > 0");
  // Tree detectors serve through a compiled FlatTreeEnsemble; export its
  // compile-time shape so operators can see which inference path is live.
  if (const ml::FlatTreeEnsemble* flat = detector_->flat_ensemble()) {
    metrics_.flat_tree_count.set(static_cast<double>(flat->tree_count()));
    metrics_.flat_node_count.set(static_cast<double>(flat->node_count()));
  }
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ScoringEngine::~ScoringEngine() { shutdown(); }

void ScoringEngine::deliver(Request& request, ScoreResult result) {
  result.address = request.address;
  result.latency_us = request.queued.seconds() * 1e6;
  // Every terminal outcome records latency — failed and shed requests held
  // capacity too, and hiding them would flatter the percentiles.
  metrics_.request_latency.record(result.latency_us);
  switch (result.status) {
    case ScoreStatus::kOk:
    case ScoreStatus::kEmptyCode:
      metrics_.requests_completed.inc();
      break;
    case ScoreStatus::kExtractError:
    case ScoreStatus::kModelError:
      metrics_.requests_failed.inc();
      break;
    case ScoreStatus::kShed:
      metrics_.requests_shed.inc();
      break;
  }
  request.promise.set_value(std::move(result));
}

std::future<ScoreResult> ScoringEngine::submit(const evm::Address& address) {
  std::optional<std::future<ScoreResult>> future = try_submit(address);
  if (!future.has_value()) {
    throw StateError("ScoringEngine::submit after shutdown");
  }
  return std::move(*future);
}

std::optional<std::future<ScoreResult>> ScoringEngine::try_submit(
    const evm::Address& address) {
  Request request;
  request.address = address;
  std::future<ScoreResult> future = request.promise.get_future();
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return std::nullopt;
    if (config_.max_queue == 0 || queue_.size() < config_.max_queue) {
      queue_.push_back(std::move(request));
      metrics_.queue_depth.set(static_cast<double>(queue_.size()));
      admitted = true;
    }
  }
  metrics_.requests_submitted.inc();
  if (admitted) {
    queue_cv_.notify_one();
  } else {
    // Reject-on-full: resolve right here instead of letting the queue grow
    // without bound — the caller learns immediately and can back off.
    ScoreResult shed;
    shed.status = ScoreStatus::kShed;
    shed.error = "queue full (max_queue=" +
                 std::to_string(config_.max_queue) + ")";
    deliver(request, std::move(shed));
  }
  return future;
}

std::vector<ScoreResult> ScoringEngine::score_all(
    const std::vector<evm::Address>& addresses) {
  std::vector<std::future<ScoreResult>> futures;
  futures.reserve(addresses.size());
  for (const evm::Address& address : addresses) {
    futures.push_back(submit(address));
  }
  // Collect everything: a single bad future must not abandon the results
  // (and the worker-side promises) of the requests after it.
  std::vector<ScoreResult> results;
  results.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      results.push_back(futures[i].get());
    } catch (const std::exception& e) {
      ScoreResult lost;
      lost.address = addresses[i];
      lost.status = ScoreStatus::kShed;
      lost.error = std::string("result unavailable: ") + e.what();
      results.push_back(std::move(lost));
    }
  }
  return results;
}

void ScoringEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ScoringEngine::worker_loop() {
  for (;;) {
    std::vector<Request> batch = next_batch();
    if (batch.empty()) return;  // stopping and drained
    process_batch(std::move(batch));
  }
}

std::vector<ScoringEngine::Request> ScoringEngine::next_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // only reachable when stopping_
    // Micro-batch: hold an under-full batch open briefly so closely spaced
    // arrivals share one model invocation. Another worker may drain the
    // queue while we wait, so re-check and go back to sleep if so.
    if (queue_.size() < config_.max_batch && !stopping_) {
      queue_cv_.wait_for(lock, std::chrono::microseconds(config_.max_wait_us),
                         [this] {
                           return stopping_ ||
                                  queue_.size() >= config_.max_batch;
                         });
      if (queue_.empty()) continue;
    }
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    std::vector<Request> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    metrics_.queue_depth.set(static_cast<double>(queue_.size()));
    return batch;
  }
}

evm::Bytecode ScoringEngine::extract_code(const evm::Address& address) {
  return config_.extract_retry.run(
      [&] { return bem_.extract(address).code; },
      /*salt=*/static_cast<std::uint64_t>(std::hash<evm::Address>{}(address)),
      [this] { metrics_.retries.inc(); });
}

void ScoringEngine::process_batch(std::vector<Request> batch) {
  obs::ScopedSpan batch_span("serve.batch");

  // Deadline shedding first: a request that already blew its budget gets no
  // extract or model work, and does not count toward batch occupancy.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& request : batch) {
    if (config_.deadline_us != 0 &&
        request.queued.seconds() * 1e6 > static_cast<double>(
                                             config_.deadline_us)) {
      ScoreResult shed;
      shed.status = ScoreStatus::kShed;
      shed.error = "deadline exceeded (deadline_us=" +
                   std::to_string(config_.deadline_us) + ")";
      deliver(request, std::move(shed));
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  metrics_.batches.inc();
  metrics_.batched_requests.inc(live.size());
  common::ScopedTimer batch_timer(
      [this](double s) { metrics_.batch_latency.record(s * 1e6); });

  struct Slot {
    evm::Bytecode code;
    evm::Hash256 hash{};
    double probability = 0.0;
    ScoreStatus status = ScoreStatus::kOk;
    std::string error;
    bool cache_hit = false;
  };
  std::vector<Slot> slots(live.size());

  // Pull bytecode, probe the cache, and collapse duplicate code hashes so
  // each unique miss costs exactly one model row. Extraction is per-slot
  // fault-isolated: one hostile address fails its own slot, never the
  // batch, never the worker.
  std::unordered_map<evm::Hash256, std::size_t, DigestHash> miss_index;
  std::vector<const evm::Bytecode*> miss_codes;
  std::vector<std::vector<std::size_t>> miss_slots;
  obs::ScopedSpan extract_span("serve.extract");
  for (std::size_t i = 0; i < live.size(); ++i) {
    Slot& slot = slots[i];
    try {
      slot.code = extract_code(live[i].address);
    } catch (const std::exception& e) {
      slot.status = ScoreStatus::kExtractError;
      slot.error = e.what();
      continue;
    } catch (...) {
      slot.status = ScoreStatus::kExtractError;
      slot.error = "unknown extract error";
      continue;
    }
    if (slot.code.empty()) {
      slot.status = ScoreStatus::kEmptyCode;
      metrics_.empty_code_requests.inc();
      continue;
    }
    slot.hash = slot.code.code_hash();
    if (const std::optional<double> cached = cache_.get(slot.hash)) {
      slot.probability = *cached;
      slot.cache_hit = true;
      continue;
    }
    const auto [it, inserted] = miss_index.try_emplace(slot.hash,
                                                       miss_codes.size());
    if (inserted) {
      miss_codes.push_back(&slot.code);
      miss_slots.emplace_back();
    }
    miss_slots[it->second].push_back(i);
  }
  extract_span.end();

  if (!miss_codes.empty()) {
    std::vector<double> probabilities;
    std::string model_error;
    try {
      obs::ScopedSpan predict_span("serve.predict");
      probabilities = detector_->predict_proba(miss_codes);
    } catch (const std::exception& e) {
      model_error = e.what();
    } catch (...) {
      model_error = "unknown model error";
    }
    if (probabilities.size() == miss_codes.size()) {
      metrics_.model_invocations.inc();
      metrics_.model_rows.inc(miss_codes.size());
      for (std::size_t u = 0; u < miss_codes.size(); ++u) {
        cache_.put(miss_codes[u]->code_hash(), probabilities[u]);
        for (std::size_t slot_id : miss_slots[u]) {
          slots[slot_id].probability = probabilities[u];
        }
      }
    } else {
      // Model failure poisons only the slots that needed the model; cache
      // hits and empty-code slots in this batch still deliver below.
      if (model_error.empty()) {
        model_error = "predict_proba returned " +
                      std::to_string(probabilities.size()) + " rows for " +
                      std::to_string(miss_codes.size()) + " codes";
      }
      for (const std::vector<std::size_t>& group : miss_slots) {
        for (std::size_t slot_id : group) {
          slots[slot_id].status = ScoreStatus::kModelError;
          slots[slot_id].error = model_error;
        }
      }
    }
  }

  for (std::size_t i = 0; i < live.size(); ++i) {
    ScoreResult result;
    result.status = slots[i].status;
    result.cache_hit = slots[i].cache_hit;
    result.error = std::move(slots[i].error);
    if (slots[i].status == ScoreStatus::kOk) {
      result.probability = slots[i].probability;
      result.flagged = result.probability >= 0.5;
    }
    deliver(live[i], std::move(result));
  }
}

}  // namespace phishinghook::serve
