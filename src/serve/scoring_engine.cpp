#include "serve/scoring_engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <functional>
#include <unordered_map>

#include "common/errors.hpp"
#include "common/thread_pool.hpp"
#include "ml/flat_tree.hpp"
#include "obs/trace.hpp"

namespace phishinghook::serve {

namespace {
/// Map hash for within-batch dedup; leading digest bytes are uniform.
struct DigestHash {
  std::size_t operator()(const evm::Hash256& h) const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(h[i]) << (8 * i);
    }
    return static_cast<std::size_t>(v);
  }
};

}  // namespace

const char* to_string(ScoreStatus status) {
  switch (status) {
    case ScoreStatus::kOk: return "ok";
    case ScoreStatus::kEmptyCode: return "empty_code";
    case ScoreStatus::kDegraded: return "degraded";
    case ScoreStatus::kExtractError: return "extract_error";
    case ScoreStatus::kModelError: return "model_error";
    case ScoreStatus::kShed: return "shed";
  }
  return "unknown";
}

ScoringEngine::ScoringEngine(const chain::Explorer& explorer,
                             ml::Scorer& detector, EngineConfig config)
    : bem_(explorer),
      detector_(&detector),
      config_(config),
      cache_(config.cache_capacity, config.cache_shards) {
  // workers == 0 = auto: the same PHISHINGHOOK_THREADS knob that sizes the
  // training thread pool sizes the serving pool.
  if (config_.workers == 0) {
    config_.workers = common::ThreadPool::configured_threads();
  }
  if (config_.max_batch == 0) throw InvalidArgument("max_batch must be > 0");
  // Tree detectors serve through a compiled FlatTreeEnsemble; export its
  // compile-time shape so operators can see which inference path is live.
  if (const ml::FlatTreeEnsemble* flat = detector_->flat_ensemble()) {
    metrics_.flat_tree_count.set(static_cast<double>(flat->tree_count()));
    metrics_.flat_node_count.set(static_cast<double>(flat->node_count()));
  }
  // Composite scorers (the cascade) register their hot-path instruments on
  // this engine's private registry, next to the serve_* series.
  detector_->bind_metrics(metrics_.registry);
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ScoringEngine::~ScoringEngine() { shutdown(); }

void ScoringEngine::deliver(Request& request, ScoreResult result) {
  result.address = request.address;
  result.latency_us = request.queued.seconds() * 1e6;
  result.queue_wait_us = request.queue_wait_us;
  result.trace_id = request.ctx.trace_id;
  // Terminal stage of the causal lane: close the umbrella async slice and
  // finish the flow arrow before the promise wakes the consumer.
  obs::finish_request(request.ctx);
  // Every terminal outcome records latency — failed and shed requests held
  // capacity too, and hiding them would flatter the percentiles.
  metrics_.request_latency.record(result.latency_us);
  switch (result.status) {
    case ScoreStatus::kOk:
    case ScoreStatus::kEmptyCode:
      metrics_.requests_completed.inc();
      break;
    case ScoreStatus::kDegraded:
      // A degraded request *was* answered with a usable score — it counts
      // as completed, with its own counter so operators see the fallback.
      metrics_.requests_completed.inc();
      metrics_.requests_degraded.inc();
      break;
    case ScoreStatus::kExtractError:
    case ScoreStatus::kModelError:
      metrics_.requests_failed.inc();
      break;
    case ScoreStatus::kShed:
      metrics_.requests_shed.inc();
      break;
  }
  request.promise.set_value(std::move(result));
}

std::future<ScoreResult> ScoringEngine::submit(const evm::Address& address) {
  return submit(address, obs::RequestContext{});
}

std::future<ScoreResult> ScoringEngine::submit(const evm::Address& address,
                                               obs::RequestContext ctx) {
  std::optional<std::future<ScoreResult>> future =
      try_submit(address, std::move(ctx));
  if (!future.has_value()) {
    throw StateError("ScoringEngine::submit after shutdown");
  }
  return std::move(*future);
}

std::optional<std::future<ScoreResult>> ScoringEngine::try_submit(
    const evm::Address& address) {
  return try_submit(address, obs::RequestContext{});
}

std::optional<std::future<ScoreResult>> ScoringEngine::try_submit(
    const evm::Address& address, obs::RequestContext ctx) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (!ctx.valid()) ctx = obs::mint_request(tracer);
  // Restamp the hand-off: from here queue-wait means *this* queue, not
  // whatever upstream hop the context already traveled.
  ctx.handoff_us = tracer.now_us();
  Request request;
  request.address = address;
  request.ctx = ctx;
  std::future<ScoreResult> future = request.promise.get_future();
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // The lane ends here (whether we minted it or it arrived from
      // upstream, it was handed to us by value) — close it instead of
      // leaving an unclosed async slice in the trace.
      obs::finish_request(ctx, tracer);
      return std::nullopt;
    }
    if (config_.max_queue == 0 || queue_.size() < config_.max_queue) {
      queue_.push_back(std::move(request));
      metrics_.queue_depth.set(static_cast<double>(queue_.size()));
      admitted = true;
    }
  }
  metrics_.requests_submitted.inc();
  if (admitted) {
    queue_cv_.notify_one();
  } else {
    // Reject-on-full: resolve right here instead of letting the queue grow
    // without bound — the caller learns immediately and can back off.
    ScoreResult shed;
    shed.status = ScoreStatus::kShed;
    shed.error = "queue full (max_queue=" +
                 std::to_string(config_.max_queue) + ")";
    deliver(request, std::move(shed));
  }
  return future;
}

std::vector<ScoreResult> ScoringEngine::score_all(
    const std::vector<evm::Address>& addresses) {
  std::vector<std::future<ScoreResult>> futures;
  futures.reserve(addresses.size());
  for (const evm::Address& address : addresses) {
    futures.push_back(submit(address));
  }
  // Collect everything: a single bad future must not abandon the results
  // (and the worker-side promises) of the requests after it.
  std::vector<ScoreResult> results;
  results.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      results.push_back(futures[i].get());
    } catch (const std::exception& e) {
      ScoreResult lost;
      lost.address = addresses[i];
      lost.status = ScoreStatus::kShed;
      lost.error = std::string("result unavailable: ") + e.what();
      results.push_back(std::move(lost));
    }
  }
  return results;
}

void ScoringEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ScoringEngine::worker_loop() {
  for (;;) {
    std::vector<Request> batch = next_batch();
    if (batch.empty()) return;  // stopping and drained
    process_batch(std::move(batch));
  }
}

std::vector<ScoringEngine::Request> ScoringEngine::next_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // only reachable when stopping_
    // Micro-batch: hold an under-full batch open briefly so closely spaced
    // arrivals share one model invocation. Another worker may drain the
    // queue while we wait, so re-check and go back to sleep if so.
    if (queue_.size() < config_.max_batch && !stopping_) {
      queue_cv_.wait_for(lock, std::chrono::microseconds(config_.max_wait_us),
                         [this] {
                           return stopping_ ||
                                  queue_.size() >= config_.max_batch;
                         });
      if (queue_.empty()) continue;
    }
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    std::vector<Request> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    metrics_.queue_depth.set(static_cast<double>(queue_.size()));
    return batch;
  }
}

evm::Bytecode ScoringEngine::extract_code(const evm::Address& address) {
  return config_.extract_retry.run(
      [&] { return bem_.extract(address).code; },
      /*salt=*/static_cast<std::uint64_t>(std::hash<evm::Address>{}(address)),
      [this] { metrics_.retries.inc(); });
}

void ScoringEngine::process_batch(std::vector<Request> batch) {
  obs::ScopedSpan batch_span("serve.batch");
  obs::Tracer& tracer = obs::Tracer::global();

  // Every popped request just finished its queue-wait stage — attribute it
  // before anything else (deadline-shed requests waited too, and their
  // wait is exactly why they are being shed).
  const double popped_us = tracer.now_us();
  for (Request& request : batch) {
    request.queue_wait_us = request.ctx.wait_us(popped_us);
    metrics_.stage_queue_wait.record(request.queue_wait_us);
    obs::stage_slice(request.ctx, "req.queue", request.ctx.handoff_us,
                     popped_us, tracer);
    if (request.ctx.valid()) tracer.flow_step(request.ctx.trace_id);
  }

  // Deadline shedding first: a request that already blew its budget gets no
  // extract or model work, and does not count toward batch occupancy.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& request : batch) {
    if (config_.deadline_us != 0 &&
        request.queued.seconds() * 1e6 > static_cast<double>(
                                             config_.deadline_us)) {
      ScoreResult shed;
      shed.status = ScoreStatus::kShed;
      shed.error = "deadline exceeded (deadline_us=" +
                   std::to_string(config_.deadline_us) + ")";
      deliver(request, std::move(shed));
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  metrics_.batches.inc();
  metrics_.batched_requests.inc(live.size());
  common::ScopedTimer batch_timer(
      [this](double s) { metrics_.batch_latency.record(s * 1e6); });

  struct Slot {
    evm::Bytecode code;
    evm::Hash256 hash{};
    double probability = 0.0;
    std::uint32_t stage = 0;
    ScoreStatus status = ScoreStatus::kOk;
    std::string error;
    bool cache_hit = false;
  };
  std::vector<Slot> slots(live.size());

  // Pull bytecode, probe the cache, and collapse duplicate code hashes so
  // each unique miss costs exactly one model row. Extraction is per-slot
  // fault-isolated: one hostile address fails its own slot, never the
  // batch, never the worker.
  std::unordered_map<evm::Hash256, std::size_t, DigestHash> miss_index;
  std::vector<const evm::Bytecode*> miss_codes;
  std::vector<std::vector<std::size_t>> miss_slots;
  obs::ScopedSpan extract_span("serve.extract");
  for (std::size_t i = 0; i < live.size(); ++i) {
    Slot& slot = slots[i];
    // Per-slot service timing: fetch + hash + cache probe is the extract
    // stage this request experienced, whatever its outcome.
    const double slot_start_us = tracer.now_us();
    [&] {
      try {
        slot.code = extract_code(live[i].address);
      } catch (const std::exception& e) {
        slot.status = ScoreStatus::kExtractError;
        slot.error = e.what();
        return;
      } catch (...) {
        slot.status = ScoreStatus::kExtractError;
        slot.error = "unknown extract error";
        return;
      }
      if (slot.code.empty()) {
        slot.status = ScoreStatus::kEmptyCode;
        metrics_.empty_code_requests.inc();
        return;
      }
      slot.hash = slot.code.code_hash();
      if (const std::optional<CachedScore> cached = cache_.get(slot.hash)) {
        slot.probability = cached->probability;
        slot.stage = cached->stage;
        slot.cache_hit = true;
        return;
      }
      const auto [it, inserted] = miss_index.try_emplace(slot.hash,
                                                         miss_codes.size());
      if (inserted) {
        miss_codes.push_back(&slot.code);
        miss_slots.emplace_back();
      }
      miss_slots[it->second].push_back(i);
    }();
    const double slot_end_us = tracer.now_us();
    metrics_.stage_extract.record(slot_end_us - slot_start_us);
    obs::stage_slice(live[i].ctx, "req.extract", slot_start_us, slot_end_us,
                     tracer);
  }
  extract_span.end();

  if (!miss_codes.empty()) {
    std::vector<ml::ScoredRow> rows(miss_codes.size());
    bool scored = false;
    std::string model_error;
    const double predict_start_us = tracer.now_us();
    try {
      obs::ScopedSpan predict_span("serve.predict");
      detector_->score_batch(
          ml::BytecodeBatchView(miss_codes.data(), miss_codes.size()), rows);
      scored = true;
    } catch (const std::exception& e) {
      model_error = e.what();
    } catch (...) {
      model_error = "unknown model error";
    }
    const double predict_end_us = tracer.now_us();
    // The whole miss group shares one model invocation, so each request in
    // it experienced the full invocation as its predict service time —
    // success or failure alike (a throwing model still cost the wall time).
    for (const std::vector<std::size_t>& group : miss_slots) {
      for (std::size_t slot_id : group) {
        metrics_.stage_predict.record(predict_end_us - predict_start_us);
        obs::stage_slice(live[slot_id].ctx, "req.predict", predict_start_us,
                         predict_end_us, tracer);
      }
    }
    if (scored) {
      metrics_.model_invocations.inc();
      metrics_.model_rows.inc(miss_codes.size());
      for (std::size_t u = 0; u < miss_codes.size(); ++u) {
        // Degraded (heavy-stage-fault fallback) scores are deliberately
        // not cached: the next request for this code hash retries the
        // heavy stage instead of pinning the fallback until eviction.
        if (!rows[u].degraded) {
          cache_.put(miss_codes[u]->code_hash(),
                     CachedScore{rows[u].probability, rows[u].stage});
        }
        for (std::size_t slot_id : miss_slots[u]) {
          slots[slot_id].probability = rows[u].probability;
          slots[slot_id].stage = rows[u].stage;
          if (rows[u].degraded) {
            slots[slot_id].status = ScoreStatus::kDegraded;
          }
        }
      }
    } else {
      // Model failure poisons only the slots that needed the model; cache
      // hits and empty-code slots in this batch still deliver below.
      for (const std::vector<std::size_t>& group : miss_slots) {
        for (std::size_t slot_id : group) {
          slots[slot_id].status = ScoreStatus::kModelError;
          slots[slot_id].error = model_error;
        }
      }
    }
  }

  for (std::size_t i = 0; i < live.size(); ++i) {
    ScoreResult result;
    result.status = slots[i].status;
    result.cache_hit = slots[i].cache_hit;
    result.error = std::move(slots[i].error);
    if (slots[i].status == ScoreStatus::kOk ||
        slots[i].status == ScoreStatus::kDegraded) {
      result.probability = slots[i].probability;
      result.flagged = result.probability >= 0.5;
      result.stage = slots[i].stage;
      result.model = detector_->stage_model(slots[i].stage);
    }
    deliver(live[i], std::move(result));
  }
}

}  // namespace phishinghook::serve
