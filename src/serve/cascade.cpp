#include "serve/cascade.hpp"

#include <chrono>
#include <cmath>

#include "common/errors.hpp"
#include "obs/trace.hpp"

namespace phishinghook::serve {

namespace {

/// Monotonic nanoseconds for the per-stage timing accumulators.
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

CascadeScorer::CascadeScorer(std::vector<std::unique_ptr<ml::Scorer>> stages,
                             CascadeConfig config)
    : stages_(std::move(stages)), config_(config) {
  if (stages_.empty()) {
    throw InvalidArgument("cascade needs at least one stage");
  }
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (!stages_[s]) {
      throw InvalidArgument("cascade stage " + std::to_string(s) + " is null");
    }
  }
  if (!std::isfinite(config_.lo) || !std::isfinite(config_.hi)) {
    throw InvalidArgument("cascade band must be finite");
  }
  if (config_.enabled() &&
      (config_.lo < 0.0 || config_.hi > 1.0)) {
    throw InvalidArgument("cascade band [" + std::to_string(config_.lo) +
                          ", " + std::to_string(config_.hi) +
                          "] outside [0, 1]");
  }
  state_ = std::make_unique<StageState[]>(stages_.size());
}

std::string CascadeScorer::name() const {
  std::string out = "cascade(";
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (s != 0) out += " -> ";
    out += stages_[s]->name();
  }
  out += ")";
  return out;
}

std::string CascadeScorer::stage_model(std::size_t index) const {
  return stages_.at(index)->name();
}

void CascadeScorer::score_batch(const ml::BytecodeBatchView& view,
                                std::span<ml::ScoredRow> out) {
  if (out.size() != view.size()) {
    throw InvalidArgument("cascade score_batch: out span size " +
                          std::to_string(out.size()) + " != view size " +
                          std::to_string(view.size()));
  }
  if (view.empty()) return;

  // Stage 0 scores everything. A failure here propagates: there is no
  // earlier probability to degrade to.
  {
    obs::ScopedSpan span("cascade.stage", stages_[0]->name().c_str());
    const std::uint64_t start = now_ns();
    stages_[0]->score_batch(view, out);
    const std::uint64_t elapsed = now_ns() - start;
    StageState& st = state_[0];
    st.rows.fetch_add(view.size(), std::memory_order_relaxed);
    st.time_ns.fetch_add(elapsed, std::memory_order_relaxed);
    st.rows_counter.inc(view.size());
    if (st.stage_us) st.stage_us->record(static_cast<double>(elapsed) * 1e-3);
  }
  for (std::size_t i = 0; i < view.size(); ++i) {
    // Whatever a nested scorer reported, rows leaving stage 0 of *this*
    // cascade carry this cascade's stage numbering.
    out[i].stage = 0;
    out[i].degraded = false;
  }
  if (!config_.enabled() || stages_.size() == 1) return;

  // Escalate while the current probability stays inside the band. The
  // decision reads only the row's own probability, so results cannot
  // depend on batch composition, worker count, or timing.
  std::vector<std::size_t> uncertain;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (config_.in_band(out[i].probability)) uncertain.push_back(i);
  }

  std::vector<const evm::Bytecode*> sub_codes;
  std::vector<ml::ScoredRow> sub_rows;
  for (std::size_t s = 1; s < stages_.size() && !uncertain.empty(); ++s) {
    sub_codes.clear();
    sub_codes.reserve(uncertain.size());
    for (std::size_t idx : uncertain) sub_codes.push_back(view.data()[idx]);
    sub_rows.assign(uncertain.size(), ml::ScoredRow{});

    StageState& st = state_[s];
    st.escalations.fetch_add(uncertain.size(), std::memory_order_relaxed);
    st.escalations_counter.inc(uncertain.size());

    const std::uint64_t start = now_ns();
    bool scored = false;
    try {
      obs::ScopedSpan span("cascade.stage", stages_[s]->name().c_str());
      stages_[s]->score_batch(
          ml::BytecodeBatchView(sub_codes.data(), sub_codes.size()),
          sub_rows);
      scored = true;
    } catch (...) {
      // Heavy-stage fault: the escalated rows keep the probability the
      // last healthy stage gave them, flagged degraded so the caller can
      // tell a refined score from a fallback (and skip caching it).
      st.faults.fetch_add(1, std::memory_order_relaxed);
      st.faults_counter.inc();
      degraded_.fetch_add(uncertain.size(), std::memory_order_relaxed);
      degraded_counter_.inc(uncertain.size());
      for (std::size_t idx : uncertain) out[idx].degraded = true;
    }
    const std::uint64_t elapsed = now_ns() - start;
    st.time_ns.fetch_add(elapsed, std::memory_order_relaxed);
    if (st.stage_us) st.stage_us->record(static_cast<double>(elapsed) * 1e-3);
    if (!scored) return;  // deeper stages have nothing healthy to refine

    st.rows.fetch_add(uncertain.size(), std::memory_order_relaxed);
    st.rows_counter.inc(uncertain.size());
    std::vector<std::size_t> still_uncertain;
    for (std::size_t u = 0; u < uncertain.size(); ++u) {
      const std::size_t idx = uncertain[u];
      out[idx].probability = sub_rows[u].probability;
      out[idx].stage = static_cast<std::uint32_t>(s);
      out[idx].degraded = false;
      if (config_.in_band(out[idx].probability)) {
        still_uncertain.push_back(idx);
      }
    }
    uncertain = std::move(still_uncertain);
  }
}

void CascadeScorer::bind_metrics(obs::MetricsRegistry& registry) {
  registry.set_help("serve_cascade_stage_rows",
                    "Rows scored by each cascade stage");
  registry.set_help("serve_cascade_escalations",
                    "Rows escalated into each cascade stage");
  registry.set_help("serve_cascade_stage_faults",
                    "Throwing score_batch invocations per cascade stage");
  registry.set_help("serve_cascade_degraded_rows",
                    "Rows delivered on a fallback score after a heavy-stage "
                    "fault");
  registry.set_help("serve_cascade_stage_us",
                    "Wall time per cascade-stage invocation");
  registry.set_help("serve_cascade_escalation_rate",
                    "Fraction of rows escalated past stage 0");
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const std::string labels =
        obs::label("stage", std::to_string(s)) + "," +
        obs::label("model", stages_[s]->name());
    StageState& st = state_[s];
    st.rows_counter = registry.counter("serve_cascade_stage_rows", labels);
    st.escalations_counter =
        registry.counter("serve_cascade_escalations", labels);
    st.faults_counter =
        registry.counter("serve_cascade_stage_faults", labels);
    st.stage_us = &registry.histogram("serve_cascade_stage_us", labels);
  }
  degraded_counter_ = registry.counter("serve_cascade_degraded_rows");
  // Nested composite stages get their instruments on the same registry.
  for (const std::unique_ptr<ml::Scorer>& stage : stages_) {
    stage->bind_metrics(registry);
  }
}

void CascadeScorer::export_metrics(obs::MetricsRegistry& registry) const {
  registry.gauge("serve_cascade_escalation_rate")
      .set(stats().escalation_rate());
  for (const std::unique_ptr<ml::Scorer>& stage : stages_) {
    stage->export_metrics(registry);
  }
}

CascadeStats CascadeScorer::stats() const {
  CascadeStats out;
  out.stages.reserve(stages_.size());
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const StageState& st = state_[s];
    CascadeStageStats row;
    row.model = stages_[s]->name();
    row.rows = st.rows.load(std::memory_order_relaxed);
    row.escalations = st.escalations.load(std::memory_order_relaxed);
    row.faults = st.faults.load(std::memory_order_relaxed);
    row.total_us =
        static_cast<double>(st.time_ns.load(std::memory_order_relaxed)) * 1e-3;
    out.stages.push_back(std::move(row));
  }
  out.rows_total = out.stages.front().rows;
  // "Escalated" means left stage 0 — rows entering stage 1. Deeper hops
  // are visible per stage but would double-count rows here.
  if (out.stages.size() > 1) out.escalations_total = out.stages[1].escalations;
  out.degraded_total = degraded_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace phishinghook::serve
