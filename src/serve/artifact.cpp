#include "serve/artifact.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/binary_io.hpp"

namespace phishinghook::serve {

namespace {
// A vocabulary larger than the full Shanghai opcode set by a wide margin
// signals corruption, not a real model.
constexpr std::uint64_t kMaxVocabulary = 1 << 16;
}  // namespace

void save_artifact(std::ostream& out, const core::HistogramAdapter& adapter) {
  out.write(kArtifactMagic, sizeof(kArtifactMagic));
  common::write_u32(out, kArtifactVersion);
  common::write_string(out, adapter.name());
  const auto& mnemonics = adapter.vocabulary().mnemonics();
  common::write_u64(out, mnemonics.size());
  for (const std::string& mnemonic : mnemonics) {
    common::write_string(out, mnemonic);
  }
  adapter.model().save(out);
  if (!out) throw Error("artifact write failed");
}

std::unique_ptr<core::HistogramAdapter> load_artifact(std::istream& in) {
  char magic[sizeof(kArtifactMagic)];
  in.read(magic, sizeof(magic));
  common::check_stream(in, "magic");
  if (!std::equal(std::begin(magic), std::end(magic),
                  std::begin(kArtifactMagic))) {
    throw ParseError("not a PhishingHook model artifact (bad magic)");
  }
  const std::uint32_t version = common::read_u32(in);
  if (version != kArtifactVersion) {
    throw ParseError("unsupported artifact version " +
                     std::to_string(version));
  }
  std::string name = common::read_string(in);
  const std::uint64_t vocab_size = common::read_u64(in);
  if (vocab_size > kMaxVocabulary) {
    throw ParseError("artifact vocabulary size out of range");
  }
  std::vector<std::string> mnemonics;
  mnemonics.reserve(vocab_size);
  for (std::uint64_t i = 0; i < vocab_size; ++i) {
    mnemonics.push_back(common::read_string(in, 256));
  }
  std::unique_ptr<ml::TabularClassifier> model =
      ml::TabularClassifier::load(in);
  return std::make_unique<core::HistogramAdapter>(
      std::move(model), std::move(name),
      core::HistogramVocabulary::from_mnemonics(std::move(mnemonics)));
}

void save_artifact_file(const std::filesystem::path& path,
                        const core::HistogramAdapter& adapter) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw NotFound("cannot open artifact for write: " + path.string());
  save_artifact(out, adapter);
}

std::unique_ptr<core::HistogramAdapter> load_artifact_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw NotFound("cannot open artifact: " + path.string());
  return load_artifact(in);
}

}  // namespace phishinghook::serve
