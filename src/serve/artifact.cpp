#include "serve/artifact.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/binary_io.hpp"
#include "serve/cascade.hpp"

namespace phishinghook::serve {

namespace {

// A vocabulary larger than the full Shanghai opcode set by a wide margin
// signals corruption, not a real model.
constexpr std::uint64_t kMaxVocabulary = 1 << 16;
// No sane cascade chains more stages than model families exist; a large
// count here is a corrupt length prefix, and it also bounds the recursion
// depth of nested artifacts.
constexpr std::uint64_t kMaxCascadeStages = 16;

void write_header(std::ostream& out) {
  out.write(kArtifactMagic, sizeof(kArtifactMagic));
  common::write_u32(out, kArtifactVersion);
}

/// Validates magic and version; returns the version (1 or 2).
std::uint32_t read_header(std::istream& in) {
  char magic[sizeof(kArtifactMagic)];
  in.read(magic, sizeof(magic));
  common::check_stream(in, "magic");
  if (!std::equal(std::begin(magic), std::end(magic),
                  std::begin(kArtifactMagic))) {
    throw ParseError("not a PhishingHook model artifact (bad magic)");
  }
  const std::uint32_t version = common::read_u32(in);
  if (version != 1 && version != kArtifactVersion) {
    throw ParseError("unsupported artifact version " +
                     std::to_string(version));
  }
  return version;
}

void save_hist_payload(std::ostream& out,
                       const core::HistogramAdapter& adapter) {
  common::write_string(out, adapter.name());
  const auto& mnemonics = adapter.vocabulary().mnemonics();
  common::write_u64(out, mnemonics.size());
  for (const std::string& mnemonic : mnemonics) {
    common::write_string(out, mnemonic);
  }
  adapter.model().save(out);
}

std::unique_ptr<core::HistogramAdapter> load_hist_payload(std::istream& in) {
  std::string name = common::read_string(in);
  const std::uint64_t vocab_size = common::read_u64(in);
  if (vocab_size > kMaxVocabulary) {
    throw ParseError("artifact vocabulary size out of range");
  }
  std::vector<std::string> mnemonics;
  mnemonics.reserve(vocab_size);
  for (std::uint64_t i = 0; i < vocab_size; ++i) {
    mnemonics.push_back(common::read_string(in, 256));
  }
  std::unique_ptr<ml::TabularClassifier> model =
      ml::TabularClassifier::load(in);
  return std::make_unique<core::HistogramAdapter>(
      std::move(model), std::move(name),
      core::HistogramVocabulary::from_mnemonics(std::move(mnemonics)));
}

}  // namespace

void save_scorer_artifact(std::ostream& out, const ml::Scorer& scorer) {
  write_header(out);
  if (const auto* hist =
          dynamic_cast<const core::HistogramAdapter*>(&scorer)) {
    common::write_string(out, kArtifactFamilyHistogram);
    save_hist_payload(out, *hist);
  } else if (const auto* cascade =
                 dynamic_cast<const CascadeScorer*>(&scorer)) {
    common::write_string(out, kArtifactFamilyCascade);
    common::write_double(out, cascade->config().lo);
    common::write_double(out, cascade->config().hi);
    common::write_u64(out, cascade->stage_count());
    // Each stage is a complete nested artifact (header + family + payload),
    // so any persistable family can sit at any stage and the reader needs
    // no per-stage framing of its own.
    for (std::size_t s = 0; s < cascade->stage_count(); ++s) {
      save_scorer_artifact(out, cascade->stage(s));
    }
  } else {
    throw StateError("no artifact format for scorer family: " +
                     scorer.name());
  }
  if (!out) throw Error("artifact write failed");
}

std::unique_ptr<ml::Scorer> load_scorer_artifact(std::istream& in) {
  const std::uint32_t version = read_header(in);
  if (version == 1) {
    // Pre-family layout: the payload is implicitly the histogram family.
    return load_hist_payload(in);
  }
  const std::string family = common::read_string(in, 64);
  if (family == kArtifactFamilyHistogram) {
    return load_hist_payload(in);
  }
  if (family == kArtifactFamilyCascade) {
    CascadeConfig config;
    config.lo = common::read_double(in);
    config.hi = common::read_double(in);
    const std::uint64_t stage_count = common::read_u64(in);
    if (stage_count == 0 || stage_count > kMaxCascadeStages) {
      throw ParseError("cascade artifact stage count out of range");
    }
    std::vector<std::unique_ptr<ml::Scorer>> stages;
    stages.reserve(stage_count);
    for (std::uint64_t s = 0; s < stage_count; ++s) {
      stages.push_back(load_scorer_artifact(in));
    }
    try {
      return std::make_unique<CascadeScorer>(std::move(stages), config);
    } catch (const InvalidArgument& e) {
      // A structurally valid file with a nonsense band (NaN, outside
      // [0, 1]) is corruption from the reader's point of view.
      throw ParseError(std::string("cascade artifact rejected: ") + e.what());
    }
  }
  throw ParseError("unknown artifact family \"" + family + "\"");
}

void save_scorer_artifact_file(const std::filesystem::path& path,
                               const ml::Scorer& scorer) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw NotFound("cannot open artifact for write: " + path.string());
  save_scorer_artifact(out, scorer);
}

std::unique_ptr<ml::Scorer> load_scorer_artifact_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw NotFound("cannot open artifact: " + path.string());
  return load_scorer_artifact(in);
}

void save_artifact(std::ostream& out, const core::HistogramAdapter& adapter) {
  save_scorer_artifact(out, adapter);
}

std::unique_ptr<core::HistogramAdapter> load_artifact(std::istream& in) {
  std::unique_ptr<ml::Scorer> scorer = load_scorer_artifact(in);
  if (dynamic_cast<core::HistogramAdapter*>(scorer.get()) == nullptr) {
    throw ParseError("artifact family is not a histogram model (use "
                     "load_scorer_artifact)");
  }
  return std::unique_ptr<core::HistogramAdapter>(
      static_cast<core::HistogramAdapter*>(scorer.release()));
}

void save_artifact_file(const std::filesystem::path& path,
                        const core::HistogramAdapter& adapter) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw NotFound("cannot open artifact for write: " + path.string());
  save_artifact(out, adapter);
}

std::unique_ptr<core::HistogramAdapter> load_artifact_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw NotFound("cannot open artifact: " + path.string());
  return load_artifact(in);
}

}  // namespace phishinghook::serve
