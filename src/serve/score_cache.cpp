#include "serve/score_cache.hpp"

#include <algorithm>
#include <bit>

#include "common/errors.hpp"

namespace phishinghook::serve {

ShardedScoreCache::ShardedScoreCache(std::size_t capacity, std::size_t shards) {
  if (capacity == 0) throw InvalidArgument("score cache capacity must be > 0");
  if (shards == 0) throw InvalidArgument("score cache needs >= 1 shard");
  std::size_t n = std::bit_ceil(shards);
  // Fewer entries than shards: shrink the shard count (still a power of
  // two) so every shard holds at least one entry and none holds zero.
  if (n > capacity) n = std::bit_floor(capacity);
  shards_ = std::vector<Shard>(n);
  shard_mask_ = n - 1;
  // Floor division alone under-provisions (capacity=100 over 8 shards would
  // give 96 entries); hand the remainder out one entry at a time so the
  // shard capacities sum to exactly the requested budget.
  const std::size_t base = capacity / n;
  const std::size_t remainder = capacity % n;
  for (std::size_t i = 0; i < n; ++i) {
    shards_[i].capacity = base + (i < remainder ? 1 : 0);
  }
  capacity_ = capacity;
}

std::size_t ShardedScoreCache::capacity() const { return capacity_; }

std::size_t ShardedScoreCache::shard_index(
    const evm::Hash256& code_hash) const {
  // Bytes 8..15: disjoint from the bytes the per-shard map hashes with, so
  // confining keys to one shard does not also confine them to few buckets.
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(code_hash[8 + i]) << (8 * i);
  }
  return static_cast<std::size_t>(v) & shard_mask_;
}

std::optional<CachedScore> ShardedScoreCache::get(
    const evm::Hash256& code_hash) {
  Shard& shard = shards_[shard_index(code_hash)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(code_hash);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->score;
}

void ShardedScoreCache::put(const evm::Hash256& code_hash, CachedScore score) {
  Shard& shard = shards_[shard_index(code_hash)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(code_hash);
  if (it != shard.index.end()) {
    it->second->score = score;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{code_hash, score});
  shard.index.emplace(code_hash, shard.lru.begin());
}

CacheStats ShardedScoreCache::stats() const {
  CacheStats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
  }
  return out;
}

void ShardedScoreCache::export_metrics(obs::MetricsRegistry& registry) const {
  const CacheStats snapshot = stats();
  registry.gauge("serve_cache_hits").set(static_cast<double>(snapshot.hits));
  registry.gauge("serve_cache_misses")
      .set(static_cast<double>(snapshot.misses));
  registry.gauge("serve_cache_evictions")
      .set(static_cast<double>(snapshot.evictions));
  registry.gauge("serve_cache_entries")
      .set(static_cast<double>(snapshot.entries));
  registry.gauge("serve_cache_hit_rate").set(snapshot.hit_rate());
}

}  // namespace phishinghook::serve
