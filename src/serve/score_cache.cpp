#include "serve/score_cache.hpp"

#include <algorithm>
#include <bit>

#include "common/errors.hpp"

namespace phishinghook::serve {

ShardedScoreCache::ShardedScoreCache(std::size_t capacity, std::size_t shards) {
  if (capacity == 0) throw InvalidArgument("score cache capacity must be > 0");
  if (shards == 0) throw InvalidArgument("score cache needs >= 1 shard");
  const std::size_t n = std::bit_ceil(shards);
  shards_ = std::vector<Shard>(n);
  shard_mask_ = n - 1;
  per_shard_capacity_ = std::max<std::size_t>(1, capacity / n);
}

std::size_t ShardedScoreCache::capacity() const {
  return per_shard_capacity_ * shards_.size();
}

std::size_t ShardedScoreCache::shard_index(
    const evm::Hash256& code_hash) const {
  // Bytes 8..15: disjoint from the bytes the per-shard map hashes with, so
  // confining keys to one shard does not also confine them to few buckets.
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(code_hash[8 + i]) << (8 * i);
  }
  return static_cast<std::size_t>(v) & shard_mask_;
}

std::optional<double> ShardedScoreCache::get(const evm::Hash256& code_hash) {
  Shard& shard = shards_[shard_index(code_hash)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(code_hash);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->probability;
}

void ShardedScoreCache::put(const evm::Hash256& code_hash, double probability) {
  Shard& shard = shards_[shard_index(code_hash)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(code_hash);
  if (it != shard.index.end()) {
    it->second->probability = probability;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{code_hash, probability});
  shard.index.emplace(code_hash, shard.lru.begin());
}

CacheStats ShardedScoreCache::stats() const {
  CacheStats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
  }
  return out;
}

void ShardedScoreCache::export_metrics(obs::MetricsRegistry& registry) const {
  const CacheStats snapshot = stats();
  registry.gauge("serve_cache_hits").set(static_cast<double>(snapshot.hits));
  registry.gauge("serve_cache_misses")
      .set(static_cast<double>(snapshot.misses));
  registry.gauge("serve_cache_evictions")
      .set(static_cast<double>(snapshot.evictions));
  registry.gauge("serve_cache_entries")
      .set(static_cast<double>(snapshot.entries));
  registry.gauge("serve_cache_hit_rate").set(snapshot.hit_rate());
}

}  // namespace phishinghook::serve
