// Cost-aware model cascade: a cheap stage-0 scorer answers every row, and
// only rows whose stage-0 probability lands inside a configurable
// uncertainty band escalate to heavier stages.
//
// The paper's Fig. 7 cost hierarchy (LMs >> VMs >> HSCs) is the whole
// motivation: CatBoost through the flat-tree path scores millions of rows
// per second, while a sequence model manages thousands — but the heavy
// models buy accuracy exactly on the contracts the HSC is unsure about.
// The cascade serves the easy majority at HSC speed and spends the heavy
// budget only where the cheap model's probability is non-committal.
//
// Escalation semantics (pinned by test_cascade):
//   * A row escalates from stage s to stage s+1 iff its stage-s
//     probability p satisfies lo <= p <= hi — both ends inclusive. The
//     decision is a pure function of the probability, never of timing or
//     batch composition, which is what makes cascade output bit-identical
//     across any worker count or batching policy upstream.
//   * lo > hi is the "cascade disabled" configuration: nothing escalates
//     and the cascade is bit-identical to stage 0 alone.
//   * A row's final score is the output of the deepest stage that scored
//     it; its ScoredRow::stage records that stage.
//
// Fault isolation: a throwing heavy stage must not poison the batch — the
// rows it was supposed to refine keep the last healthy stage's
// probability, marked degraded (ScoredRow::degraded -> ScoreStatus::
// kDegraded upstream, and the engine refuses to cache them so the next
// request retries the heavy stage). Only a stage-0 failure propagates as
// an exception, because then there is no probability to fall back to.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/scorer.hpp"
#include "obs/metrics.hpp"

namespace phishinghook::serve {

struct CascadeConfig {
  /// Inclusive uncertainty band: a row escalates while its probability is
  /// in [lo, hi]. lo > hi disables escalation entirely (the documented
  /// "single model" configuration). Both must be finite; when lo <= hi
  /// they must lie in [0, 1].
  double lo = 0.35;
  double hi = 0.65;

  bool enabled() const { return lo <= hi; }
  bool in_band(double p) const { return p >= lo && p <= hi; }
};

/// Point-in-time counters for one cascade stage (see CascadeScorer::stats).
struct CascadeStageStats {
  std::string model;            ///< name of the scorer behind this stage
  std::uint64_t rows = 0;       ///< rows this stage scored
  std::uint64_t escalations = 0;  ///< rows handed *into* this stage (0 for stage 0)
  std::uint64_t faults = 0;     ///< score_batch invocations that threw
  double total_us = 0.0;        ///< wall time spent inside this stage
};

struct CascadeStats {
  std::vector<CascadeStageStats> stages;
  std::uint64_t rows_total = 0;        ///< rows through stage 0
  std::uint64_t escalations_total = 0;  ///< rows that left stage 0
  std::uint64_t degraded_total = 0;    ///< rows delivered on a fallback score

  /// Fraction of rows that escalated past stage 0 (0 when idle).
  double escalation_rate() const {
    return rows_total == 0 ? 0.0
                           : static_cast<double>(escalations_total) /
                                 static_cast<double>(rows_total);
  }
};

/// Staged escalation over owned ml::Scorer stages; itself an ml::Scorer,
/// so the scoring engine, the artifact path and the RPC front end treat a
/// cascade exactly like a single model.
class CascadeScorer final : public ml::Scorer {
 public:
  /// Takes ownership of `stages` (stage 0 first, cheapest to heaviest).
  /// Throws InvalidArgument on an empty stage list, a null stage, or a
  /// malformed band.
  CascadeScorer(std::vector<std::unique_ptr<ml::Scorer>> stages,
                CascadeConfig config = {});

  void score_batch(const ml::BytecodeBatchView& view,
                   std::span<ml::ScoredRow> out) override;

  std::string name() const override;
  std::size_t stage_count() const override { return stages_.size(); }
  std::string stage_model(std::size_t index) const override;

  /// Stage 0's compiled ensemble — the hot path every row goes through.
  const ml::FlatTreeEnsemble* flat_ensemble() const override {
    return stages_.front()->flat_ensemble();
  }

  /// Registers the hot-path instruments on `registry`:
  ///   serve_cascade_stage_rows{stage,model}      rows scored per stage
  ///   serve_cascade_escalations{stage,model}     rows escalated into stage
  ///   serve_cascade_stage_faults{stage,model}    throwing invocations
  ///   serve_cascade_degraded_rows                fallback-scored rows
  ///   serve_cascade_stage_us{stage,model}        per-invocation stage time
  void bind_metrics(obs::MetricsRegistry& registry) override;

  /// Publishes the serve_cascade_escalation_rate gauge (pre-scrape hook).
  void export_metrics(obs::MetricsRegistry& registry) const override;

  const CascadeConfig& config() const { return config_; }
  ml::Scorer& stage(std::size_t index) { return *stages_.at(index); }
  const ml::Scorer& stage(std::size_t index) const {
    return *stages_.at(index);
  }

  CascadeStats stats() const;

 private:
  /// Per-stage hot-path state: internal relaxed atomics (always live, so
  /// stats() works without a registry) plus optional bound instruments.
  struct StageState {
    std::atomic<std::uint64_t> rows{0};
    std::atomic<std::uint64_t> escalations{0};
    std::atomic<std::uint64_t> faults{0};
    std::atomic<std::uint64_t> time_ns{0};
    obs::Counter rows_counter;         // bound by bind_metrics
    obs::Counter escalations_counter;  // bound by bind_metrics
    obs::Counter faults_counter;       // bound by bind_metrics
    obs::LatencyHistogram* stage_us = nullptr;
  };

  std::vector<std::unique_ptr<ml::Scorer>> stages_;
  CascadeConfig config_;
  std::unique_ptr<StageState[]> state_;  // one per stage, fixed at ctor
  std::atomic<std::uint64_t> degraded_{0};
  obs::Counter degraded_counter_;  // bound by bind_metrics
};

}  // namespace phishinghook::serve
