// Online scoring engine: micro-batched, multi-threaded contract scoring.
//
// The deployment scenario (§IV-F) is a stream of addresses arriving from
// wallets and monitors that must be answered within a signing budget of
// seconds. The engine accepts addresses on any number of producer threads,
// queues them, and has a worker pool drain the queue in micro-batches:
//
//   submit(addr) -> [bounded queue] -> worker: shed expired deadlines
//                                        -> BEM eth_getCode (retried)
//                                        -> code hash -> score cache?
//                                        -> one score_batch per batch
//                                        -> cache fill -> future completed
//
// The detector is any ml::Scorer — a single fitted model of any family,
// or a composite like serve::CascadeScorer. Batching exists because
// scorers are batch-oriented (one feature-extraction + model pass
// amortizes over the batch) and because duplicate code hashes inside a
// batch collapse to a single model row. `max_wait_us` bounds how long the
// first request of a batch waits for company, keeping tail latency within
// the signing budget.
//
// Fault isolation contract: the inputs are adversarial and the upstream is
// unreliable, so *no request outcome is an exception*. Every future
// resolves with a ScoreResult carrying a definite ScoreStatus; a throwing
// extract is confined to its slot (after RetryPolicy-governed retries of
// transient faults), a throwing score_batch fails only the slots that
// actually needed the model — cache hits and empty-code slots in the same
// batch still deliver their valid results — and a failing *heavy* cascade
// stage downgrades its rows to the stage-0 score (kDegraded, not cached)
// instead of failing them. Overload is handled by
// admission control (`max_queue`, reject-on-full) and per-request
// deadlines (`deadline_us`, expired requests shed before batching), both
// reported through the kShed status rather than silent drops:
// requests_completed + requests_failed + requests_shed always equals
// requests_submitted once the queue drains.
//
// Thread-safety contract: the detector passed in must have a read-only,
// concurrently callable score_batch (true for every fitted adapter —
// vocabulary/encoder/tokenizer and model weights are immutable at
// inference time — and for CascadeScorer over such stages).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.hpp"
#include "common/timer.hpp"
#include "core/bem.hpp"
#include "ml/scorer.hpp"
#include "obs/request_context.hpp"
#include "serve/metrics.hpp"
#include "serve/score_cache.hpp"

namespace phishinghook::serve {

struct EngineConfig {
  /// Scoring threads; 0 = PHISHINGHOOK_THREADS (default hardware
  /// concurrency), the same knob that sizes the training thread pool.
  std::size_t workers = 4;
  std::size_t max_batch = 32;
  /// How long the worker holds an under-full batch open for more arrivals.
  std::uint64_t max_wait_us = 200;
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Admission control: maximum queued (not yet batched) requests.
  /// 0 = unbounded. A submit against a full queue resolves immediately
  /// with ScoreStatus::kShed instead of queueing.
  std::size_t max_queue = 0;
  /// Per-request deadline measured from submit(); 0 = none. Requests still
  /// queued past their deadline are shed (kShed) before any extract or
  /// model work is spent on them.
  std::uint64_t deadline_us = 0;
  /// Retry schedule for *transient* extract faults
  /// (common::TransientError); permanent faults fail the slot immediately.
  common::RetryPolicy extract_retry;
};

/// Definite outcome of a scoring request. Futures returned by submit()
/// always resolve with one of these — never with an exception.
enum class ScoreStatus {
  kOk,            ///< scored (model or cache)
  kEmptyCode,     ///< EOA / destroyed contract (scored as 0)
  kDegraded,      ///< heavy cascade stage failed; stage-0 score delivered
  kExtractError,  ///< eth_getCode failed after retries
  kModelError,    ///< score_batch threw for this slot's batch
  kShed,          ///< dropped by admission control or deadline
};

/// Stable lowercase label for expositions and CLI summaries.
const char* to_string(ScoreStatus status);

/// One completed scoring request.
struct ScoreResult {
  evm::Address address;
  ScoreStatus status = ScoreStatus::kOk;
  double probability = 0.0;   ///< P(phishing); 0 unless kOk/kDegraded
  bool flagged = false;       ///< probability >= 0.5
  bool cache_hit = false;     ///< served from the score cache
  std::uint32_t stage = 0;    ///< cascade stage that produced the score
  std::string model;          ///< model behind that stage, "" if unscored
  std::string error;          ///< diagnostic, empty when ok/empty_code
  double latency_us = 0.0;    ///< submit -> completion
  double queue_wait_us = 0.0;  ///< time parked in the engine queue
  std::uint64_t trace_id = 0;  ///< causal id; nonzero once a ctx was minted

  /// The request produced a usable score (kOk, a kDegraded fallback, or
  /// the deliberate 0.0 of kEmptyCode).
  bool ok() const {
    return status == ScoreStatus::kOk || status == ScoreStatus::kEmptyCode ||
           status == ScoreStatus::kDegraded;
  }
};

class ScoringEngine {
 public:
  /// The engine borrows `detector` and `explorer`; both must outlive it.
  /// Any ml::Scorer works — a fitted PhishingClassifier adapter of any
  /// model family, or a composite like serve::CascadeScorer; the engine's
  /// batch loop only speaks the score_batch contract.
  ScoringEngine(const chain::Explorer& explorer, ml::Scorer& detector,
                EngineConfig config = {});

  /// Drains the queue, joins the workers.
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  /// Enqueues one address; the future completes when a worker scores it
  /// (or immediately, with kShed, when the queue is full). Callable from
  /// any thread. Throws StateError after shutdown() began — the only
  /// exception this API surfaces. The ctx-less form mints a fresh
  /// RequestContext at admission; the ctx-carrying form continues a causal
  /// lane that began upstream (block follower, load generator), so one
  /// trace id spans ingest -> queue -> extract -> predict in the exported
  /// trace. Either way the context's hand-off stamp is refreshed at
  /// enqueue, so queue-wait attribution measures *this* queue only.
  std::future<ScoreResult> submit(const evm::Address& address);
  std::future<ScoreResult> submit(const evm::Address& address,
                                  obs::RequestContext ctx);

  /// Non-throwing submit for streaming producers racing shutdown: returns
  /// nullopt once shutdown() began (instead of StateError), otherwise
  /// behaves exactly like submit(). A full queue still yields a kShed
  /// future — nullopt strictly means "engine no longer accepts work".
  std::optional<std::future<ScoreResult>> try_submit(
      const evm::Address& address);
  std::optional<std::future<ScoreResult>> try_submit(
      const evm::Address& address, obs::RequestContext ctx);

  /// Convenience: submit + wait for a whole address list. Never throws out
  /// of the collection loop — a future that cannot deliver (e.g. its
  /// promise was abandoned) yields a kShed result for that address while
  /// every other in-flight result is still collected.
  std::vector<ScoreResult> score_all(const std::vector<evm::Address>& addresses);

  /// Stops accepting work, finishes what is queued, joins workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  const ServiceMetrics& metrics() const { return metrics_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  void dump_metrics(std::ostream& out) const {
    metrics_.dump(out, cache_.stats().hit_rate());
  }

  /// The scorer this engine serves (e.g. for the RPC health handler to
  /// describe cascade stages).
  ml::Scorer& scorer() { return *detector_; }
  const ml::Scorer& scorer() const { return *detector_; }

  /// Syncs pull-model state (score-cache stats, the scorer's own gauges
  /// such as the cascade escalation rate) into the engine registry. Wire
  /// as an obs::ScrapeServer pre-scrape hook so /metrics always shows
  /// fresh serve_cache_* / serve_cascade_* values.
  void export_pull_metrics() {
    cache_.export_metrics(metrics_.registry);
    detector_->export_metrics(metrics_.registry);
  }

  /// Back-compat alias for export_pull_metrics().
  void export_cache_metrics() { export_pull_metrics(); }

  /// The engine's private registry, scrapable alongside the global one.
  const obs::MetricsRegistry& prometheus_registry() const {
    return metrics_.registry;
  }

  /// Full Prometheus-style exposition of the engine's private registry
  /// (ServiceMetrics counters/histograms plus a serve_cache_* snapshot).
  void dump_prometheus(std::ostream& out) {
    export_pull_metrics();
    metrics_.registry.write_prometheus(out);
  }

 private:
  struct Request {
    evm::Address address;
    std::promise<ScoreResult> promise;
    common::Timer queued;        ///< starts at submit()
    obs::RequestContext ctx;     ///< causal identity, hand-off restamped
    double queue_wait_us = 0.0;  ///< filled when the batch pops it
  };

  void worker_loop();
  /// Pops up to max_batch requests, honoring the micro-batch wait.
  /// Returns an empty batch only when stopping.
  std::vector<Request> next_batch();
  void process_batch(std::vector<Request> batch);

  /// eth_getCode through the BEM with the configured transient-fault
  /// retry schedule.
  evm::Bytecode extract_code(const evm::Address& address);

  /// Completes one request: stamps address + latency, records the latency
  /// histogram and the completed/failed/shed counter for the status, and
  /// fulfills the promise.
  void deliver(Request& request, ScoreResult result);

  core::BytecodeExtractionModule bem_;
  ml::Scorer* detector_;
  EngineConfig config_;

  ShardedScoreCache cache_;
  ServiceMetrics metrics_;

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace phishinghook::serve
