// Online scoring engine: micro-batched, multi-threaded contract scoring.
//
// The deployment scenario (§IV-F) is a stream of addresses arriving from
// wallets and monitors that must be answered within a signing budget of
// seconds. The engine accepts addresses on any number of producer threads,
// queues them, and has a worker pool drain the queue in micro-batches:
//
//   submit(addr) -> [queue] -> worker: BEM eth_getCode -> code hash
//                                        -> score cache? hit: done
//                                        -> one predict_proba per batch
//                                        -> cache fill -> future completed
//
// Batching exists because the detector is batch-oriented (one
// vocabulary.transform_all + predict_proba call amortizes over the batch)
// and because duplicate code hashes inside a batch collapse to a single
// model row. `max_wait_us` bounds how long the first request of a batch
// waits for company, keeping tail latency within the signing budget.
//
// Thread-safety contract: the detector passed in must have a read-only,
// concurrently callable predict_proba (true for HistogramAdapter — fitted
// vocabulary and tree/linear models are immutable at inference time).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/bem.hpp"
#include "core/model_registry.hpp"
#include "serve/metrics.hpp"
#include "serve/score_cache.hpp"

namespace phishinghook::serve {

struct EngineConfig {
  /// Scoring threads; 0 = PHISHINGHOOK_THREADS (default hardware
  /// concurrency), the same knob that sizes the training thread pool.
  std::size_t workers = 4;
  std::size_t max_batch = 32;
  /// How long the worker holds an under-full batch open for more arrivals.
  std::uint64_t max_wait_us = 200;
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
};

/// One completed scoring request.
struct ScoreResult {
  evm::Address address;
  double probability = 0.0;   ///< P(phishing)
  bool flagged = false;       ///< probability >= 0.5
  bool cache_hit = false;     ///< served from the score cache
  bool empty_code = false;    ///< EOA / destroyed contract (scored as 0)
  double latency_us = 0.0;    ///< submit -> completion
};

class ScoringEngine {
 public:
  /// The engine borrows `detector` and `explorer`; both must outlive it.
  ScoringEngine(const chain::Explorer& explorer,
                core::PhishingClassifier& detector, EngineConfig config = {});

  /// Drains the queue, joins the workers.
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  /// Enqueues one address; the future completes when a worker scores it.
  /// Callable from any thread. Throws StateError after shutdown() began.
  std::future<ScoreResult> submit(const evm::Address& address);

  /// Convenience: submit + wait for a whole address list.
  std::vector<ScoreResult> score_all(const std::vector<evm::Address>& addresses);

  /// Stops accepting work, finishes what is queued, joins workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  const ServiceMetrics& metrics() const { return metrics_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  void dump_metrics(std::ostream& out) const {
    metrics_.dump(out, cache_.stats().hit_rate());
  }

  /// Full Prometheus-style exposition of the engine's private registry
  /// (ServiceMetrics counters/histograms plus a serve_cache_* snapshot).
  void dump_prometheus(std::ostream& out) {
    cache_.export_metrics(metrics_.registry);
    metrics_.registry.write_prometheus(out);
  }

 private:
  struct Request {
    evm::Address address;
    std::promise<ScoreResult> promise;
    common::Timer queued;  ///< starts at submit()
  };

  void worker_loop();
  /// Pops up to max_batch requests, honoring the micro-batch wait.
  /// Returns an empty batch only when stopping.
  std::vector<Request> next_batch();
  void process_batch(std::vector<Request> batch);

  core::BytecodeExtractionModule bem_;
  core::PhishingClassifier* detector_;
  EngineConfig config_;

  ShardedScoreCache cache_;
  ServiceMetrics metrics_;

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace phishinghook::serve
