// JSON-RPC binding of the scoring engine: the process's network front door.
//
// RpcFrontend owns a net::JsonRpcServer and registers three methods
// against a borrowed ScoringEngine:
//
//   phook_score      params ["0x<40 hex>"] — one address, one result
//                    object (probability, flagged, status, cache_hit,
//                    cascade stage + model attribution, latency
//                    attribution, trace_id)
//   phook_scoreBatch params [["0x..", "0x..", ...]] — scored as one
//                    engine wave (all submitted before any wait); bad hex
//                    entries come back as status "invalid_address" without
//                    failing the rest
//   phook_health     no params — engine counters + cache stats + the
//                    net-layer's own request counts, as one JSON object;
//                    when the engine serves a CascadeScorer, a "cascade"
//                    section adds the band config and per-stage traffic
//
// The request's causal identity crosses the boundary: the socket layer
// mints the obs::RequestContext when the HTTP frame completes, and the
// handlers pass it into ScoringEngine::submit, so one trace id spans
// net.parse -> net.dispatch -> engine queue -> extract -> predict in the
// exported Perfetto trace.
//
// Shed semantics: a full dispatch queue or an expired network deadline
// never reaches these handlers (the server answers 503/-32005 itself);
// engine-level sheds (queue-full, engine deadline) surface in the result
// object's status field as "shed", because the request *was* answered —
// with a definite refusal, which a wallet treats differently from a
// transport error.
#pragma once

#include <cstdint>
#include <string>

#include "net/json_rpc_server.hpp"
#include "serve/scoring_engine.hpp"

namespace phishinghook::serve {

class RpcFrontend {
 public:
  /// Borrows `engine`; it must outlive the frontend.
  RpcFrontend(ScoringEngine& engine, net::RpcConfig config = {});

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  void start(std::uint16_t port);
  void stop();

  std::uint16_t port() const { return server_.port(); }

  /// The underlying server, e.g. to attach its net_* registry to a
  /// ScrapeServer next to the engine's serve_* registry.
  net::JsonRpcServer& server() { return server_; }
  const net::JsonRpcServer& server() const { return server_; }

 private:
  net::JsonValue score(const net::JsonValue& params,
                       const net::JsonRpcServer::CallInfo& call);
  net::JsonValue score_batch(const net::JsonValue& params,
                             const net::JsonRpcServer::CallInfo& call);
  net::JsonValue health(const net::JsonValue& params,
                        const net::JsonRpcServer::CallInfo& call);

  ScoringEngine& engine_;
  net::JsonRpcServer server_;
};

}  // namespace phishinghook::serve
