// Service metrics: lock-free counters and latency histograms for the
// scoring engine, dumpable as plain text (a Prometheus-shaped exposition
// without the dependency).
//
// Backed by an obs::MetricsRegistry the engine owns privately, so every
// engine's counts stay isolated (tests assert exact values) while still
// getting the registry's full Prometheus/JSON exposition via
// ScoringEngine::dump_prometheus(). The handles below are relaxed-atomic
// pointer wrappers — hot-path writes never take a lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace phishinghook::serve {

// The serving layer's histograms all record microseconds.
using obs::LatencyHistogram;

/// Counters + histograms for one ScoringEngine instance, registered on the
/// engine's private registry.
struct ServiceMetrics {
  obs::MetricsRegistry registry;

  obs::Counter requests_submitted = registry.counter("serve_requests_submitted");
  obs::Counter requests_completed = registry.counter("serve_requests_completed");
  obs::Counter requests_failed =
      registry.counter("serve_requests_failed");  ///< extract/model errors
  obs::Counter requests_degraded =
      registry.counter("serve_requests_degraded");  ///< heavy-stage fallbacks
  obs::Counter requests_shed =
      registry.counter("serve_requests_shed");  ///< queue-full + deadline
  obs::Counter retries =
      registry.counter("serve_retries");  ///< transient extract retries
  obs::Gauge queue_depth =
      registry.gauge("serve_queue_depth");  ///< admitted, not yet batched
  obs::Counter empty_code_requests =
      registry.counter("serve_empty_code_requests");  ///< EOAs / selfdestructs
  obs::Counter batches = registry.counter("serve_batches_total");
  obs::Counter batched_requests =
      registry.counter("serve_batched_requests_total");  ///< sum of batch sizes
  obs::Counter model_invocations = registry.counter("serve_model_invocations");
  obs::Counter model_rows =
      registry.counter("serve_model_rows");  ///< rows through predict_proba
  obs::Gauge flat_tree_count =
      registry.gauge("serve_flat_tree_count");  ///< compiled ensemble trees
  obs::Gauge flat_node_count =
      registry.gauge("serve_flat_node_count");  ///< compiled ensemble nodes

  LatencyHistogram& request_latency =
      registry.histogram("serve_request_latency_us");  ///< submit -> future done
  LatencyHistogram& batch_latency =
      registry.histogram("serve_batch_latency_us");  ///< one drain+score cycle

  // Per-stage latency attribution: where a request's end-to-end latency
  // actually went. Queue-wait is time parked in the request queue (nobody
  // working on it); service is a stage executing on the request's behalf.
  LatencyHistogram& stage_queue_wait = registry.histogram(
      "serve_stage_wait_us", obs::label("stage", "queue"));
  LatencyHistogram& stage_extract = registry.histogram(
      "serve_stage_service_us", obs::label("stage", "extract"));
  LatencyHistogram& stage_predict = registry.histogram(
      "serve_stage_service_us", obs::label("stage", "predict"));

  ServiceMetrics() {
    registry.set_help("serve_requests_submitted",
                      "Scoring requests accepted by submit()/try_submit()");
    registry.set_help("serve_requests_shed",
                      "Requests dropped by admission control or deadline");
    registry.set_help("serve_requests_degraded",
                      "Requests answered with a stage-0 fallback after a "
                      "heavy cascade stage failed");
    registry.set_help("serve_queue_depth",
                      "Requests admitted but not yet pulled into a batch");
    registry.set_help("serve_request_latency_us",
                      "End-to-end latency, submit to future completion");
    registry.set_help(
        "serve_stage_wait_us",
        "Queue-wait per pipeline stage (parked, no work happening)");
    registry.set_help(
        "serve_stage_service_us",
        "Service time per pipeline stage (work done on the request)");
  }

  double mean_batch_occupancy() const {
    const std::uint64_t n = batches.value();
    return n == 0 ? 0.0
                  : static_cast<double>(batched_requests.value()) /
                        static_cast<double>(n);
  }

  /// Plain-text exposition, one `name value` pair per line. The line set
  /// and formatting are pinned by test_serve — extend via the registry's
  /// write_prometheus instead of here.
  void dump(std::ostream& out, double cache_hit_rate) const {
    out << "serve_requests_submitted " << requests_submitted.value() << "\n"
        << "serve_requests_completed " << requests_completed.value() << "\n"
        << "serve_requests_failed " << requests_failed.value() << "\n"
        << "serve_requests_shed " << requests_shed.value() << "\n"
        << "serve_retries " << retries.value() << "\n"
        << "serve_empty_code_requests " << empty_code_requests.value() << "\n"
        << "serve_batches_total " << batches.value() << "\n"
        << "serve_batch_occupancy_mean " << mean_batch_occupancy() << "\n"
        << "serve_model_invocations " << model_invocations.value() << "\n"
        << "serve_model_rows " << model_rows.value() << "\n"
        << "serve_cache_hit_rate " << cache_hit_rate << "\n"
        << "serve_request_latency_us_p50 " << request_latency.quantile_us(0.50)
        << "\n"
        << "serve_request_latency_us_p95 " << request_latency.quantile_us(0.95)
        << "\n"
        << "serve_request_latency_us_p99 " << request_latency.quantile_us(0.99)
        << "\n"
        << "serve_request_latency_us_max " << request_latency.max_us() << "\n"
        << "serve_batch_latency_us_p50 " << batch_latency.quantile_us(0.50)
        << "\n"
        << "serve_batch_latency_us_p99 " << batch_latency.quantile_us(0.99)
        << "\n";
  }
};

}  // namespace phishinghook::serve
