// Service metrics: lock-free counters and latency histograms for the
// scoring engine, dumpable as plain text (a Prometheus-shaped exposition
// without the dependency).
//
// Everything here is written from engine worker threads on the hot path,
// so all state is std::atomic with relaxed ordering — readers get a
// near-consistent snapshot, writers never serialize on a lock.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

namespace phishinghook::serve {

/// Fixed-bucket log-scale histogram for latencies in microseconds.
///
/// Buckets are half-open [2^i, 2^(i+1)) up to ~67s, which keeps recording
/// to a handful of instructions and quantiles within a factor of two —
/// plenty for p50/p95/p99 tail reporting.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 27;  // 2^26 us ~ 67 s cap

  void record(double microseconds) {
    const auto us = microseconds <= 0.0
                        ? std::uint64_t{0}
                        : static_cast<std::uint64_t>(microseconds);
    buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    // Monotone max via CAS; contention here is rare (only on new maxima).
    std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
    while (us > seen &&
           !max_us_.compare_exchange_weak(seen, us,
                                          std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  double mean_us() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(
                              sum_us_.load(std::memory_order_relaxed)) /
                              static_cast<double>(n);
  }

  double max_us() const {
    return static_cast<double>(max_us_.load(std::memory_order_relaxed));
  }

  /// Upper bound (us) of the bucket containing quantile `q` in [0, 1],
  /// clamped to the observed max so p50 can never read above it.
  double quantile_us(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen > rank) {
        const auto upper = static_cast<double>(std::uint64_t{1} << (b + 1));
        const double observed_max = max_us();
        return observed_max > 0.0 ? std::min(upper, observed_max) : upper;
      }
    }
    return max_us();
  }

 private:
  static std::size_t bucket_of(std::uint64_t us) {
    std::size_t b = 0;
    while (us > 1 && b + 1 < kBuckets) {
      us >>= 1;
      ++b;
    }
    return b;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Counters + histograms for one ScoringEngine instance.
struct ServiceMetrics {
  std::atomic<std::uint64_t> requests_submitted{0};
  std::atomic<std::uint64_t> requests_completed{0};
  std::atomic<std::uint64_t> empty_code_requests{0};  ///< EOAs / selfdestructs
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_requests{0};  ///< sum of batch sizes
  std::atomic<std::uint64_t> model_invocations{0};
  std::atomic<std::uint64_t> model_rows{0};  ///< rows through predict_proba

  LatencyHistogram request_latency;  ///< submit -> future completed
  LatencyHistogram batch_latency;    ///< one drain+score cycle

  double mean_batch_occupancy() const {
    const std::uint64_t n = batches.load(std::memory_order_relaxed);
    return n == 0 ? 0.0
                  : static_cast<double>(
                        batched_requests.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Plain-text exposition, one `name value` pair per line.
  void dump(std::ostream& out, double cache_hit_rate) const {
    const auto get = [](const std::atomic<std::uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    out << "serve_requests_submitted " << get(requests_submitted) << "\n"
        << "serve_requests_completed " << get(requests_completed) << "\n"
        << "serve_empty_code_requests " << get(empty_code_requests) << "\n"
        << "serve_batches_total " << get(batches) << "\n"
        << "serve_batch_occupancy_mean " << mean_batch_occupancy() << "\n"
        << "serve_model_invocations " << get(model_invocations) << "\n"
        << "serve_model_rows " << get(model_rows) << "\n"
        << "serve_cache_hit_rate " << cache_hit_rate << "\n"
        << "serve_request_latency_us_p50 " << request_latency.quantile_us(0.50)
        << "\n"
        << "serve_request_latency_us_p95 " << request_latency.quantile_us(0.95)
        << "\n"
        << "serve_request_latency_us_p99 " << request_latency.quantile_us(0.99)
        << "\n"
        << "serve_request_latency_us_max " << request_latency.max_us() << "\n"
        << "serve_batch_latency_us_p50 " << batch_latency.quantile_us(0.50)
        << "\n"
        << "serve_batch_latency_us_p99 " << batch_latency.quantile_us(0.99)
        << "\n";
  }
};

}  // namespace phishinghook::serve
