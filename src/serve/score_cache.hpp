// Sharded LRU score cache keyed on code hash.
//
// On-chain contracts are heavily duplicated (Fig. 2: ~5x raw:unique via
// minimal-proxy armies and campaign redeploys), and the detector is a pure
// function of the bytecode — so the Keccak code hash is a perfect cache
// key and hits are the *common* case on live traffic. The cache is N-way
// sharded by hash so concurrent engine workers rarely contend on the same
// mutex; each shard is an intrusive-list LRU with its own lock.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "evm/keccak.hpp"
#include "obs/metrics.hpp"

namespace phishinghook::serve {

/// What the cache remembers per code hash: the probability plus which
/// cascade stage produced it, so a cache hit can report the same
/// stage/model attribution as the original score. Degraded (fallback)
/// scores are never cached — the engine retries the heavy stage instead.
struct CachedScore {
  double probability = 0.0;
  std::uint32_t stage = 0;

  friend bool operator==(const CachedScore&, const CachedScore&) = default;
};

/// Aggregated counters across shards (see ShardedScoreCache::stats).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class ShardedScoreCache {
 public:
  /// `capacity` is the total entry budget. `shards` is rounded up to a
  /// power of two so shard selection is a mask — and rounded back *down*
  /// (still a power of two) when it exceeds `capacity`, so no shard ends
  /// up with zero entries. The budget is split as evenly as the shard
  /// count allows, with the remainder distributed one entry at a time;
  /// the per-shard capacities always sum to exactly `capacity` (i.e.
  /// capacity() reports the requested budget, never a floored
  /// approximation of it).
  explicit ShardedScoreCache(std::size_t capacity, std::size_t shards = 16);

  ShardedScoreCache(const ShardedScoreCache&) = delete;
  ShardedScoreCache& operator=(const ShardedScoreCache&) = delete;

  /// Score previously stored for `code_hash`, refreshing its LRU
  /// position; nullopt on miss. Counts a hit or a miss.
  std::optional<CachedScore> get(const evm::Hash256& code_hash);

  /// Inserts (or refreshes) a score, evicting the shard's least recently
  /// used entry when the shard is full.
  void put(const evm::Hash256& code_hash, CachedScore score);
  void put(const evm::Hash256& code_hash, double probability) {
    put(code_hash, CachedScore{probability, 0});
  }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t capacity() const;

  /// Counters summed over shards. Taken shard-by-shard (not atomically
  /// across the whole cache), which is exact once traffic has quiesced.
  CacheStats stats() const;

  /// Which shard a hash maps to (exposed for the sharding tests).
  std::size_t shard_index(const evm::Hash256& code_hash) const;

  /// Publishes the stats() snapshot as serve_cache_* gauges on `registry`
  /// (hits/misses/evictions/entries/hit_rate), for the engine's
  /// Prometheus exposition.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Entry {
    evm::Hash256 key;
    CachedScore score;
  };
  using LruList = std::list<Entry>;

  /// Map hash: the key is already a Keccak digest, so the leading 8 bytes
  /// are uniform — no re-mixing needed. (Shard selection uses *different*
  /// bytes; see shard_index.)
  struct KeyHash {
    std::size_t operator()(const evm::Hash256& h) const {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(h[i]) << (8 * i);
      return static_cast<std::size_t>(v);
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    LruList lru;  // front = most recent
    std::unordered_map<evm::Hash256, LruList::iterator, KeyHash> index;
    std::size_t capacity = 0;  ///< this shard's slice of the entry budget
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  std::vector<Shard> shards_;
  std::size_t capacity_;
  std::size_t shard_mask_;
};

}  // namespace phishinghook::serve
