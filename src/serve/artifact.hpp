// Model artifact persistence — "train once, serve many".
//
// The seed pipeline retrains every detector from scratch in-process on each
// start; a real-time scorer (§IV-F: users sign within seconds) cannot
// afford that. An *artifact* is the fitted HSC detector frozen to disk: the
// HistogramVocabulary (feature order) plus the inner TabularClassifier
// (via the ml save/load hooks), under a magic header and format version.
//
// Guarantee: a saved-then-loaded artifact reproduces the in-memory model's
// predict_proba *bit-identically* (doubles travel as raw IEEE-754 bits).
#pragma once

#include <filesystem>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/model_registry.hpp"

namespace phishinghook::serve {

/// First bytes of every artifact. Version bumps on any layout change;
/// readers reject versions they do not know.
inline constexpr char kArtifactMagic[8] = {'P', 'H', 'O', 'O',
                                           'K', 'M', 'D', 'L'};
inline constexpr std::uint32_t kArtifactVersion = 1;

/// Writes `adapter` (vocabulary + fitted inner model) to `out`.
/// Throws StateError if the inner model is unfitted or unsupported.
void save_artifact(std::ostream& out, const core::HistogramAdapter& adapter);

/// Reads an artifact back into a ready-to-score adapter.
/// Throws ParseError on bad magic, unknown version, or corrupt payload.
std::unique_ptr<core::HistogramAdapter> load_artifact(std::istream& in);

/// File convenience wrappers (binary mode; NotFound if unreadable).
void save_artifact_file(const std::filesystem::path& path,
                        const core::HistogramAdapter& adapter);
std::unique_ptr<core::HistogramAdapter> load_artifact_file(
    const std::filesystem::path& path);

}  // namespace phishinghook::serve
