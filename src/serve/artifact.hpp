// Model artifact persistence — "train once, serve many".
//
// The seed pipeline retrains every detector from scratch in-process on each
// start; a real-time scorer (§IV-F: users sign within seconds) cannot
// afford that. An *artifact* is a fitted ml::Scorer frozen to disk under a
// magic header, format version, and a *family tag* naming the payload
// layout:
//
//   "hist"     core::HistogramAdapter — the HistogramVocabulary (feature
//              order) plus the inner TabularClassifier via the ml
//              save/load hooks
//   "cascade"  serve::CascadeScorer — the uncertainty band plus each stage
//              as a full nested artifact, so any persistable family can sit
//              at any stage
//
// Version 1 artifacts predate the family tag and are read as implicit
// "hist"; writers always emit version 2. Families without a persistence
// format (the raw-bytecode sequence/vision adapters hold fitted encoder
// state the ml layer does not serialize yet) are rejected at save time
// with StateError.
//
// Guarantee: a saved-then-loaded artifact reproduces the in-memory model's
// scores *bit-identically* (doubles travel as raw IEEE-754 bits; the
// cascade band and stage order round-trip exactly).
#pragma once

#include <filesystem>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/model_registry.hpp"
#include "ml/scorer.hpp"

namespace phishinghook::serve {

/// First bytes of every artifact. Version bumps on any layout change;
/// readers reject versions they do not know.
inline constexpr char kArtifactMagic[8] = {'P', 'H', 'O', 'O',
                                           'K', 'M', 'D', 'L'};
inline constexpr std::uint32_t kArtifactVersion = 2;

/// Family tags written after the header (version >= 2).
inline constexpr char kArtifactFamilyHistogram[] = "hist";
inline constexpr char kArtifactFamilyCascade[] = "cascade";

/// Writes any persistable scorer ("hist" adapter or a cascade over
/// persistable stages) to `out`. Throws StateError if the scorer's family
/// has no artifact format or its inner model is unfitted/unsupported.
void save_scorer_artifact(std::ostream& out, const ml::Scorer& scorer);

/// Reads an artifact of any family back into a ready-to-score scorer.
/// Throws ParseError on bad magic, unknown version/family, or corrupt
/// payload.
std::unique_ptr<ml::Scorer> load_scorer_artifact(std::istream& in);

/// File convenience wrappers (binary mode; NotFound if unreadable).
void save_scorer_artifact_file(const std::filesystem::path& path,
                               const ml::Scorer& scorer);
std::unique_ptr<ml::Scorer> load_scorer_artifact_file(
    const std::filesystem::path& path);

/// Typed convenience for the histogram family (the pre-cascade API).
/// load_artifact accepts version-1 artifacts and version-2 "hist"
/// artifacts; a cascade artifact throws ParseError — use
/// load_scorer_artifact for family-agnostic loading.
void save_artifact(std::ostream& out, const core::HistogramAdapter& adapter);
std::unique_ptr<core::HistogramAdapter> load_artifact(std::istream& in);

void save_artifact_file(const std::filesystem::path& path,
                        const core::HistogramAdapter& adapter);
std::unique_ptr<core::HistogramAdapter> load_artifact_file(
    const std::filesystem::path& path);

}  // namespace phishinghook::serve
