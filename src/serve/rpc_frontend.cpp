#include "serve/rpc_frontend.hpp"

#include <cstddef>
#include <future>
#include <optional>
#include <utility>
#include <vector>

#include "serve/cascade.hpp"

namespace phishinghook::serve {

namespace {

using net::JsonValue;
using net::RpcError;
using net::rpc_errors;

/// One params entry -> Address, or the RpcError the caller should throw.
std::optional<evm::Address> parse_address(const JsonValue& value,
                                          std::string* error) {
  if (!value.is_string()) {
    *error = "address must be a hex string";
    return std::nullopt;
  }
  try {
    return evm::Address::from_hex(value.as_string());
  } catch (const std::exception& e) {
    *error = std::string("bad address: ") + e.what();
    return std::nullopt;
  }
}

JsonValue result_object(const ScoreResult& result) {
  JsonValue out;
  out.set("address", JsonValue::string(result.address.to_hex()));
  out.set("status", JsonValue::string(to_string(result.status)));
  out.set("probability", JsonValue::number(result.probability));
  out.set("flagged", JsonValue::boolean(result.flagged));
  out.set("cache_hit", JsonValue::boolean(result.cache_hit));
  // Cascade attribution: which stage answered and which model sits behind
  // it. `model` is empty for unscored outcomes (errors, shed).
  out.set("stage", JsonValue::number(static_cast<double>(result.stage)));
  if (!result.model.empty()) {
    out.set("model", JsonValue::string(result.model));
  }
  out.set("latency_us", JsonValue::number(result.latency_us));
  out.set("queue_wait_us", JsonValue::number(result.queue_wait_us));
  out.set("trace_id",
          JsonValue::number(static_cast<double>(result.trace_id)));
  if (!result.error.empty()) {
    out.set("error", JsonValue::string(result.error));
  }
  return out;
}

JsonValue invalid_address_object(const JsonValue& entry,
                                 const std::string& why) {
  JsonValue out;
  out.set("address", entry.is_string() ? entry : JsonValue::null());
  out.set("status", JsonValue::string("invalid_address"));
  out.set("error", JsonValue::string(why));
  return out;
}

}  // namespace

RpcFrontend::RpcFrontend(ScoringEngine& engine, net::RpcConfig config)
    : engine_(engine), server_(config) {
  server_.register_method(
      "phook_score",
      [this](const JsonValue& params,
             const net::JsonRpcServer::CallInfo& call) {
        return score(params, call);
      });
  server_.register_method(
      "phook_scoreBatch",
      [this](const JsonValue& params,
             const net::JsonRpcServer::CallInfo& call) {
        return score_batch(params, call);
      });
  server_.register_method(
      "phook_health",
      [this](const JsonValue& params,
             const net::JsonRpcServer::CallInfo& call) {
        return health(params, call);
      });
}

void RpcFrontend::start(std::uint16_t port) { server_.start(port); }

void RpcFrontend::stop() { server_.stop(); }

JsonValue RpcFrontend::score(const JsonValue& params,
                             const net::JsonRpcServer::CallInfo& call) {
  if (!params.is_array() || params.as_array().size() != 1) {
    throw RpcError(rpc_errors::kInvalidParams,
                   "expected params [\"0x<40 hex>\"]");
  }
  std::string why;
  const std::optional<evm::Address> address =
      parse_address(params.as_array()[0], &why);
  if (!address) throw RpcError(rpc_errors::kInvalidParams, why);

  // Continue the socket request's causal lane into the engine: its queue
  // wait and extract/predict spans join the same trace id the net layer
  // opened at frame completion.
  std::optional<std::future<ScoreResult>> future =
      engine_.try_submit(*address, call.ctx);
  if (!future) {
    throw RpcError(rpc_errors::kShed, "scoring engine is shutting down");
  }
  return result_object(future->get());
}

JsonValue RpcFrontend::score_batch(const JsonValue& params,
                                   const net::JsonRpcServer::CallInfo& call) {
  if (!params.is_array() || params.as_array().size() != 1 ||
      !params.as_array()[0].is_array()) {
    throw RpcError(rpc_errors::kInvalidParams,
                   "expected params [[\"0x..\", ...]]");
  }
  const JsonValue::Array& entries = params.as_array()[0].as_array();

  // Submit the whole wave before waiting on anything — that is what lets
  // the engine micro-batch the addresses into shared predict_proba calls.
  struct Slot {
    JsonValue ready;  ///< filled now for invalid entries
    std::optional<std::future<ScoreResult>> future;
  };
  std::vector<Slot> slots;
  slots.reserve(entries.size());
  for (const JsonValue& entry : entries) {
    Slot slot;
    std::string why;
    const std::optional<evm::Address> address = parse_address(entry, &why);
    if (!address) {
      slot.ready = invalid_address_object(entry, why);
    } else {
      slot.future = engine_.try_submit(*address, call.ctx);
      if (!slot.future) {
        throw RpcError(rpc_errors::kShed, "scoring engine is shutting down");
      }
    }
    slots.push_back(std::move(slot));
  }

  JsonValue results = JsonValue::array();
  for (Slot& slot : slots) {
    results.push_back(slot.future ? result_object(slot.future->get())
                                  : std::move(slot.ready));
  }
  return results;
}

JsonValue RpcFrontend::health(const JsonValue& params,
                              const net::JsonRpcServer::CallInfo& call) {
  (void)params;
  (void)call;
  const ServiceMetrics& m = engine_.metrics();
  const CacheStats cache = engine_.cache_stats();

  JsonValue engine;
  engine.set("requests_submitted",
             JsonValue::number(
                 static_cast<double>(m.requests_submitted.value())));
  engine.set("requests_completed",
             JsonValue::number(
                 static_cast<double>(m.requests_completed.value())));
  engine.set("requests_failed",
             JsonValue::number(static_cast<double>(m.requests_failed.value())));
  engine.set("requests_shed",
             JsonValue::number(static_cast<double>(m.requests_shed.value())));
  engine.set("requests_degraded",
             JsonValue::number(
                 static_cast<double>(m.requests_degraded.value())));
  engine.set("queue_depth", JsonValue::number(m.queue_depth.value()));

  JsonValue cache_obj;
  cache_obj.set("hits",
                JsonValue::number(static_cast<double>(cache.hits)));
  cache_obj.set("misses",
                JsonValue::number(static_cast<double>(cache.misses)));
  cache_obj.set("entries",
                JsonValue::number(static_cast<double>(cache.entries)));
  cache_obj.set("hit_rate", JsonValue::number(cache.hit_rate()));

  JsonValue network;
  network.set("requests_received",
              JsonValue::number(
                  static_cast<double>(server_.requests_received())));
  network.set("connections_active",
              JsonValue::number(
                  static_cast<double>(server_.connections())));

  JsonValue out;
  out.set("status", JsonValue::string("ok"));
  out.set("engine", std::move(engine));
  out.set("cache", std::move(cache_obj));
  out.set("net", std::move(network));
  out.set("model", JsonValue::string(engine_.scorer().name()));

  // When the engine serves a cascade, describe its band and per-stage
  // traffic so operators can see where rows stop without scraping metrics.
  if (const auto* cascade =
          dynamic_cast<const CascadeScorer*>(&engine_.scorer())) {
    const CascadeConfig& band = cascade->config();
    const CascadeStats stats = cascade->stats();
    JsonValue cascade_obj;
    cascade_obj.set("enabled", JsonValue::boolean(band.enabled()));
    cascade_obj.set("band_lo", JsonValue::number(band.lo));
    cascade_obj.set("band_hi", JsonValue::number(band.hi));
    cascade_obj.set("escalation_rate",
                    JsonValue::number(stats.escalation_rate()));
    cascade_obj.set("degraded_rows",
                    JsonValue::number(
                        static_cast<double>(stats.degraded_total)));
    JsonValue stages = JsonValue::array();
    for (std::size_t s = 0; s < stats.stages.size(); ++s) {
      const CascadeStageStats& stage = stats.stages[s];
      JsonValue stage_obj;
      stage_obj.set("stage", JsonValue::number(static_cast<double>(s)));
      stage_obj.set("model", JsonValue::string(stage.model));
      stage_obj.set("rows",
                    JsonValue::number(static_cast<double>(stage.rows)));
      stage_obj.set("escalations",
                    JsonValue::number(
                        static_cast<double>(stage.escalations)));
      stage_obj.set("faults",
                    JsonValue::number(static_cast<double>(stage.faults)));
      stages.push_back(std::move(stage_obj));
    }
    cascade_obj.set("stages", std::move(stages));
    out.set("cascade", std::move(cascade_obj));
  }
  return out;
}

}  // namespace phishinghook::serve
