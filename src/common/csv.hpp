// Minimal CSV reader/writer.
//
// The paper's BDM stores disassembled opcodes as .csv and the benches dump
// every table/figure series as .csv next to the binary; this is the shared
// implementation. Fields containing separators, quotes or newlines are
// quoted per RFC 4180.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace phishinghook::common {

/// In-memory CSV table: a header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws NotFound if absent.
  std::size_t column(std::string_view name) const;
};

/// Streaming CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path);
  /// Builds an in-memory writer (retrieve with str()); used in tests.
  CsvWriter();
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& fields);
  /// The buffered text when constructed without a path.
  std::string str() const;

 private:
  std::string buffer_;
  std::filesystem::path path_;  // empty => in-memory
};

/// Escapes one CSV field per RFC 4180.
std::string csv_escape(std::string_view field);

/// Parses CSV text (first row = header). Handles quoted fields with embedded
/// separators/quotes/newlines. Throws ParseError on unterminated quotes.
CsvTable parse_csv(std::string_view text);

/// Reads and parses a CSV file. Throws NotFound if the file is missing.
CsvTable read_csv_file(const std::filesystem::path& path);

}  // namespace phishinghook::common
