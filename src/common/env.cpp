#include "common/env.hpp"

#include <cstdlib>

#include "common/logging.hpp"

namespace phishinghook::common {

Scale experiment_scale() {
  const char* raw = std::getenv("PHOOK_SCALE");
  if (raw == nullptr) return Scale::kSmall;
  const std::string v(raw);
  if (v == "smoke") return Scale::kSmoke;
  if (v == "small") return Scale::kSmall;
  if (v == "medium") return Scale::kMedium;
  if (v == "full") return Scale::kFull;
  log_warn("unknown PHOOK_SCALE '", v, "', using 'small'");
  return Scale::kSmall;
}

std::string scale_name(Scale scale) {
  switch (scale) {
    case Scale::kSmoke: return "smoke";
    case Scale::kSmall: return "small";
    case Scale::kMedium: return "medium";
    case Scale::kFull: return "full";
  }
  return "?";
}

ScaleParams scale_params(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return {.corpus_size = 160,
              .folds = 3,
              .runs = 1,
              .nn_epochs = 2,
              .image_side = 16,
              .max_sequence = 96};
    case Scale::kSmall:
      return {.corpus_size = 400,
              .folds = 5,
              .runs = 2,
              .nn_epochs = 3,
              .image_side = 16,
              .max_sequence = 128};
    case Scale::kMedium:
      return {.corpus_size = 2000,
              .folds = 10,
              .runs = 3,
              .nn_epochs = 10,
              .image_side = 32,
              .max_sequence = 256};
    case Scale::kFull:
      return {.corpus_size = 7000,
              .folds = 10,
              .runs = 3,
              .nn_epochs = 20,
              .image_side = 64,
              .max_sequence = 512};
  }
  return scale_params(Scale::kSmall);
}

ScaleParams current_scale_params() { return scale_params(experiment_scale()); }

}  // namespace phishinghook::common
