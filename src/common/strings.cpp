#include "common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace phishinghook::common {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_scientific(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return buf;
}

}  // namespace phishinghook::common
