// Loop-vectorization hint shared by the serving hot paths (flat tree
// traversal, LUT feature extraction).
//
// PHISHINGHOOK_SIMD expands to `#pragma omp simd` when the build enables
// OpenMP SIMD pragmas (CMake adds -fopenmp-simd and defines
// PHISHINGHOOK_OPENMP_SIMD), and to nothing otherwise. The scalar loop is
// the *same source loop* either way: every annotated loop writes each
// iteration's outputs independently (no reductions, no reordered floating
// point), so vectorized and scalar builds are bit-identical — proven by
// the ci.sh -DPHISHINGHOOK_NO_SIMD=ON leg, which compiles with the pragma
// disabled and auto-vectorization off and re-runs the oracle suites.
#pragma once

#if defined(PHISHINGHOOK_NO_SIMD)
#define PHISHINGHOOK_SIMD
#elif defined(PHISHINGHOOK_OPENMP_SIMD) || defined(_OPENMP)
#define PHISHINGHOOK_SIMD _Pragma("omp simd")
#else
#define PHISHINGHOOK_SIMD
#endif
