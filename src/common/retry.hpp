// Bounded retry with exponential backoff and deterministic seeded jitter.
//
// The serving path talks to an upstream (the explorer's eth_getCode) that
// can fail transiently under load; a bounded retry turns most of those
// blips into latency instead of errors. Two properties matter here and
// drive the shape of this type:
//
//   * Only `TransientError` is retried. Permanent faults (parse errors,
//     missing state, logic bugs) must surface immediately, not after
//     max_attempts * backoff of wasted wall clock.
//   * Backoff jitter is *deterministic*: a splitmix64 draw keyed on
//     (seed, salt, attempt) rather than a global RNG or the clock. Two
//     runs with the same seeds produce byte-identical schedules, which is
//     what lets the chaos suite assert 1-thread vs 4-thread equivalence.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace phishinghook::common {

struct RetryPolicy {
  /// Total tries including the first; 1 disables retry entirely.
  std::size_t max_attempts = 3;
  /// Backoff before retry k (k = 1-based) is
  /// base_delay_us * multiplier^(k-1), capped at max_delay_us, then scaled
  /// by a deterministic jitter factor in [1 - jitter, 1].
  std::uint64_t base_delay_us = 100;
  double multiplier = 2.0;
  std::uint64_t max_delay_us = 10'000;
  double jitter = 0.5;
  /// Seed for the jitter draw; combined with the per-call `salt` so
  /// distinct callers (e.g. distinct addresses) decorrelate.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  /// Backoff before retry number `retry` (1-based) for stream `salt`.
  /// Pure function of (policy, retry, salt) — no clock, no global state.
  std::uint64_t delay_us(std::size_t retry, std::uint64_t salt) const {
    double backoff = static_cast<double>(base_delay_us);
    for (std::size_t k = 1; k < retry; ++k) backoff *= multiplier;
    backoff = std::min(backoff, static_cast<double>(max_delay_us));
    std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                          (static_cast<std::uint64_t>(retry) *
                           0xbf58476d1ce4e5b9ULL);
    const double unit =
        static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
    const double factor = 1.0 - jitter * unit;
    return static_cast<std::uint64_t>(backoff * factor);
  }

  /// Runs `fn`, retrying on TransientError up to max_attempts total tries
  /// with the backoff schedule above; `on_retry` fires once per retry
  /// (metrics hook). The last TransientError is rethrown when attempts are
  /// exhausted; non-transient exceptions propagate immediately.
  template <typename Fn, typename OnRetry>
  auto run(Fn&& fn, std::uint64_t salt, OnRetry&& on_retry) const
      -> decltype(fn()) {
    const std::size_t attempts = std::max<std::size_t>(1, max_attempts);
    for (std::size_t attempt = 1;; ++attempt) {
      try {
        return fn();
      } catch (const TransientError&) {
        if (attempt >= attempts) throw;
        on_retry();
        std::this_thread::sleep_for(
            std::chrono::microseconds(delay_us(attempt, salt)));
      }
    }
  }
};

}  // namespace phishinghook::common
