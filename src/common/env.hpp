// Experiment-scale configuration.
//
// The paper's full evaluation (7,000 contracts x 10 folds x 3 runs x 16
// models, several GPU-days) does not fit a CPU CI run, so every bench scales
// its corpus size, fold count and training epochs through one knob:
//
//   PHOOK_SCALE=smoke | small | medium | full
//
// `small` (the default) reproduces every table/figure shape in minutes;
// `full` approximates paper scale.
#pragma once

#include <cstddef>
#include <string>

namespace phishinghook::common {

enum class Scale { kSmoke, kSmall, kMedium, kFull };

/// Scale selected by the PHOOK_SCALE env var (default kSmall).
Scale experiment_scale();

/// Human-readable name ("small", ...).
std::string scale_name(Scale scale);

/// Experiment dimensions derived from a scale.
struct ScaleParams {
  std::size_t corpus_size;   ///< total contracts in the balanced dataset
  int folds;                 ///< cross-validation folds
  int runs;                  ///< repeated CV runs
  int nn_epochs;             ///< epochs for neural models
  std::size_t image_side;    ///< square image side for vision models
  std::size_t max_sequence;  ///< token-sequence cap for language models
};

/// Parameters for a given scale (see env.cpp for the table).
ScaleParams scale_params(Scale scale);

/// Convenience: parameters for the env-selected scale.
ScaleParams current_scale_params();

}  // namespace phishinghook::common
