// Deterministic parallel-execution substrate for the training and
// evaluation layers.
//
// A fixed-size pool with static chunking: parallel_for splits [0, n) into at
// most size() contiguous chunks, hands all but the first to the workers and
// runs the first on the calling thread. Determinism is a *caller* contract —
// every call site pre-draws its randomness serially from the master RNG and
// writes results into pre-assigned slots, and every reduction happens
// serially in index order after the region completes — so fitted models and
// predictions are bit-identical at every thread count (asserted by
// tests/test_parallel_determinism.cpp).
//
// Pool size comes from PHISHINGHOOK_THREADS (default hardware_concurrency);
// a size-1 pool runs every region inline with zero synchronization, and
// nested regions launched from inside a worker also run inline, so parallel
// code may freely call parallel code (forest over trees -> tree over
// features, hyper-search over trials -> CV over folds).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace phishinghook::common {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the calling thread executes one chunk of
  /// every region itself. Throws InvalidArgument for threads == 0.
  explicit ThreadPool(std::size_t threads);

  /// Joins the workers (pending chunks finish first — every parallel region
  /// blocks its caller, so a live region keeps its pool alive).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrency level (1 = everything runs inline on the caller).
  std::size_t size() const { return threads_; }

  /// Runs fn(begin, end) over a static partition of [0, n) into at most
  /// size() contiguous chunks and blocks until all chunks finished. The
  /// first exception thrown by any chunk is rethrown on the caller after the
  /// region drains (remaining chunks still run; the pool stays usable).
  /// Safe to call concurrently from several threads and from inside a
  /// worker (nested regions run inline).
  void parallel_for_chunks(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// Element-wise variant: fn(i) for every i in [0, n), statically chunked.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// out[i] = fn(i) for i in [0, n). T must be default-constructible; each
  /// slot is written by exactly one task and read only after the region
  /// completes, so no extra synchronization is needed.
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
    });
    return out;
  }

  /// Process-wide pool, lazily built with configured_threads() threads.
  static ThreadPool& global();

  /// Rebuilds the global pool with `threads` threads (0 = re-read the
  /// environment). Joins the old workers first; must not overlap a running
  /// region. Intended for tests and benches that sweep thread counts.
  static void set_global_threads(std::size_t threads);

  /// PHISHINGHOOK_THREADS when set to a positive integer, otherwise
  /// hardware_concurrency() (minimum 1).
  static std::size_t configured_threads();

 private:
  void worker_loop();

  std::size_t threads_ = 1;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Convenience wrappers over ThreadPool::global().
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);
void parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
  return ThreadPool::global().parallel_map<T>(n, static_cast<Fn&&>(fn));
}

}  // namespace phishinghook::common
