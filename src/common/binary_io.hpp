// Little binary (de)serialization helpers shared by the model-artifact
// writer (`serve::artifact`) and the classifier save/load hooks.
//
// The format is deliberately dumb: fixed-width little-endian integers and
// raw IEEE-754 bit patterns for doubles, so a saved model reproduces its
// in-memory predictions *bit-identically* after a round trip. Streams are
// checked after every read; a truncated or corrupt artifact surfaces as a
// ParseError instead of garbage weights.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/errors.hpp"

namespace phishinghook::common {

// --- writers -----------------------------------------------------------------

inline void write_u32(std::ostream& out, std::uint32_t value) {
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

inline void write_u64(std::ostream& out, std::uint64_t value) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(bytes), 8);
}

inline void write_i32(std::ostream& out, std::int32_t value) {
  write_u32(out, static_cast<std::uint32_t>(value));
}

/// Raw bit pattern — the round-trip is exact, not shortest-decimal.
inline void write_double(std::ostream& out, double value) {
  write_u64(out, std::bit_cast<std::uint64_t>(value));
}

inline void write_string(std::ostream& out, const std::string& value) {
  write_u64(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

inline void write_doubles(std::ostream& out, const std::vector<double>& values) {
  write_u64(out, values.size());
  for (double v : values) write_double(out, v);
}

// --- readers -----------------------------------------------------------------

inline void check_stream(std::istream& in, const char* what) {
  if (!in) throw ParseError(std::string("truncated artifact reading ") + what);
}

inline std::uint32_t read_u32(std::istream& in) {
  std::uint8_t bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  check_stream(in, "u32");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  return value;
}

inline std::uint64_t read_u64(std::istream& in) {
  std::uint8_t bytes[8];
  in.read(reinterpret_cast<char*>(bytes), 8);
  check_stream(in, "u64");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

inline std::int32_t read_i32(std::istream& in) {
  return static_cast<std::int32_t>(read_u32(in));
}

inline double read_double(std::istream& in) {
  return std::bit_cast<double>(read_u64(in));
}

/// Bounded string read: `max_len` guards against a corrupt length prefix
/// allocating gigabytes.
inline std::string read_string(std::istream& in,
                               std::uint64_t max_len = 1 << 20) {
  const std::uint64_t len = read_u64(in);
  if (len > max_len) throw ParseError("string length out of range");
  std::string value(len, '\0');
  in.read(value.data(), static_cast<std::streamsize>(len));
  check_stream(in, "string");
  return value;
}

inline std::vector<double> read_doubles(std::istream& in,
                                        std::uint64_t max_len = 1 << 28) {
  const std::uint64_t len = read_u64(in);
  if (len > max_len) throw ParseError("double vector length out of range");
  std::vector<double> values(len);
  for (double& v : values) v = read_double(in);
  return values;
}

}  // namespace phishinghook::common
