// Lightweight leveled logger with an optional structured (JSON-lines) sink.
//
// The benches and examples narrate long-running experiments through this;
// level is process-global and settable via the PHISHINGHOOK_LOG env var
// (debug|info|warn|error, default info; legacy alias PHOOK_LOG — when both
// are set the PHISHINGHOOK_ prefix wins). Setting PHISHINGHOOK_LOG_FORMAT
// (or PHOOK_LOG_FORMAT) to `json` switches every line to one JSON object:
//
//   {"ts":"2026-08-06T12:00:00.123Z","level":"info","thread":1,
//    "event":"synth.build","rows":12000,"phishing":3000}
//
// Plain log_info(...) renders in JSON mode with the message under "msg";
// log_event(...) attaches typed key=value fields in both formats.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>

namespace phishinghook::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };
enum class LogFormat { kText = 0, kJson = 1 };

/// Current process-wide level (initialized from PHISHINGHOOK_LOG /
/// PHOOK_LOG on first use).
LogLevel log_level();

/// Overrides the process-wide level.
void set_log_level(LogLevel level);

/// Current output format (initialized from PHISHINGHOOK_LOG_FORMAT /
/// PHOOK_LOG_FORMAT on first use; anything other than "json" is text).
LogFormat log_format();

/// Overrides the process-wide format.
void set_log_format(LogFormat format);

/// Re-reads level and format from the environment (tests use this after
/// setenv; normal programs never need it).
void refresh_log_from_env();

/// Redirects rendered log lines (without trailing newline) away from
/// stderr; pass nullptr to restore stderr. Test hook — not thread-safe
/// versus concurrent logging.
using LogWriter = void (*)(const std::string& line);
void set_log_writer(LogWriter writer);

/// Small per-process thread id (main thread is 1) used by the JSON sink;
/// stable for the thread's lifetime.
std::uint64_t log_thread_id();

/// One key=value field of a structured event. The value keeps its type in
/// JSON output (numbers unquoted, bools bare); text output renders
/// `key=value` uniformly.
struct LogField {
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  LogField(std::string_view key, T value) : key(key) {
    std::ostringstream out;
    if constexpr (std::is_same_v<T, bool>) {
      out << (value ? "true" : "false");
    } else {
      out << value;
    }
    this->value = out.str();
    quoted = false;
  }
  LogField(std::string_view key, const char* value)
      : key(key), value(value), quoted(true) {}
  LogField(std::string_view key, std::string_view value)
      : key(key), value(value), quoted(true) {}
  LogField(std::string_view key, const std::string& value)
      : key(key), value(value), quoted(true) {}

  std::string key;
  std::string value;
  bool quoted;  ///< render inside quotes in JSON output
};

/// Emits one line to the active sink if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

/// Structured event: text mode renders `event key=value ...`, JSON mode
/// one object with each field as a member alongside ts/level/thread/event.
void log_event(LogLevel level, std::string_view event,
               std::initializer_list<LogField> fields);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace phishinghook::common
