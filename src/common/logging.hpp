// Lightweight leveled logger.
//
// The benches and examples narrate long-running experiments through this;
// level is process-global and settable via the PHOOK_LOG env var
// (debug|info|warn|error, default info).
#pragma once

#include <sstream>
#include <string>

namespace phishinghook::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Current process-wide level (initialized from PHOOK_LOG on first use).
LogLevel log_level();

/// Overrides the process-wide level.
void set_log_level(LogLevel level);

/// Emits one line to stderr if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace phishinghook::common
