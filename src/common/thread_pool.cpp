#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace phishinghook::common {

namespace {

// Set inside worker threads of any pool: nested regions run inline so a
// worker never blocks waiting for pool capacity it is itself occupying.
thread_local bool t_in_worker = false;

// Pool-wide instruments on the global registry. Only the queued path
// touches these: the inline fast path (serial pools, nested regions) runs
// for every tree node during decision-tree fits and must stay free of
// clock reads and atomic traffic.
struct PoolInstruments {
  obs::Counter regions = obs::MetricsRegistry::global().counter(
      "threadpool_regions_total");
  obs::Counter tasks = obs::MetricsRegistry::global().counter(
      "threadpool_tasks_total");
  obs::Gauge queue_depth =
      obs::MetricsRegistry::global().gauge("threadpool_queue_depth");
  obs::LatencyHistogram& task_us =
      obs::MetricsRegistry::global().histogram("threadpool_task_us");
};

PoolInstruments& pool_instruments() {
  static PoolInstruments instruments;
  return instruments;
}

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

// One parallel region: chunks still in flight plus the first exception.
struct Region {
  std::mutex m;
  std::condition_variable done;
  std::size_t pending = 0;
  std::exception_ptr error;

  void record(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(m);
    if (!error) error = e;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads) {
  if (threads == 0) throw InvalidArgument("ThreadPool needs >= 1 thread");
  // Register the pool metrics up front so the exposition carries them (at
  // zero) even when every region takes the inline fast path — e.g. a
  // single-core host, where the queued path never runs.
  pool_instruments();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
      pool_instruments().queue_depth.set(static_cast<double>(jobs_.size()));
    }
    PoolInstruments& instruments = pool_instruments();
    const auto start = std::chrono::steady_clock::now();
    job();
    instruments.task_us.record(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
    instruments.tasks.inc();
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || t_in_worker || n == 1) {
    fn(0, n);  // inline fast path: serial pool, nested region, or one item
    return;
  }

  const std::size_t chunks = std::min(threads_, n);
  auto region = std::make_shared<Region>();
  region->pending = chunks - 1;

  pool_instruments().regions.inc();
  obs::ScopedSpan span("pool.region");

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t begin = c * n / chunks;
      const std::size_t end = (c + 1) * n / chunks;
      // `fn` outlives the job: the caller blocks on the region until every
      // chunk has finished.
      jobs_.emplace_back([&fn, region, begin, end] {
        try {
          fn(begin, end);
        } catch (...) {
          region->record(std::current_exception());
        }
        std::lock_guard<std::mutex> lock(region->m);
        if (--region->pending == 0) region->done.notify_all();
      });
    }
    pool_instruments().queue_depth.set(static_cast<double>(jobs_.size()));
  }
  cv_.notify_all();

  try {
    fn(0, n / chunks);  // chunk 0 on the calling thread
  } catch (...) {
    region->record(std::current_exception());
  }

  std::unique_lock<std::mutex> lock(region->m);
  region->done.wait(lock, [&] { return region->pending == 0; });
  if (region->error) std::rethrow_exception(region->error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

std::size_t ThreadPool::configured_threads() {
  const char* raw = std::getenv("PHISHINGHOOK_THREADS");
  if (raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(raw, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
    log_warn("invalid PHISHINGHOOK_THREADS '", std::string(raw),
             "', using hardware_concurrency");
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(configured_threads());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool.reset();  // joins the old workers first
  g_global_pool = std::make_unique<ThreadPool>(
      threads == 0 ? configured_threads() : threads);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

void parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::global().parallel_for_chunks(n, fn);
}

}  // namespace phishinghook::common
