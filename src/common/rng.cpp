#include "common/rng.hpp"

#include <cmath>

namespace phishinghook::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw InvalidArgument("Rng::next_below bound must be > 0");
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return next_double() < p; }

int Rng::poisson(double lambda) {
  if (lambda < 0.0) throw InvalidArgument("Rng::poisson lambda must be >= 0");
  const double threshold = std::exp(-lambda);
  int count = 0;
  double product = next_double();
  while (product > threshold) {
    ++count;
    product *= next_double();
  }
  return count;
}

int Rng::geometric(double continue_prob, int cap) {
  int count = 0;
  while (count < cap && bernoulli(continue_prob)) ++count;
  return count;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw InvalidArgument("Rng::weighted_index requires non-empty weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw InvalidArgument("Rng::weighted_index weight < 0");
    total += w;
  }
  if (total <= 0.0) return next_below(weights.size());
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);
  return perm;
}

}  // namespace phishinghook::common
