// Wall-clock timing used by the model scalability study (Fig. 7) and the
// experiment harness' training/inference time accounting.
#pragma once

#include <chrono>
#include <functional>
#include <utility>

namespace phishinghook::common {

/// Monotonic stopwatch. Starts on construction; `seconds()` reads elapsed
/// time without stopping; `restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch: times a scope and hands the elapsed seconds to a sink on
/// destruction. Lets latency accounting live at one call site
/// (`ScopedTimer t([&](double s) { histogram.record(s * 1e6); });`)
/// instead of hand-rolled start/stop pairs around every exit path.
class ScopedTimer {
 public:
  using Sink = std::function<void(double seconds)>;

  explicit ScopedTimer(Sink sink) : sink_(std::move(sink)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_) sink_(timer_.seconds());
  }

  /// Fires the sink now with the time so far and disarms the destructor.
  void stop() {
    if (sink_) {
      sink_(timer_.seconds());
      sink_ = nullptr;
    }
  }

  /// Drops the sink without firing (e.g. on an error path that should not
  /// pollute the latency histogram).
  void cancel() { sink_ = nullptr; }

 private:
  Timer timer_;
  Sink sink_;
};

}  // namespace phishinghook::common
