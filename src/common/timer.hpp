// Wall-clock timing used by the model scalability study (Fig. 7) and the
// experiment harness' training/inference time accounting.
#pragma once

#include <chrono>

namespace phishinghook::common {

/// Monotonic stopwatch. Starts on construction; `seconds()` reads elapsed
/// time without stopping; `restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace phishinghook::common
