#include "common/hex.hpp"

#include "common/errors.hpp"

namespace phishinghook::common {

namespace {

constexpr char kDigits[] = "0123456789abcdef";

std::string_view strip_prefix(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  return hex;
}

}  // namespace

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

std::string hex_encode_prefixed(std::span<const std::uint8_t> bytes) {
  return "0x" + hex_encode(bytes);
}

std::uint8_t hex_digit(char c) {
  if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
  throw ParseError(std::string("not a hex digit: '") + c + "'");
}

std::vector<std::uint8_t> hex_decode(std::string_view hex) {
  hex = strip_prefix(hex);
  if (hex.size() % 2 != 0) {
    throw ParseError("hex string has odd length (" + std::to_string(hex.size()) +
                     " digits)");
  }
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_digit(hex[i]) << 4) |
                                            hex_digit(hex[i + 1])));
  }
  return out;
}

bool is_hex(std::string_view text) {
  text = strip_prefix(text);
  if (text.size() % 2 != 0) return false;
  for (char c : text) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                    (c >= 'A' && c <= 'F');
    if (!ok) return false;
  }
  return true;
}

}  // namespace phishinghook::common
