// Error types shared across the PhishingHook library.
//
// All library errors derive from `phishinghook::Error` (itself a
// std::runtime_error) so callers can catch library failures uniformly while
// still discriminating on the concrete category when useful.
#pragma once

#include <stdexcept>
#include <string>

namespace phishinghook {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed external input (hex strings, CSV rows, config values...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A precondition on an API call was violated by the caller.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

/// Requested entity (account, contract, model, file...) does not exist.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error("not found: " + what) {}
};

/// An operation was attempted on an object in the wrong state
/// (e.g. predict() before fit()).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error("state error: " + what) {}
};

/// A fault that may clear on its own (upstream hiccup, rate limit, timeout).
/// Retry layers (common::RetryPolicy) treat this — and only this — category
/// as retryable; every other Error is assumed permanent.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what)
      : Error("transient error: " + what) {}
};

}  // namespace phishinghook
