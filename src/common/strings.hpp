// Small string utilities (split/join/trim/case, fixed-width formatting)
// shared by the CSV layer, the report printers and the CLI tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace phishinghook::common {

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Joins with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Left-pads with spaces to `width` (no-op if already wider).
std::string pad_left(std::string_view text, std::size_t width);

/// Right-pads with spaces to `width` (no-op if already wider).
std::string pad_right(std::string_view text, std::size_t width);

/// Formats a double with fixed `digits` decimals ("93.63").
std::string format_fixed(double value, int digits);

/// Formats in scientific notation with `digits` significant decimals
/// ("7.35e-70"); used by the statistics report tables.
std::string format_scientific(double value, int digits);

}  // namespace phishinghook::common
