// Hexadecimal encoding/decoding helpers used throughout the EVM layer.
//
// Ethereum tooling conventionally prefixes hex strings with "0x"; both
// prefixed and bare forms are accepted on input, and encoding always
// produces lowercase digits.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace phishinghook::common {

/// Encodes `bytes` as lowercase hex without a prefix ("6080...").
std::string hex_encode(std::span<const std::uint8_t> bytes);

/// Encodes `bytes` as lowercase hex with a "0x" prefix ("0x6080...").
std::string hex_encode_prefixed(std::span<const std::uint8_t> bytes);

/// Decodes a hex string (with or without "0x" prefix, either case).
/// Throws ParseError on odd length or non-hex characters.
std::vector<std::uint8_t> hex_decode(std::string_view hex);

/// True if `text` is a syntactically valid hex string (optionally
/// "0x"-prefixed, even number of hex digits; the empty payload is valid).
bool is_hex(std::string_view text);

/// Value of a single hex digit; throws ParseError for non-hex characters.
std::uint8_t hex_digit(char c);

}  // namespace phishinghook::common
