// Deterministic random number generation.
//
// Every stochastic component in PhishingHook takes an explicit seed; this
// header provides the single PRNG used everywhere (xoshiro256**, seeded via
// splitmix64) plus the small set of distributions the library needs. Using
// our own generator — instead of std::mt19937 + std:: distributions — keeps
// results bit-for-bit reproducible across standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/errors.hpp"

namespace phishinghook::common {

/// splitmix64 step: used to expand a 64-bit seed into generator state and to
/// derive independent child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Small, fast, and statistically strong; all library
/// randomness flows through this type.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p);

  /// Poisson-distributed count (Knuth's method; fine for small lambda).
  int poisson(double lambda);

  /// Geometric-ish count: number of successes before failure, capped.
  int geometric(double continue_prob, int cap);

  /// Index sampled according to non-negative `weights` (need not sum to 1).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    if (values.empty()) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      std::swap(values[i], values[j]);
    }
  }

  /// Derives an independent child generator (for per-fold / per-tree seeds).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// [0, n) as a vector, shuffled with `rng` — the standard permutation helper.
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace phishinghook::common
