#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/errors.hpp"

namespace phishinghook::common {

std::size_t CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw NotFound("CSV column '" + std::string(name) + "'");
}

CsvWriter::CsvWriter(const std::filesystem::path& path) : path_(path) {
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }
}

CsvWriter::CsvWriter() = default;

CsvWriter::~CsvWriter() {
  if (path_.empty()) return;
  std::ofstream out(path_, std::ios::trunc);
  out << buffer_;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) buffer_ += ',';
    buffer_ += csv_escape(fields[i]);
  }
  buffer_ += '\n';
}

std::string CsvWriter::str() const { return buffer_; }

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvTable parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;  // swallow; handled with the following '\n'
      case '\n':
        if (row_has_content || !field.empty() || !row.empty()) end_row();
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field");
  if (row_has_content || !field.empty() || !row.empty()) end_row();

  CsvTable table;
  if (!rows.empty()) {
    table.header = std::move(rows.front());
    table.rows.assign(std::make_move_iterator(rows.begin() + 1),
                      std::make_move_iterator(rows.end()));
  }
  return table;
}

CsvTable read_csv_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw NotFound("CSV file " + path.string());
  std::ostringstream text;
  text << in.rdbuf();
  return parse_csv(text.str());
}

}  // namespace phishinghook::common
