#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace phishinghook::common {

namespace {

LogLevel parse_level(const char* text) {
  if (text == nullptr) return LogLevel::kInfo;
  const std::string_view v(text);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{
      static_cast<int>(parse_level(std::getenv("PHOOK_LOG")))};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[phook %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace phishinghook::common
