#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "obs/metrics.hpp"  // json_escape

namespace phishinghook::common {

namespace {

/// Reads PHISHINGHOOK_<suffix>, falling back to the legacy PHOOK_<suffix>;
/// the new prefix wins when both are set.
const char* dual_env(const char* suffix) {
  std::string name = std::string("PHISHINGHOOK_") + suffix;
  const char* value = std::getenv(name.c_str());
  if (value != nullptr && *value != '\0') return value;
  name = std::string("PHOOK_") + suffix;
  value = std::getenv(name.c_str());
  return (value != nullptr && *value != '\0') ? value : nullptr;
}

LogLevel parse_level(const char* text) {
  if (text == nullptr) return LogLevel::kInfo;
  const std::string_view v(text);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

LogFormat parse_format(const char* text) {
  return (text != nullptr && std::string_view(text) == "json")
             ? LogFormat::kJson
             : LogFormat::kText;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{
      static_cast<int>(parse_level(dual_env("LOG")))};
  return level;
}

std::atomic<int>& format_storage() {
  static std::atomic<int> format{
      static_cast<int>(parse_format(dual_env("LOG_FORMAT")))};
  return format;
}

std::atomic<LogWriter>& writer_storage() {
  static std::atomic<LogWriter> writer{nullptr};
  return writer;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

const char* level_word(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

std::string iso8601_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buffer[40];
  const std::size_t n =
      std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(buffer + n, sizeof(buffer) - n, ".%03dZ",
                static_cast<int>(ms));
  return buffer;
}

void emit(const std::string& line) {
  const LogWriter writer = writer_storage().load(std::memory_order_acquire);
  if (writer != nullptr) {
    writer(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

/// Shared head of every JSON log object; leaves the object open so the
/// caller can append event-specific members.
std::string json_head(LogLevel level) {
  std::string out = "{\"ts\":\"";
  out += iso8601_now();
  out += "\",\"level\":\"";
  out += level_word(level);
  out += "\",\"thread\":";
  out += std::to_string(log_thread_id());
  return out;
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogFormat log_format() {
  return static_cast<LogFormat>(
      format_storage().load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) {
  format_storage().store(static_cast<int>(format), std::memory_order_relaxed);
}

void refresh_log_from_env() {
  set_log_level(parse_level(dual_env("LOG")));
  set_log_format(parse_format(dual_env("LOG_FORMAT")));
}

void set_log_writer(LogWriter writer) {
  writer_storage().store(writer, std::memory_order_release);
}

std::uint64_t log_thread_id() {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void log_line(LogLevel level, const std::string& message) {
  if (log_format() == LogFormat::kJson) {
    std::string out = json_head(level);
    out += ",\"msg\":\"";
    out += obs::json_escape(message);
    out += "\"}";
    emit(out);
  } else {
    emit(std::string("[phook ") + level_tag(level) + "] " + message);
  }
}

void log_event(LogLevel level, std::string_view event,
               std::initializer_list<LogField> fields) {
  if (log_level() > level) return;
  if (log_format() == LogFormat::kJson) {
    std::string out = json_head(level);
    out += ",\"event\":\"";
    out += obs::json_escape(event);
    out += '"';
    for (const LogField& field : fields) {
      out += ",\"";
      out += obs::json_escape(field.key);
      out += "\":";
      if (field.quoted) {
        out += '"';
        out += obs::json_escape(field.value);
        out += '"';
      } else {
        out += field.value;
      }
    }
    out += '}';
    emit(out);
  } else {
    std::string message(event);
    for (const LogField& field : fields) {
      message += ' ';
      message += field.key;
      message += '=';
      message += field.value;
    }
    log_line(level, message);
  }
}

}  // namespace phishinghook::common
