// Non-blocking epoll event loop — the repo's one socket substrate.
//
// The blocking accept/recv scrape server (PR 8) hit the classic wall the
// moment anything stalled: a peer that connects and never finishes its
// request pins the accept thread, and stop() can only wait. The JSON-RPC
// scoring front-end needs hundreds of concurrent sockets with per-request
// deadlines, so both now sit on this loop: epoll in level-triggered mode,
// every fd non-blocking, one loop thread per server, and a tick callback
// for deadline sweeps — no call anywhere in the loop can block, which is
// what makes shutdown bounded by construction.
//
// Threading model: run() executes on exactly one thread (the owner spawns
// it); add_fd/set_events/remove_fd are loop-thread-only. The two
// cross-thread entry points are post() — enqueue a task and wake the loop
// via eventfd — and stop(). Everything a dispatcher or completion thread
// wants to do to a connection goes through post(), so connection state
// needs no locks at all.
//
// fd-reuse caveat: a handler that closes fd A while fd B's event from the
// same epoll batch is still pending can see B's number reused. Handlers
// are therefore looked up fresh per event (closed fds miss) and must treat
// any invocation as a hint to attempt non-blocking IO, never as a
// guarantee of readiness.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>

namespace phishinghook::net {

class EventLoop {
 public:
  /// Receives the raw epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP/...).
  using FdHandler = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLL* mask). Loop thread only (or
  /// before run() starts). The loop never closes the fd — owners do.
  void add_fd(int fd, std::uint32_t events, FdHandler handler);

  /// Changes the interest mask of a registered fd. Loop thread only.
  void set_events(int fd, std::uint32_t events);

  /// Deregisters; pending events for the fd are dropped. Loop thread only.
  void remove_fd(int fd);

  /// Enqueues a task onto the loop thread and wakes it. Thread-safe;
  /// callable before run() and after stop() (tasks posted after the final
  /// drain are discarded when the loop destructs).
  void post(Task task);

  /// Runs until stop(); dispatches fd events, posted tasks, and the tick.
  void run();

  /// Wakes the loop and makes run() return after the current iteration.
  /// Thread-safe, idempotent.
  void stop();

  /// Invoked at least every `period_ms` while the loop runs (sooner when
  /// traffic flows). One tick per loop; set before run().
  void set_tick(std::uint64_t period_ms, Task tick);

 private:
  void drain_tasks();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd; post()/stop() write, loop drains
  std::unordered_map<int, FdHandler> handlers_;

  std::mutex task_mutex_;
  std::deque<Task> tasks_;
  bool stop_requested_ = false;  ///< guarded by task_mutex_

  std::uint64_t tick_period_ms_ = 0;
  Task tick_;
};

/// Puts `fd` into non-blocking mode (O_NONBLOCK). Returns false on error.
bool set_nonblocking(int fd);

namespace testing {
/// Makes the next `n` net-layer send() calls fail with EINTR before any
/// bytes move — a deterministic stand-in for a signal landing mid-write.
/// The regression tests for the old write_all abort-on-EINTR bug use this.
void force_send_eintr(int n);
}  // namespace testing

/// send() wrapper used by every net-layer writer: retries EINTR (including
/// injected ones), returns -1 with errno for everything else. EAGAIN is
/// surfaced to the caller, whose buffered-write state machine waits for
/// EPOLLOUT instead of spinning.
long send_some(int fd, const char* data, std::size_t len);

}  // namespace phishinghook::net
