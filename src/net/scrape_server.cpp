#include "net/scrape_server.hpp"

#include <sstream>
#include <utility>

namespace phishinghook::net {

namespace {

constexpr std::size_t kMaxHeadBytes = 8192;

std::string http_response(int code, const char* reason,
                          const char* content_type, const std::string& body,
                          bool head_only) {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n";
  // HEAD: the representation headers describe the body a GET *would*
  // return, but the body itself must not be sent.
  if (!head_only) out << body;
  return out.str();
}

/// Method + target out of "GET /path HTTP/1.1"; empty method = malformed.
struct RequestLine {
  std::string method;
  std::string target;
};

RequestLine parse_request_line(const std::string& head) {
  RequestLine line;
  const std::size_t method_end = head.find(' ');
  if (method_end == std::string::npos) return line;
  const std::string method = head.substr(0, method_end);
  if (method != "GET" && method != "HEAD") return line;
  const std::size_t target_end = head.find(' ', method_end + 1);
  if (target_end == std::string::npos) return line;
  line.method = method;
  line.target = head.substr(method_end + 1, target_end - method_end - 1);
  // Scrapers may append a query string (?seconds=...); the paths ignore it.
  const std::size_t query = line.target.find('?');
  if (query != std::string::npos) line.target.resize(query);
  return line;
}

}  // namespace

ScrapeServer::ScrapeServer()
    : SocketServer(SocketServerConfig{
          /*max_connections=*/64,
          /*max_in_bytes=*/kMaxHeadBytes,
          /*idle_timeout_ms=*/10000,
      }) {}

void ScrapeServer::add_registry(const obs::MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  registries_.push_back(&registry);
}

void ScrapeServer::add_pre_scrape_hook(Hook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  hooks_.push_back(std::move(hook));
}

void ScrapeServer::set_health(HealthFn health) {
  std::lock_guard<std::mutex> lock(mutex_);
  health_ = std::move(health);
}

void ScrapeServer::on_data(Connection& conn) {
  // Buffer until the whole request head arrived — a head split across TCP
  // segments is normal client behavior, not a protocol error.
  const std::size_t head_end = conn.in.find("\r\n\r\n");
  if (head_end == std::string::npos) return;

  const RequestLine line = parse_request_line(conn.in);
  std::string response;
  if (line.method.empty()) {
    response = http_response(400, "Bad Request", "text/plain",
                             "expected GET /metrics|/vars|/healthz\n", false);
  } else {
    response = respond(line.target, line.method == "HEAD");
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  conn.in.clear();  // one request per connection; anything extra is noise
  send_data(conn, response);
  finish(conn);
}

void ScrapeServer::on_overflow(Connection& conn) {
  // A head that never terminates within the cap is either an attack or a
  // badly broken client; say why, then hang up.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  conn.in.clear();
  send_data(conn, http_response(400, "Bad Request", "text/plain",
                                "request head too large\n", false));
  finish(conn);
}

std::string ScrapeServer::respond(const std::string& target, bool head_only) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (target == "/metrics" || target == "/vars") {
    for (const Hook& hook : hooks_) hook();
  }
  if (target == "/metrics") {
    std::ostringstream body;
    for (const obs::MetricsRegistry* registry : registries_) {
      registry->write_prometheus(body);
    }
    return http_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                         body.str(), head_only);
  }
  if (target == "/vars") {
    std::ostringstream body;
    body << "{\"registries\":[";
    for (std::size_t i = 0; i < registries_.size(); ++i) {
      if (i > 0) body << ',';
      registries_[i]->write_json(body);
    }
    body << "]}";
    return http_response(200, "OK", "application/json", body.str(), head_only);
  }
  if (target == "/healthz") {
    const std::string body = health_ ? health_() : "{\"status\":\"ok\"}";
    return http_response(200, "OK", "application/json", body, head_only);
  }
  return http_response(404, "Not Found", "text/plain",
                       "unknown path (try /metrics, /vars, /healthz)\n",
                       head_only);
}

}  // namespace phishinghook::net
