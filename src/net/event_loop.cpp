#include "net/event_loop.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/errors.hpp"

namespace phishinghook::net {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

namespace {
std::atomic<int>& eintr_injections() {
  static std::atomic<int> count{0};
  return count;
}
}  // namespace

namespace testing {
void force_send_eintr(int n) {
  eintr_injections().store(n, std::memory_order_relaxed);
}
}  // namespace testing

long send_some(int fd, const char* data, std::size_t len) {
  while (true) {
    int pending = eintr_injections().load(std::memory_order_relaxed);
    while (pending > 0 && !eintr_injections().compare_exchange_weak(
                              pending, pending - 1, std::memory_order_relaxed)) {
    }
    if (pending > 0) {
      // Injected EINTR: behave exactly like a signal interrupting send()
      // before any byte moved, then take the retry path below.
      errno = EINTR;
      continue;
    }
    const ssize_t n = ::send(fd, data, len,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n >= 0) return n;
    if (errno == EINTR) continue;  // the old write_all aborted here — retry
    return -1;
  }
}

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw StateError(std::string("EventLoop: epoll_create1 failed: ") +
                     std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const std::string why = std::strerror(errno);
    ::close(epoll_fd_);
    throw StateError("EventLoop: eventfd failed: " + why);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw StateError(std::string("EventLoop: epoll_ctl(ADD) failed: ") +
                     std::strerror(errno));
  }
  handlers_[fd] = std::move(handler);
}

void EventLoop::set_events(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(task_mutex_);
    tasks_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(task_mutex_);
    stop_requested_ = true;
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::set_tick(std::uint64_t period_ms, Task tick) {
  tick_period_ms_ = period_ms;
  tick_ = std::move(tick);
}

void EventLoop::drain_tasks() {
  // Swap out under the lock, run unlocked: a task may post() again.
  std::deque<Task> batch;
  {
    std::lock_guard<std::mutex> lock(task_mutex_);
    batch.swap(tasks_);
  }
  for (Task& task : batch) task();
}

void EventLoop::run() {
  std::vector<epoll_event> events(64);
  const int timeout_ms =
      tick_period_ms_ == 0 ? -1 : static_cast<int>(tick_period_ms_);
  while (true) {
    {
      std::lock_guard<std::mutex> lock(task_mutex_);
      if (stop_requested_) break;
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself failed; nothing to serve anymore
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t buf = 0;
        (void)!::read(wake_fd_, &buf, sizeof(buf));
        continue;
      }
      // Fresh lookup per event: a handler earlier in this batch may have
      // closed this fd (see the fd-reuse caveat in the header).
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      // Copy the handler: it may remove_fd(fd) (erasing the map slot it
      // lives in) while still executing.
      FdHandler handler = it->second;
      handler(events[i].events);
    }
    drain_tasks();
    if (tick_) tick_();
    if (n == static_cast<int>(events.size())) {
      events.resize(events.size() * 2);
    }
  }
  drain_tasks();  // run anything posted right before stop()
}

}  // namespace phishinghook::net
