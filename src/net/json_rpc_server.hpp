// JSON-RPC 2.0 server over HTTP POST, on the net-layer event loop.
//
// This is the network front door the serving path was missing: scoring
// goes from "call ScoringEngine::submit in-process" to "POST a JSON-RPC
// frame at 127.0.0.1:<port>", the same shape as a real Ethereum node's
// RPC endpoint (and therefore curl-able):
//
//   curl -s -X POST http://127.0.0.1:9545/ -d '{"jsonrpc":"2.0","id":1,
//       "method":"phook_score","params":["0x1234...40 hex..."]}'
//
// Division of labor across threads:
//
//   loop thread        accept, buffer, parse HTTP frames (head + body,
//                      Content-Length), mint the request's causal
//                      identity (obs::RequestContext — the same trace-id
//                      lane machinery every in-process request gets),
//                      enqueue onto the dispatch queue, write responses
//   dispatcher threads pop frames, parse JSON-RPC, run the registered
//                      method handler (which may block on a scoring
//                      future — that is what the threads are for), post
//                      the response back onto the loop
//
// Overload and deadlines map onto the engine's shed vocabulary: a full
// dispatch queue answers 503/-32005 immediately (admission control at the
// socket, mirroring EngineConfig::max_queue), and a frame older than
// request_deadline_us when a dispatcher picks it up is shed without
// touching the engine (mirroring EngineConfig::deadline_us). Sheds,
// malformed frames, and per-stage latency all land in the server's own
// net_* registry, scrapable next to the engine's serve_* series.
//
// Transport rules: POST only (405 otherwise), Content-Length required
// (411), bodies over max_body_bytes refused (413), HTTP/1.1 keep-alive
// honored with at most one in-flight request per connection (responses
// are posted asynchronously; ordering two pipelined responses would
// require sequencing the dispatchers — refusing to read ahead is simpler
// and loses nothing at scoring-request sizes). JSON-RPC batches work,
// including mixed valid/invalid entries and notification elision, capped
// at max_batch entries.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/json.hpp"
#include "net/socket_server.hpp"
#include "obs/metrics.hpp"
#include "obs/request_context.hpp"

namespace phishinghook::net {

/// JSON-RPC 2.0 error codes used by the server core. Handlers may throw
/// RpcError with these or their own application codes.
struct rpc_errors {
  static constexpr int kParseError = -32700;
  static constexpr int kInvalidRequest = -32600;
  static constexpr int kMethodNotFound = -32601;
  static constexpr int kInvalidParams = -32602;
  static constexpr int kInternalError = -32603;
  /// Request shed by admission control or deadline — the socket-layer
  /// twin of serve::ScoreStatus::kShed.
  static constexpr int kShed = -32005;
};

/// Thrown by method handlers to produce a JSON-RPC error response.
class RpcError : public std::runtime_error {
 public:
  RpcError(int code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  int code() const { return code_; }

 private:
  int code_;
};

struct RpcConfig {
  std::size_t max_connections = 128;
  /// HTTP body cap; Content-Length above this is refused with 413.
  std::size_t max_body_bytes = 1 << 20;
  /// Threads running method handlers (each may block on one scoring
  /// future at a time).
  std::size_t dispatchers = 2;
  /// Dispatch-queue admission cap; a full queue sheds with 503/-32005.
  std::size_t queue_capacity = 256;
  /// Frames older than this when a dispatcher picks them up are shed
  /// before any handler work. 0 = no deadline.
  std::uint64_t request_deadline_us = 0;
  /// Entries allowed in one JSON-RPC batch array.
  std::size_t max_batch = 64;
  std::uint64_t idle_timeout_ms = 30000;
};

class JsonRpcServer : public SocketServer {
 public:
  /// Everything a handler may want beyond its params: the request's
  /// causal identity (pass it into ScoringEngine::submit to keep the
  /// socket request one connected trace lane).
  struct CallInfo {
    obs::RequestContext ctx;
  };

  /// Runs on a dispatcher thread; may block. Return the JSON-RPC result
  /// value; throw RpcError for protocol-visible failures.
  using Handler =
      std::function<JsonValue(const JsonValue& params, const CallInfo& call)>;

  explicit JsonRpcServer(RpcConfig config = {});
  ~JsonRpcServer() override;

  /// Registers `method`; call before start(). Re-registering replaces.
  void register_method(std::string method, Handler handler);

  /// Binds + starts the loop thread and the dispatcher pool.
  void start(std::uint16_t port);

  /// Drains the dispatch queue (in-flight handlers finish and their
  /// responses flush), joins dispatchers, then stops the loop. Idempotent.
  void stop();

  /// The server's net_* metrics (counters, gauges, stage histograms).
  /// Attach to a ScrapeServer alongside the engine registry. The non-const
  /// overload lets benches re-register a histogram handle to read it.
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }
  obs::MetricsRegistry& metrics_registry() { return registry_; }

  /// Syncs pull-model gauges (active connections, queue depth) into the
  /// registry — wire as a scrape-server pre-scrape hook.
  void export_metrics();

  std::uint64_t requests_received() const {
    return requests_total_.value();
  }

 protected:
  void on_data(Connection& conn) override;
  void on_open(Connection& conn) override;
  void on_overflow(Connection& conn) override;

 private:
  /// One parsed HTTP frame awaiting a dispatcher.
  struct PendingCall {
    std::uint64_t conn_id = 0;
    std::string body;
    bool keep_alive = true;
    obs::RequestContext ctx;
  };

  /// Per-connection HTTP state, hung off Connection::user.
  struct HttpState {
    bool busy = false;        ///< frame in flight; don't read ahead
    double first_byte_us = 0; ///< tracer clock at this request's first byte
  };

  void process_input(Connection& conn);
  /// Sends an HTTP response and either re-arms (keep-alive) or finishes
  /// the connection. Loop thread.
  void respond_http(Connection& conn, int status, const char* reason,
                    const std::string& body, bool keep_alive);
  /// Thread-safe: builds + posts the HTTP response for a dispatched frame.
  void post_response(std::uint64_t conn_id, int status, std::string body,
                     bool keep_alive);

  void dispatcher_loop();
  /// Full JSON-RPC handling of one frame body; returns the HTTP response
  /// body ("" = 204-style all-notification batch).
  std::string handle_frame(PendingCall& call);
  /// One request object out of a frame (single or batch element);
  /// returns nullopt for notifications.
  std::optional<JsonValue> handle_request(const JsonValue& request,
                                          const CallInfo& info);

  RpcConfig config_;
  std::unordered_map<std::string, Handler> methods_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingCall> queue_;
  bool queue_closed_ = false;
  std::vector<std::thread> dispatchers_;

  obs::MetricsRegistry registry_;
  obs::Counter requests_total_ = registry_.counter("net_requests_total");
  obs::Counter responses_total_ = registry_.counter("net_responses_total");
  obs::Counter malformed_ = registry_.counter("net_requests_malformed");
  obs::Counter shed_ = registry_.counter("net_requests_shed");
  obs::Counter batch_calls_ = registry_.counter("net_batch_calls_total");
  obs::Gauge active_connections_ = registry_.gauge("net_connections_active");
  obs::Gauge accepted_gauge_ = registry_.gauge("net_connections_accepted");
  obs::Gauge rejected_gauge_ = registry_.gauge("net_connections_rejected");
  obs::Gauge queue_depth_ = registry_.gauge("net_dispatch_queue_depth");
  obs::LatencyHistogram& parse_us_ =
      registry_.histogram("net_stage_service_us", obs::label("stage", "parse"));
  obs::LatencyHistogram& dispatch_wait_us_ = registry_.histogram(
      "net_stage_wait_us", obs::label("stage", "dispatch"));
  obs::LatencyHistogram& handle_us_ = registry_.histogram(
      "net_stage_service_us", obs::label("stage", "handle"));
  obs::LatencyHistogram& request_total_us_ =
      registry_.histogram("net_request_total_us");
};

}  // namespace phishinghook::net
