#include "net/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace phishinghook::net {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(Array items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(Object members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  type_ = Type::kObject;
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  type_ = Type::kArray;
  array_.push_back(std::move(value));
}

std::string json_string_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      // Integral values (ids, counts) print without a fractional part so
      // they round-trip; everything else gets enough digits to survive a
      // parse-dump cycle.
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", number_);
        out += buf;
      } else if (std::isfinite(number_)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        out += buf;
      } else {
        out += "null";  // JSON has no inf/nan
      }
      return;
    }
    case Type::kString:
      out += '"';
      out += json_string_escape(string_);
      out += '"';
      return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        array_[i].dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += json_string_escape(object_[i].first);
        out += "\":";
        object_[i].second.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t max_depth;
  std::string error;

  bool fail(const char* why) {
    if (error.empty()) {
      error = std::string(why) + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > max_depth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': return parse_string_value(out);
      case 't':
        if (text.substr(pos, 4) == "true") {
          pos += 4;
          out = JsonValue::boolean(true);
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text.substr(pos, 5) == "false") {
          pos += 5;
          out = JsonValue::boolean(false);
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text.substr(pos, 4) == "null") {
          pos += 4;
          out = JsonValue::null();
          return true;
        }
        return fail("bad literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail("unexpected character");
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return fail("bad number");
    }
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (consume('.')) {
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("bad number");
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("bad number");
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text.data() + start, text.data() + pos, value);
    if (result.ec != std::errc{}) return fail("bad number");
    out = JsonValue::number(value);
    return true;
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos + 4 > text.size()) return fail("bad \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string_raw(std::string& out) {
    if (!consume('"')) return fail("expected string");
    while (true) {
      if (pos >= text.size()) return fail("unterminated string");
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos;
        continue;
      }
      ++pos;
      if (pos >= text.size()) return fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos + 1 < text.size() && text[pos] == '\\' &&
                text[pos + 1] == 'u') {
              pos += 2;
              std::uint32_t low = 0;
              if (!parse_hex4(low)) return false;
              if (low >= 0xDC00 && low <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
              } else {
                return fail("bad surrogate pair");
              }
            } else {
              return fail("lone surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = JsonValue::string(std::move(s));
    return true;
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    consume('[');
    JsonValue::Array items;
    skip_ws();
    if (consume(']')) {
      out = JsonValue::array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']'");
    }
    out = JsonValue::array(std::move(items));
    return true;
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    consume('{');
    JsonValue::Object members;
    skip_ws();
    if (consume('}')) {
      out = JsonValue::object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    out = JsonValue::object(std::move(members));
    return true;
  }
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error,
                                          std::size_t max_depth) {
  Parser parser{text, 0, max_depth, {}};
  JsonValue value;
  if (!parser.parse_value(value, 0)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(parser.pos);
    }
    return std::nullopt;
  }
  return value;
}

}  // namespace phishinghook::net
