// Loopback TCP server base: the connection lifecycle shared by the scrape
// endpoint and the JSON-RPC scoring front-end.
//
// Owns one EventLoop plus the thread that runs it, the listen socket
// (loopback only, port 0 = ephemeral) and a table of buffered connections.
// Per connection the server keeps a read buffer that grows as bytes arrive
// and a write buffer drained opportunistically: send_data() flushes as much
// as the kernel takes immediately (retrying EINTR via send_some) and arms
// EPOLLOUT for the rest, so a peer that reads slowly costs memory, never a
// blocked thread. This is the state machine whose absence caused all four
// bugs in the old blocking scrape path: HEAD bodies, EINTR aborts, the
// shutdown hang, and the single-recv request parse.
//
// Protocol subclasses implement on_data(conn) — inspect conn.in, consume
// complete frames, queue responses with send_data() — and run entirely on
// the loop thread, so connection state needs no locking. Work finished on
// *other* threads (a dispatcher resolving a scoring future) re-enters via
// with_connection(id, fn), which posts onto the loop and silently drops
// when the connection died in the meantime — the generation-free id (never
// reused within a server) makes that race benign.
//
// Overload behavior: accepts beyond max_connections are answered by an
// immediate close (counted, visible as net_connections_rejected); a read
// buffer past max_in_bytes triggers on_overflow, whose default closes but
// which protocols override to say 413 first; connections idle past
// idle_timeout_ms are reaped by the loop tick — that sweep is what bounds
// stop() even when a client stalls mid-request.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "net/event_loop.hpp"

namespace phishinghook::net {

struct SocketServerConfig {
  std::size_t max_connections = 128;
  /// Read-buffer cap per connection; exceeding it fires on_overflow.
  std::size_t max_in_bytes = 1 << 20;
  /// Connections with no byte movement for this long are closed by the
  /// tick sweep. 0 disables the sweep (tests that stall on purpose).
  std::uint64_t idle_timeout_ms = 30000;
};

class SocketServer {
 public:
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    std::string in;            ///< bytes received, not yet consumed
    std::string out;           ///< bytes queued, not yet sent
    std::size_t out_offset = 0;
    bool close_after_flush = false;
    std::chrono::steady_clock::time_point last_activity;
    /// Protocol scratch (HTTP parse state, in-flight flag, ...).
    std::shared_ptr<void> user;
  };

  explicit SocketServer(SocketServerConfig config = {});
  virtual ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned) and starts the loop
  /// thread. Throws StateError if already started or the bind fails.
  void start(std::uint16_t port);

  /// Closes every connection and the listener, stops the loop, joins.
  /// Bounded: nothing in the loop blocks. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  /// Live connection count (loop-maintained, read anywhere).
  std::size_t connections() const {
    return connection_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 protected:
  /// New bytes appended to conn.in. Loop thread. Consume complete frames
  /// from the front; leave partial frames buffered.
  virtual void on_data(Connection& conn) = 0;

  /// Connection accepted (before any bytes). Loop thread.
  virtual void on_open(Connection& conn) { (void)conn; }

  /// Connection gone (peer close, error, overflow, idle reap, stop).
  /// Loop thread; the Connection object is already destroyed.
  virtual void on_closed(std::uint64_t id) { (void)id; }

  /// conn.in exceeded max_in_bytes. Default: close. Protocols may queue a
  /// final error response (send_data + close_after_flush) instead.
  virtual void on_overflow(Connection& conn);

  /// Queues bytes and flushes what the kernel takes now. Loop thread.
  void send_data(Connection& conn, std::string_view data);

  /// Marks the connection to close once its write buffer drains (or now,
  /// when already drained). Loop thread.
  void finish(Connection& conn);

  /// Closes immediately, dropping unsent bytes. Loop thread.
  void close_now(Connection& conn);

  /// Runs `fn(conn)` on the loop thread if connection `id` is still alive;
  /// drops silently otherwise. Thread-safe — the hand-back path for
  /// dispatcher/completion threads.
  void with_connection(std::uint64_t id, std::function<void(Connection&)> fn);

  /// Extra per-tick work on the loop thread (deadline sweeps beyond the
  /// idle reap). Default: nothing.
  virtual void on_tick() {}

  EventLoop& loop() { return loop_; }

 private:
  void accept_ready();
  void connection_event(std::uint64_t id, std::uint32_t events);
  void read_ready(Connection& conn);
  void write_ready(Connection& conn);
  void flush(Connection& conn);
  void update_interest(Connection& conn);
  void destroy_connection(std::uint64_t id);
  void sweep_idle();

  SocketServerConfig config_;
  EventLoop loop_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::unordered_map<std::uint64_t, Connection> conns_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::size_t> connection_count_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace phishinghook::net
