#include "net/socket_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/errors.hpp"

namespace phishinghook::net {

SocketServer::SocketServer(SocketServerConfig config)
    : config_(config) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start(std::uint16_t port) {
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    throw StateError("SocketServer::start: already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw StateError(std::string("SocketServer: socket() failed: ") +
                     std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw StateError("SocketServer: cannot listen on 127.0.0.1:" +
                     std::to_string(port) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { accept_ready(); });
  // The tick drives the idle sweep and subclass deadline checks; 100 ms
  // keeps reap latency small at negligible idle cost.
  loop_.set_tick(100, [this] {
    sweep_idle();
    on_tick();
  });
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop_.run(); });
}

void SocketServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // The close-everything task lands in the loop's final task drain after
  // stop() breaks the iteration — bounded, because nothing here blocks.
  loop_.post([this] {
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (const std::uint64_t id : ids) destroy_connection(id);
    if (listen_fd_ >= 0) {
      loop_.remove_fd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  });
  loop_.stop();
  if (thread_.joinable()) thread_.join();
}

void SocketServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the backlog
    }
    if (conns_.size() >= config_.max_connections) {
      // Cap reached: shed at the door. An immediate close is visible to
      // the client as ECONNRESET/empty response — cheaper for everyone
      // than parking a socket we will never serve.
      ::close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::uint64_t id = next_id_++;
    Connection& conn = conns_[id];
    conn.id = id;
    conn.fd = fd;
    conn.last_activity = std::chrono::steady_clock::now();
    connection_count_.store(conns_.size(), std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    loop_.add_fd(fd, EPOLLIN, [this, id](std::uint32_t events) {
      connection_event(id, events);
    });
    on_open(conn);
  }
}

void SocketServer::connection_event(std::uint64_t id, std::uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;  // stale event for a reused fd
  if (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
    read_ready(it->second);
    it = conns_.find(id);  // read may have destroyed the connection
    if (it == conns_.end()) return;
  }
  if (events & EPOLLOUT) {
    write_ready(it->second);
  }
}

void SocketServer::read_ready(Connection& conn) {
  const std::uint64_t id = conn.id;
  bool got_bytes = false;
  while (true) {
    char buffer[4096];
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn.in.append(buffer, static_cast<std::size_t>(n));
      got_bytes = true;
      if (conn.in.size() > config_.max_in_bytes) {
        conn.last_activity = std::chrono::steady_clock::now();
        on_overflow(conn);
        return;
      }
      continue;
    }
    if (n == 0) {
      // Peer closed. Anything still buffered can no longer be asked for;
      // unsent response bytes may still flush if the peer half-closed,
      // but a full close shows up as a send error and cleans up there.
      destroy_connection(id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    destroy_connection(id);
    return;
  }
  if (got_bytes) {
    conn.last_activity = std::chrono::steady_clock::now();
    on_data(conn);
  }
}

void SocketServer::write_ready(Connection& conn) {
  flush(conn);
  auto it = conns_.find(conn.id);
  if (it == conns_.end()) return;  // flush hit a hard error and destroyed
  if (it->second.out_offset >= it->second.out.size()) {
    if (it->second.close_after_flush) {
      destroy_connection(it->second.id);
      return;
    }
  }
  update_interest(it->second);
}

void SocketServer::flush(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const long n = send_some(conn.fd, conn.out.data() + conn.out_offset,
                             conn.out.size() - conn.out_offset);
    if (n >= 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // EPOLLOUT will resume
    // Hard error (EPIPE, ECONNRESET): nothing to salvage. Defer the
    // destroy so callers still holding the reference finish their frame.
    conn.out.clear();
    conn.out_offset = 0;
    conn.close_after_flush = true;
    const std::uint64_t id = conn.id;
    loop_.post([this, id] { destroy_connection(id); });
    return;
  }
  if (conn.out_offset == conn.out.size() && !conn.out.empty()) {
    conn.out.clear();
    conn.out_offset = 0;
  }
}

void SocketServer::update_interest(Connection& conn) {
  std::uint32_t events = EPOLLIN;
  if (conn.out_offset < conn.out.size()) events |= EPOLLOUT;
  loop_.set_events(conn.fd, events);
}

void SocketServer::send_data(Connection& conn, std::string_view data) {
  conn.out.append(data);
  flush(conn);
  if (conns_.find(conn.id) == conns_.end()) return;
  update_interest(conn);
}

void SocketServer::finish(Connection& conn) {
  conn.close_after_flush = true;
  if (conn.out_offset >= conn.out.size()) {
    const std::uint64_t id = conn.id;
    loop_.post([this, id] { destroy_connection(id); });
  }
}

void SocketServer::close_now(Connection& conn) {
  const std::uint64_t id = conn.id;
  loop_.post([this, id] { destroy_connection(id); });
}

void SocketServer::on_overflow(Connection& conn) {
  destroy_connection(conn.id);
}

void SocketServer::with_connection(std::uint64_t id,
                                   std::function<void(Connection&)> fn) {
  loop_.post([this, id, fn = std::move(fn)] {
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;  // connection died first — drop
    fn(it->second);
  });
}

void SocketServer::destroy_connection(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_.remove_fd(it->second.fd);
  ::close(it->second.fd);
  conns_.erase(it);
  connection_count_.store(conns_.size(), std::memory_order_relaxed);
  on_closed(id);
}

void SocketServer::sweep_idle() {
  if (config_.idle_timeout_ms == 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(config_.idle_timeout_ms);
  std::vector<std::uint64_t> stale;
  for (const auto& [id, conn] : conns_) {
    if (now - conn.last_activity > limit) stale.push_back(id);
  }
  for (const std::uint64_t id : stale) destroy_connection(id);
}

}  // namespace phishinghook::net
