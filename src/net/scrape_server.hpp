// Metrics scrape endpoint (/metrics, /vars, /healthz) on the event loop.
//
// Same contract as the PR-8 blocking implementation it replaces — three
// GET/HEAD paths answered from attached registries, pre-scrape hooks, a
// caller-supplied health body, one request per connection — but carried by
// net::SocketServer, which structurally fixes the four bugs the blocking
// path shipped:
//
//   * HEAD used to get the full body; now it gets status + headers with
//     the correct Content-Length and nothing else (RFC 9110 §9.3.2).
//   * write_all() aborted the whole response on EINTR; send_some retries,
//     and partial writes park in the connection's write buffer until
//     EPOLLOUT instead of being dropped.
//   * stop() could hang forever on a peer that connected and then
//     stalled, because the accept thread sat in an untimed recv; the loop
//     never blocks on any one socket, so shutdown is bounded.
//   * a request head split across TCP segments was parsed from the first
//     recv alone and 400'd; the connection now buffers until the
//     "\r\n\r\n" head terminator (or the 8 KiB head cap) arrives.
//
// Scrape bodies are built on the loop thread under the hook mutex — the
// same "hooks run per scrape" semantics as before, still cheap relative
// to a scrape every few seconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "net/socket_server.hpp"
#include "obs/metrics.hpp"

namespace phishinghook::net {

class ScrapeServer : public SocketServer {
 public:
  using Hook = std::function<void()>;
  using HealthFn = std::function<std::string()>;

  ScrapeServer();

  /// Attaches a registry; /metrics concatenates expositions in attachment
  /// order, /vars emits one JSON object per registry in the same order.
  void add_registry(const obs::MetricsRegistry& registry);

  /// Runs before every /metrics and /vars body build, on the loop thread.
  void add_pre_scrape_hook(Hook hook);

  /// Supplies the /healthz body (must already be JSON). Unset = static ok.
  void set_health(HealthFn health);

  /// Requests answered so far (any path, including 400s and 404s).
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 protected:
  void on_data(Connection& conn) override;
  void on_overflow(Connection& conn) override;

 private:
  /// Full response for one parsed request; `head_only` elides the body
  /// (HEAD) while keeping the GET headers, Content-Length included.
  std::string respond(const std::string& target, bool head_only);

  mutable std::mutex mutex_;  ///< guards registries_/hooks_/health_
  std::vector<const obs::MetricsRegistry*> registries_;
  std::vector<Hook> hooks_;
  HealthFn health_;
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace phishinghook::net
