#include "net/json_rpc_server.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "obs/trace.hpp"

namespace phishinghook::net {

namespace {

constexpr std::size_t kMaxHeadBytes = 16384;

/// Case-insensitive header lookup inside [head_begin, head_end); returns
/// the trimmed value or empty.
std::string find_header(const std::string& in, std::size_t head_end,
                        std::string_view name) {
  std::size_t pos = in.find("\r\n");
  while (pos != std::string::npos && pos < head_end) {
    const std::size_t line_start = pos + 2;
    const std::size_t line_end = in.find("\r\n", line_start);
    if (line_end == std::string::npos || line_start >= head_end) break;
    const std::size_t colon = in.find(':', line_start);
    if (colon != std::string::npos && colon < line_end &&
        colon - line_start == name.size()) {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(in[line_start + i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t value_start = colon + 1;
        while (value_start < line_end &&
               (in[value_start] == ' ' || in[value_start] == '\t')) {
          ++value_start;
        }
        std::size_t value_end = line_end;
        while (value_end > value_start &&
               (in[value_end - 1] == ' ' || in[value_end - 1] == '\t')) {
          --value_end;
        }
        return in.substr(value_start, value_end - value_start);
      }
    }
    pos = line_end;
  }
  return {};
}

std::string ascii_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

JsonValue make_error_value(int code, const std::string& message) {
  JsonValue error;
  error.set("code", JsonValue::number(code));
  error.set("message", JsonValue::string(message));
  return error;
}

JsonValue make_error_response(const JsonValue& id, int code,
                              const std::string& message) {
  JsonValue response;
  response.set("jsonrpc", JsonValue::string("2.0"));
  response.set("id", id);
  response.set("error", make_error_value(code, message));
  return response;
}

JsonValue make_result_response(const JsonValue& id, JsonValue result) {
  JsonValue response;
  response.set("jsonrpc", JsonValue::string("2.0"));
  response.set("id", id);
  response.set("result", std::move(result));
  return response;
}

std::string shed_body(const std::string& why) {
  return make_error_response(JsonValue::null(), rpc_errors::kShed, why).dump();
}

}  // namespace

JsonRpcServer::JsonRpcServer(RpcConfig config)
    : SocketServer(SocketServerConfig{
          config.max_connections,
          /*max_in_bytes=*/config.max_body_bytes + kMaxHeadBytes,
          config.idle_timeout_ms,
      }),
      config_(config) {
  registry_.set_help("net_requests_total",
                     "HTTP frames received by the JSON-RPC server");
  registry_.set_help("net_requests_shed",
                     "Frames dropped by queue admission or dispatch deadline");
  registry_.set_help("net_requests_malformed",
                     "HTTP or JSON-RPC protocol violations answered with "
                     "an error");
  registry_.set_help("net_stage_wait_us",
                     "Queue-wait per network stage (parked, no work "
                     "happening)");
  registry_.set_help("net_stage_service_us",
                     "Service time per network stage (parse, handle)");
  registry_.set_help("net_request_total_us",
                     "Frame completion to response build, JSON-RPC layer");
}

JsonRpcServer::~JsonRpcServer() { stop(); }

void JsonRpcServer::register_method(std::string method, Handler handler) {
  methods_[std::move(method)] = std::move(handler);
}

void JsonRpcServer::start(std::uint16_t port) {
  SocketServer::start(port);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_closed_ = false;
  }
  const std::size_t n = config_.dispatchers == 0 ? 1 : config_.dispatchers;
  dispatchers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

void JsonRpcServer::stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  // Dispatchers drain what is queued — the loop is still alive, so those
  // responses reach their sockets — then exit.
  for (std::thread& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
  dispatchers_.clear();
  SocketServer::stop();
}

void JsonRpcServer::export_metrics() {
  active_connections_.set(static_cast<double>(connections()));
  accepted_gauge_.set(static_cast<double>(connections_accepted()));
  rejected_gauge_.set(static_cast<double>(connections_rejected()));
  std::lock_guard<std::mutex> lock(queue_mutex_);
  queue_depth_.set(static_cast<double>(queue_.size()));
}

void JsonRpcServer::on_open(Connection& conn) {
  conn.user = std::make_shared<HttpState>();
}

void JsonRpcServer::on_data(Connection& conn) { process_input(conn); }

void JsonRpcServer::on_overflow(Connection& conn) {
  malformed_.inc();
  conn.in.clear();
  respond_http(conn, 413, "Payload Too Large",
               shed_body("request body exceeds server limit"), false);
}

void JsonRpcServer::process_input(Connection& conn) {
  auto* state = static_cast<HttpState*>(conn.user.get());
  if (state == nullptr || state->busy) return;  // response in flight
  if (conn.in.empty()) return;
  obs::Tracer& tracer = obs::Tracer::global();
  if (state->first_byte_us == 0) state->first_byte_us = tracer.now_us();

  const std::size_t head_end = conn.in.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (conn.in.size() > kMaxHeadBytes) {
      malformed_.inc();
      respond_http(conn, 431, "Request Header Fields Too Large",
                   shed_body("request head too large"), false);
    }
    return;  // head still arriving
  }

  // Request line: METHOD SP target SP version.
  const std::size_t method_end = conn.in.find(' ');
  if (method_end == std::string::npos || method_end > head_end) {
    malformed_.inc();
    respond_http(conn, 400, "Bad Request", shed_body("malformed request line"),
                 false);
    return;
  }
  const std::string method = conn.in.substr(0, method_end);
  const std::size_t line_end = conn.in.find("\r\n");
  const bool http10 =
      line_end != std::string::npos && line_end >= 8 &&
      conn.in.compare(line_end - 8, 8, "HTTP/1.0") == 0;
  const std::string connection_header =
      ascii_lower(find_header(conn.in, head_end, "connection"));
  bool keep_alive = http10 ? connection_header == "keep-alive"
                           : connection_header != "close";

  if (method != "POST") {
    malformed_.inc();
    respond_http(conn, 405, "Method Not Allowed",
                 shed_body("JSON-RPC requires POST"), false);
    return;
  }
  const std::string length_header =
      find_header(conn.in, head_end, "content-length");
  if (length_header.empty()) {
    malformed_.inc();
    respond_http(conn, 411, "Length Required",
                 shed_body("Content-Length required"), false);
    return;
  }
  std::size_t content_length = 0;
  for (const char c : length_header) {
    if (c < '0' || c > '9') {
      malformed_.inc();
      respond_http(conn, 400, "Bad Request", shed_body("bad Content-Length"),
                   false);
      return;
    }
    content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
    if (content_length > config_.max_body_bytes) break;
  }
  if (content_length > config_.max_body_bytes) {
    malformed_.inc();
    respond_http(conn, 413, "Payload Too Large",
                 shed_body("request body exceeds server limit"), false);
    return;
  }
  const std::size_t frame_size = head_end + 4 + content_length;
  if (conn.in.size() < frame_size) return;  // body still arriving

  PendingCall call;
  call.conn_id = conn.id;
  call.body = conn.in.substr(head_end + 4, content_length);
  call.keep_alive = keep_alive;
  conn.in.erase(0, frame_size);

  // The frame is complete: give the request its causal identity and
  // attribute the receive span (first byte -> frame complete) as the
  // "parse" stage on its lane.
  call.ctx = obs::mint_request(tracer);
  const double now = tracer.now_us();
  parse_us_.record(now - state->first_byte_us);
  obs::stage_slice(call.ctx, "net.parse", state->first_byte_us, now, tracer);
  call.ctx.handoff_us = now;
  state->first_byte_us = 0;
  requests_total_.inc();

  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!queue_closed_ && queue_.size() < config_.queue_capacity) {
      state->busy = true;
      queue_.push_back(std::move(call));
      admitted = true;
    }
  }
  if (!admitted) {
    // Admission control at the socket: the dispatch queue is the
    // net-layer's max_queue, and a full one answers shed immediately
    // instead of growing an unbounded backlog.
    shed_.inc();
    obs::finish_request(call.ctx, tracer);
    respond_http(conn, 503, "Service Unavailable",
                 shed_body("request shed: dispatch queue full"), keep_alive);
    return;
  }
  queue_cv_.notify_one();
}

void JsonRpcServer::respond_http(Connection& conn, int status,
                                 const char* reason, const std::string& body,
                                 bool keep_alive) {
  std::string response = "HTTP/1.1 " + std::to_string(status) + ' ' + reason +
                         "\r\n";
  if (status == 204) {
    response += "Connection: ";
    response += keep_alive ? "keep-alive" : "close";
    response += "\r\n\r\n";
  } else {
    response += "Content-Type: application/json\r\nContent-Length: " +
                std::to_string(body.size()) + "\r\nConnection: ";
    response += keep_alive ? "keep-alive" : "close";
    response += "\r\n\r\n";
    response += body;
  }
  responses_total_.inc();
  send_data(conn, response);
  if (!keep_alive) {
    finish(conn);
    return;
  }
  auto* state = static_cast<HttpState*>(conn.user.get());
  if (state != nullptr) {
    state->busy = false;
    // A well-behaved client may already have sent its next request while
    // this response was being produced; pick it up now.
    if (!conn.in.empty()) process_input(conn);
  }
}

void JsonRpcServer::post_response(std::uint64_t conn_id, int status,
                                  std::string body, bool keep_alive) {
  const char* reason = status == 200   ? "OK"
                       : status == 204 ? "No Content"
                       : status == 503 ? "Service Unavailable"
                                       : "Error";
  with_connection(conn_id, [this, status, reason, body = std::move(body),
                            keep_alive](Connection& conn) {
    respond_http(conn, status, reason, body, keep_alive);
  });
}

void JsonRpcServer::dispatcher_loop() {
  obs::Tracer& tracer = obs::Tracer::global();
  while (true) {
    PendingCall call;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      call = std::move(queue_.front());
      queue_.pop_front();
    }
    const double picked_up = tracer.now_us();
    dispatch_wait_us_.record(call.ctx.wait_us(picked_up));
    obs::stage_slice(call.ctx, "net.dispatch", call.ctx.handoff_us, picked_up,
                     tracer);

    if (config_.request_deadline_us > 0 &&
        picked_up - call.ctx.born_us >
            static_cast<double>(config_.request_deadline_us)) {
      // Too old to be worth scoring — the socket-layer twin of the
      // engine's deadline shed: drop before any model work is spent.
      shed_.inc();
      request_total_us_.record(picked_up - call.ctx.born_us);
      obs::finish_request(call.ctx, tracer);
      post_response(call.conn_id, 503,
                    shed_body("request shed: deadline exceeded before "
                              "dispatch"),
                    call.keep_alive);
      continue;
    }

    const std::string response_body = handle_frame(call);
    const double done = tracer.now_us();
    handle_us_.record(done - picked_up);
    obs::stage_slice(call.ctx, "net.handle", picked_up, done, tracer);
    request_total_us_.record(done - call.ctx.born_us);
    obs::finish_request(call.ctx, tracer);
    post_response(call.conn_id, response_body.empty() ? 204 : 200,
                  response_body, call.keep_alive);
  }
}

std::string JsonRpcServer::handle_frame(PendingCall& call) {
  std::string parse_error;
  std::optional<JsonValue> doc = JsonValue::parse(call.body, &parse_error);
  if (!doc) {
    malformed_.inc();
    return make_error_response(JsonValue::null(), rpc_errors::kParseError,
                               "parse error: " + parse_error)
        .dump();
  }
  const CallInfo info{call.ctx};
  if (doc->is_array()) {
    batch_calls_.inc();
    const JsonValue::Array& batch = doc->as_array();
    if (batch.empty()) {
      malformed_.inc();
      return make_error_response(JsonValue::null(), rpc_errors::kInvalidRequest,
                                 "empty batch")
          .dump();
    }
    if (batch.size() > config_.max_batch) {
      malformed_.inc();
      return make_error_response(
                 JsonValue::null(), rpc_errors::kInvalidRequest,
                 "batch larger than " + std::to_string(config_.max_batch))
          .dump();
    }
    JsonValue responses = JsonValue::array();
    for (const JsonValue& request : batch) {
      std::optional<JsonValue> response = handle_request(request, info);
      if (response) responses.push_back(std::move(*response));
    }
    // All-notification batches get no body at all (spec: the server MUST
    // NOT return an empty array).
    return responses.as_array().empty() ? std::string() : responses.dump();
  }
  std::optional<JsonValue> response = handle_request(*doc, info);
  return response ? response->dump() : std::string();
}

std::optional<JsonValue> JsonRpcServer::handle_request(
    const JsonValue& request, const CallInfo& info) {
  if (!request.is_object()) {
    malformed_.inc();
    return make_error_response(JsonValue::null(), rpc_errors::kInvalidRequest,
                               "request must be an object");
  }
  const JsonValue* id_member = request.find("id");
  const bool notification = id_member == nullptr;
  const JsonValue id = notification ? JsonValue::null() : *id_member;

  const JsonValue* version = request.find("jsonrpc");
  if (version == nullptr || !version->is_string() ||
      version->as_string() != "2.0") {
    malformed_.inc();
    if (notification) return std::nullopt;
    return make_error_response(id, rpc_errors::kInvalidRequest,
                               "jsonrpc must be \"2.0\"");
  }
  const JsonValue* method = request.find("method");
  if (method == nullptr || !method->is_string()) {
    malformed_.inc();
    if (notification) return std::nullopt;
    return make_error_response(id, rpc_errors::kInvalidRequest,
                               "method must be a string");
  }
  const auto handler = methods_.find(method->as_string());
  if (handler == methods_.end()) {
    if (notification) return std::nullopt;
    return make_error_response(id, rpc_errors::kMethodNotFound,
                               "method not found: " + method->as_string());
  }
  const JsonValue* params_member = request.find("params");
  JsonValue params = params_member == nullptr ? JsonValue::null()
                                              : *params_member;
  if (!params.is_null() && !params.is_array() && !params.is_object()) {
    malformed_.inc();
    if (notification) return std::nullopt;
    return make_error_response(id, rpc_errors::kInvalidParams,
                               "params must be array or object");
  }
  try {
    JsonValue result = handler->second(params, info);
    if (notification) return std::nullopt;
    return make_result_response(id, std::move(result));
  } catch (const RpcError& error) {
    if (notification) return std::nullopt;
    return make_error_response(id, error.code(), error.what());
  } catch (const std::exception& error) {
    if (notification) return std::nullopt;
    return make_error_response(id, rpc_errors::kInternalError,
                               std::string("internal error: ") + error.what());
  }
}

}  // namespace phishinghook::net
