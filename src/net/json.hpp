// Minimal JSON document model for the network layer.
//
// The JSON-RPC server has to *read* adversarial bytes off a socket —
// everything else in the repo only ever writes JSON (expositions, traces,
// bench files), so this is the repo's first parser. It is deliberately
// small: a tagged value (null/bool/number/string/array/object), a
// recursive-descent parser with hard depth and length limits (stack
// exhaustion from a "[[[[[..." frame is an attack, not an edge case), and
// a writer that round-trips integral numbers without a trailing ".0" (the
// JSON-RPC id echo must match what the client sent).
//
// Numbers are doubles. JSON-RPC ids and scoring probabilities both fit;
// anything needing full 64-bit integer fidelity does not travel through
// this layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace phishinghook::net {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered; lookup is linear (objects here are a handful of
  /// keys, not maps).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double n);
  static JsonValue string(std::string s);
  static JsonValue array(Array items = {});
  static JsonValue object(Object members = {});

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Appends `key`: `value` (objects) / `value` (arrays).
  void set(std::string key, JsonValue value);
  void push_back(JsonValue value);

  /// Compact serialization (no whitespace). Integral numbers print without
  /// a fractional part so parsed ids round-trip byte-identical.
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Parses exactly one JSON document (leading/trailing whitespace
  /// allowed, trailing garbage rejected). On failure returns nullopt and,
  /// when `error` is given, a one-line reason with the byte offset.
  /// `max_depth` bounds array/object nesting.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr,
                                        std::size_t max_depth = 64);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_string_escape(std::string_view text);

}  // namespace phishinghook::net
