#include "stats/holm.hpp"

#include <algorithm>
#include <numeric>

namespace phishinghook::stats {

std::vector<double> holm_bonferroni(const std::vector<double>& p_values) {
  const std::size_t m = p_values.size();
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p_values[a] < p_values[b];
  });

  std::vector<double> adjusted(m, 0.0);
  double running_max = 0.0;
  for (std::size_t rank = 0; rank < m; ++rank) {
    const std::size_t idx = order[rank];
    const double scaled = p_values[idx] * static_cast<double>(m - rank);
    running_max = std::max(running_max, scaled);
    adjusted[idx] = std::min(1.0, running_max);
  }
  return adjusted;
}

}  // namespace phishinghook::stats
