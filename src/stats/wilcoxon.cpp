#include "stats/wilcoxon.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "stats/distributions.hpp"
#include "stats/ranks.hpp"

namespace phishinghook::stats {

WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw phishinghook::InvalidArgument("Wilcoxon requires paired samples");
  }
  std::vector<double> diffs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(d);
  }
  WilcoxonResult result;
  result.effective_n = diffs.size();
  if (diffs.empty()) return result;  // identical samples: p = 1

  std::vector<double> abs_diffs(diffs.size());
  for (std::size_t i = 0; i < diffs.size(); ++i) abs_diffs[i] = std::fabs(diffs[i]);
  const std::vector<double> r = ranks_with_ties(abs_diffs);

  double w_plus = 0.0, w_minus = 0.0;
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    if (diffs[i] > 0.0) w_plus += r[i];
    else w_minus += r[i];
  }
  result.w = std::min(w_plus, w_minus);
  const std::size_t n = diffs.size();

  if (n <= 16) {
    // Exact: enumerate all 2^n sign assignments of the observed ranks and
    // count those with min(W+, W-) <= observed (two-sided by symmetry).
    const std::size_t total = std::size_t{1} << n;
    const double rank_total = static_cast<double>(n * (n + 1)) / 2.0;
    std::size_t at_most = 0;
    for (std::size_t mask = 0; mask < total; ++mask) {
      double wp = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (std::size_t{1} << i)) wp += r[i];
      }
      const double stat = std::min(wp, rank_total - wp);
      if (stat <= result.w + 1e-12) ++at_most;
    }
    result.p_value = std::min(
        1.0, static_cast<double>(at_most) / static_cast<double>(total));
  } else {
    const double nd = static_cast<double>(n);
    const double mean_w = nd * (nd + 1.0) / 4.0;
    const double tie_term = tie_correction_term(abs_diffs);
    const double var_w =
        nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0 - tie_term / 48.0;
    const double z =
        (result.w - mean_w + 0.5) / std::sqrt(var_w);  // continuity corr.
    result.p_value = std::min(1.0, 2.0 * normal_cdf(z));
  }
  return result;
}

}  // namespace phishinghook::stats
