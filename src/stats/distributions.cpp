#include "stats/distributions.hpp"

#include <cmath>
#include <limits>

#include "common/errors.hpp"

namespace phishinghook::stats {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw phishinghook::InvalidArgument("normal_quantile requires p in (0,1)");
  }
  // Acklam's rational approximations.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return x;
}

namespace {

// Lanczos log-gamma.
double log_gamma(double x) { return std::lgamma(x); }

// Series expansion for P(a, x), x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued fraction for Q(a, x), x >= a + 1 (Lentz's method).
double gamma_q_cf(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double gamma_p(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw phishinghook::InvalidArgument("gamma_p requires a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw phishinghook::InvalidArgument("gamma_q requires a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double chi_square_sf(double x, double df) {
  if (x <= 0.0) return 1.0;
  return gamma_q(df / 2.0, x / 2.0);
}

}  // namespace phishinghook::stats
