#include "stats/cliffs_delta.hpp"

#include <cmath>

#include "common/errors.hpp"

namespace phishinghook::stats {

double cliffs_delta(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    throw phishinghook::InvalidArgument("Cliff's delta needs non-empty samples");
  }
  long dominance = 0;
  for (double x : a) {
    for (double y : b) {
      if (x > y) ++dominance;
      else if (x < y) --dominance;
    }
  }
  return static_cast<double>(dominance) /
         (static_cast<double>(a.size()) * static_cast<double>(b.size()));
}

std::string_view cliffs_delta_magnitude(double delta) {
  const double magnitude = std::fabs(delta);
  if (magnitude < 0.147) return "negligible";
  if (magnitude < 0.33) return "small";
  if (magnitude < 0.474) return "medium";
  return "large";
}

}  // namespace phishinghook::stats
