#include "stats/friedman.hpp"

#include "common/errors.hpp"
#include "stats/distributions.hpp"
#include "stats/ranks.hpp"

namespace phishinghook::stats {

FriedmanResult friedman_test(const std::vector<std::vector<double>>& data) {
  if (data.size() < 2) {
    throw phishinghook::InvalidArgument("Friedman test needs >= 2 blocks");
  }
  const std::size_t k = data.front().size();
  if (k < 2) {
    throw phishinghook::InvalidArgument("Friedman test needs >= 2 treatments");
  }
  for (const auto& block : data) {
    if (block.size() != k) {
      throw phishinghook::InvalidArgument("Friedman blocks must be equal-sized");
    }
  }
  const double n = static_cast<double>(data.size());
  const double kd = static_cast<double>(k);

  FriedmanResult result;
  result.mean_ranks.assign(k, 0.0);
  for (const auto& block : data) {
    const std::vector<double> r = ranks_with_ties(block);
    for (std::size_t j = 0; j < k; ++j) result.mean_ranks[j] += r[j];
  }
  for (double& r : result.mean_ranks) r /= n;

  double sum_sq = 0.0;
  for (double r : result.mean_ranks) {
    const double centered = r - (kd + 1.0) / 2.0;
    sum_sq += centered * centered;
  }
  result.chi_square = 12.0 * n / (kd * (kd + 1.0)) * sum_sq;
  result.df = kd - 1.0;
  result.p_value = chi_square_sf(result.chi_square, result.df);
  return result;
}

}  // namespace phishinghook::stats
