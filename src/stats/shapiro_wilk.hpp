// Shapiro-Wilk normality test (Royston's AS R94 / 1995 algorithm).
//
// The PAM's first step: normality of each model-metric distribution decides
// whether the group comparison uses parametric or nonparametric tests
// (the paper found 20/52 pairs non-normal and chose Kruskal-Wallis).
#pragma once

#include <vector>

namespace phishinghook::stats {

struct ShapiroWilkResult {
  double w = 0.0;        ///< the W statistic in (0, 1]
  double p_value = 1.0;  ///< null: the sample is normal
};

/// Requires 3 <= n <= 5000; throws InvalidArgument otherwise or when the
/// sample is constant.
ShapiroWilkResult shapiro_wilk(std::vector<double> sample);

}  // namespace phishinghook::stats
