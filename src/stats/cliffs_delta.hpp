// Cliff's delta (1993): the ordinal effect size the paper reports alongside
// the scalability post hoc analysis (Fig. 6 discussion).
#pragma once

#include <string_view>
#include <vector>

namespace phishinghook::stats {

/// delta = (#{a > b} - #{a < b}) / (|A| |B|), in [-1, 1].
double cliffs_delta(const std::vector<double>& a, const std::vector<double>& b);

/// Conventional magnitude labels (Romano et al. thresholds):
/// negligible < 0.147 <= small < 0.33 <= medium < 0.474 <= large.
std::string_view cliffs_delta_magnitude(double delta);

}  // namespace phishinghook::stats
