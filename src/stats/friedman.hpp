// Friedman test (1937): nonparametric repeated-measures comparison over
// blocks x treatments — the first stage of the critical difference diagram
// (Fig. 6), following Demsar's methodology.
#pragma once

#include <vector>

namespace phishinghook::stats {

struct FriedmanResult {
  double chi_square = 0.0;
  double p_value = 1.0;
  double df = 0.0;
  /// Mean rank per treatment (1 = best when higher values rank higher is
  /// false; ranks are assigned ascending, so larger observations get larger
  /// ranks).
  std::vector<double> mean_ranks;
};

/// `data[block][treatment]`; every block must have the same number of
/// treatments (>= 2), and there must be >= 2 blocks.
FriedmanResult friedman_test(const std::vector<std::vector<double>>& data);

}  // namespace phishinghook::stats
