// Probability distributions used by the hypothesis tests: standard normal
// CDF / quantile (AS 241-quality approximation) and the chi-square survival
// function via the regularized incomplete gamma function.
#pragma once

namespace phishinghook::stats {

/// Standard normal CDF Phi(z).
double normal_cdf(double z);

/// Upper-tail probability P(Z > z).
double normal_sf(double z);

/// Normal quantile Phi^{-1}(p), p in (0, 1) (Acklam's algorithm, relative
/// error < 1.15e-9 — ample for test coefficients).
double normal_quantile(double p);

/// Regularized lower incomplete gamma P(a, x).
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Chi-square survival function P(X > x) with `df` degrees of freedom.
double chi_square_sf(double x, double df);

}  // namespace phishinghook::stats
