// Holm-Bonferroni step-down adjustment for multiple comparisons — applied
// by the paper to the Kruskal-Wallis p-values (Table III) and to every
// Dunn's-test pair (Fig. 4).
#pragma once

#include <vector>

namespace phishinghook::stats {

/// Adjusted p-values, same order as the input. Monotonicity is enforced
/// (each adjusted p is at least the previous one in significance order) and
/// values are clipped to 1.
std::vector<double> holm_bonferroni(const std::vector<double>& p_values);

}  // namespace phishinghook::stats
