#include "stats/ranks.hpp"

#include <algorithm>
#include <numeric>

#include "common/errors.hpp"

namespace phishinghook::stats {

std::vector<double> ranks_with_ties(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double tie_correction_term(const std::vector<double>& values) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    total += t * t * t - t;
    i = j + 1;
  }
  return total;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) throw phishinghook::InvalidArgument("mean of empty set");
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double sample_variance(const std::vector<double>& values) {
  if (values.size() < 2) {
    throw phishinghook::InvalidArgument("variance needs >= 2 observations");
  }
  const double m = mean(values);
  double total = 0.0;
  for (double v : values) total += (v - m) * (v - m);
  return total / static_cast<double>(values.size() - 1);
}

double median(std::vector<double> values) {
  if (values.empty()) throw phishinghook::InvalidArgument("median of empty set");
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace phishinghook::stats
