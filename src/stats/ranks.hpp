// Rank utilities shared by the nonparametric tests: mid-ranks with tie
// handling, and the tie-correction factor for rank-test variances.
#pragma once

#include <vector>

namespace phishinghook::stats {

/// 1-based ranks of `values`; tied observations receive the average of the
/// ranks they span (mid-ranks).
std::vector<double> ranks_with_ties(const std::vector<double>& values);

/// Sum over tie groups of (t^3 - t) — the standard correction term used by
/// Kruskal-Wallis and Dunn.
double tie_correction_term(const std::vector<double>& values);

/// Simple descriptive helpers.
double mean(const std::vector<double>& values);
double sample_variance(const std::vector<double>& values);
double median(std::vector<double> values);

}  // namespace phishinghook::stats
