#include "stats/shapiro_wilk.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "stats/distributions.hpp"

namespace phishinghook::stats {

namespace {

double poly(const double* coeffs, int order, double x) {
  // coeffs[0] + coeffs[1] x + ... (ascending powers)
  double value = coeffs[order - 1];
  for (int i = order - 2; i >= 0; --i) value = value * x + coeffs[i];
  return value;
}

}  // namespace

ShapiroWilkResult shapiro_wilk(std::vector<double> sample) {
  const std::size_t n = sample.size();
  if (n < 3 || n > 5000) {
    throw phishinghook::InvalidArgument(
        "Shapiro-Wilk requires 3 <= n <= 5000, got " + std::to_string(n));
  }
  std::sort(sample.begin(), sample.end());
  if (sample.front() == sample.back()) {
    throw phishinghook::InvalidArgument("Shapiro-Wilk on a constant sample");
  }

  // Expected normal order statistics m and normalized coefficients c.
  std::vector<double> m(n);
  double m_norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = normal_quantile((static_cast<double>(i + 1) - 0.375) /
                           (static_cast<double>(n) + 0.25));
    m_norm_sq += m[i] * m[i];
  }
  const double rsn = 1.0 / std::sqrt(static_cast<double>(n));  // u

  std::vector<double> a(n, 0.0);
  if (n == 3) {
    a[0] = -std::sqrt(0.5);
    a[2] = std::sqrt(0.5);
  } else {
    // Royston's polynomial corrections (coefficients in ascending powers).
    static const double c1[] = {0.0, 0.221157, -0.147981, -2.071190,
                                4.434685, -2.706056};
    static const double c2[] = {0.0, 0.042981, -0.293762, -1.752461,
                                5.682633, -3.582633};
    const double cn = m[n - 1] / std::sqrt(m_norm_sq);
    const double cn1 = m[n - 2] / std::sqrt(m_norm_sq);
    const double an = cn + poly(c1, 6, rsn);
    if (n <= 5) {
      const double phi = (m_norm_sq - 2.0 * m[n - 1] * m[n - 1]) /
                         (1.0 - 2.0 * an * an);
      a[n - 1] = an;
      a[0] = -an;
      for (std::size_t i = 1; i + 1 < n; ++i) a[i] = m[i] / std::sqrt(phi);
    } else {
      const double an1 = cn1 + poly(c2, 6, rsn);
      const double phi =
          (m_norm_sq - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2]) /
          (1.0 - 2.0 * an * an - 2.0 * an1 * an1);
      a[n - 1] = an;
      a[n - 2] = an1;
      a[0] = -an;
      a[1] = -an1;
      for (std::size_t i = 2; i + 2 < n; ++i) a[i] = m[i] / std::sqrt(phi);
    }
  }

  // W statistic.
  double x_mean = 0.0;
  for (double v : sample) x_mean += v;
  x_mean /= static_cast<double>(n);
  double numerator = 0.0;
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    numerator += a[i] * sample[i];
    ss += (sample[i] - x_mean) * (sample[i] - x_mean);
  }
  ShapiroWilkResult result;
  result.w = numerator * numerator / ss;
  if (result.w > 1.0) result.w = 1.0;

  // P-value transformations (Royston 1995).
  const double nd = static_cast<double>(n);
  if (n == 3) {
    const double p = 6.0 / M_PI *
                     (std::asin(std::sqrt(result.w)) - std::asin(std::sqrt(0.75)));
    result.p_value = std::clamp(p, 0.0, 1.0);
    return result;
  }
  double z;
  if (n <= 11) {
    const double gamma = -2.273 + 0.459 * nd;
    const double w1 = -std::log(gamma - std::log1p(-result.w));
    static const double c3[] = {0.5440, -0.39978, 0.025054, -6.714e-4};
    static const double c4[] = {1.3822, -0.77857, 0.062767, -0.0020322};
    const double mu = poly(c3, 4, nd);
    const double sigma = std::exp(poly(c4, 4, nd));
    z = (w1 - mu) / sigma;
  } else {
    const double ln_n = std::log(nd);
    const double w1 = std::log1p(-result.w);
    static const double c5[] = {-1.5861, -0.31082, -0.083751, 0.0038915};
    static const double c6[] = {-0.4803, -0.082676, 0.0030302};
    const double mu = poly(c5, 4, ln_n);
    const double sigma = std::exp(poly(c6, 3, ln_n));
    z = (w1 - mu) / sigma;
  }
  result.p_value = normal_sf(z);
  return result;
}

}  // namespace phishinghook::stats
