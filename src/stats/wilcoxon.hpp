// Wilcoxon signed-rank test for paired samples — the second stage of the
// critical difference analysis (Fig. 6): pairwise model comparisons after a
// rejected Friedman test.
#pragma once

#include <vector>

namespace phishinghook::stats {

struct WilcoxonResult {
  double w = 0.0;        ///< min(W+, W-)
  double p_value = 1.0;  ///< two-sided
  /// Number of non-zero differences actually tested.
  std::size_t effective_n = 0;
};

/// Exact two-sided p for effective n <= 16 (full enumeration of sign
/// assignments), normal approximation with tie correction above that. Zero
/// differences are dropped (Wilcoxon's original treatment). With no nonzero
/// differences the result is p = 1.
WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& a,
                                    const std::vector<double>& b);

}  // namespace phishinghook::stats
