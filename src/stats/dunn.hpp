// Dunn's test (1964): the nonparametric pairwise multiple-comparison
// procedure the paper applies after a rejected Kruskal-Wallis (Fig. 4),
// with Holm-Bonferroni correction.
#pragma once

#include <cstddef>
#include <vector>

namespace phishinghook::stats {

struct DunnPair {
  std::size_t group_a = 0;
  std::size_t group_b = 0;
  double z = 0.0;
  double p_value = 1.0;
  double p_adjusted = 1.0;
};

struct DunnResult {
  std::vector<DunnPair> pairs;  ///< all (a < b) pairs, in lexicographic order

  /// Fraction of pairs with p_adjusted < alpha.
  double significant_fraction(double alpha = 0.05) const;
};

/// Z = (Rbar_a - Rbar_b) / sqrt( (N(N+1)/12 - T) * (1/n_a + 1/n_b) ), with
/// the tie correction T = sum(t^3 - t)/(12(N-1)); two-sided p from the
/// standard normal, Holm-adjusted across all pairs.
DunnResult dunn_test(const std::vector<std::vector<double>>& groups);

}  // namespace phishinghook::stats
