#include "stats/kruskal_wallis.hpp"

#include "common/errors.hpp"
#include "stats/distributions.hpp"
#include "stats/ranks.hpp"

namespace phishinghook::stats {

KruskalWallisResult kruskal_wallis(
    const std::vector<std::vector<double>>& groups) {
  if (groups.size() < 2) {
    throw phishinghook::InvalidArgument("Kruskal-Wallis needs >= 2 groups");
  }
  std::vector<double> pooled;
  for (const auto& group : groups) {
    if (group.empty()) {
      throw phishinghook::InvalidArgument("Kruskal-Wallis group is empty");
    }
    pooled.insert(pooled.end(), group.begin(), group.end());
  }
  const double n = static_cast<double>(pooled.size());
  const std::vector<double> all_ranks = ranks_with_ties(pooled);

  // Per-group rank sums.
  double h = 0.0;
  std::size_t offset = 0;
  for (const auto& group : groups) {
    double rank_sum = 0.0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      rank_sum += all_ranks[offset + i];
    }
    offset += group.size();
    h += rank_sum * rank_sum / static_cast<double>(group.size());
  }
  h = 12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0);

  // Tie correction.
  const double ties = tie_correction_term(pooled);
  const double correction = 1.0 - ties / (n * n * n - n);
  if (correction > 0.0) h /= correction;

  KruskalWallisResult result;
  result.h = h;
  result.df = static_cast<double>(groups.size() - 1);
  result.p_value = chi_square_sf(h, result.df);
  return result;
}

}  // namespace phishinghook::stats
