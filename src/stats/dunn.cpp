#include "stats/dunn.hpp"

#include <cmath>

#include "common/errors.hpp"
#include "stats/distributions.hpp"
#include "stats/holm.hpp"
#include "stats/ranks.hpp"

namespace phishinghook::stats {

double DunnResult::significant_fraction(double alpha) const {
  if (pairs.empty()) return 0.0;
  std::size_t count = 0;
  for (const DunnPair& pair : pairs) {
    if (pair.p_adjusted < alpha) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(pairs.size());
}

DunnResult dunn_test(const std::vector<std::vector<double>>& groups) {
  if (groups.size() < 2) {
    throw phishinghook::InvalidArgument("Dunn's test needs >= 2 groups");
  }
  std::vector<double> pooled;
  for (const auto& group : groups) {
    if (group.empty()) {
      throw phishinghook::InvalidArgument("Dunn's test group is empty");
    }
    pooled.insert(pooled.end(), group.begin(), group.end());
  }
  const double n_total = static_cast<double>(pooled.size());
  const std::vector<double> all_ranks = ranks_with_ties(pooled);

  std::vector<double> mean_rank(groups.size(), 0.0);
  std::size_t offset = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t i = 0; i < groups[g].size(); ++i) {
      mean_rank[g] += all_ranks[offset + i];
    }
    mean_rank[g] /= static_cast<double>(groups[g].size());
    offset += groups[g].size();
  }

  const double tie_term = tie_correction_term(pooled) / (12.0 * (n_total - 1.0));
  const double base_var = n_total * (n_total + 1.0) / 12.0 - tie_term;

  DunnResult result;
  std::vector<double> raw_p;
  for (std::size_t a = 0; a < groups.size(); ++a) {
    for (std::size_t b = a + 1; b < groups.size(); ++b) {
      const double se = std::sqrt(
          base_var * (1.0 / static_cast<double>(groups[a].size()) +
                      1.0 / static_cast<double>(groups[b].size())));
      DunnPair pair;
      pair.group_a = a;
      pair.group_b = b;
      pair.z = (mean_rank[a] - mean_rank[b]) / se;
      pair.p_value = 2.0 * normal_sf(std::fabs(pair.z));
      if (pair.p_value > 1.0) pair.p_value = 1.0;
      raw_p.push_back(pair.p_value);
      result.pairs.push_back(pair);
    }
  }
  const std::vector<double> adjusted = holm_bonferroni(raw_p);
  for (std::size_t i = 0; i < result.pairs.size(); ++i) {
    result.pairs[i].p_adjusted = adjusted[i];
  }
  return result;
}

}  // namespace phishinghook::stats
