// Kruskal-Wallis H test (the paper's Table III): nonparametric comparison
// of k independent groups' medians, with tie correction and a chi-square
// approximation for the p-value.
#pragma once

#include <vector>

namespace phishinghook::stats {

struct KruskalWallisResult {
  double h = 0.0;
  double p_value = 1.0;
  double df = 0.0;
};

/// `groups` holds one observation vector per group; requires >= 2 non-empty
/// groups.
KruskalWallisResult kruskal_wallis(const std::vector<std::vector<double>>& groups);

}  // namespace phishinghook::stats
