#include "evm/memory.hpp"

#include <algorithm>

namespace phishinghook::evm {

namespace {
std::uint64_t words_for(std::uint64_t bytes) { return (bytes + 31) / 32; }
}  // namespace

std::uint64_t EvmMemory::grow_cost(std::uint64_t offset, std::uint64_t len) const {
  if (len == 0) return 0;
  const std::uint64_t needed = words_for(offset + len);
  const std::uint64_t current = words_for(bytes_.size());
  if (needed <= current) return 0;
  return expansion_cost(needed) - expansion_cost(current);
}

void EvmMemory::grow(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t needed = words_for(offset + len) * 32;
  if (needed > bytes_.size()) bytes_.resize(needed, 0);
}

U256 EvmMemory::load_word(std::uint64_t offset) {
  grow(offset, 32);
  return U256::from_bytes_be(
      std::span<const std::uint8_t>(bytes_.data() + offset, 32));
}

void EvmMemory::store_word(std::uint64_t offset, const U256& value) {
  grow(offset, 32);
  const auto be = value.to_bytes_be();
  std::copy(be.begin(), be.end(), bytes_.begin() + static_cast<std::ptrdiff_t>(offset));
}

void EvmMemory::store_byte(std::uint64_t offset, std::uint8_t value) {
  grow(offset, 1);
  bytes_[offset] = value;
}

void EvmMemory::store_span(std::uint64_t offset,
                           std::span<const std::uint8_t> data,
                           std::uint64_t len) {
  if (len == 0) return;
  grow(offset, len);
  const std::uint64_t copy_len = std::min<std::uint64_t>(len, data.size());
  std::copy(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(copy_len),
            bytes_.begin() + static_cast<std::ptrdiff_t>(offset));
  std::fill(bytes_.begin() + static_cast<std::ptrdiff_t>(offset + copy_len),
            bytes_.begin() + static_cast<std::ptrdiff_t>(offset + len), 0);
}

std::vector<std::uint8_t> EvmMemory::read(std::uint64_t offset,
                                          std::uint64_t len) {
  grow(offset, len);
  return std::vector<std::uint8_t>(
      bytes_.begin() + static_cast<std::ptrdiff_t>(offset),
      bytes_.begin() + static_cast<std::ptrdiff_t>(offset + len));
}

}  // namespace phishinghook::evm
