// Bytecode Disassembler Module (BDM).
//
// Translates deployed bytecode into the instruction stream the paper's
// feature extractors consume: for every instruction its program counter,
// mnemonic (human-readable alias), operand (PUSH immediate, if any) and
// static gas cost. Mirrors the authors' patched `evmdasm`, including its
// treatment of the two post-Arrow-Glacier opcodes (PUSH0, INVALID) and of
// undefined bytes (reported as INVALID-style unknown instructions).
//
// Example: 0x6080604052 disassembles to
//   (PUSH1, 0x80, 3), (PUSH1, 0x40, 3), (MSTORE, -, 3)
// exactly as in the paper's §III walk-through.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "evm/bytecode.hpp"
#include "evm/opcodes.hpp"
#include "evm/uint256.hpp"

namespace phishinghook::evm {

/// One disassembled instruction.
struct Instruction {
  std::size_t pc = 0;             ///< byte offset in the code
  std::uint8_t opcode = 0;        ///< raw opcode byte
  std::string_view mnemonic;      ///< "PUSH1", "MSTORE", "UNKNOWN_0xXX"...
  std::optional<U256> operand;    ///< PUSH immediate value, if any
  std::size_t operand_bytes = 0;  ///< immediate width actually present
  std::uint32_t gas = 0;          ///< static gas cost (0 where NaN)
  bool gas_is_nan = false;        ///< INVALID's NaN gas, per Table I
  bool defined = true;            ///< false for bytes outside the fork table

  /// "PUSH1 0x80" / "MSTORE" — the textual form used in listings.
  std::string to_string() const;
};

/// A full disassembly listing.
struct Disassembly {
  std::vector<Instruction> instructions;

  /// Total static gas of all defined instructions (a crude size metric used
  /// by a few reports).
  std::uint64_t total_static_gas() const;

  /// Count per mnemonic, in first-appearance order — the raw material of the
  /// HSC opcode histograms.
  std::vector<std::pair<std::string, std::size_t>> mnemonic_counts() const;

  /// CSV with columns pc,opcode,mnemonic,operand,gas — the .csv artifact the
  /// paper's BDM stores for downstream models.
  std::string to_csv() const;
};

class Disassembler {
 public:
  /// Uses the Shanghai opcode table.
  Disassembler();
  explicit Disassembler(const OpcodeTable& table);

  /// Disassembles the whole code array. A PUSH whose immediate runs past the
  /// end of code is completed with implicit zero bytes, matching EVM
  /// semantics (code reads past the end yield 0).
  Disassembly disassemble(const Bytecode& code) const;

 private:
  const OpcodeTable* table_;
};

}  // namespace phishinghook::evm
