// Bytecode Disassembler Module (BDM).
//
// Translates deployed bytecode into the instruction stream the paper's
// feature extractors consume: for every instruction its program counter,
// mnemonic (human-readable alias), operand (PUSH immediate, if any) and
// static gas cost. Mirrors the authors' patched `evmdasm`, including its
// treatment of the two post-Arrow-Glacier opcodes (PUSH0, INVALID) and of
// undefined bytes (reported as INVALID-style unknown instructions).
//
// Example: 0x6080604052 disassembles to
//   (PUSH1, 0x80, 3), (PUSH1, 0x40, 3), (MSTORE, -, 3)
// exactly as in the paper's §III walk-through.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "evm/bytecode.hpp"
#include "evm/opcodes.hpp"
#include "evm/uint256.hpp"

namespace phishinghook::evm {

/// Stable "UNKNOWN_0xXX" mnemonic for an undefined byte. Backed by an
/// eagerly built table of all 256 names, so it is allocation-free and safe
/// to call from any number of threads.
std::string_view unknown_mnemonic(std::uint8_t byte);

/// One disassembled instruction.
struct Instruction {
  std::size_t pc = 0;             ///< byte offset in the code
  std::uint8_t opcode = 0;        ///< raw opcode byte
  std::string_view mnemonic;      ///< "PUSH1", "MSTORE", "UNKNOWN_0xXX"...
  std::optional<U256> operand;    ///< PUSH immediate value, if any
  std::size_t operand_bytes = 0;  ///< immediate width actually present
  std::uint32_t gas = 0;          ///< static gas cost (0 where NaN)
  bool gas_is_nan = false;        ///< INVALID's NaN gas, per Table I
  bool defined = true;            ///< false for bytes outside the fork table

  /// "PUSH1 0x80" / "MSTORE" — the textual form used in listings.
  std::string to_string() const;
};

/// A full disassembly listing.
struct Disassembly {
  std::vector<Instruction> instructions;

  /// Total static gas of all defined instructions (a crude size metric used
  /// by a few reports).
  std::uint64_t total_static_gas() const;

  /// Count per mnemonic, in first-appearance order — the raw material of the
  /// HSC opcode histograms.
  std::vector<std::pair<std::string, std::size_t>> mnemonic_counts() const;

  /// CSV with columns pc,opcode,mnemonic,operand,gas — the .csv artifact the
  /// paper's BDM stores for downstream models.
  std::string to_csv() const;
};

/// Borrowed, allocation-free view of one instruction, produced by the
/// streaming walker. Everything is derived from the opcode byte and a span
/// into the code; materializing the mnemonic string or the U256 operand is
/// deferred to the accessors so fast-path consumers (LUT feature
/// extraction) never pay for them.
struct InstructionView {
  std::size_t pc = 0;              ///< byte offset in the code
  std::uint8_t opcode = 0;         ///< raw opcode byte
  const OpcodeInfo* info = nullptr;  ///< nullptr for undefined bytes
  /// Immediate bytes actually present in the code (may be shorter than the
  /// declared width when a PUSH is truncated by end-of-code).
  std::span<const std::uint8_t> immediate;
  std::size_t immediate_width = 0;  ///< declared PUSH width

  bool defined() const { return info != nullptr; }
  bool has_operand() const { return immediate_width > 0; }

  /// "PUSH1", "MSTORE", "UNKNOWN_0xXX"...
  std::string_view mnemonic() const {
    return info != nullptr ? info->mnemonic : unknown_mnemonic(opcode);
  }

  /// Static gas cost (0 where NaN / undefined), as in Instruction::gas.
  std::uint32_t gas() const { return info != nullptr ? info->base_gas : 0; }

  /// PUSH immediate, zero-extended when truncated by end-of-code —
  /// identical to the value Disassembler::disassemble materializes.
  U256 operand() const {
    U256 value = U256::from_bytes_be(immediate);
    if (immediate.size() < immediate_width) {
      value = value << static_cast<unsigned>(
                  8 * (immediate_width - immediate.size()));
    }
    return value;
  }
};

class Disassembler {
 public:
  /// Uses the Shanghai opcode table.
  Disassembler();
  explicit Disassembler(const OpcodeTable& table);

  /// Disassembles the whole code array. A PUSH whose immediate runs past the
  /// end of code is completed with implicit zero bytes, matching EVM
  /// semantics (code reads past the end yield 0).
  Disassembly disassemble(const Bytecode& code) const;

  /// Streaming single-pass walker: calls `visit(const InstructionView&)`
  /// for every instruction without materializing a Disassembly (no strings,
  /// no operand U256s, no per-call allocation). `disassemble`, the BDM CSV
  /// writer and the feature-extraction fit paths all run on this walker, so
  /// instruction boundaries (PUSH-immediate skipping, truncated trailing
  /// PUSH, undefined bytes as 1-byte instructions) agree by construction.
  template <typename Visitor>
  void for_each(const Bytecode& code, Visitor&& visit) const {
    const auto& bytes = code.bytes();
    const std::size_t n = bytes.size();
    std::size_t pc = 0;
    while (pc < n) {
      InstructionView view;
      view.pc = pc;
      view.opcode = bytes[pc];
      view.info = table_->find(view.opcode);
      std::size_t width = 0;
      if (view.info != nullptr && view.info->immediate_bytes > 0) {
        width = view.info->immediate_bytes;
        const std::size_t available = std::min(width, n - pc - 1);
        view.immediate =
            std::span<const std::uint8_t>(bytes.data() + pc + 1, available);
        view.immediate_width = width;
      }
      visit(static_cast<const InstructionView&>(view));
      pc += 1 + width;
    }
  }

  /// Streams the pc/opcode/mnemonic/operand/gas CSV (identical bytes to
  /// Disassembly::to_csv) without materializing the instruction vector.
  void write_csv(const Bytecode& code, std::ostream& out) const;

 private:
  const OpcodeTable* table_;
};

}  // namespace phishinghook::evm
