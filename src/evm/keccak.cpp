#include "evm/keccak.hpp"

#include <cstring>

#include "common/errors.hpp"
#include "common/hex.hpp"

namespace phishinghook::evm {

namespace {

constexpr int kRounds = 24;

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr int kRotations[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                                25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

std::uint64_t rotl64(std::uint64_t x, int s) {
  return s == 0 ? x : (x << s) | (x >> (64 - s));
}

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  for (int round = 0; round < kRounds; ++round) {
    // Theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d;
    }
    // Rho + Pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl64(a[x + 5 * y], kRotations[x + 5 * y]);
      }
    }
    // Chi
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] =
            b[x + 5 * y] ^ ((~b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

Keccak256::Keccak256() = default;

void Keccak256::absorb_block() {
  for (std::size_t i = 0; i < buffer_.size() / 8; ++i) {
    std::uint64_t lane = 0;
    std::memcpy(&lane, buffer_.data() + i * 8, 8);  // little-endian hosts
    state_[i] ^= lane;
  }
  keccak_f1600(state_);
  buffer_len_ = 0;
}

void Keccak256::update(std::span<const std::uint8_t> data) {
  if (finalized_) throw StateError("Keccak256::update after finalize");
  for (std::uint8_t byte : data) {
    buffer_[buffer_len_++] = byte;
    if (buffer_len_ == buffer_.size()) absorb_block();
  }
}

Hash256 Keccak256::finalize() {
  if (finalized_) throw StateError("Keccak256::finalize called twice");
  finalized_ = true;
  // Keccak (pre-SHA3) padding: 0x01 ... 0x80.
  std::memset(buffer_.data() + buffer_len_, 0, buffer_.size() - buffer_len_);
  buffer_[buffer_len_] ^= 0x01;
  buffer_[buffer_.size() - 1] ^= 0x80;
  absorb_block();

  Hash256 out;
  for (std::size_t i = 0; i < 4; ++i) {
    std::memcpy(out.data() + i * 8, &state_[i], 8);
  }
  return out;
}

Hash256 keccak256(std::span<const std::uint8_t> data) {
  Keccak256 hasher;
  hasher.update(data);
  return hasher.finalize();
}

Hash256 keccak256(const std::string& data) {
  return keccak256(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

std::string hash_to_hex(const Hash256& hash) {
  return phishinghook::common::hex_encode(hash);
}

}  // namespace phishinghook::evm
