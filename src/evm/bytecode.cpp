#include "evm/bytecode.hpp"

#include "common/hex.hpp"
#include "evm/opcodes.hpp"

namespace phishinghook::evm {

Bytecode::Bytecode(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

Bytecode Bytecode::from_hex(std::string_view hex) {
  return Bytecode(phishinghook::common::hex_decode(hex));
}

std::string Bytecode::to_hex() const {
  return phishinghook::common::hex_encode_prefixed(bytes_);
}

Hash256 Bytecode::code_hash() const { return keccak256(bytes_); }

const std::vector<bool>& Bytecode::instruction_starts() const {
  if (starts_.size() != bytes_.size() || bytes_.empty()) {
    starts_.assign(bytes_.size(), false);
    std::size_t pc = 0;
    while (pc < bytes_.size()) {
      starts_[pc] = true;
      pc += 1 + push_data_size(bytes_[pc]);
    }
  }
  return starts_;
}

bool Bytecode::is_valid_jump_dest(std::size_t pc) const {
  if (pc >= bytes_.size()) return false;
  if (bytes_[pc] != op_byte(Op::kJumpdest)) return false;
  return instruction_starts()[pc];
}

}  // namespace phishinghook::evm
