// Keccak-256 (the original pre-SHA3 padding variant used by Ethereum).
//
// Backs the SHA3/KECCAK256 opcode, contract address derivation (CREATE /
// CREATE2), and bit-exact bytecode deduplication in the dataset builder.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace phishinghook::evm {

using Hash256 = std::array<std::uint8_t, 32>;

/// Keccak-256 digest of `data` (Ethereum variant: pad10*1 with 0x01 domain).
Hash256 keccak256(std::span<const std::uint8_t> data);

/// Convenience overload hashing the raw bytes of a string.
Hash256 keccak256(const std::string& data);

/// Lowercase hex (no prefix) of a digest; handy for map keys and logs.
std::string hash_to_hex(const Hash256& hash);

/// Incremental Keccak-256 for streaming inputs (dataset-scale hashing).
class Keccak256 {
 public:
  Keccak256();
  void update(std::span<const std::uint8_t> data);
  /// Finalizes and returns the digest. The object must not be reused.
  Hash256 finalize();

 private:
  void absorb_block();

  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, 136> buffer_{};  // rate = 1088 bits = 136 bytes
  std::size_t buffer_len_ = 0;
  bool finalized_ = false;
};

}  // namespace phishinghook::evm
