// 20-byte Ethereum account address.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "evm/uint256.hpp"

namespace phishinghook::evm {

class Address {
 public:
  static constexpr std::size_t kSize = 20;

  /// The zero address.
  constexpr Address() = default;

  /// From exactly 20 raw bytes.
  static Address from_bytes(std::span<const std::uint8_t> bytes);

  /// From "0x"-prefixed or bare 40-digit hex.
  static Address from_hex(std::string_view hex);

  /// From the low 160 bits of a 256-bit word (how the EVM reads addresses
  /// off the stack for CALL/BALANCE/...).
  static Address from_word(const U256& word);

  /// As a 256-bit word (zero-extended), for pushing onto the EVM stack.
  U256 to_word() const;

  /// Lowercase "0x"-prefixed hex.
  std::string to_hex() const;

  constexpr const std::array<std::uint8_t, kSize>& bytes() const {
    return bytes_;
  }

  bool is_zero() const;

  friend constexpr bool operator==(const Address&, const Address&) = default;
  friend constexpr auto operator<=>(const Address&, const Address&) = default;

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

/// CREATE-style address derivation. The canonical scheme hashes
/// rlp(sender, nonce); we hash the equivalent fixed-width encoding — the
/// derived addresses are equally unique and deterministic, which is all the
/// simulated chain requires.
Address derive_contract_address(const Address& sender, std::uint64_t nonce);

/// CREATE2 address: keccak(0xff ++ sender ++ salt ++ keccak(init_code))[12:].
Address derive_create2_address(const Address& sender, const U256& salt,
                               std::span<const std::uint8_t> init_code);

}  // namespace phishinghook::evm

/// Hash support so addresses can key unordered containers (the explorer's
/// label set, serving-side indexes). FNV-1a over the 20 bytes — addresses
/// are themselves keccak suffixes, but FNV keeps this independent of that.
template <>
struct std::hash<phishinghook::evm::Address> {
  std::size_t operator()(const phishinghook::evm::Address& address) const {
    std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
    for (std::uint8_t b : address.bytes()) {
      h ^= b;
      h *= 1099511628211ULL;  // FNV prime
    }
    return static_cast<std::size_t>(h);
  }
};
