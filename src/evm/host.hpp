// Host interface between the interpreter and the world state.
//
// The interpreter is pure with respect to global state: every balance read,
// storage access, nested call, creation or log goes through this interface.
// `chain::State` provides the production implementation; tests use small
// in-memory hosts.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "evm/address.hpp"
#include "evm/bytecode.hpp"
#include "evm/uint256.hpp"

namespace phishinghook::evm {

/// Block-level environment visible to contracts (TIMESTAMP, NUMBER, ...).
struct BlockContext {
  std::uint64_t number = 0;
  std::uint64_t timestamp = 0;
  std::uint64_t gas_limit = 30'000'000;
  std::uint64_t chain_id = 1;
  std::uint64_t base_fee = 7;
  Address coinbase;
  U256 prevrandao;
};

/// How a nested call binds state/sender (CALL vs DELEGATECALL etc.).
enum class CallKind { kCall, kCallCode, kDelegateCall, kStaticCall };

/// One message call (top-level transaction or nested frame).
struct Message {
  Address caller;               ///< msg.sender
  Address code_address;         ///< whose code runs
  Address storage_address;      ///< whose storage/balance context (== code
                                ///< address except for DELEGATECALL/CALLCODE)
  Address origin;               ///< tx.origin
  U256 value;                   ///< msg.value (apparent value for delegatecall)
  std::vector<std::uint8_t> data;
  std::uint64_t gas = 10'000'000;
  std::uint64_t gas_price = 10;
  bool is_static = false;       ///< STATICCALL context: writes are violations
};

enum class Status {
  kSuccess,
  kRevert,
  kOutOfGas,
  kStackUnderflow,
  kStackOverflow,
  kInvalidJump,
  kInvalidOpcode,    ///< INVALID or an undefined byte
  kStaticViolation,  ///< state write inside STATICCALL
  kCallDepthExceeded,
};

const char* status_name(Status status);

struct ExecutionResult {
  Status status = Status::kSuccess;
  std::uint64_t gas_used = 0;
  std::vector<std::uint8_t> output;  ///< RETURN / REVERT payload

  bool ok() const { return status == Status::kSuccess; }
};

struct LogEntry {
  Address address;
  std::vector<U256> topics;
  std::vector<std::uint8_t> data;
};

/// World-state access required by the interpreter.
class Host {
 public:
  virtual ~Host() = default;

  virtual U256 get_balance(const Address& account) = 0;
  virtual Bytecode get_code(const Address& account) = 0;
  virtual U256 sload(const Address& account, const U256& key) = 0;
  virtual void sstore(const Address& account, const U256& key,
                      const U256& value) = 0;
  /// Moves `value` wei; returns false on insufficient balance.
  virtual bool transfer(const Address& from, const Address& to,
                        const U256& value) = 0;
  virtual void emit_log(LogEntry entry) = 0;
  /// Executes a nested message call (the implementation re-enters the
  /// interpreter); `depth` is the *callee* frame depth.
  virtual ExecutionResult call(const Message& message, CallKind kind,
                               int depth) = 0;
  /// Deploys a contract from `init_code`; returns the new address, or
  /// nullopt on failure. `result` receives the init-frame outcome.
  virtual std::optional<Address> create(const Address& creator,
                                        const U256& value,
                                        std::span<const std::uint8_t> init_code,
                                        std::optional<U256> salt, int depth,
                                        std::uint64_t gas,
                                        ExecutionResult& result) = 0;
  virtual void selfdestruct(const Address& contract,
                            const Address& beneficiary) = 0;
  virtual Hash256 block_hash(std::uint64_t number) = 0;
  virtual bool account_exists(const Address& account) = 0;
};

}  // namespace phishinghook::evm
