// 256-bit unsigned integer — the EVM machine word.
//
// The EVM is a 256-bit stack machine (yellow paper §9); every stack slot,
// storage key and storage value is one of these. Arithmetic is modulo 2^256
// with wrap-around, matching ADD/MUL/SUB opcode semantics; the signed
// helpers implement SDIV/SMOD/SLT/SGT/SAR two's-complement semantics.
//
// Representation: four 64-bit limbs, least-significant first.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace phishinghook::evm {

class U256 {
 public:
  /// Zero.
  constexpr U256() = default;

  /// From a 64-bit value (zero-extended).
  constexpr U256(std::uint64_t low) : limbs_{low, 0, 0, 0} {}  // NOLINT: implicit by design — mirrors integer literals

  /// From explicit limbs, least-significant first.
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                 std::uint64_t l3)
      : limbs_{l0, l1, l2, l3} {}

  /// Parses decimal or 0x-prefixed hex. Throws ParseError on bad input or
  /// overflow past 256 bits.
  static U256 from_string(std::string_view text);

  /// From big-endian bytes (at most 32; shorter inputs are zero-extended on
  /// the left, matching PUSHn and CALLDATALOAD padding).
  static U256 from_bytes_be(std::span<const std::uint8_t> bytes);

  /// Largest representable value (2^256 - 1).
  static constexpr U256 max() {
    return U256(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  }

  /// 2^bit for bit in [0, 256).
  static U256 pow2(unsigned bit);

  /// 32-byte big-endian serialization.
  std::array<std::uint8_t, 32> to_bytes_be() const;

  /// Minimal hex with 0x prefix ("0x0" for zero).
  std::string to_hex() const;

  /// Decimal string.
  std::string to_decimal() const;

  /// Low 64 bits (truncating).
  constexpr std::uint64_t low64() const { return limbs_[0]; }

  /// True if the value fits in 64 bits.
  constexpr bool fits_u64() const {
    return limbs_[1] == 0 && limbs_[2] == 0 && limbs_[3] == 0;
  }

  constexpr bool is_zero() const {
    return limbs_[0] == 0 && limbs_[1] == 0 && limbs_[2] == 0 && limbs_[3] == 0;
  }

  /// Sign bit in two's-complement interpretation (bit 255).
  constexpr bool is_negative() const { return (limbs_[3] >> 63) != 0; }

  /// Number of significant bits (0 for zero).
  unsigned bit_length() const;

  /// Number of significant bytes (0 for zero); the EVM "byte size" used by
  /// EXP gas and PUSH width selection.
  unsigned byte_length() const { return (bit_length() + 7) / 8; }

  /// Value of bit `i` (i in [0,256)).
  bool bit(unsigned i) const;

  /// Byte `i` counting from the most significant (the BYTE opcode: i=0 is
  /// the MSB); returns 0 for i >= 32.
  std::uint8_t byte_msb(unsigned i) const;

  // --- modular 2^256 arithmetic ------------------------------------------
  friend U256 operator+(const U256& a, const U256& b);
  friend U256 operator-(const U256& a, const U256& b);
  friend U256 operator*(const U256& a, const U256& b);
  /// EVM DIV: x/0 == 0.
  friend U256 operator/(const U256& a, const U256& b);
  /// EVM MOD: x%0 == 0.
  friend U256 operator%(const U256& a, const U256& b);

  U256& operator+=(const U256& o) { return *this = *this + o; }
  U256& operator-=(const U256& o) { return *this = *this - o; }
  U256& operator*=(const U256& o) { return *this = *this * o; }

  // --- bitwise -------------------------------------------------------------
  friend U256 operator&(const U256& a, const U256& b);
  friend U256 operator|(const U256& a, const U256& b);
  friend U256 operator^(const U256& a, const U256& b);
  U256 operator~() const;
  /// Logical shifts; shifts >= 256 yield 0 (EVM SHL/SHR semantics).
  friend U256 operator<<(const U256& a, unsigned shift);
  friend U256 operator>>(const U256& a, unsigned shift);

  // --- comparisons -----------------------------------------------------------
  friend constexpr bool operator==(const U256& a, const U256& b) = default;
  friend std::strong_ordering operator<=>(const U256& a, const U256& b);

  // --- EVM-specific operations ----------------------------------------------
  /// Two's-complement negation.
  U256 negated() const;
  /// SDIV: signed division, truncated toward zero; MIN/-1 wraps to MIN.
  static U256 sdiv(const U256& a, const U256& b);
  /// SMOD: signed remainder, sign follows the dividend.
  static U256 smod(const U256& a, const U256& b);
  /// SLT / SGT: signed comparisons.
  static bool slt(const U256& a, const U256& b);
  static bool sgt(const U256& a, const U256& b);
  /// ADDMOD / MULMOD: (a op b) % m computed without 2^256 truncation.
  static U256 addmod(const U256& a, const U256& b, const U256& m);
  static U256 mulmod(const U256& a, const U256& b, const U256& m);
  /// EXP: a^e mod 2^256 by square-and-multiply.
  static U256 exp(const U256& base, const U256& exponent);
  /// SAR: arithmetic right shift (sign-filling); shift is saturating.
  static U256 sar(const U256& value, const U256& shift);
  /// SIGNEXTEND: extends the sign of the byte at index `byte_index` (0 =
  /// least significant byte), per the EVM opcode.
  static U256 signextend(const U256& byte_index, const U256& value);

  /// Raw limb access (least-significant first); used by hashing and tests.
  constexpr const std::array<std::uint64_t, 4>& limbs() const { return limbs_; }

 private:
  std::array<std::uint64_t, 4> limbs_{0, 0, 0, 0};
};

}  // namespace phishinghook::evm
