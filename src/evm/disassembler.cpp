#include "evm/disassembler.hpp"

#include <algorithm>
#include <array>
#include <ostream>

#include "common/csv.hpp"
#include "common/hex.hpp"
#include "obs/metrics.hpp"

namespace phishinghook::evm {

namespace {

// Decode-volume counters on the global registry; bumped once per
// disassemble() call (three relaxed adds), not per instruction.
struct DisasmInstruments {
  obs::Counter calls = obs::MetricsRegistry::global().counter(
      "evm_disassemblies_total");
  obs::Counter bytes = obs::MetricsRegistry::global().counter(
      "evm_disasm_bytes_total");
  obs::Counter instructions = obs::MetricsRegistry::global().counter(
      "evm_disasm_instructions_total");
};

DisasmInstruments& disasm_instruments() {
  static DisasmInstruments instruments;
  return instruments;
}

}  // namespace

std::string_view unknown_mnemonic(std::uint8_t byte) {
  // All 256 names built once under the magic-static lock, so concurrent
  // callers (the parallel feature paths) only ever read.
  static const std::array<std::string, 256>* names = [] {
    auto* table = new std::array<std::string, 256>();
    static const char kDigits[] = "0123456789abcdef";
    for (std::size_t b = 0; b < 256; ++b) {
      std::string name = "UNKNOWN_0x";
      name.push_back(kDigits[b >> 4]);
      name.push_back(kDigits[b & 0x0F]);
      (*table)[b] = std::move(name);
    }
    return table;
  }();
  return (*names)[byte];
}

std::string Instruction::to_string() const {
  std::string out(mnemonic);
  if (operand.has_value()) {
    out += ' ';
    out += operand->to_hex();
  }
  return out;
}

std::uint64_t Disassembly::total_static_gas() const {
  std::uint64_t total = 0;
  for (const Instruction& ins : instructions) {
    if (ins.defined && !ins.gas_is_nan) total += ins.gas;
  }
  return total;
}

std::vector<std::pair<std::string, std::size_t>> Disassembly::mnemonic_counts()
    const {
  std::vector<std::pair<std::string, std::size_t>> counts;
  for (const Instruction& ins : instructions) {
    auto it = std::find_if(counts.begin(), counts.end(), [&](const auto& kv) {
      return kv.first == ins.mnemonic;
    });
    if (it == counts.end()) {
      counts.emplace_back(std::string(ins.mnemonic), 1);
    } else {
      ++it->second;
    }
  }
  return counts;
}

std::string Disassembly::to_csv() const {
  phishinghook::common::CsvWriter writer;
  writer.write_row({"pc", "opcode", "mnemonic", "operand", "gas"});
  for (const Instruction& ins : instructions) {
    writer.write_row({std::to_string(ins.pc),
                      "0x" + phishinghook::common::hex_encode(
                                 std::span<const std::uint8_t>(&ins.opcode, 1)),
                      std::string(ins.mnemonic),
                      ins.operand.has_value() ? ins.operand->to_hex() : "",
                      ins.gas_is_nan ? "NaN" : std::to_string(ins.gas)});
  }
  return writer.str();
}

Disassembler::Disassembler() : table_(&OpcodeTable::shanghai()) {}
Disassembler::Disassembler(const OpcodeTable& table) : table_(&table) {}

Disassembly Disassembler::disassemble(const Bytecode& code) const {
  Disassembly out;
  for_each(code, [&](const InstructionView& view) {
    Instruction ins;
    ins.pc = view.pc;
    ins.opcode = view.opcode;
    ins.mnemonic = view.mnemonic();
    if (view.defined()) {
      ins.gas = view.info->base_gas;
      ins.gas_is_nan = view.info->gas_is_nan;
      ins.defined = true;
      if (view.has_operand()) {
        // Missing trailing bytes read as zero (EVM code padding semantics);
        // InstructionView::operand applies the same zero-extension.
        ins.operand = view.operand();
        ins.operand_bytes = view.immediate_width;
      }
    } else {
      ins.defined = false;
      ins.gas_is_nan = true;
    }
    out.instructions.push_back(ins);
  });
  DisasmInstruments& instruments = disasm_instruments();
  instruments.calls.inc();
  instruments.bytes.inc(code.size());
  instruments.instructions.inc(out.instructions.size());
  return out;
}

void Disassembler::write_csv(const Bytecode& code, std::ostream& out) const {
  phishinghook::common::CsvWriter writer;
  writer.write_row({"pc", "opcode", "mnemonic", "operand", "gas"});
  out << writer.str();
  for_each(code, [&](const InstructionView& view) {
    phishinghook::common::CsvWriter row;
    const bool gas_is_nan = !view.defined() || view.info->gas_is_nan;
    row.write_row({std::to_string(view.pc),
                   "0x" + phishinghook::common::hex_encode(
                              std::span<const std::uint8_t>(&view.opcode, 1)),
                   std::string(view.mnemonic()),
                   view.has_operand() ? view.operand().to_hex() : "",
                   gas_is_nan ? "NaN" : std::to_string(view.gas())});
    out << row.str();
  });
}

}  // namespace phishinghook::evm
