#include "evm/disassembler.hpp"

#include <algorithm>
#include <array>
#include <deque>

#include "common/csv.hpp"
#include "common/hex.hpp"
#include "obs/metrics.hpp"

namespace phishinghook::evm {

namespace {

// Decode-volume counters on the global registry; bumped once per
// disassemble() call (three relaxed adds), not per instruction.
struct DisasmInstruments {
  obs::Counter calls = obs::MetricsRegistry::global().counter(
      "evm_disassemblies_total");
  obs::Counter bytes = obs::MetricsRegistry::global().counter(
      "evm_disasm_bytes_total");
  obs::Counter instructions = obs::MetricsRegistry::global().counter(
      "evm_disasm_instructions_total");
};

DisasmInstruments& disasm_instruments() {
  static DisasmInstruments instruments;
  return instruments;
}

// Stable storage for UNKNOWN_0xXX mnemonics (256 possible).
std::string_view unknown_mnemonic(std::uint8_t byte) {
  static std::deque<std::string>* storage = new std::deque<std::string>();
  static std::array<const std::string*, 256> cache{};
  if (cache[byte] == nullptr) {
    static const char kDigits[] = "0123456789abcdef";
    std::string name = "UNKNOWN_0x";
    name.push_back(kDigits[byte >> 4]);
    name.push_back(kDigits[byte & 0x0F]);
    storage->push_back(std::move(name));
    cache[byte] = &storage->back();
  }
  return *cache[byte];
}

}  // namespace

std::string Instruction::to_string() const {
  std::string out(mnemonic);
  if (operand.has_value()) {
    out += ' ';
    out += operand->to_hex();
  }
  return out;
}

std::uint64_t Disassembly::total_static_gas() const {
  std::uint64_t total = 0;
  for (const Instruction& ins : instructions) {
    if (ins.defined && !ins.gas_is_nan) total += ins.gas;
  }
  return total;
}

std::vector<std::pair<std::string, std::size_t>> Disassembly::mnemonic_counts()
    const {
  std::vector<std::pair<std::string, std::size_t>> counts;
  for (const Instruction& ins : instructions) {
    auto it = std::find_if(counts.begin(), counts.end(), [&](const auto& kv) {
      return kv.first == ins.mnemonic;
    });
    if (it == counts.end()) {
      counts.emplace_back(std::string(ins.mnemonic), 1);
    } else {
      ++it->second;
    }
  }
  return counts;
}

std::string Disassembly::to_csv() const {
  phishinghook::common::CsvWriter writer;
  writer.write_row({"pc", "opcode", "mnemonic", "operand", "gas"});
  for (const Instruction& ins : instructions) {
    writer.write_row({std::to_string(ins.pc),
                      "0x" + phishinghook::common::hex_encode(
                                 std::span<const std::uint8_t>(&ins.opcode, 1)),
                      std::string(ins.mnemonic),
                      ins.operand.has_value() ? ins.operand->to_hex() : "",
                      ins.gas_is_nan ? "NaN" : std::to_string(ins.gas)});
  }
  return writer.str();
}

Disassembler::Disassembler() : table_(&OpcodeTable::shanghai()) {}
Disassembler::Disassembler(const OpcodeTable& table) : table_(&table) {}

Disassembly Disassembler::disassemble(const Bytecode& code) const {
  Disassembly out;
  const auto& bytes = code.bytes();
  std::size_t pc = 0;
  while (pc < bytes.size()) {
    const std::uint8_t byte = bytes[pc];
    Instruction ins;
    ins.pc = pc;
    ins.opcode = byte;
    const OpcodeInfo* info = table_->find(byte);
    if (info != nullptr) {
      ins.mnemonic = info->mnemonic;
      ins.gas = info->base_gas;
      ins.gas_is_nan = info->gas_is_nan;
      ins.defined = true;
      const std::size_t width = info->immediate_bytes;
      if (width > 0) {
        const std::size_t available = std::min(width, bytes.size() - pc - 1);
        U256 value = U256::from_bytes_be(
            std::span<const std::uint8_t>(bytes.data() + pc + 1, available));
        // Missing trailing bytes read as zero (EVM code padding semantics).
        if (available < width) {
          value = value << static_cast<unsigned>(8 * (width - available));
        }
        ins.operand = value;
        ins.operand_bytes = width;
        pc += width;
      }
    } else {
      ins.mnemonic = unknown_mnemonic(byte);
      ins.defined = false;
      ins.gas_is_nan = true;
    }
    out.instructions.push_back(ins);
    ++pc;
  }
  DisasmInstruments& instruments = disasm_instruments();
  instruments.calls.inc();
  instruments.bytes.inc(bytes.size());
  instruments.instructions.inc(out.instructions.size());
  return out;
}

}  // namespace phishinghook::evm
