// Deployed-contract bytecode container.
//
// Wraps the raw byte vector with the operations the rest of the pipeline
// needs: hex round-trips, Keccak identity (for bit-exact deduplication of
// minimal-proxy clones), and JUMPDEST analysis (valid jump targets exclude
// 0x5B bytes that are PUSH immediates — the classic subtlety of EVM code).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "evm/keccak.hpp"

namespace phishinghook::evm {

class Bytecode {
 public:
  Bytecode() = default;
  explicit Bytecode(std::vector<std::uint8_t> bytes);

  /// Parses "0x6080..." (or bare hex). Throws ParseError on malformed input.
  static Bytecode from_hex(std::string_view hex);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  std::uint8_t at(std::size_t i) const { return bytes_.at(i); }

  /// "0x"-prefixed lowercase hex.
  std::string to_hex() const;

  /// Keccak-256 of the code — the contract's code hash / dedup key.
  Hash256 code_hash() const;

  /// Bitmap of positions that begin an instruction (i.e. are not inside a
  /// PUSH immediate). Computed lazily on first use.
  const std::vector<bool>& instruction_starts() const;

  /// True if `pc` is a valid JUMP/JUMPI destination: a JUMPDEST byte that
  /// starts an instruction.
  bool is_valid_jump_dest(std::size_t pc) const;

  friend bool operator==(const Bytecode& a, const Bytecode& b) {
    return a.bytes_ == b.bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  mutable std::vector<bool> starts_;  // lazy; empty until computed
};

}  // namespace phishinghook::evm
