// EVM opcode registry — Shanghai fork (144 opcodes).
//
// This is the native equivalent of the table on evm.codes (paper Table I)
// and of the authors' patched `evmdasm` registry: every opcode carries its
// mnemonic, static gas cost, stack effect and immediate (PUSH) width. The
// registry includes the two opcodes the paper had to add to evmdasm —
// PUSH0 (Shanghai) and INVALID (whose gas is NaN, modeled as `gas_is_nan`).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace phishinghook::evm {

/// Named constants for opcodes referenced from code. The registry covers
/// every Shanghai opcode; this enum only names the ones the library
/// manipulates directly.
enum class Op : std::uint8_t {
  kStop = 0x00,
  kAdd = 0x01,
  kMul = 0x02,
  kSub = 0x03,
  kDiv = 0x04,
  kSdiv = 0x05,
  kMod = 0x06,
  kSmod = 0x07,
  kAddmod = 0x08,
  kMulmod = 0x09,
  kExp = 0x0A,
  kSignextend = 0x0B,
  kLt = 0x10,
  kGt = 0x11,
  kSlt = 0x12,
  kSgt = 0x13,
  kEq = 0x14,
  kIszero = 0x15,
  kAnd = 0x16,
  kOr = 0x17,
  kXor = 0x18,
  kNot = 0x19,
  kByte = 0x1A,
  kShl = 0x1B,
  kShr = 0x1C,
  kSar = 0x1D,
  kSha3 = 0x20,
  kAddress = 0x30,
  kBalance = 0x31,
  kOrigin = 0x32,
  kCaller = 0x33,
  kCallvalue = 0x34,
  kCalldataload = 0x35,
  kCalldatasize = 0x36,
  kCalldatacopy = 0x37,
  kCodesize = 0x38,
  kCodecopy = 0x39,
  kGasprice = 0x3A,
  kExtcodesize = 0x3B,
  kExtcodecopy = 0x3C,
  kReturndatasize = 0x3D,
  kReturndatacopy = 0x3E,
  kExtcodehash = 0x3F,
  kBlockhash = 0x40,
  kCoinbase = 0x41,
  kTimestamp = 0x42,
  kNumber = 0x43,
  kPrevrandao = 0x44,
  kGaslimit = 0x45,
  kChainid = 0x46,
  kSelfbalance = 0x47,
  kBasefee = 0x48,
  kPop = 0x50,
  kMload = 0x51,
  kMstore = 0x52,
  kMstore8 = 0x53,
  kSload = 0x54,
  kSstore = 0x55,
  kJump = 0x56,
  kJumpi = 0x57,
  kPc = 0x58,
  kMsize = 0x59,
  kGas = 0x5A,
  kJumpdest = 0x5B,
  kPush0 = 0x5F,
  kPush1 = 0x60,
  kPush2 = 0x61,
  kPush3 = 0x62,
  kPush4 = 0x63,
  kPush20 = 0x73,
  kPush32 = 0x7F,
  kDup1 = 0x80,
  kDup2 = 0x81,
  kDup3 = 0x82,
  kDup4 = 0x83,
  kSwap1 = 0x90,
  kSwap2 = 0x91,
  kSwap3 = 0x92,
  kLog0 = 0xA0,
  kLog1 = 0xA1,
  kLog2 = 0xA2,
  kLog3 = 0xA3,
  kLog4 = 0xA4,
  kCreate = 0xF0,
  kCall = 0xF1,
  kCallcode = 0xF2,
  kReturn = 0xF3,
  kDelegatecall = 0xF4,
  kCreate2 = 0xF5,
  kStaticcall = 0xFA,
  kRevert = 0xFD,
  kInvalid = 0xFE,
  kSelfdestruct = 0xFF,
};

constexpr std::uint8_t op_byte(Op op) { return static_cast<std::uint8_t>(op); }

/// Functional family of an opcode; drives both the synthetic generator's
/// template grammar and several reports.
enum class OpcodeCategory {
  kArithmetic,
  kComparisonBitwise,
  kSha3,
  kEnvironment,
  kBlock,
  kStackMemoryFlow,
  kPush,
  kDup,
  kSwap,
  kLog,
  kSystem,
};

std::string_view category_name(OpcodeCategory category);

/// Static metadata for one opcode.
struct OpcodeInfo {
  std::uint8_t value = 0;
  std::string_view mnemonic;
  /// Static (base) gas cost; dynamic components (memory expansion, cold
  /// access...) are handled by the interpreter's gas module.
  std::uint32_t base_gas = 0;
  /// True only for INVALID, whose gas is listed as NaN in the reference
  /// tables (paper Table I).
  bool gas_is_nan = false;
  std::uint8_t stack_inputs = 0;
  std::uint8_t stack_outputs = 0;
  /// Immediate operand width in bytes (PUSHn => n, otherwise 0).
  std::uint8_t immediate_bytes = 0;
  OpcodeCategory category = OpcodeCategory::kSystem;
};

/// The Shanghai-fork opcode registry.
class OpcodeTable {
 public:
  /// The process-wide registry (immutable after construction).
  static const OpcodeTable& shanghai();

  /// Metadata for a byte, or nullptr if the byte is not a defined opcode.
  const OpcodeInfo* find(std::uint8_t byte) const;

  /// Metadata for a defined opcode; throws NotFound for undefined bytes.
  const OpcodeInfo& at(std::uint8_t byte) const;

  /// Lookup by mnemonic ("PUSH1", "SELFDESTRUCT"); throws NotFound.
  const OpcodeInfo& by_mnemonic(std::string_view mnemonic) const;

  bool is_defined(std::uint8_t byte) const { return find(byte) != nullptr; }

  /// All defined opcodes, ascending by byte value.
  const std::vector<OpcodeInfo>& all() const { return defined_; }

  /// Number of defined opcodes (144 for Shanghai).
  std::size_t size() const { return defined_.size(); }

 private:
  OpcodeTable();

  std::array<std::optional<OpcodeInfo>, 256> by_value_{};
  std::vector<OpcodeInfo> defined_;
};

/// True for PUSH1..PUSH32 (bytes 0x60..0x7F).
constexpr bool is_push_with_data(std::uint8_t byte) {
  return byte >= 0x60 && byte <= 0x7F;
}

/// Immediate width of a PUSH opcode (0 for PUSH0 and non-push bytes).
constexpr std::size_t push_data_size(std::uint8_t byte) {
  return is_push_with_data(byte) ? static_cast<std::size_t>(byte - 0x5F) : 0;
}

/// The PUSHn opcode carrying `n` immediate bytes, n in [0, 32].
std::uint8_t push_opcode_for_size(std::size_t n);

}  // namespace phishinghook::evm
