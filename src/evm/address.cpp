#include "evm/address.hpp"

#include <algorithm>
#include <vector>

#include "common/errors.hpp"
#include "common/hex.hpp"
#include "evm/keccak.hpp"

namespace phishinghook::evm {

Address Address::from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kSize) {
    throw InvalidArgument("address requires exactly 20 bytes, got " +
                          std::to_string(bytes.size()));
  }
  Address out;
  std::copy(bytes.begin(), bytes.end(), out.bytes_.begin());
  return out;
}

Address Address::from_hex(std::string_view hex) {
  const auto bytes = phishinghook::common::hex_decode(hex);
  return from_bytes(bytes);
}

Address Address::from_word(const U256& word) {
  const auto bytes = word.to_bytes_be();
  Address out;
  std::copy(bytes.begin() + 12, bytes.end(), out.bytes_.begin());
  return out;
}

U256 Address::to_word() const {
  return U256::from_bytes_be(bytes_);
}

std::string Address::to_hex() const {
  return phishinghook::common::hex_encode_prefixed(bytes_);
}

bool Address::is_zero() const {
  return std::all_of(bytes_.begin(), bytes_.end(),
                     [](std::uint8_t b) { return b == 0; });
}

Address derive_contract_address(const Address& sender, std::uint64_t nonce) {
  std::vector<std::uint8_t> preimage;
  preimage.reserve(Address::kSize + 8);
  preimage.insert(preimage.end(), sender.bytes().begin(), sender.bytes().end());
  for (int i = 7; i >= 0; --i) {
    preimage.push_back(static_cast<std::uint8_t>(nonce >> (8 * i)));
  }
  const Hash256 digest = keccak256(preimage);
  return Address::from_bytes(
      std::span<const std::uint8_t>(digest.data() + 12, Address::kSize));
}

Address derive_create2_address(const Address& sender, const U256& salt,
                               std::span<const std::uint8_t> init_code) {
  const Hash256 code_hash = keccak256(init_code);
  std::vector<std::uint8_t> preimage;
  preimage.reserve(1 + Address::kSize + 32 + 32);
  preimage.push_back(0xFF);
  preimage.insert(preimage.end(), sender.bytes().begin(), sender.bytes().end());
  const auto salt_bytes = salt.to_bytes_be();
  preimage.insert(preimage.end(), salt_bytes.begin(), salt_bytes.end());
  preimage.insert(preimage.end(), code_hash.begin(), code_hash.end());
  const Hash256 digest = keccak256(preimage);
  return Address::from_bytes(
      std::span<const std::uint8_t>(digest.data() + 12, Address::kSize));
}

}  // namespace phishinghook::evm
