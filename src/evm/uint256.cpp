#include "evm/uint256.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "common/hex.hpp"

namespace phishinghook::evm {

using phishinghook::common::hex_digit;
using phishinghook::InvalidArgument;
using phishinghook::ParseError;

namespace {

using u128 = unsigned __int128;

// --- generic limb helpers (little-endian limb order) -----------------------

// a += b over n limbs; returns carry.
std::uint64_t add_limbs(std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sum = static_cast<u128>(a[i]) + b[i] + carry;
    a[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  return carry;
}

// a -= b over n limbs; returns borrow.
std::uint64_t sub_limbs(std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 diff = static_cast<u128>(a[i]) - b[i] - borrow;
    a[i] = static_cast<std::uint64_t>(diff);
    borrow = static_cast<std::uint64_t>((diff >> 64) != 0 ? 1 : 0);
  }
  return borrow;
}

int compare_limbs(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

unsigned limb_bit_length(const std::uint64_t* a, std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    if (a[i] != 0) {
      return static_cast<unsigned>(64 * i) + 64 -
             static_cast<unsigned>(__builtin_clzll(a[i]));
    }
  }
  return 0;
}

// Left shift by one bit in place, feeding `in_bit` into bit 0.
void shl1_limbs(std::uint64_t* a, std::size_t n, std::uint64_t in_bit) {
  std::uint64_t carry = in_bit;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t next = a[i] >> 63;
    a[i] = (a[i] << 1) | carry;
    carry = next;
  }
}

// Binary long division: quotient/remainder of an n-limb numerator by an
// n-limb denominator. Simple and branch-predictable; at 256/512 bits this is
// plenty fast for a research EVM.
void divmod_limbs(const std::uint64_t* num, const std::uint64_t* den,
                  std::uint64_t* quot, std::uint64_t* rem, std::size_t n) {
  std::fill(quot, quot + n, 0);
  std::fill(rem, rem + n, 0);
  const unsigned bits = limb_bit_length(num, n);
  for (unsigned i = bits; i-- > 0;) {
    const std::uint64_t num_bit = (num[i / 64] >> (i % 64)) & 1ULL;
    shl1_limbs(rem, n, num_bit);
    if (compare_limbs(rem, den, n) >= 0) {
      sub_limbs(rem, den, n);
      quot[i / 64] |= 1ULL << (i % 64);
    }
  }
}

// Full 256x256 -> 512 bit product.
std::array<std::uint64_t, 8> mul_full(const std::array<std::uint64_t, 4>& a,
                                      const std::array<std::uint64_t, 4>& b) {
  std::array<std::uint64_t, 8> out{};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out[i + 4] = carry;
  }
  return out;
}

}  // namespace

U256 U256::from_string(std::string_view text) {
  if (text.empty()) throw ParseError("empty U256 literal");
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
    if (text.empty() || text.size() > 64) {
      throw ParseError("hex U256 literal must have 1..64 digits");
    }
    U256 out;
    for (char c : text) {
      out = (out << 4) | U256(hex_digit(c));
    }
    return out;
  }
  U256 out;
  const U256 ten(10);
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw ParseError(std::string("bad decimal digit '") + c + "' in U256");
    }
    const U256 shifted = out * ten;
    if (shifted / ten != out) throw ParseError("decimal U256 literal overflows");
    out = shifted + U256(static_cast<std::uint64_t>(c - '0'));
    if (out < shifted) throw ParseError("decimal U256 literal overflows");
  }
  return out;
}

U256 U256::from_bytes_be(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > 32) {
    throw InvalidArgument("U256::from_bytes_be takes at most 32 bytes, got " +
                          std::to_string(bytes.size()));
  }
  U256 out;
  for (std::uint8_t b : bytes) {
    out = (out << 8) | U256(b);
  }
  return out;
}

U256 U256::pow2(unsigned bit) {
  if (bit >= 256) throw InvalidArgument("U256::pow2 bit must be < 256");
  U256 out;
  out.limbs_[bit / 64] = 1ULL << (bit % 64);
  return out;
}

std::array<std::uint8_t, 32> U256::to_bytes_be() const {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t limb = limbs_[i];
    for (std::size_t b = 0; b < 8; ++b) {
      out[31 - (i * 8 + b)] = static_cast<std::uint8_t>(limb >> (8 * b));
    }
  }
  return out;
}

std::string U256::to_hex() const {
  if (is_zero()) return "0x0";
  const auto bytes = to_bytes_be();
  std::size_t first = 0;
  while (first < 32 && bytes[first] == 0) ++first;
  std::string hex = phishinghook::common::hex_encode(
      std::span<const std::uint8_t>(bytes.data() + first, 32 - first));
  if (hex.size() > 1 && hex[0] == '0') hex.erase(hex.begin());
  return "0x" + hex;
}

std::string U256::to_decimal() const {
  if (is_zero()) return "0";
  std::string digits;
  U256 value = *this;
  const U256 ten(10);
  while (!value.is_zero()) {
    const U256 quotient = value / ten;
    const U256 remainder = value - quotient * ten;
    digits.push_back(static_cast<char>('0' + remainder.low64()));
    value = quotient;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

unsigned U256::bit_length() const {
  return limb_bit_length(limbs_.data(), 4);
}

bool U256::bit(unsigned i) const {
  if (i >= 256) return false;
  return (limbs_[i / 64] >> (i % 64)) & 1ULL;
}

std::uint8_t U256::byte_msb(unsigned i) const {
  if (i >= 32) return 0;
  return to_bytes_be()[i];
}

U256 operator+(const U256& a, const U256& b) {
  U256 out = a;
  add_limbs(out.limbs_.data(), b.limbs_.data(), 4);
  return out;
}

U256 operator-(const U256& a, const U256& b) {
  U256 out = a;
  sub_limbs(out.limbs_.data(), b.limbs_.data(), 4);
  return out;
}

U256 operator*(const U256& a, const U256& b) {
  const auto full = mul_full(a.limbs_, b.limbs_);
  return U256(full[0], full[1], full[2], full[3]);
}

U256 operator/(const U256& a, const U256& b) {
  if (b.is_zero()) return U256();  // EVM semantics: x / 0 == 0
  U256 quotient, remainder;
  divmod_limbs(a.limbs_.data(), b.limbs_.data(), quotient.limbs_.data(),
               remainder.limbs_.data(), 4);
  return quotient;
}

U256 operator%(const U256& a, const U256& b) {
  if (b.is_zero()) return U256();  // EVM semantics: x % 0 == 0
  U256 quotient, remainder;
  divmod_limbs(a.limbs_.data(), b.limbs_.data(), quotient.limbs_.data(),
               remainder.limbs_.data(), 4);
  return remainder;
}

U256 operator&(const U256& a, const U256& b) {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = a.limbs_[i] & b.limbs_[i];
  return out;
}

U256 operator|(const U256& a, const U256& b) {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = a.limbs_[i] | b.limbs_[i];
  return out;
}

U256 operator^(const U256& a, const U256& b) {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = a.limbs_[i] ^ b.limbs_[i];
  return out;
}

U256 U256::operator~() const {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = ~limbs_[i];
  return out;
}

U256 operator<<(const U256& a, unsigned shift) {
  if (shift >= 256) return U256();
  U256 out;
  const unsigned limb_shift = shift / 64;
  const unsigned bit_shift = shift % 64;
  for (std::size_t i = 4; i-- > limb_shift;) {
    std::uint64_t v = a.limbs_[i - limb_shift] << bit_shift;
    if (bit_shift != 0 && i - limb_shift > 0) {
      v |= a.limbs_[i - limb_shift - 1] >> (64 - bit_shift);
    }
    out.limbs_[i] = v;
  }
  return out;
}

U256 operator>>(const U256& a, unsigned shift) {
  if (shift >= 256) return U256();
  U256 out;
  const unsigned limb_shift = shift / 64;
  const unsigned bit_shift = shift % 64;
  for (std::size_t i = 0; i + limb_shift < 4; ++i) {
    std::uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < 4) {
      v |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
    out.limbs_[i] = v;
  }
  return out;
}

std::strong_ordering operator<=>(const U256& a, const U256& b) {
  const int cmp = compare_limbs(a.limbs_.data(), b.limbs_.data(), 4);
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

U256 U256::negated() const { return (~*this) + U256(1); }

U256 U256::sdiv(const U256& a, const U256& b) {
  if (b.is_zero()) return U256();
  const bool a_neg = a.is_negative();
  const bool b_neg = b.is_negative();
  const U256 abs_a = a_neg ? a.negated() : a;
  const U256 abs_b = b_neg ? b.negated() : b;
  const U256 q = abs_a / abs_b;
  // Note: MIN_INT256 / -1 overflows to MIN_INT256, which this path produces
  // naturally: |MIN| / 1 = |MIN|, then negated()( == MIN).
  return (a_neg != b_neg) ? q.negated() : q;
}

U256 U256::smod(const U256& a, const U256& b) {
  if (b.is_zero()) return U256();
  const bool a_neg = a.is_negative();
  const U256 abs_a = a_neg ? a.negated() : a;
  const U256 abs_b = b.is_negative() ? b.negated() : b;
  const U256 r = abs_a % abs_b;
  return a_neg ? r.negated() : r;
}

bool U256::slt(const U256& a, const U256& b) {
  const bool a_neg = a.is_negative();
  const bool b_neg = b.is_negative();
  if (a_neg != b_neg) return a_neg;
  return a < b;
}

bool U256::sgt(const U256& a, const U256& b) { return slt(b, a); }

U256 U256::addmod(const U256& a, const U256& b, const U256& m) {
  if (m.is_zero()) return U256();
  // 257-bit sum held in 5 limbs, then mod by long division.
  std::array<std::uint64_t, 5> sum{};
  std::copy(a.limbs_.begin(), a.limbs_.end(), sum.begin());
  std::array<std::uint64_t, 5> addend{};
  std::copy(b.limbs_.begin(), b.limbs_.end(), addend.begin());
  add_limbs(sum.data(), addend.data(), 5);
  std::array<std::uint64_t, 5> modulus{};
  std::copy(m.limbs_.begin(), m.limbs_.end(), modulus.begin());
  std::array<std::uint64_t, 5> quotient{}, remainder{};
  divmod_limbs(sum.data(), modulus.data(), quotient.data(), remainder.data(),
               5);
  return U256(remainder[0], remainder[1], remainder[2], remainder[3]);
}

U256 U256::mulmod(const U256& a, const U256& b, const U256& m) {
  if (m.is_zero()) return U256();
  const std::array<std::uint64_t, 8> product = mul_full(a.limbs_, b.limbs_);
  std::array<std::uint64_t, 8> modulus{};
  std::copy(m.limbs_.begin(), m.limbs_.end(), modulus.begin());
  std::array<std::uint64_t, 8> quotient{}, remainder{};
  divmod_limbs(product.data(), modulus.data(), quotient.data(),
               remainder.data(), 8);
  return U256(remainder[0], remainder[1], remainder[2], remainder[3]);
}

U256 U256::exp(const U256& base, const U256& exponent) {
  U256 result(1);
  U256 acc = base;
  const unsigned bits = exponent.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result *= acc;
    acc *= acc;
  }
  return result;
}

U256 U256::sar(const U256& value, const U256& shift) {
  const bool negative = value.is_negative();
  if (!shift.fits_u64() || shift.low64() >= 256) {
    return negative ? U256::max() : U256();
  }
  const unsigned s = static_cast<unsigned>(shift.low64());
  U256 out = value >> s;
  if (negative && s > 0) {
    // Fill the vacated top bits with ones.
    out = out | (U256::max() << (256 - s));
  }
  return out;
}

U256 U256::signextend(const U256& byte_index, const U256& value) {
  if (!byte_index.fits_u64() || byte_index.low64() >= 31) return value;
  const unsigned sign_bit =
      static_cast<unsigned>(byte_index.low64()) * 8 + 7;
  const U256 mask = (U256::pow2(sign_bit) << 1) - U256(1);  // low bits incl. sign
  if (value.bit(sign_bit)) {
    return value | ~mask;
  }
  return value & mask;
}

}  // namespace phishinghook::evm
