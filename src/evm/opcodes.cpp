#include "evm/opcodes.hpp"

#include <deque>

#include "common/errors.hpp"

namespace phishinghook::evm {

std::string_view category_name(OpcodeCategory category) {
  switch (category) {
    case OpcodeCategory::kArithmetic: return "arithmetic";
    case OpcodeCategory::kComparisonBitwise: return "comparison/bitwise";
    case OpcodeCategory::kSha3: return "sha3";
    case OpcodeCategory::kEnvironment: return "environment";
    case OpcodeCategory::kBlock: return "block";
    case OpcodeCategory::kStackMemoryFlow: return "stack/memory/flow";
    case OpcodeCategory::kPush: return "push";
    case OpcodeCategory::kDup: return "dup";
    case OpcodeCategory::kSwap: return "swap";
    case OpcodeCategory::kLog: return "log";
    case OpcodeCategory::kSystem: return "system";
  }
  return "?";
}

namespace {

// PUSH1..PUSH32 / DUP1..DUP16 / SWAP1..SWAP16 / LOG0..LOG4 mnemonics must
// outlive the table; build them once as stable strings.
const std::string& numbered_mnemonic(const char* stem, int n) {
  // std::deque never relocates existing elements, so the string_views held
  // by OpcodeInfo stay valid for the life of the process.
  static std::deque<std::string>* storage = new std::deque<std::string>();
  storage->push_back(std::string(stem) + std::to_string(n));
  return storage->back();
}

}  // namespace

OpcodeTable::OpcodeTable() {
  auto add = [this](std::uint8_t value, std::string_view mnemonic,
                    std::uint32_t gas, std::uint8_t in, std::uint8_t out,
                    OpcodeCategory cat, std::uint8_t immediate = 0,
                    bool gas_nan = false) {
    OpcodeInfo info{.value = value,
                    .mnemonic = mnemonic,
                    .base_gas = gas,
                    .gas_is_nan = gas_nan,
                    .stack_inputs = in,
                    .stack_outputs = out,
                    .immediate_bytes = immediate,
                    .category = cat};
    by_value_[value] = info;
  };

  using C = OpcodeCategory;

  // 0x00..0x0B: arithmetic / halting.
  add(0x00, "STOP", 0, 0, 0, C::kSystem);
  add(0x01, "ADD", 3, 2, 1, C::kArithmetic);
  add(0x02, "MUL", 5, 2, 1, C::kArithmetic);
  add(0x03, "SUB", 3, 2, 1, C::kArithmetic);
  add(0x04, "DIV", 5, 2, 1, C::kArithmetic);
  add(0x05, "SDIV", 5, 2, 1, C::kArithmetic);
  add(0x06, "MOD", 5, 2, 1, C::kArithmetic);
  add(0x07, "SMOD", 5, 2, 1, C::kArithmetic);
  add(0x08, "ADDMOD", 8, 3, 1, C::kArithmetic);
  add(0x09, "MULMOD", 8, 3, 1, C::kArithmetic);
  add(0x0A, "EXP", 10, 2, 1, C::kArithmetic);
  add(0x0B, "SIGNEXTEND", 5, 2, 1, C::kArithmetic);

  // 0x10..0x1D: comparison & bitwise.
  add(0x10, "LT", 3, 2, 1, C::kComparisonBitwise);
  add(0x11, "GT", 3, 2, 1, C::kComparisonBitwise);
  add(0x12, "SLT", 3, 2, 1, C::kComparisonBitwise);
  add(0x13, "SGT", 3, 2, 1, C::kComparisonBitwise);
  add(0x14, "EQ", 3, 2, 1, C::kComparisonBitwise);
  add(0x15, "ISZERO", 3, 1, 1, C::kComparisonBitwise);
  add(0x16, "AND", 3, 2, 1, C::kComparisonBitwise);
  add(0x17, "OR", 3, 2, 1, C::kComparisonBitwise);
  add(0x18, "XOR", 3, 2, 1, C::kComparisonBitwise);
  add(0x19, "NOT", 3, 1, 1, C::kComparisonBitwise);
  add(0x1A, "BYTE", 3, 2, 1, C::kComparisonBitwise);
  add(0x1B, "SHL", 3, 2, 1, C::kComparisonBitwise);
  add(0x1C, "SHR", 3, 2, 1, C::kComparisonBitwise);
  add(0x1D, "SAR", 3, 2, 1, C::kComparisonBitwise);

  // 0x20: hashing.
  add(0x20, "SHA3", 30, 2, 1, C::kSha3);

  // 0x30..0x3F: execution environment.
  add(0x30, "ADDRESS", 2, 0, 1, C::kEnvironment);
  add(0x31, "BALANCE", 100, 1, 1, C::kEnvironment);
  add(0x32, "ORIGIN", 2, 0, 1, C::kEnvironment);
  add(0x33, "CALLER", 2, 0, 1, C::kEnvironment);
  add(0x34, "CALLVALUE", 2, 0, 1, C::kEnvironment);
  add(0x35, "CALLDATALOAD", 3, 1, 1, C::kEnvironment);
  add(0x36, "CALLDATASIZE", 2, 0, 1, C::kEnvironment);
  add(0x37, "CALLDATACOPY", 3, 3, 0, C::kEnvironment);
  add(0x38, "CODESIZE", 2, 0, 1, C::kEnvironment);
  add(0x39, "CODECOPY", 3, 3, 0, C::kEnvironment);
  add(0x3A, "GASPRICE", 2, 0, 1, C::kEnvironment);
  add(0x3B, "EXTCODESIZE", 100, 1, 1, C::kEnvironment);
  add(0x3C, "EXTCODECOPY", 100, 4, 0, C::kEnvironment);
  add(0x3D, "RETURNDATASIZE", 2, 0, 1, C::kEnvironment);
  add(0x3E, "RETURNDATACOPY", 3, 3, 0, C::kEnvironment);
  add(0x3F, "EXTCODEHASH", 100, 1, 1, C::kEnvironment);

  // 0x40..0x48: block information.
  add(0x40, "BLOCKHASH", 20, 1, 1, C::kBlock);
  add(0x41, "COINBASE", 2, 0, 1, C::kBlock);
  add(0x42, "TIMESTAMP", 2, 0, 1, C::kBlock);
  add(0x43, "NUMBER", 2, 0, 1, C::kBlock);
  add(0x44, "PREVRANDAO", 2, 0, 1, C::kBlock);
  add(0x45, "GASLIMIT", 2, 0, 1, C::kBlock);
  add(0x46, "CHAINID", 2, 0, 1, C::kBlock);
  add(0x47, "SELFBALANCE", 5, 0, 1, C::kBlock);
  add(0x48, "BASEFEE", 2, 0, 1, C::kBlock);

  // 0x50..0x5B: stack / memory / storage / control flow.
  add(0x50, "POP", 2, 1, 0, C::kStackMemoryFlow);
  add(0x51, "MLOAD", 3, 1, 1, C::kStackMemoryFlow);
  add(0x52, "MSTORE", 3, 2, 0, C::kStackMemoryFlow);
  add(0x53, "MSTORE8", 3, 2, 0, C::kStackMemoryFlow);
  add(0x54, "SLOAD", 100, 1, 1, C::kStackMemoryFlow);
  add(0x55, "SSTORE", 100, 2, 0, C::kStackMemoryFlow);
  add(0x56, "JUMP", 8, 1, 0, C::kStackMemoryFlow);
  add(0x57, "JUMPI", 10, 2, 0, C::kStackMemoryFlow);
  add(0x58, "PC", 2, 0, 1, C::kStackMemoryFlow);
  add(0x59, "MSIZE", 2, 0, 1, C::kStackMemoryFlow);
  add(0x5A, "GAS", 2, 0, 1, C::kStackMemoryFlow);
  add(0x5B, "JUMPDEST", 1, 0, 0, C::kStackMemoryFlow);

  // 0x5F..0x7F: pushes. PUSH0 is the Shanghai addition the paper patched
  // into evmdasm.
  add(0x5F, "PUSH0", 2, 0, 1, C::kPush);
  for (int n = 1; n <= 32; ++n) {
    add(static_cast<std::uint8_t>(0x5F + n), numbered_mnemonic("PUSH", n), 3, 0,
        1, C::kPush, static_cast<std::uint8_t>(n));
  }

  // 0x80..0x8F: dups; 0x90..0x9F: swaps.
  for (int n = 1; n <= 16; ++n) {
    add(static_cast<std::uint8_t>(0x7F + n), numbered_mnemonic("DUP", n), 3,
        static_cast<std::uint8_t>(n), static_cast<std::uint8_t>(n + 1),
        C::kDup);
    add(static_cast<std::uint8_t>(0x8F + n), numbered_mnemonic("SWAP", n), 3,
        static_cast<std::uint8_t>(n + 1), static_cast<std::uint8_t>(n + 1),
        C::kSwap);
  }

  // 0xA0..0xA4: logs.
  for (int n = 0; n <= 4; ++n) {
    add(static_cast<std::uint8_t>(0xA0 + n), numbered_mnemonic("LOG", n), 375,
        static_cast<std::uint8_t>(n + 2), 0, C::kLog);
  }

  // 0xF0..0xFF: system operations.
  add(0xF0, "CREATE", 32000, 3, 1, C::kSystem);
  add(0xF1, "CALL", 100, 7, 1, C::kSystem);
  add(0xF2, "CALLCODE", 100, 7, 1, C::kSystem);
  add(0xF3, "RETURN", 0, 2, 0, C::kSystem);
  add(0xF4, "DELEGATECALL", 100, 6, 1, C::kSystem);
  add(0xF5, "CREATE2", 32000, 4, 1, C::kSystem);
  add(0xFA, "STATICCALL", 100, 6, 1, C::kSystem);
  add(0xFD, "REVERT", 0, 2, 0, C::kSystem);
  add(0xFE, "INVALID", 0, 0, 0, C::kSystem, 0, /*gas_nan=*/true);
  add(0xFF, "SELFDESTRUCT", 5000, 1, 0, C::kSystem);

  for (const auto& slot : by_value_) {
    if (slot.has_value()) defined_.push_back(*slot);
  }
}

const OpcodeTable& OpcodeTable::shanghai() {
  static const OpcodeTable* table = new OpcodeTable();
  return *table;
}

const OpcodeInfo* OpcodeTable::find(std::uint8_t byte) const {
  const auto& slot = by_value_[byte];
  return slot.has_value() ? &*slot : nullptr;
}

const OpcodeInfo& OpcodeTable::at(std::uint8_t byte) const {
  const OpcodeInfo* info = find(byte);
  if (info == nullptr) {
    throw NotFound("opcode 0x" + std::to_string(byte) + " is not defined");
  }
  return *info;
}

const OpcodeInfo& OpcodeTable::by_mnemonic(std::string_view mnemonic) const {
  for (const OpcodeInfo& info : defined_) {
    if (info.mnemonic == mnemonic) return info;
  }
  throw NotFound("opcode mnemonic '" + std::string(mnemonic) + "'");
}

std::uint8_t push_opcode_for_size(std::size_t n) {
  if (n > 32) throw InvalidArgument("PUSH immediate width must be <= 32");
  return static_cast<std::uint8_t>(0x5F + n);
}

}  // namespace phishinghook::evm
