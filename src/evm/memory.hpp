// EVM linear memory: a zero-initialized, word-expanded byte array.
//
// Memory grows in 32-byte words; the quadratic expansion cost
// (3·w + w²/512, yellow paper Appendix G) is computed here so the
// interpreter can charge the *delta* on each touching access.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "evm/uint256.hpp"

namespace phishinghook::evm {

class EvmMemory {
 public:
  /// Current size in bytes (always a multiple of 32).
  std::size_t size() const { return bytes_.size(); }

  /// Gas cost of memory of `words` 32-byte words.
  static std::uint64_t expansion_cost(std::uint64_t words) {
    return 3 * words + (words * words) / 512;
  }

  /// Additional gas required to grow so [offset, offset+len) is addressable;
  /// 0 if already covered. Does not grow.
  std::uint64_t grow_cost(std::uint64_t offset, std::uint64_t len) const;

  /// Ensures [offset, offset+len) is addressable (zero-filled growth).
  void grow(std::uint64_t offset, std::uint64_t len);

  /// 32-byte big-endian load (MLOAD). Grows as needed.
  U256 load_word(std::uint64_t offset);

  /// 32-byte big-endian store (MSTORE). Grows as needed.
  void store_word(std::uint64_t offset, const U256& value);

  /// Single-byte store (MSTORE8). Grows as needed.
  void store_byte(std::uint64_t offset, std::uint8_t value);

  /// Copies `data` to `offset`, zero-filling `len - data.size()` trailing
  /// bytes (the semantics of CALLDATACOPY/CODECOPY with short sources).
  void store_span(std::uint64_t offset, std::span<const std::uint8_t> data,
                  std::uint64_t len);

  /// Reads `len` bytes at `offset` (grows, so reads past old size yield 0).
  std::vector<std::uint8_t> read(std::uint64_t offset, std::uint64_t len);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace phishinghook::evm
