// EVM operand stack: up to 1024 words of 256 bits.
//
// Over/underflow are reported via status codes rather than exceptions: they
// are *contract* failures (the transaction halts exceptionally), not library
// bugs, and the interpreter's hot loop checks them on every instruction.
#pragma once

#include <vector>

#include "evm/uint256.hpp"

namespace phishinghook::evm {

class Stack {
 public:
  static constexpr std::size_t kMaxDepth = 1024;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// True on success; false on overflow.
  [[nodiscard]] bool push(const U256& value) {
    if (items_.size() >= kMaxDepth) return false;
    items_.push_back(value);
    return true;
  }

  /// True on success; false on underflow.
  [[nodiscard]] bool pop(U256& out) {
    if (items_.empty()) return false;
    out = items_.back();
    items_.pop_back();
    return true;
  }

  /// Element `depth` from the top (0 = top). Caller must bounds-check via
  /// size(); used after the interpreter's uniform stack-effect validation.
  const U256& peek(std::size_t depth = 0) const {
    return items_[items_.size() - 1 - depth];
  }

  /// DUPn: duplicates the n-th item from the top (n >= 1).
  [[nodiscard]] bool dup(std::size_t n) {
    if (items_.size() < n || items_.size() >= kMaxDepth) return false;
    items_.push_back(items_[items_.size() - n]);
    return true;
  }

  /// SWAPn: swaps top with the (n+1)-th item (n >= 1).
  [[nodiscard]] bool swap(std::size_t n) {
    if (items_.size() < n + 1) return false;
    std::swap(items_.back(), items_[items_.size() - 1 - n]);
    return true;
  }

  const std::vector<U256>& items() const { return items_; }

 private:
  std::vector<U256> items_;
};

}  // namespace phishinghook::evm
